//! Training on your own data: write/load a plain-text edge list, train two
//! models, and compare them. Demonstrates the `graphaug-data` loader path a
//! downstream user would take with the real Gowalla/Amazon dumps.
//!
//! ```text
//! cargo run --release -p graphaug-bench --example custom_dataset
//! ```

use std::process::ExitCode;

use graphaug_baselines::{BaselineOpts, BiasMf, Trainable};
use graphaug_core::{GraphAug, GraphAugConfig};
use graphaug_data::{generate, load_edge_list, to_edge_list, DataError, SyntheticConfig};
use graphaug_eval::{evaluate, Recommender};
use graphaug_graph::TrainTestSplit;

fn main() -> ExitCode {
    // Simulate a user-provided log file: "user item" per line. Any string
    // tokens work — ids are densely re-mapped on load.
    let source = generate(&SyntheticConfig::new(200, 150, 2_500).clusters(6).seed(11));
    let text = to_edge_list(&source);
    let path = std::env::temp_dir().join("graphaug_custom_dataset.tsv");
    if let Err(e) = std::fs::write(&path, &text) {
        eprintln!("custom_dataset: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote demo edge list: {} ({} lines)",
        path.display(),
        text.lines().count()
    );

    // Load it back the way a user would — through the typed loader, so a
    // malformed interaction log surfaces as a matchable `DataError` value
    // (with its line number and offending token), never a panic.
    let loaded = match load_edge_list(&path) {
        Ok(graph) => graph,
        Err(e @ DataError::RaggedRow { .. }) => {
            eprintln!("custom_dataset: malformed edge list: {e}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("custom_dataset: cannot load {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "loaded: {} users, {} items, {} interactions",
        loaded.n_users(),
        loaded.n_items(),
        loaded.n_interactions()
    );

    let split = TrainTestSplit::per_user(&loaded, 0.2, 13);

    let mut mf = BiasMf::new(BaselineOpts::default().epochs(20).seed(1), &split.train);
    mf.fit();
    let mf_res = evaluate(&mf, &split, &[20]);

    let mut ga = GraphAug::new(GraphAugConfig::new().epochs(20).seed(1), &split.train);
    ga.fit();
    let ga_res = evaluate(&ga, &split, &[20]);

    println!(
        "\n{:<10} Recall@20 {:.4}  NDCG@20 {:.4}",
        mf.name(),
        mf_res.recall(20),
        mf_res.ndcg(20)
    );
    println!(
        "{:<10} Recall@20 {:.4}  NDCG@20 {:.4}",
        ga.name(),
        ga_res.recall(20),
        ga_res.ndcg(20)
    );
    std::fs::remove_file(&path).ok();
    ExitCode::SUCCESS
}
