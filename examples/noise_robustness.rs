//! Noise robustness demo (the paper's Fig. 3 scenario at example scale):
//! corrupt the training graph with fake edges and compare how much
//! GraphAug and LightGCN degrade.
//!
//! ```text
//! cargo run --release -p graphaug-bench --example noise_robustness
//! ```

use graphaug_baselines::{BaselineOpts, GnnCf, Trainable};
use graphaug_core::{GraphAug, GraphAugConfig};
use graphaug_data::{generate, SyntheticConfig};
use graphaug_eval::evaluate;
use graphaug_graph::{inject_fake_edges, TrainTestSplit};

fn main() {
    let data = generate(&SyntheticConfig::new(250, 200, 4_000).clusters(8).seed(5));
    let clean = TrainTestSplit::per_user(&data, 0.2, 5);

    println!("noise   GraphAug R@20   LightGCN R@20");
    let mut base: Option<(f64, f64)> = None;
    for ratio in [0.0f64, 0.1, 0.2, 0.3] {
        // Corrupt only the training topology; evaluation stays clean.
        let noisy = TrainTestSplit {
            train: inject_fake_edges(&clean.train, ratio, 99),
            test: clean.test.clone(),
        };

        let mut ga = GraphAug::new(GraphAugConfig::new().epochs(18).seed(3), &noisy.train);
        ga.fit();
        let ga_r = evaluate(&ga, &noisy, &[20]).recall(20);

        let mut lg = GnnCf::lightgcn(BaselineOpts::default().epochs(18).seed(3), &noisy.train);
        lg.fit();
        let lg_r = evaluate(&lg, &noisy, &[20]).recall(20);

        let (g0, l0) = *base.get_or_insert((ga_r, lg_r));
        println!(
            "{ratio:.2}    {ga_r:.4} ({:+.1}%)   {lg_r:.4} ({:+.1}%)",
            100.0 * (ga_r - g0) / g0,
            100.0 * (lg_r - l0) / l0,
        );
    }
    println!("\nGraphAug's GIB-regularized augmentor should lose less accuracy as");
    println!("the noise ratio grows — the paper's Figure 3 claim.");
}
