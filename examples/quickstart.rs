//! Quickstart: generate a dataset, train GraphAug, evaluate, and print
//! top-5 recommendations for one user.
//!
//! ```text
//! cargo run --release -p graphaug-bench --example quickstart
//! ```

use graphaug_core::{GraphAug, GraphAugConfig};
use graphaug_data::{generate, SyntheticConfig};
use graphaug_eval::{evaluate, topk_indices, Recommender};
use graphaug_graph::TrainTestSplit;

fn main() {
    // 1. Data: a synthetic implicit-feedback dataset with cluster structure,
    //    power-law popularity, and 10% behavioural noise.
    let data = generate(&SyntheticConfig::new(300, 250, 5_000).clusters(8).seed(42));
    println!(
        "dataset: {} users, {} items, {} interactions (density {:.2e})",
        data.n_users(),
        data.n_items(),
        data.n_interactions(),
        data.density()
    );

    // 2. Split: hold out 20% of each user's interactions.
    let split = TrainTestSplit::per_user(&data, 0.2, 7);

    // 3. Train GraphAug with paper-default hyperparameters (scaled epochs).
    let cfg = GraphAugConfig::new().epochs(20).seed(7);
    let mut model = GraphAug::new(cfg, &split.train);
    println!("training GraphAug ({} parameters)…", model.n_parameters());
    model.fit_with(|epoch, _, _| {
        if epoch % 5 == 4 {
            println!("  epoch {} done", epoch + 1);
        }
    });

    // 4. Evaluate with the paper's protocol (full ranking, train masked).
    let result = evaluate(&model, &split, &[20, 40]);
    println!(
        "Recall@20 {:.4}  Recall@40 {:.4}  NDCG@20 {:.4}  NDCG@40 {:.4}  ({} users)",
        result.recall(20),
        result.recall(40),
        result.ndcg(20),
        result.ndcg(40),
        result.n_users
    );

    // 5. Recommend: top-5 unseen items for user 0.
    let user = 0usize;
    let mut scores = model.score_items(user);
    for &v in split.train.items_of(user) {
        scores[v as usize] = f32::NEG_INFINITY;
    }
    let top = topk_indices(&scores, 5);
    println!("top-5 recommendations for user {user}: {top:?}");
    println!(
        "held-out ground truth:             {:?}",
        split.test.items_of(user)
    );
}
