//! Case study (the paper's Fig. 6 analysis): after training, inspect the
//! augmentor's learned edge-keep probabilities to see (i) which observed
//! interactions GraphAug treats as noise, and (ii) which item pairs acquire
//! implicit dependencies (close embeddings) without any category labels.
//!
//! ```text
//! cargo run --release -p graphaug-bench --example case_study
//! ```

use graphaug_core::{GraphAug, GraphAugConfig};
use graphaug_data::{generate, SyntheticConfig};
use graphaug_eval::Recommender;
use graphaug_graph::TrainTestSplit;

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    dot / (na * nb).max(1e-12)
}

fn main() {
    // An "Amazon-like" sparse dataset with noticeable noise, so the
    // denoising behaviour has something to find.
    let data = generate(
        &SyntheticConfig::new(200, 160, 2_400)
            .clusters(6)
            .noise(0.2)
            .seed(21),
    );
    let split = TrainTestSplit::per_user(&data, 0.2, 21);
    let mut model = GraphAug::new(GraphAugConfig::new().epochs(25).seed(21), &split.train);
    model.fit();

    // (ii) Denoising: per-edge keep probabilities from the trained
    // augmentor. Low-probability edges are the ones GraphAug prunes from
    // the contrastive views — candidate noise.
    let probs = model.edge_keep_probabilities();
    let edges = model.train_edges().to_vec();
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by(|&a, &b| probs[a].partial_cmp(&probs[b]).expect("finite probs"));

    println!("=== Edges the augmentor most wants to DROP (candidate noise) ===");
    for &i in order.iter().take(8) {
        let (u, v) = edges[i];
        println!("  user {u:>4} — item {v:>4}   keep prob {:.3}", probs[i]);
    }
    println!("\n=== Edges the augmentor most wants to KEEP ===");
    for &i in order.iter().rev().take(8) {
        let (u, v) = edges[i];
        println!("  user {u:>4} — item {v:>4}   keep prob {:.3}", probs[i]);
    }

    // (i) Implicit item dependencies: co-interacted items whose embeddings
    // became close — GraphAug discovered their relatedness without labels.
    let (_, items) = model.embeddings().expect("GraphAug exposes embeddings");
    println!("\n=== Implicit item dependencies for user 0 ===");
    let user_items = split.train.items_of(0);
    for (a_pos, &a) in user_items.iter().enumerate() {
        for &b in &user_items[a_pos + 1..] {
            let sim = cosine(items.row(a as usize), items.row(b as usize));
            if sim > 0.8 {
                println!("  items {a:>4} <-> {b:>4}   cosine {sim:.3}  (implicitly related)");
            }
        }
    }

    // Summary statistics mirroring the paper's discussion.
    let mean_prob: f32 = probs.iter().sum::<f32>() / probs.len() as f32;
    let dropped = probs.iter().filter(|&&p| p < 0.5).count();
    println!(
        "\nmean keep prob {:.3}; {} of {} edges scored below 0.5",
        mean_prob,
        dropped,
        probs.len()
    );
}
