#!/bin/bash
# Regenerates every table and figure of the paper into results/.
cd "$(dirname "$0")"
mkdir -p results/logs
BINS="table1_stats table2_main table3_mixhop_mad table4_aug_strength table5_skewed table6_cost table7_mad_compare fig2_ablation fig3_noise fig4_convergence fig5_hyperparams fig7_distribution"
for b in $BINS; do
    echo "=== $b ==="
    ./target/release/$b 2>&1 | tee results/logs/$b.log
done
