//! Online-serving benchmarks — uncached/cached/batched top-K serving and
//! the table-rebuild cost that bounds hot-reload latency.
//!
//! Runs on the in-repo wall-clock harness (`graphaug_bench::harness`);
//! workload definitions live in `graphaug_bench::perf` so the suite and the
//! `bench_baseline` trajectory recorder always measure identical code.

use graphaug_bench::harness::Harness;
use graphaug_bench::perf;

fn main() {
    let mut h = Harness::new("serve");
    perf::serving(&mut h);
    h.finish();
}
