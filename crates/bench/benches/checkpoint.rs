//! Checkpoint encode/decode/write benchmarks — the per-epoch crash-safety
//! overhead of the fault-tolerant runtime.
//!
//! Runs on the in-repo wall-clock harness (`graphaug_bench::harness`);
//! workload definitions live in `graphaug_bench::perf` so the suite and the
//! `bench_baseline` trajectory recorder always measure identical code.

use graphaug_bench::harness::Harness;
use graphaug_bench::perf;

fn main() {
    let mut h = Harness::new("checkpoint");
    perf::checkpoint(&mut h);
    h.finish();
}
