//! Shard-router benchmarks — the user→shard hash, routed REC latency,
//! cross-shard batch fan-out, and the down-shard fast-fail path.
//!
//! Runs on the in-repo wall-clock harness (`graphaug_bench::harness`);
//! workload definitions live in `graphaug_bench::perf` so the suite and the
//! `bench_baseline` trajectory recorder always measure identical code.

use graphaug_bench::harness::Harness;
use graphaug_bench::perf;

fn main() {
    let mut h = Harness::new("router");
    perf::router(&mut h);
    h.finish();
}
