//! Learnable-augmentor benchmarks: edge scoring (MLP over all train edges)
//! and reparameterized view sampling — the cost GraphAug adds over plain
//! GCL, and the subject of the differentiable-sampling design choice in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use graphaug_core::augmentor::{edge_logits, sample_view, AugmentorNodes, AugmentorSettings, EdgeIndex};
use graphaug_data::{generate, SyntheticConfig};
use graphaug_tensor::init::{seeded_rng, xavier_uniform};
use graphaug_tensor::{Graph, Mat};
use std::hint::black_box;

fn bench_augmentor(c: &mut Criterion) {
    let train = generate(&SyntheticConfig::new(400, 300, 8000).seed(1));
    let idx = EdgeIndex::build(&train);
    let d = 32;
    let h = 16;
    let mut rng = seeded_rng(2);
    let h_bar = xavier_uniform(train.n_nodes(), d, &mut rng);
    let w1 = xavier_uniform(2 * d, h, &mut rng);
    let w2 = xavier_uniform(h, 1, &mut rng);
    let settings = AugmentorSettings {
        gumbel_temperature: 0.5,
        edge_threshold: 0.2,
        feature_keep_prob: 0.9,
        feature_noise_std: 0.1,
        leaky_slope: 0.5,
    };

    c.bench_function("edge_logits_8k_edges", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let hb = g.constant(h_bar.clone());
            let mlp = AugmentorNodes {
                w1: g.constant(w1.clone()),
                b1: g.constant(Mat::zeros(1, h)),
                w2: g.constant(w2.clone()),
                b2: g.constant(Mat::zeros(1, 1)),
            };
            let mut r = seeded_rng(3);
            let l = edge_logits(&mut g, hb, &idx, &mlp, &settings, &mut r);
            black_box(g.value(l).as_slice()[0]);
        })
    });

    c.bench_function("sample_view_8k_edges", |b| {
        let mut g = Graph::new();
        let hb = g.constant(h_bar.clone());
        let mlp = AugmentorNodes {
            w1: g.constant(w1.clone()),
            b1: g.constant(Mat::zeros(1, h)),
            w2: g.constant(w2.clone()),
            b2: g.constant(Mat::zeros(1, 1)),
        };
        let mut r = seeded_rng(3);
        let logits = edge_logits(&mut g, hb, &idx, &mlp, &settings, &mut r);
        b.iter(|| {
            let v = sample_view(&mut g, logits, &idx, &settings, &mut r);
            black_box(v.kept_fraction)
        })
    });
}

fn quick() -> Criterion {
    // Single-core CI budget: few samples, short measurement windows.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_augmentor
}
criterion_main!(benches);
