//! Mixhop encoder forward pass vs the vanilla-GCN ablation — the ablation
//! bench for the paper's central encoder design choice (Table III).

use criterion::{criterion_group, criterion_main, Criterion};
use graphaug_core::mixhop::{encode_mixhop, encode_vanilla, mixing_row_shape};
use graphaug_data::{generate, SyntheticConfig};
use graphaug_tensor::init::{seeded_rng, xavier_uniform};
use graphaug_tensor::{Graph, SpPair};
use std::hint::black_box;

fn bench_encoders(c: &mut Criterion) {
    let g = generate(&SyntheticConfig::new(400, 300, 8000).seed(1));
    let adj = SpPair::symmetric(g.normalized_adjacency_plain());
    let n = g.n_nodes();
    let d = 32;
    let mut rng = seeded_rng(2);
    let h0 = xavier_uniform(n, d, &mut rng);
    let (mr, mc) = mixing_row_shape(3);
    let rows: Vec<_> = (0..2).map(|_| xavier_uniform(mr, mc, &mut rng)).collect();

    c.bench_function("mixhop_forward_L2_hops012", |b| {
        b.iter(|| {
            let mut tape = Graph::new();
            let h = tape.constant(h0.clone());
            let ws: Vec<_> = rows.iter().map(|w| tape.constant(w.clone())).collect();
            let out = encode_mixhop(&mut tape, &adj, h, &ws, &[0, 1, 2]);
            black_box(tape.value(out).as_slice()[0]);
        })
    });
    c.bench_function("vanilla_forward_L2", |b| {
        b.iter(|| {
            let mut tape = Graph::new();
            let h = tape.constant(h0.clone());
            let out = encode_vanilla(&mut tape, &adj, h, 2);
            black_box(tape.value(out).as_slice()[0]);
        })
    });
}

fn quick() -> Criterion {
    // Single-core CI budget: few samples, short measurement windows.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_encoders
}
criterion_main!(benches);
