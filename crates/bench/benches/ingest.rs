//! Streaming-ingestion benchmarks — durable log appends, delta
//! application, and the warm-start fine-tune round behind the
//! online-learning loop.
//!
//! Runs on the in-repo wall-clock harness (`graphaug_bench::harness`);
//! workload definitions live in `graphaug_bench::perf` so the suite and the
//! `bench_baseline` trajectory recorder always measure identical code.

use graphaug_bench::harness::Harness;
use graphaug_bench::perf;

fn main() {
    let mut h = Harness::new("ingest");
    perf::ingest(&mut h);
    h.finish();
}
