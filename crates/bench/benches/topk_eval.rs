//! Top-K selection and full-ranking evaluation benchmarks — the
//! measurement side of every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use graphaug_bench::split_graph;
use graphaug_core::{GraphAug, GraphAugConfig};
use graphaug_data::{generate, SyntheticConfig};
use graphaug_eval::{evaluate, topk_indices};
use std::hint::black_box;

fn bench_topk(c: &mut Criterion) {
    let scores: Vec<f32> = (0..10_000).map(|i| ((i * 2654435761u64 as usize) % 9973) as f32).collect();
    c.bench_function("topk_40_of_10000", |b| {
        b.iter(|| black_box(topk_indices(black_box(&scores), 40)))
    });

    let g = generate(&SyntheticConfig::new(300, 250, 5000).seed(1));
    let split = split_graph(&g);
    let model = GraphAug::new(GraphAugConfig::new().seed(1), &split.train);
    c.bench_function("full_ranking_eval_300users", |b| {
        b.iter(|| black_box(evaluate(&model, &split, &[20, 40]).n_users))
    });
}

fn quick() -> Criterion {
    // Single-core CI budget: few samples, short measurement windows.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_topk
}
criterion_main!(benches);
