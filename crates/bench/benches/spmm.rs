//! Sparse × dense kernel benchmarks — the hot inner loop of every GNN
//! forward/backward pass in the workspace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphaug_data::{generate, SyntheticConfig};
use std::hint::black_box;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for (label, users, items, inter) in
        [("small", 200usize, 150usize, 3000usize), ("gowalla_scale", 794, 898, 18300)]
    {
        let g = generate(&SyntheticConfig::new(users, items, inter).seed(1));
        let adj = g.normalized_adjacency_plain();
        let d = 32;
        let dense: Vec<f32> = (0..adj.n_cols() * d).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut out = vec![0f32; adj.n_rows() * d];
        group.bench_function(BenchmarkId::new("csr_x_dense_d32", label), |b| {
            b.iter(|| {
                adj.spmm_into(black_box(&dense), d, &mut out);
                black_box(&out);
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    // Single-core CI budget: few samples, short measurement windows.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_spmm
}
criterion_main!(benches);
