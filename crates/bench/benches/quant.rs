//! Int8 quantization benchmarks — the raw `dot8_i8` kernel vs the f32
//! kernel, quantized-IVF build cost, and quantized uncached top-20 on the
//! same 100k-item d32 catalog the `ann` suite measures, with the resident
//! table footprint (int8 and f32) and sampled drift recall@20 recorded as
//! metric lines.
//!
//! Runs on the in-repo wall-clock harness (`graphaug_bench::harness`);
//! workload definitions live in `graphaug_bench::perf` so the suite and the
//! `bench_baseline` trajectory recorder always measure identical code.

use graphaug_bench::harness::Harness;
use graphaug_bench::perf;

fn main() {
    let mut h = Harness::new("quant");
    perf::quant(&mut h);
    h.finish();
}
