//! Full GraphAug training-step benchmark: tape build + forward + backward +
//! Adam — the unit of cost behind the paper's Table VI timing comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use graphaug_core::{GraphAug, GraphAugConfig};
use graphaug_data::{generate, SyntheticConfig};
use graphaug_graph::TripletSampler;
use std::hint::black_box;

fn bench_train_step(c: &mut Criterion) {
    let train = generate(&SyntheticConfig::new(300, 250, 6000).seed(1));
    let mut full = GraphAug::new(GraphAugConfig::new().seed(3), &train);
    let mut base = GraphAug::new(GraphAugConfig::new().gib(false).cl(false).seed(3), &train);
    let train2 = train.clone();
    c.bench_function("graphaug_train_step_full", |b| {
        let mut sampler = TripletSampler::new(&train2, 5);
        b.iter(|| black_box(full.train_step(&mut sampler).loss))
    });
    c.bench_function("graphaug_train_step_bpr_only", |b| {
        let mut sampler = TripletSampler::new(&train2, 5);
        b.iter(|| black_box(base.train_step(&mut sampler).loss))
    });
}

fn quick() -> Criterion {
    // Single-core CI budget: few samples, short measurement windows.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_train_step
}
criterion_main!(benches);
