//! IVF ANN benchmarks — index build (reload cost), ANN vs exact uncached
//! top-K at 10k/100k-item catalogs, and batched fan-out through the
//! engine's ANN path, with build-time recall@20 recorded as metric lines.
//!
//! Runs on the in-repo wall-clock harness (`graphaug_bench::harness`);
//! workload definitions live in `graphaug_bench::perf` so the suite and the
//! `bench_baseline` trajectory recorder always measure identical code.

use graphaug_bench::harness::Harness;
use graphaug_bench::perf;

fn main() {
    let mut h = Harness::new("ann");
    perf::ann(&mut h);
    h.finish();
}
