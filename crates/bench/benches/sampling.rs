//! BPR triplet-sampling benchmarks — the per-step data path.

use criterion::{criterion_group, criterion_main, Criterion};
use graphaug_data::{generate, SyntheticConfig};
use graphaug_graph::TripletSampler;
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let g = generate(&SyntheticConfig::new(794, 898, 18300).seed(1));
    c.bench_function("bpr_batch_1024", |b| {
        let mut s = TripletSampler::new(&g, 7);
        b.iter(|| black_box(s.sample_batch(1024).0.len()))
    });
    c.bench_function("active_users_256", |b| {
        let mut s = TripletSampler::new(&g, 7);
        b.iter(|| black_box(s.sample_active_users(256).len()))
    });
}

fn quick() -> Criterion {
    // Single-core CI budget: few samples, short measurement windows.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_sampling
}
criterion_main!(benches);
