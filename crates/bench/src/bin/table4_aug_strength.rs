//! Regenerates paper Table IV: the graph-sampling-reparameterization
//! strength study — edge threshold ξ ∈ {0.0, 0.2, 0.4, 0.6, 0.8} on all
//! three datasets.

use graphaug_bench::{
    banner, epoch_budget, graphaug_config, prepared_split, selected_datasets, write_csv, KS,
};
use graphaug_core::GraphAug;
use graphaug_eval::{evaluate, fmt4, TextTable};

fn main() {
    banner("Table IV — Graph sampling reparameterization strength (ξ sweep)");
    let _ = epoch_budget();
    let mut table = TextTable::new(&[
        "Dataset",
        "Aug ratio (ξ)",
        "Recall@20",
        "Recall@40",
        "NDCG@20",
        "NDCG@40",
    ]);
    for ds in selected_datasets() {
        let split = prepared_split(ds);
        println!("\n--- {} ---", ds.name());
        for xi in [0.0f32, 0.2, 0.4, 0.6, 0.8] {
            let mut m = GraphAug::new(graphaug_config().edge_threshold(xi), &split.train);
            m.fit();
            let r = evaluate(&m, &split, &KS);
            println!(
                "xi {:.1}: R@20 {:.4}  R@40 {:.4}  N@20 {:.4}  N@40 {:.4}",
                xi,
                r.recall(20),
                r.recall(40),
                r.ndcg(20),
                r.ndcg(40)
            );
            table.row(&[
                ds.name().to_string(),
                format!("{xi:.1}"),
                fmt4(r.recall(20)),
                fmt4(r.recall(40)),
                fmt4(r.ndcg(20)),
                fmt4(r.ndcg(40)),
            ]);
        }
    }
    println!("\n{}", table.render());
    let p = write_csv("table4_aug_strength", &table);
    println!("written: {}", p.display());
}
