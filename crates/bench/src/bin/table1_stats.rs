//! Regenerates paper Table I: dataset statistics.

use graphaug_bench::{banner, fast_mode, write_csv};
use graphaug_data::{Dataset, DatasetStats};
use graphaug_eval::TextTable;

fn main() {
    banner("Table I — Experimental Data Statistics (1/64-scale presets)");
    let mut table = TextTable::new(&[
        "Dataset",
        "User #",
        "Item #",
        "Interaction #",
        "Density",
        "Mean user deg",
        "Item Gini",
    ]);
    for ds in Dataset::ALL {
        let g = if fast_mode() {
            ds.load_mini()
        } else {
            ds.load()
        };
        let s = DatasetStats::of(ds.name(), &g);
        table.row(&[
            s.name.clone(),
            s.users.to_string(),
            s.items.to_string(),
            s.interactions.to_string(),
            format!("{:.1e}", s.density),
            format!("{:.1}", s.mean_user_degree),
            format!("{:.2}", s.item_gini),
        ]);
    }
    println!("{}", table.render());
    let p = write_csv("table1_stats", &table);
    println!("written: {}", p.display());
}
