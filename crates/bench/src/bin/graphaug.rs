//! `graphaug` — command-line interface for training and serving the models
//! in this workspace on plain-text interaction data.
//!
//! ```text
//! graphaug train <edges.tsv> [--model GraphAug] [--epochs 40] [--seed 7]
//!     trains on an 80/20 per-user split and reports Recall/NDCG@{20,40}
//!
//! graphaug recommend <edges.tsv> <user-id> [--top 10] [--model GraphAug]
//!     trains on the full data and prints the user's top-N unseen items
//!
//! graphaug compare <edges.tsv> [--epochs 40] [--models A,B,...]
//!     trains several models on the same split and prints a leaderboard
//!
//! graphaug stats <edges.tsv>
//!     prints Table-I-style dataset statistics
//! ```
//!
//! The edge-list format is one `user item` pair per line (whitespace
//! separated, `#` comments allowed); ids are arbitrary tokens.

use std::process::ExitCode;

use graphaug_bench::build_any;
use graphaug_data::{load_edge_list, DatasetStats};
use graphaug_eval::{
    evaluate, export_embeddings, import_embeddings, topk_indices, Recommender, TextTable,
};
use graphaug_graph::{InteractionGraph, TrainTestSplit};

struct Args {
    positional: Vec<String>,
    model: String,
    models: Vec<String>,
    epochs: Option<usize>,
    seed: u64,
    top: usize,
}

fn parse_args(mut raw: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        model: "GraphAug".into(),
        models: vec![
            "BiasMF".into(),
            "LightGCN".into(),
            "SGL".into(),
            "NCL".into(),
            "GraphAug".into(),
        ],
        epochs: None,
        seed: 7,
        top: 10,
    };
    while let Some(a) = raw.next() {
        let mut value_of =
            |flag: &str| raw.next().ok_or_else(|| format!("{flag} requires a value"));
        match a.as_str() {
            "--model" => args.model = value_of("--model")?,
            "--models" => {
                args.models = value_of("--models")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect()
            }
            "--epochs" => {
                args.epochs = Some(
                    value_of("--epochs")?
                        .parse()
                        .map_err(|_| "--epochs must be an integer".to_string())?,
                )
            }
            "--seed" => {
                args.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?
            }
            "--top" => {
                args.top = value_of("--top")?
                    .parse()
                    .map_err(|_| "--top must be an integer".to_string())?
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<InteractionGraph, String> {
    let g = load_edge_list(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    if g.n_interactions() == 0 {
        return Err("edge list is empty".into());
    }
    Ok(g)
}

fn set_epochs(epochs: Option<usize>) {
    if let Some(e) = epochs {
        std::env::set_var("GRAPHAUG_EPOCHS", e.to_string());
    }
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("train needs an edge-list path")?;
    let g = load(path)?;
    set_epochs(args.epochs);
    let split = TrainTestSplit::per_user(&g, 0.2, args.seed);
    println!(
        "training {} on {} users / {} items / {} interactions…",
        args.model,
        g.n_users(),
        g.n_items(),
        g.n_interactions()
    );
    let mut model = build_any(&args.model, &split.train);
    let start = std::time::Instant::now();
    model.fit();
    let res = evaluate(model.as_ref(), &split, &[20, 40]);
    println!(
        "{}: Recall@20 {:.4}  Recall@40 {:.4}  NDCG@20 {:.4}  NDCG@40 {:.4}  ({:.1}s, {} users)",
        args.model,
        res.recall(20),
        res.recall(40),
        res.ndcg(20),
        res.ndcg(40),
        start.elapsed().as_secs_f64(),
        res.n_users
    );
    Ok(())
}

fn cmd_recommend(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("recommend needs an edge-list path")?;
    let user: usize = args
        .positional
        .get(1)
        .ok_or("recommend needs a user id (dense index)")?
        .parse()
        .map_err(|_| "user id must be a dense integer index".to_string())?;
    let g = load(path)?;
    if user >= g.n_users() {
        return Err(format!(
            "user {user} out of range (dataset has {} users)",
            g.n_users()
        ));
    }
    set_epochs(args.epochs);
    let mut model = build_any(&args.model, &g);
    model.fit();
    let mut scores = model.score_items(user);
    for &v in g.items_of(user) {
        scores[v as usize] = f32::NEG_INFINITY;
    }
    let top = topk_indices(&scores, args.top);
    println!(
        "user {user} has {} observed interactions",
        g.items_of(user).len()
    );
    println!("top-{} recommendations ({}):", args.top, args.model);
    for (rank, v) in top.iter().enumerate() {
        println!(
            "  {:>2}. item {:>6}  score {:.4}",
            rank + 1,
            v,
            scores[*v as usize]
        );
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("compare needs an edge-list path")?;
    let g = load(path)?;
    set_epochs(args.epochs);
    let split = TrainTestSplit::per_user(&g, 0.2, args.seed);
    let mut table = TextTable::new(&["Model", "Recall@20", "NDCG@20", "train s"]);
    for name in &args.models {
        let mut model = build_any(name, &split.train);
        let start = std::time::Instant::now();
        model.fit();
        let res = evaluate(model.as_ref(), &split, &[20]);
        table.row(&[
            name.clone(),
            format!("{:.4}", res.recall(20)),
            format!("{:.4}", res.ndcg(20)),
            format!("{:.1}", start.elapsed().as_secs_f64()),
        ]);
        println!("{name} done");
    }
    println!("\n{}", table.render());
    Ok(())
}

fn cmd_export(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("export needs an edge-list path")?;
    let out_path = args
        .positional
        .get(1)
        .ok_or("export needs an output path")?;
    let g = load(path)?;
    set_epochs(args.epochs);
    let mut model = build_any(&args.model, &g);
    model.fit();
    if model.embeddings().is_none() {
        return Err(format!(
            "{} is not an embedding model; cannot export",
            args.model
        ));
    }
    std::fs::write(out_path, export_embeddings(model.as_ref())).map_err(|e| e.to_string())?;
    println!("trained {} and wrote embeddings to {out_path}", args.model);
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let emb_path = args
        .positional
        .first()
        .ok_or("serve needs an embeddings path")?;
    let user: usize = args
        .positional
        .get(1)
        .ok_or("serve needs a user id")?
        .parse()
        .map_err(|_| "user id must be a dense integer index".to_string())?;
    let text = std::fs::read_to_string(emb_path).map_err(|e| e.to_string())?;
    let snap = import_embeddings(&text).map_err(|e| e.to_string())?;
    let scores = snap.score_items(user);
    let top = topk_indices(&scores, args.top);
    println!("top-{} for user {user} (from {emb_path}):", args.top);
    for (rank, v) in top.iter().enumerate() {
        println!(
            "  {:>2}. item {:>6}  score {:.4}",
            rank + 1,
            v,
            scores[*v as usize]
        );
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("stats needs an edge-list path")?;
    let g = load(path)?;
    let s = DatasetStats::of(path, &g);
    println!("{}", DatasetStats::markdown_header());
    println!("{}", s.markdown_row());
    Ok(())
}

const USAGE: &str = "usage: graphaug <train|recommend|compare|stats|export|serve> …
  train     <edges.tsv> [--model NAME] [--epochs N] [--seed S]
  recommend <edges.tsv> <user> [--top N] [--model NAME] [--epochs N]
  compare   <edges.tsv> [--models A,B,C] [--epochs N] [--seed S]
  stats     <edges.tsv>
  export    <edges.tsv> <out.emb> [--model NAME] [--epochs N]
  serve     <model.emb> <user> [--top N]
models: BiasMF NCF AutoR GCMC PinSage NGCF LightGCN GCCF DisenGCN DGCF MHCN
        STGCN SLRec SGL DGCL HCCF CGI NCL GraphAug (+ 'GraphAug w/o …' ablations)";

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "train" => cmd_train(&args),
        "recommend" => cmd_recommend(&args),
        "compare" => cmd_compare(&args),
        "stats" => cmd_stats(&args),
        "export" => cmd_export(&args),
        "serve" => cmd_serve(&args),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
