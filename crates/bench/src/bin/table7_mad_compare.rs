//! Regenerates paper Table VII: MAD (oversmoothing probe) of GraphAug, NCL,
//! and LightGCN on Gowalla, alongside their accuracy.

use graphaug_bench::{banner, prepared_split, run_model, write_csv};
use graphaug_data::Dataset;
use graphaug_eval::{fmt4, mad, TextTable};

fn main() {
    banner("Table VII — MAD of several methods (Gowalla)");
    let split = prepared_split(Dataset::Gowalla);
    let mut table = TextTable::new(&["Model", "MAD", "Recall@20", "NDCG@20"]);
    for name in ["GraphAug", "NCL", "LightGCN"] {
        let out = run_model(name, &split);
        let emb = out.model.all_node_embeddings().expect("embedding models");
        let m = mad(&emb);
        println!(
            "{:<10} MAD {:.4}  R@20 {:.4}  N@20 {:.4}",
            name,
            m,
            out.result.recall(20),
            out.result.ndcg(20)
        );
        table.row(&[
            name.to_string(),
            format!("{m:.4}"),
            fmt4(out.result.recall(20)),
            fmt4(out.result.ndcg(20)),
        ]);
    }
    println!("\n{}", table.render());
    let p = write_csv("table7_mad_compare", &table);
    println!("written: {}", p.display());
}
