//! Records the perf-trajectory baseline: the spmm, matmul, mixhop_forward,
//! sampling, top-K evaluation, and augmentor workloads in one process,
//! written as `BENCH_seed.json` so future PRs have a stable comparison
//! point (run from the repo root:
//! `cargo run --release --offline -p graphaug-bench --bin bench_baseline`).

use graphaug_bench::harness::Harness;
use graphaug_bench::perf;

fn main() {
    // Optional suite label (default "seed") so later PRs can record their
    // own trajectory point: `bench_baseline pr2` → BENCH_pr2.json.
    let suite = std::env::args().nth(1).unwrap_or_else(|| "seed".into());
    let mut h = Harness::new(&suite);
    perf::spmm(&mut h);
    perf::matmul(&mut h);
    perf::mixhop_forward(&mut h);
    perf::sampling(&mut h);
    perf::topk_eval(&mut h);
    perf::augmentor(&mut h);
    perf::checkpoint(&mut h);
    perf::serving(&mut h);
    perf::ann(&mut h);
    perf::quant(&mut h);
    perf::router(&mut h);
    perf::ingest(&mut h);
    h.finish();
}
