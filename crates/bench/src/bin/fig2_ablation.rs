//! Regenerates paper Figure 2: component-wise ablation — full GraphAug vs
//! "w/o Mixhop", "w/o GIB", "w/o CL" on all three datasets.

use graphaug_bench::{banner, prepared_split, run_model, selected_datasets, write_csv};
use graphaug_eval::{fmt4, TextTable};

fn main() {
    banner("Figure 2 — Ablation study of sub-modules in GraphAug");
    let variants = [
        "GraphAug",
        "GraphAug w/o Mixhop",
        "GraphAug w/o GIB",
        "GraphAug w/o CL",
    ];
    let mut table = TextTable::new(&[
        "Dataset",
        "Variant",
        "Recall@20",
        "NDCG@20",
        "Recall@40",
        "NDCG@40",
    ]);
    for ds in selected_datasets() {
        let split = prepared_split(ds);
        println!("\n--- {} ---", ds.name());
        for v in variants {
            let out = run_model(v, &split);
            println!(
                "{:<24} R@20 {:.4}  N@20 {:.4}",
                v,
                out.result.recall(20),
                out.result.ndcg(20)
            );
            table.row(&[
                ds.name().to_string(),
                v.to_string(),
                fmt4(out.result.recall(20)),
                fmt4(out.result.ndcg(20)),
                fmt4(out.result.recall(40)),
                fmt4(out.result.ndcg(40)),
            ]);
        }
    }
    println!("\n{}", table.render());
    let p = write_csv("fig2_ablation", &table);
    println!("written: {}", p.display());
}
