//! Regenerates paper Table V: performance against skewed (long-tail) data
//! distributions — Recall@40 / NDCG@40 per user-degree bucket for
//! {LightGCN, DGCL, NCL, GraphAug} on two datasets.

use graphaug_bench::{banner, prepared_split, run_model, write_csv};
use graphaug_data::Dataset;
use graphaug_eval::{evaluate_item_group, evaluate_users, fmt4, TextTable};
use graphaug_graph::{paper_degree_groups, paper_item_degree_groups};

fn main() {
    banner("Table V — Performance against skewed data distribution");
    let models = ["LightGCN", "DGCL", "NCL", "GraphAug"];
    let mut table = TextTable::new(&[
        "Dataset", "Model", "Metric", "0-10", "10-20", "20-30", "30-40", "40-50",
    ]);
    for ds in [Dataset::Gowalla, Dataset::RetailRocket] {
        let split = prepared_split(ds);
        let groups = paper_degree_groups(&split.train);
        println!(
            "\n--- {} (group sizes: {:?}) ---",
            ds.name(),
            groups.iter().map(|g| g.users.len()).collect::<Vec<_>>()
        );
        let item_groups = paper_item_degree_groups(&split.train);
        for name in models {
            let out = run_model(name, &split);
            let mut recalls = Vec::new();
            let mut ndcgs = Vec::new();
            for grp in &groups {
                if grp.users.is_empty() {
                    recalls.push("-".to_string());
                    ndcgs.push("-".to_string());
                    continue;
                }
                let r = evaluate_users(out.model.as_ref(), &split, &grp.users, &[40]);
                recalls.push(fmt4(r.recall(40)));
                ndcgs.push(fmt4(r.ndcg(40)));
            }
            println!("{name:<10} users Recall@40 {recalls:?}");
            println!("{name:<10} users NDCG@40   {ndcgs:?}");
            let mut row_r = vec![
                ds.name().to_string(),
                name.to_string(),
                "user Recall@40".into(),
            ];
            row_r.extend(recalls);
            table.row(&row_r);
            let mut row_n = vec![
                ds.name().to_string(),
                name.to_string(),
                "user NDCG@40".into(),
            ];
            row_n.extend(ndcgs);
            table.row(&row_n);

            // Item-side skew (the second block of the paper's Table V).
            let mut irecalls = Vec::new();
            let mut indcgs = Vec::new();
            for grp in &item_groups {
                if grp.users.is_empty() {
                    irecalls.push("-".to_string());
                    indcgs.push("-".to_string());
                    continue;
                }
                let r = evaluate_item_group(out.model.as_ref(), &split, &grp.users, &[40]);
                irecalls.push(fmt4(r.recall(40)));
                indcgs.push(fmt4(r.ndcg(40)));
            }
            println!("{name:<10} items Recall@40 {irecalls:?}");
            let mut row_ir = vec![
                ds.name().to_string(),
                name.to_string(),
                "item Recall@40".into(),
            ];
            row_ir.extend(irecalls);
            table.row(&row_ir);
            let mut row_in = vec![
                ds.name().to_string(),
                name.to_string(),
                "item NDCG@40".into(),
            ];
            row_in.extend(indcgs);
            table.row(&row_in);
        }
    }
    println!("\n{}", table.render());
    let p = write_csv("table5_skewed", &table);
    println!("written: {}", p.display());
}
