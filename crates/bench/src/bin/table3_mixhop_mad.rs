//! Regenerates paper Table III: MAD ablation of the mixhop encoder on
//! Gowalla (w/ vs w/o mixhop; higher MAD = less oversmoothing).

use graphaug_bench::{banner, prepared_split, run_model, write_csv};
use graphaug_data::Dataset;
use graphaug_eval::{fmt4, mad, TextTable};

fn main() {
    banner("Table III — Ablation study of Mixhop w.r.t. MAD (Gowalla)");
    let split = prepared_split(Dataset::Gowalla);
    let mut table = TextTable::new(&["Variant", "MAD", "Recall@20", "NDCG@20"]);
    for (label, name) in [
        ("w Mixhop", "GraphAug"),
        ("w/o Mixhop", "GraphAug w/o Mixhop"),
    ] {
        let out = run_model(name, &split);
        let emb = out
            .model
            .all_node_embeddings()
            .expect("GraphAug exposes embeddings");
        let m = mad(&emb);
        println!(
            "{label:<12} MAD {:.4}  R@20 {:.4}  N@20 {:.4}",
            m,
            out.result.recall(20),
            out.result.ndcg(20)
        );
        table.row(&[
            label.to_string(),
            format!("{m:.4}"),
            fmt4(out.result.recall(20)),
            fmt4(out.result.ndcg(20)),
        ]);
    }
    println!("\n{}", table.render());
    let p = write_csv("table3_mixhop_mad", &table);
    println!("written: {}", p.display());
}
