//! Regenerates paper Figure 3: robustness to structural noise — relative
//! performance degradation of {GraphAug, NCL, LightGCN} as random fake
//! edges are injected at ratios {0.05 … 0.25} (Gowalla).

use graphaug_bench::{banner, prepared_split, run_model, split_graph, write_csv};
use graphaug_data::Dataset;
use graphaug_eval::TextTable;
use graphaug_graph::inject_fake_edges;

fn main() {
    banner("Figure 3 — Performance degradation vs noise ratio (Gowalla)");
    let clean_split = prepared_split(Dataset::Gowalla);
    let models = ["GraphAug", "NCL", "LightGCN"];
    let ratios = [0.0f64, 0.05, 0.10, 0.15, 0.20, 0.25];
    let mut table = TextTable::new(&[
        "Model",
        "Noise",
        "Recall@20",
        "NDCG@20",
        "Rel Recall drop %",
        "Rel NDCG drop %",
    ]);
    for name in models {
        let mut base: Option<(f64, f64)> = None;
        for &ratio in &ratios {
            // Corrupt only the *training* topology; the clean holdout stays
            // the evaluation target (as in the paper).
            let noisy_train =
                inject_fake_edges(&clean_split.train, ratio, 7 + (ratio * 100.0) as u64);
            let split = graphaug_graph::TrainTestSplit {
                train: noisy_train,
                test: clean_split.test.clone(),
            };
            let _ = split_graph; // the corrupted split is assembled manually
            let out = run_model(name, &split);
            let (r, n) = (out.result.recall(20), out.result.ndcg(20));
            let (r0, n0) = *base.get_or_insert((r, n));
            let rel_r = 100.0 * (r0 - r) / r0.max(1e-12);
            let rel_n = 100.0 * (n0 - n) / n0.max(1e-12);
            println!(
                "{name:<10} noise {ratio:.2}: R@20 {r:.4} ({rel_r:+.1}% drop)  N@20 {n:.4} ({rel_n:+.1}% drop)"
            );
            table.row(&[
                name.to_string(),
                format!("{ratio:.2}"),
                format!("{r:.4}"),
                format!("{n:.4}"),
                format!("{rel_r:.1}"),
                format!("{rel_n:.1}"),
            ]);
        }
    }
    println!("\n{}", table.render());
    let p = write_csv("fig3_noise", &table);
    println!("written: {}", p.display());
}
