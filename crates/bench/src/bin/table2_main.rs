//! Regenerates paper Table II: overall recommendation performance of all
//! 18 baselines + GraphAug on the three datasets
//! (Recall@20/40, NDCG@20/40).

use graphaug_baselines::model_names;
use graphaug_bench::{banner, prepared_split, run_model, selected_datasets, write_csv};
use graphaug_eval::{fmt4, TextTable};

fn main() {
    banner("Table II — Recommendation performance of all compared methods");
    let mut models: Vec<&str> = model_names();
    models.push("GraphAug");
    if let Ok(filter) = std::env::var("GRAPHAUG_MODELS") {
        let wanted: Vec<String> = filter.split(',').map(|s| s.trim().to_string()).collect();
        models.retain(|m| wanted.iter().any(|w| m.eq_ignore_ascii_case(w)));
    }

    let mut table = TextTable::new(&[
        "Dataset",
        "Model",
        "Recall@20",
        "Recall@40",
        "NDCG@20",
        "NDCG@40",
        "train s",
    ]);
    for ds in selected_datasets() {
        let split = prepared_split(ds);
        println!("\n--- {} ---", ds.name());
        for name in &models {
            let out = run_model(name, &split);
            let r = &out.result;
            println!(
                "{:<22} R@20 {:.4}  R@40 {:.4}  N@20 {:.4}  N@40 {:.4}  ({:.1}s)",
                name,
                r.recall(20),
                r.recall(40),
                r.ndcg(20),
                r.ndcg(40),
                out.train_time.as_secs_f64()
            );
            table.row(&[
                ds.name().to_string(),
                name.to_string(),
                fmt4(r.recall(20)),
                fmt4(r.recall(40)),
                fmt4(r.ndcg(20)),
                fmt4(r.ndcg(40)),
                format!("{:.1}", out.train_time.as_secs_f64()),
            ]);
        }
    }
    println!("\n{}", table.render());
    let p = write_csv("table2_main", &table);
    println!("written: {}", p.display());
}
