//! Regenerates paper Table VI: training cost (wall-clock) vs accuracy of
//! the CL-based methods {DGCL, HCCF, NCL, GraphAug} on Gowalla.

use graphaug_bench::{banner, prepared_split, run_model, write_csv};
use graphaug_data::Dataset;
use graphaug_eval::{fmt4, TextTable};

fn main() {
    banner("Table VI — Cost time evaluation (Gowalla)");
    let split = prepared_split(Dataset::Gowalla);
    let mut table = TextTable::new(&["Model", "Time (s)", "Recall@20", "NDCG@20"]);
    for name in ["DGCL", "HCCF", "NCL", "GraphAug"] {
        let out = run_model(name, &split);
        println!(
            "{:<10} {:.1}s  R@20 {:.4}  N@20 {:.4}",
            name,
            out.train_time.as_secs_f64(),
            out.result.recall(20),
            out.result.ndcg(20)
        );
        table.row(&[
            name.to_string(),
            format!("{:.1}", out.train_time.as_secs_f64()),
            fmt4(out.result.recall(20)),
            fmt4(out.result.ndcg(20)),
        ]);
    }
    println!("\n{}", table.render());
    let p = write_csv("table6_cost", &table);
    println!("written: {}", p.display());
}
