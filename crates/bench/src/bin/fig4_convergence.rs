//! Regenerates paper Figure 4: convergence curves (per-epoch Recall@20 /
//! NDCG@20) of the CL methods on Gowalla.

use graphaug_bench::{banner, prepared_split, run_model_with_curve, write_csv};
use graphaug_data::Dataset;
use graphaug_eval::TextTable;

fn main() {
    banner("Figure 4 — Model convergence on Gowalla");
    let split = prepared_split(Dataset::Gowalla);
    let models = ["GraphAug", "NCL", "HCCF", "DGCL", "LightGCN"];
    let mut table = TextTable::new(&["Model", "Epoch", "Recall@20"]);
    for name in models {
        let out = run_model_with_curve(name, &split);
        let best = out.curve.best().unwrap_or((0, 0.0));
        let to90 = out.curve.epochs_to_fraction_of_best(0.9);
        println!(
            "{name:<10} best R@20 {:.4} at epoch {}; reaches 90% of best at epoch {:?}",
            best.1, best.0, to90
        );
        for &(epoch, v) in out.curve.points() {
            table.row(&[name.to_string(), epoch.to_string(), format!("{v:.4}")]);
        }
    }
    println!("\n(curve series written to CSV)");
    let p = write_csv("fig4_convergence", &table);
    println!("written: {}", p.display());
}
