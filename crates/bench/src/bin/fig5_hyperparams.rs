//! Regenerates paper Figure 5: hyperparameter sensitivity of GraphAug on
//! Gowalla — GIB strength β₁, InfoNCE temperature τ, and embedding
//! dimensionality d.

use graphaug_bench::{banner, graphaug_config, prepared_split, write_csv, KS};
use graphaug_core::GraphAug;
use graphaug_data::Dataset;
use graphaug_eval::{evaluate, fmt4, TextTable};

fn main() {
    banner("Figure 5 — Hyperparameter study of GraphAug (Gowalla)");
    let split = prepared_split(Dataset::Gowalla);
    let mut table = TextTable::new(&["Param", "Value", "Recall@20", "NDCG@20"]);

    println!("\n-- GIB strength beta1 --");
    for beta in [1e-6f32, 1e-5, 1e-4, 1e-3] {
        let mut m = GraphAug::new(graphaug_config().beta_gib(beta), &split.train);
        m.fit();
        let r = evaluate(&m, &split, &KS);
        println!(
            "beta1 {beta:.0e}: R@20 {:.4}  N@20 {:.4}",
            r.recall(20),
            r.ndcg(20)
        );
        table.row(&[
            "beta1".into(),
            format!("{beta:.0e}"),
            fmt4(r.recall(20)),
            fmt4(r.ndcg(20)),
        ]);
    }

    println!("\n-- temperature tau --");
    for tau in [0.1f32, 0.3, 0.5, 0.7, 0.9] {
        let mut m = GraphAug::new(graphaug_config().temperature(tau), &split.train);
        m.fit();
        let r = evaluate(&m, &split, &KS);
        println!(
            "tau {tau:.1}: R@20 {:.4}  N@20 {:.4}",
            r.recall(20),
            r.ndcg(20)
        );
        table.row(&[
            "tau".into(),
            format!("{tau:.1}"),
            fmt4(r.recall(20)),
            fmt4(r.ndcg(20)),
        ]);
    }

    println!("\n-- embedding dim d --");
    for d in [8usize, 16, 32, 64] {
        let mut m = GraphAug::new(graphaug_config().embed_dim(d), &split.train);
        m.fit();
        let r = evaluate(&m, &split, &KS);
        println!("d {d}: R@20 {:.4}  N@20 {:.4}", r.recall(20), r.ndcg(20));
        table.row(&[
            "d".into(),
            d.to_string(),
            fmt4(r.recall(20)),
            fmt4(r.ndcg(20)),
        ]);
    }

    println!("\n{}", table.render());
    let p = write_csv("fig5_hyperparams", &table);
    println!("written: {}", p.display());
}
