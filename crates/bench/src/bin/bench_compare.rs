//! Diffs two `BENCH_*.json` trajectory files and fails on regression.
//!
//! Usage:
//!
//! ```text
//! bench_compare <new.json> <baseline.json> [--threshold <pct>] [--warn-only]
//! ```
//!
//! Benchmarks present in both files are compared by `median_ns`; any bench
//! whose new median exceeds the baseline by more than the threshold
//! (default 10%) is a regression and makes the process exit non-zero unless
//! `--warn-only` is given. Benches present in only one file are listed but
//! never fail the run, so suites can grow without breaking the gate.

use std::process::ExitCode;

/// Extracts `(name, median_ns)` pairs from a `graphaug-bench/v1` report
/// with a purpose-built scanner (the workspace has no JSON dependency; the
/// writer in `harness.rs` emits one object per bench).
fn parse_report(text: &str) -> Vec<(String, u128)> {
    let mut out = Vec::new();
    for obj in text.split('{').skip(1) {
        let obj = &obj[..obj.find('}').unwrap_or(obj.len())];
        let name = match extract_str(obj, "\"name\":") {
            Some(n) => n,
            None => continue,
        };
        let median = match extract_num(obj, "\"median_ns\":") {
            Some(m) => m,
            None => continue,
        };
        out.push((name, median));
    }
    out
}

fn extract_str(obj: &str, key: &str) -> Option<String> {
    let rest = &obj[obj.find(key)? + key.len()..];
    let rest = &rest[rest.find('"')? + 1..];
    let mut s = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(s),
            '\\' => s.push(chars.next()?),
            c => s.push(c),
        }
    }
    None
}

fn extract_num(obj: &str, key: &str) -> Option<u128> {
    let rest = obj[obj.find(key)? + key.len()..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn load(path: &str) -> Vec<(String, u128)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench report {path}: {e}"));
    let report = parse_report(&text);
    assert!(!report.is_empty(), "no benchmarks found in {path}");
    report
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut threshold_pct = 10.0f64;
    let mut warn_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold needs a percentage");
            }
            "--warn-only" => warn_only = true,
            _ => files.push(a.clone()),
        }
    }
    if files.len() != 2 {
        eprintln!(
            "usage: bench_compare <new.json> <baseline.json> [--threshold <pct>] [--warn-only]"
        );
        return ExitCode::from(2);
    }
    let new = load(&files[0]);
    let base = load(&files[1]);

    let mut regressions = 0usize;
    println!(
        "{:<42} {:>14} {:>14} {:>9}",
        "benchmark", "baseline", "new", "ratio"
    );
    for (name, new_med) in &new {
        match base.iter().find(|(n, _)| n == name) {
            Some((_, base_med)) => {
                let ratio = *new_med as f64 / (*base_med).max(1) as f64;
                let verdict = if ratio > 1.0 + threshold_pct / 100.0 {
                    regressions += 1;
                    "  REGRESSION"
                } else if ratio < 0.9 {
                    "  improved"
                } else {
                    ""
                };
                println!("{name:<42} {base_med:>12}ns {new_med:>12}ns {ratio:>8.2}x{verdict}");
            }
            None => println!("{name:<42} {:>14} {new_med:>12}ns     (new)", "-"),
        }
    }
    for (name, _) in &base {
        if !new.iter().any(|(n, _)| n == name) {
            println!("{name:<42} (missing from new report)");
        }
    }

    if regressions > 0 {
        eprintln!("{regressions} benchmark(s) regressed by more than {threshold_pct}% on median");
        if !warn_only {
            return ExitCode::FAILURE;
        }
        eprintln!("--warn-only: not failing");
    }
    ExitCode::SUCCESS
}
