//! Regenerates paper Figure 7: embedding-distribution analysis — 2-D PCA
//! projections plus Wang–Isola uniformity and MAD for {LightGCN, NCL,
//! GraphAug} on Gowalla. The PCA scatter coordinates are written to CSV for
//! external plotting (the paper uses UMAP; see DESIGN.md for the
//! substitution rationale).

use graphaug_bench::{banner, prepared_split, results_dir, run_model, write_csv};
use graphaug_data::Dataset;
use graphaug_eval::{mad, pca_2d, uniformity, TextTable};

fn main() {
    banner("Figure 7 — Embedding distribution (Gowalla)");
    let split = prepared_split(Dataset::Gowalla);
    let mut table = TextTable::new(&["Model", "Uniformity (lower=more uniform)", "MAD"]);
    for name in ["LightGCN", "NCL", "GraphAug"] {
        let out = run_model(name, &split);
        let emb = out.model.all_node_embeddings().expect("embedding models");
        let uni = uniformity(&emb, 20_000, 11);
        let m = mad(&emb);
        println!("{name:<10} uniformity {uni:.4}  MAD {m:.4}");
        table.row(&[name.to_string(), format!("{uni:.4}"), format!("{m:.4}")]);

        // User-embedding scatter for plotting.
        let (ue, _) = out.model.embeddings().expect("embedding models");
        let proj = pca_2d(ue, 5);
        let mut csv = String::from("x,y\n");
        for r in 0..proj.rows() {
            csv.push_str(&format!("{},{}\n", proj.get(r, 0), proj.get(r, 1)));
        }
        let path = results_dir().join(format!(
            "fig7_scatter_{}.csv",
            name.to_lowercase().replace(' ', "_")
        ));
        std::fs::write(&path, csv).expect("write scatter");
        println!("  scatter: {}", path.display());
    }
    println!("\n{}", table.render());
    let p = write_csv("fig7_distribution", &table);
    println!("written: {}", p.display());
}
