//! Experiment harness reproducing every table and figure of the GraphAug
//! paper (see DESIGN.md for the per-experiment index).
//!
//! The binaries under `src/bin/` each regenerate one artifact
//! (`table2_main`, `fig3_noise`, …); this library holds the shared runner:
//! dataset preparation, model construction by name (baselines + GraphAug
//! variants), train-and-evaluate plumbing, and CSV emission into
//! `results/`.
//!
//! ## Scaling knobs
//!
//! * `GRAPHAUG_FAST=1` — run every experiment on mini datasets with short
//!   training (smoke-test mode; minutes for the full suite).
//! * `GRAPHAUG_EPOCHS=n` — override the training epoch budget.

pub mod harness;
pub mod perf;

use std::path::PathBuf;
use std::time::{Duration, Instant};

use graphaug_baselines::{build_model, BaselineOpts, Trainable};
use graphaug_core::{EncoderKind, GraphAug, GraphAugConfig};
use graphaug_data::Dataset;
use graphaug_eval::{evaluate, ConvergenceRecorder, EvalResult, Recommender, TextTable};
use graphaug_graph::{InteractionGraph, TrainTestSplit};
use graphaug_tensor::Mat;

/// Fixed split seed so every experiment sees the same holdout.
pub const SPLIT_SEED: u64 = 2024;
/// Held-out fraction per user.
pub const TEST_FRACTION: f64 = 0.2;
/// Table II metric cutoffs.
pub const KS: [usize; 2] = [20, 40];

/// True when `GRAPHAUG_FAST=1` (mini datasets, short training).
pub fn fast_mode() -> bool {
    std::env::var("GRAPHAUG_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The training epoch budget (env-overridable).
pub fn epoch_budget() -> usize {
    if let Ok(v) = std::env::var("GRAPHAUG_EPOCHS") {
        if let Ok(n) = v.parse() {
            return n;
        }
    }
    if fast_mode() {
        8
    } else {
        40
    }
}

/// Loads a dataset preset (mini variant in fast mode) and splits it.
pub fn prepared_split(ds: Dataset) -> TrainTestSplit {
    let g = if fast_mode() {
        ds.load_mini()
    } else {
        ds.load()
    };
    split_graph(&g)
}

/// Splits an explicit graph with the experiment defaults.
pub fn split_graph(g: &InteractionGraph) -> TrainTestSplit {
    TrainTestSplit::per_user(g, TEST_FRACTION, SPLIT_SEED)
}

/// Default GraphAug configuration for the experiments.
pub fn graphaug_config() -> GraphAugConfig {
    GraphAugConfig::new().epochs(epoch_budget())
}

/// Default baseline options for the experiments.
pub fn baseline_opts() -> BaselineOpts {
    BaselineOpts::default().epochs(epoch_budget())
}

/// Builds any model by name: the 18 registry baselines, `"GraphAug"`, or an
/// ablation variant (`"GraphAug w/o Mixhop"`, `"GraphAug w/o GIB"`,
/// `"GraphAug w/o CL"`).
pub fn build_any(name: &str, train: &InteractionGraph) -> Box<dyn Trainable> {
    match name {
        "GraphAug" => Box::new(GraphAug::new(graphaug_config(), train)),
        "GraphAug w/o Mixhop" => Box::new(GraphAug::new(
            graphaug_config().encoder(EncoderKind::Vanilla),
            train,
        )),
        "GraphAug w/o GIB" => Box::new(GraphAug::new(graphaug_config().gib(false), train)),
        "GraphAug w/o CL" => Box::new(GraphAug::new(graphaug_config().cl(false), train)),
        other => build_model(other, baseline_opts(), train),
    }
}

/// Outcome of one train-and-evaluate run.
pub struct RunOutcome {
    /// Final metrics at [`KS`].
    pub result: EvalResult,
    /// Wall-clock training time.
    pub train_time: Duration,
    /// Per-epoch Recall@20 (only populated by [`run_model_with_curve`]).
    pub curve: ConvergenceRecorder,
    /// The trained model (for MAD / uniformity post-analysis).
    pub model: Box<dyn Trainable>,
}

/// Trains `name` on the split and evaluates at [`KS`].
pub fn run_model(name: &str, split: &TrainTestSplit) -> RunOutcome {
    let mut model = build_any(name, &split.train);
    let start = Instant::now();
    model.fit();
    let train_time = start.elapsed();
    let result = evaluate(model.as_ref(), split, &KS);
    RunOutcome {
        result,
        train_time,
        curve: ConvergenceRecorder::new(),
        model,
    }
}

/// An embedding snapshot that scores by dot product — used to evaluate
/// convergence curves mid-training without touching the model.
struct Snapshot {
    u: Mat,
    i: Mat,
}

impl Recommender for Snapshot {
    fn name(&self) -> &str {
        "snapshot"
    }
    fn embeddings(&self) -> Option<(&Mat, &Mat)> {
        Some((&self.u, &self.i))
    }
}

/// Trains `name`, evaluating Recall@20 after **every epoch** (the Fig. 4
/// convergence study — slower than [`run_model`]). Models without embedding
/// snapshots (NCF, AutoRec) yield an empty curve.
pub fn run_model_with_curve(name: &str, split: &TrainTestSplit) -> RunOutcome {
    let mut model = build_any(name, &split.train);
    let mut curve = ConvergenceRecorder::new();
    let split2 = split.clone();
    let start = Instant::now();
    model.fit_with(&mut |epoch, ue, ie| {
        if ue.cols() <= 1 {
            return;
        }
        let snap = Snapshot {
            u: ue.clone(),
            i: ie.clone(),
        };
        let r = evaluate(&snap, &split2, &[20]);
        curve.record(epoch, r.recall(20));
    });
    let train_time = start.elapsed();
    let result = evaluate(model.as_ref(), split, &KS);
    RunOutcome {
        result,
        train_time,
        curve,
        model,
    }
}

/// The `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Writes a table as `results/<name>.csv` and returns the path.
pub fn write_csv(name: &str, table: &TextTable) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv()).expect("write results csv");
    path
}

/// Prints a standard experiment header.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    if fast_mode() {
        println!("(GRAPHAUG_FAST=1: mini datasets, short training — shapes only)");
    }
    println!("{}", "=".repeat(72));
}

/// All dataset presets, honoring a `GRAPHAUG_DATASETS` filter
/// (comma-separated names, e.g. `gowalla,amazon`).
pub fn selected_datasets() -> Vec<Dataset> {
    let all = Dataset::ALL.to_vec();
    match std::env::var("GRAPHAUG_DATASETS") {
        Ok(filter) => {
            let wanted: Vec<String> = filter.split(',').map(|s| s.trim().to_lowercase()).collect();
            all.into_iter()
                .filter(|d| {
                    wanted
                        .iter()
                        .any(|w| d.name().to_lowercase().replace(' ', "").contains(w))
                })
                .collect()
        }
        Err(_) => all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_budget_defaults_are_sane() {
        let e = epoch_budget();
        assert!((1..=10_000).contains(&e));
    }

    #[test]
    fn build_any_accepts_graphaug_variants_and_baselines() {
        let g = graphaug_data::generate(&graphaug_data::SyntheticConfig::new(30, 25, 250).seed(1));
        for name in ["GraphAug", "GraphAug w/o GIB", "LightGCN", "NCL"] {
            let m = build_any(name, &g);
            assert!(!m.score_items(0).is_empty(), "{name}");
        }
    }

    #[test]
    fn results_dir_is_writable() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        let mut t = TextTable::new(&["a"]);
        t.row(&["1".into()]);
        let p = write_csv("harness_selftest", &t);
        assert!(p.exists());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn selected_datasets_defaults_to_all() {
        if std::env::var("GRAPHAUG_DATASETS").is_err() {
            assert_eq!(selected_datasets().len(), 3);
        }
    }
}
