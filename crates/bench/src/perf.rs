//! Benchmark workload definitions, shared between the per-suite bench
//! binaries (`benches/*.rs`) and the combined baseline recorder
//! (`src/bin/bench_baseline.rs`) so the same workload can never drift
//! between a suite run and the trajectory baseline.

use std::hint::black_box;

use graphaug_core::augmentor::{
    edge_logits, sample_view, AugmentorNodes, AugmentorSettings, EdgeIndex,
};
use graphaug_core::mixhop::{encode_mixhop, encode_vanilla, mixing_row_shape};
use graphaug_core::{GraphAug, GraphAugConfig};
use graphaug_data::{generate, SyntheticConfig};
use graphaug_eval::{evaluate, topk_indices};
use graphaug_graph::TripletSampler;
use graphaug_router::{shard_of, spawn_ready, start as start_router, Router, RouterConfig};
use graphaug_runtime::{Checkpointer, RunCompat, Runtime, RuntimeConfig, TrainState};
use graphaug_serve::{
    serve, Engine, IvfIndex, IvfParams, ModelSource, ModelTables, QuantIvf, QuantParams, QuantRows,
    ServeClient,
};
use graphaug_tensor::init::{seeded_rng, xavier_uniform};
use graphaug_tensor::{Graph, Mat, SpPair};

use crate::harness::Harness;
use crate::split_graph;

/// Sparse × dense kernels — the hot inner loop of every GNN
/// forward/backward pass in the workspace.
pub fn spmm(h: &mut Harness) {
    for (label, users, items, inter) in [
        ("small", 200usize, 150usize, 3000usize),
        ("gowalla_scale", 794, 898, 18300),
    ] {
        let g = generate(&SyntheticConfig::new(users, items, inter).seed(1));
        let adj = g.normalized_adjacency_plain();
        let d = 32;
        let dense: Vec<f32> = (0..adj.n_cols() * d)
            .map(|i| (i as f32 * 0.37).sin())
            .collect();
        let mut out = vec![0f32; adj.n_rows() * d];
        let edges = adj.nnz() as f64;
        h.bench_throughput(
            &format!("spmm/csr_x_dense_d32/{label}"),
            edges,
            "Medges/s",
            || {
                adj.spmm_into(black_box(&dense), d, &mut out);
                black_box(&out);
            },
        );
    }
}

/// Dense matmul kernels at the embedding shapes the training loop uses —
/// throughput reported in GFLOP/s (2·n·k·m flops per product).
pub fn matmul(h: &mut Harness) {
    let mut rng = seeded_rng(5);
    for (label, n, k, m) in [
        ("nodes_x_mixing_694x32x32", 694usize, 32usize, 32usize),
        ("edges_x_mlp_8000x64x16", 8000, 64, 16),
    ] {
        let a = xavier_uniform(n, k, &mut rng);
        let b = xavier_uniform(k, m, &mut rng);
        let flops = 2.0 * n as f64 * k as f64 * m as f64;
        let c = a.matmul(&b);
        h.bench_throughput(&format!("matmul/{label}"), flops, "GFLOP/s", || {
            black_box(black_box(&a).matmul(black_box(&b)).as_slice()[0]);
        });
        h.bench_throughput(&format!("matmul_tn/{label}"), flops, "GFLOP/s", || {
            black_box(black_box(&a).matmul_tn(black_box(&c)).as_slice()[0]);
        });
    }
}

/// Mixhop encoder forward pass vs the vanilla-GCN ablation — the ablation
/// bench for the paper's central encoder design choice (Table III).
pub fn mixhop_forward(h: &mut Harness) {
    let g = generate(&SyntheticConfig::new(400, 300, 8000).seed(1));
    let adj = SpPair::symmetric(g.normalized_adjacency_plain());
    let n = g.n_nodes();
    let d = 32;
    let mut rng = seeded_rng(2);
    let h0 = xavier_uniform(n, d, &mut rng);
    let (mr, mc) = mixing_row_shape(3);
    let rows: Vec<_> = (0..2).map(|_| xavier_uniform(mr, mc, &mut rng)).collect();

    h.bench("mixhop_forward_L2_hops012", || {
        let mut tape = Graph::new();
        let hn = tape.constant(h0.clone());
        let ws: Vec<_> = rows.iter().map(|w| tape.constant(w.clone())).collect();
        let out = encode_mixhop(&mut tape, &adj, hn, &ws, &[0, 1, 2]);
        black_box(tape.value(out).as_slice()[0]);
    });
    h.bench("vanilla_forward_L2", || {
        let mut tape = Graph::new();
        let hn = tape.constant(h0.clone());
        let out = encode_vanilla(&mut tape, &adj, hn, 2);
        black_box(tape.value(out).as_slice()[0]);
    });
}

/// BPR triplet-sampling benchmarks — the per-step data path.
pub fn sampling(h: &mut Harness) {
    let g = generate(&SyntheticConfig::new(794, 898, 18300).seed(1));
    let mut s = TripletSampler::new(&g, 7);
    h.bench("bpr_batch_1024", || {
        black_box(s.sample_batch(1024).0.len());
    });
    let mut s = TripletSampler::new(&g, 7);
    h.bench("active_users_256", || {
        black_box(s.sample_active_users(256).len());
    });
}

/// Full GraphAug training-step benchmark: tape build + forward + backward +
/// Adam — the unit of cost behind the paper's Table VI timing comparison.
pub fn autodiff_epoch(h: &mut Harness) {
    let train = generate(&SyntheticConfig::new(300, 250, 6000).seed(1));
    let mut full = GraphAug::new(GraphAugConfig::new().seed(3), &train);
    let mut base = GraphAug::new(GraphAugConfig::new().gib(false).cl(false).seed(3), &train);
    let mut sampler = TripletSampler::new(&train, 5);
    h.bench("graphaug_train_step_full", || {
        black_box(full.train_step(&mut sampler).loss);
    });
    let mut sampler = TripletSampler::new(&train, 5);
    h.bench("graphaug_train_step_bpr_only", || {
        black_box(base.train_step(&mut sampler).loss);
    });
}

/// Top-K selection and full-ranking evaluation benchmarks — the
/// measurement side of every experiment.
pub fn topk_eval(h: &mut Harness) {
    let scores: Vec<f32> = (0..10_000)
        .map(|i| ((i * 2654435761u64 as usize) % 9973) as f32)
        .collect();
    h.bench("topk_40_of_10000", || {
        black_box(topk_indices(black_box(&scores), 40));
    });

    let g = generate(&SyntheticConfig::new(300, 250, 5000).seed(1));
    let split = split_graph(&g);
    let model = GraphAug::new(GraphAugConfig::new().seed(1), &split.train);
    h.bench("full_ranking_eval_300users", || {
        black_box(evaluate(&model, &split, &[20, 40]).n_users);
    });
}

/// Checkpoint path benchmarks: full training-state encode, decode, and the
/// atomic on-disk write+prune cycle — the per-epoch overhead a
/// `graphaug-runtime` run pays for crash safety, at the same model scale as
/// the `autodiff_epoch` training-step bench so the two are directly
/// comparable.
pub fn checkpoint(h: &mut Harness) {
    let train = generate(&SyntheticConfig::new(300, 250, 6000).seed(1));
    let model = GraphAug::new(GraphAugConfig::new().seed(3), &train);
    let state = TrainState {
        compat: RunCompat {
            n_users: train.n_users() as u64,
            n_items: train.n_items() as u64,
            n_edges: train.n_interactions() as u64,
            seed: 3,
            embed_dim: 32,
        },
        epoch: 4,
        lr_scale: 1.0,
        consecutive_bad: 0,
        attempt: 24,
        step_in_epoch: 0,
        log_offset: 0,
        finetunes: 0,
        loss_window: vec![0.45; 8],
        model: model.training_state(),
        sampler: TripletSampler::new(&train, 7).state(),
    };

    let bytes = state.to_bytes();
    let mb = bytes.len() as f64 / 1e6;
    h.bench_throughput("checkpoint_encode_300x250_d32", mb, "MB/s", || {
        black_box(state.to_bytes().len());
    });
    h.bench_throughput("checkpoint_decode_300x250_d32", mb, "MB/s", || {
        black_box(TrainState::from_bytes(black_box(&bytes)).unwrap().epoch);
    });

    let dir = std::env::temp_dir().join(format!("graphaug-bench-ckpt-{}", std::process::id()));
    let mut ckpt = Checkpointer::new(&dir).expect("temp checkpoint dir");
    h.bench_throughput("checkpoint_atomic_write_300x250_d32", mb, "MB/s", || {
        black_box(ckpt.write(&state).unwrap());
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Learnable-augmentor benchmarks: edge scoring (MLP over all train edges)
/// and reparameterized view sampling — the cost GraphAug adds over plain
/// GCL, and the subject of the differentiable-sampling design choice in
/// DESIGN.md.
pub fn augmentor(h: &mut Harness) {
    let train = generate(&SyntheticConfig::new(400, 300, 8000).seed(1));
    let idx = EdgeIndex::build(&train);
    let d = 32;
    let hidden = 16;
    let mut rng = seeded_rng(2);
    let h_bar = xavier_uniform(train.n_nodes(), d, &mut rng);
    let w1 = xavier_uniform(2 * d, hidden, &mut rng);
    let w2 = xavier_uniform(hidden, 1, &mut rng);
    let settings = AugmentorSettings {
        gumbel_temperature: 0.5,
        edge_threshold: 0.2,
        feature_keep_prob: 0.9,
        feature_noise_std: 0.1,
        leaky_slope: 0.5,
    };

    h.bench("edge_logits_8k_edges", || {
        let mut g = Graph::new();
        let hb = g.constant(h_bar.clone());
        let mlp = AugmentorNodes {
            w1: g.constant(w1.clone()),
            b1: g.constant(Mat::zeros(1, hidden)),
            w2: g.constant(w2.clone()),
            b2: g.constant(Mat::zeros(1, 1)),
        };
        let mut r = seeded_rng(3);
        let l = edge_logits(&mut g, hb, &idx, &mlp, &settings, &mut r);
        black_box(g.value(l).as_slice()[0]);
    });

    let mut g = Graph::new();
    let hb = g.constant(h_bar.clone());
    let mlp = AugmentorNodes {
        w1: g.constant(w1.clone()),
        b1: g.constant(Mat::zeros(1, hidden)),
        w2: g.constant(w2.clone()),
        b2: g.constant(Mat::zeros(1, 1)),
    };
    let mut r = seeded_rng(3);
    let logits = edge_logits(&mut g, hb, &idx, &mlp, &settings, &mut r);
    // Rewind the tape each draw — otherwise the warmup window alone grows
    // the tape by hundreds of live view buffers and the bench measures
    // allocator pressure instead of sampling cost.
    let base_len = g.len();
    h.bench("sample_view_8k_edges", || {
        g.truncate(base_len);
        let v = sample_view(&mut g, logits, &idx, &settings, &mut r);
        black_box(v.kept_fraction);
    });
}

/// Online-serving benchmarks: uncached top-K scoring, the cache-hit fast
/// path, batched fan-out through the engine, and the full table rebuild a
/// hot reload pays (checkpoint decode + one encoder forward) — the latency
/// ceiling of a generation swap. Same 300×250 model scale as the
/// `checkpoint` suite so rebuild cost reads against encode/decode cost.
pub fn serving(h: &mut Harness) {
    let train = generate(&SyntheticConfig::new(300, 250, 6000).seed(1));
    let cfg = GraphAugConfig::new().seed(3);
    let model = GraphAug::new(cfg.clone(), &train);
    let state = TrainState {
        compat: RunCompat {
            n_users: train.n_users() as u64,
            n_items: train.n_items() as u64,
            n_edges: train.n_interactions() as u64,
            seed: 3,
            embed_dim: 32,
        },
        epoch: 4,
        lr_scale: 1.0,
        consecutive_bad: 0,
        attempt: 24,
        step_in_epoch: 0,
        log_offset: 0,
        finetunes: 0,
        loss_window: vec![0.45; 8],
        model: model.training_state(),
        sampler: TripletSampler::new(&train, 7).state(),
    };

    let dir = std::env::temp_dir().join(format!("graphaug-bench-serve-{}", std::process::id()));
    let mut ckpt = Checkpointer::new(&dir).expect("temp checkpoint dir");
    ckpt.write(&state).expect("write bench checkpoint");
    let source = ModelSource::new(cfg, train.clone(), &dir);
    // In serving the fingerprint is read off the frame header at load
    // time; precomputing it here keeps the bench measuring the rebuild.
    let fingerprint = state.fingerprint();

    // Hot-reload latency: decode-independent part of a generation swap —
    // restore the state and run the encoder forward once.
    h.bench("serving_table_rebuild_300x250_d32", || {
        black_box(
            ModelTables::build(&source, 1, &state, fingerprint)
                .unwrap()
                .n_users(),
        );
    });

    // Uncached scoring path: score all items, mask seen, bounded-heap
    // top-20 — one list per call, cycling through every user.
    let tables = ModelTables::build(&source, 1, &state, fingerprint).unwrap();
    let n_users = train.n_users() as u32;
    let mut user = 0u32;
    h.bench("serving_topk20_uncached_300x250", || {
        black_box(tables.top_k(user, 20).unwrap().len());
        user = (user + 1) % n_users;
    });

    // Cache-hit fast path: same request every call.
    let engine = Engine::open(source.clone()).expect("open bench engine");
    engine.recommend(0, 20).expect("prime the cache");
    h.bench("serving_recommend_cached", || {
        black_box(engine.recommend(0, 20).unwrap().items.len());
    });

    // Batched fan-out with a capacity-1 cache, so every request in every
    // batch takes the parallel compute path.
    let cold = Engine::open_with_cache(source, 1).expect("open uncached engine");
    let requests: Vec<(u32, usize)> = (0..n_users).map(|u| (u, 20)).collect();
    h.bench_throughput(
        "serving_batch_300users_uncached",
        n_users as f64,
        "lists/s",
        || {
            black_box(cold.recommend_batch(black_box(&requests)).len());
        },
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// IVF ANN benchmarks: index build (the cost a hot reload adds per
/// generation swap), ANN vs exact uncached top-20 at 10k- and 100k-item
/// catalogs, and a batched fan-out through the engine's ANN path. The
/// catalogs are clustered mixtures of Gaussians — the embedding geometry a
/// trained recommender produces — and the build-time recall@20 estimate of
/// each index is recorded as a `metric` line so BENCH_pr7.json carries the
/// quality alongside the speedup.
pub fn ann(h: &mut Harness) {
    /// `n` points around `k` shared Gaussian centers in `dim` dims.
    fn clustered(n: usize, k: usize, dim: usize, seed: u64) -> Mat {
        let mut rng = seeded_rng(seed);
        let mut centers = vec![0f32; k * dim];
        rng.fill_normal_f32(&mut centers, 4.0);
        Mat::from_fn(n, dim, |r, c| {
            centers[(r % k) * dim + c] + rng.normal_f32() * 0.1
        })
    }

    let n_users = 256usize;
    let d = 32usize;
    // nprobe per scale: 100k keeps the auto choice (39 of 316 lists,
    // recall@20 = 0.97 on this catalog); 10k needs 25 of 100 lists to clear
    // the 0.9 floor (the auto 12 lands at 0.89 — small catalogs fragment
    // true clusters across proportionally more lists).
    for (label, n_items, centers, nprobe) in [
        ("10k", 10_000usize, 64usize, 25usize),
        ("100k", 100_000, 256, 0),
    ] {
        // Users and items share the center set (seed encodes the scale so
        // the 10k and 100k catalogs are independent draws), so each user's
        // true top-20 concentrates in a handful of lists — the geometry the
        // probe search exploits.
        let item_emb = clustered(n_items, centers, d, 11 + n_items as u64);
        let user_emb = clustered(n_users, centers, d, 13 + n_items as u64);
        let graph = generate(&SyntheticConfig::new(n_users, n_items, 4 * n_users).seed(1));
        let params = IvfParams::new().nprobe(nprobe);

        // Index build — this is the extra latency a checkpoint reload pays
        // before the table swap, so it reads against
        // `serving_table_rebuild_*`.
        h.bench(&format!("ann_build_{label}_d32"), || {
            black_box(IvfIndex::build(black_box(&item_emb), &params).len());
        });

        let tables = ModelTables::from_embeddings(
            user_emb.clone(),
            item_emb.clone(),
            graph.clone(),
            1,
            Some(&params),
            None,
        );
        let ann = tables.ann().expect("index built");
        assert!(
            ann.enabled(),
            "bench catalog {label} must clear the recall floor \
             (recall={})",
            ann.build_recall()
        );
        h.metric(&format!("ann_recall20_{label}"), ann.build_recall() as f64);

        // Uncached top-20, one list per call, cycling users: the ANN probe
        // path vs the exact full-catalog scorer on identical tables.
        let mut user = 0u32;
        h.bench(&format!("ann_topk20_uncached_{label}_d32"), || {
            black_box(tables.top_k_ann(user, 20).unwrap().0.len());
            user = (user + 1) % n_users as u32;
        });
        let exact = ModelTables::from_embeddings(user_emb, item_emb, graph, 1, None, None);
        let mut user = 0u32;
        h.bench(&format!("exact_topk20_uncached_{label}_d32"), || {
            black_box(exact.top_k(user, 20).unwrap().len());
            user = (user + 1) % n_users as u32;
        });
    }

    // Batched fan-out through the engine's ANN path: every request in a
    // 256-user batch takes the parallel compute path (capacity-1 cache), at
    // the 10k catalog scale. The floor is dropped to zero because this
    // engine's encoder-derived embeddings measure throughput, not quality —
    // the recall record above comes from the clustered tables.
    let train = generate(&SyntheticConfig::new(n_users, 10_000, 4 * n_users).seed(1));
    let cfg = GraphAugConfig::new().seed(3);
    let model = GraphAug::new(cfg.clone(), &train);
    let state = TrainState {
        compat: RunCompat {
            n_users: train.n_users() as u64,
            n_items: train.n_items() as u64,
            n_edges: train.n_interactions() as u64,
            seed: 3,
            embed_dim: 32,
        },
        epoch: 4,
        lr_scale: 1.0,
        consecutive_bad: 0,
        attempt: 24,
        step_in_epoch: 0,
        log_offset: 0,
        finetunes: 0,
        loss_window: vec![0.45; 8],
        model: model.training_state(),
        sampler: TripletSampler::new(&train, 7).state(),
    };
    let dir = std::env::temp_dir().join(format!("graphaug-bench-ann-{}", std::process::id()));
    let mut ckpt = Checkpointer::new(&dir).expect("temp checkpoint dir");
    ckpt.write(&state).expect("write bench checkpoint");
    let source = ModelSource::new(cfg, train.clone(), &dir)
        .ann(IvfParams::new().recall_floor(0.0).audit_every(0));
    let engine =
        Engine::open_preloaded(source, 1, &state, state.fingerprint(), 1).expect("open ann engine");
    assert!(engine.tables().ann().expect("index built").enabled());
    let requests: Vec<(u32, usize)> = (0..n_users as u32).map(|u| (u, 20)).collect();
    h.bench_throughput(
        "ann_batch_256users_10k_uncached",
        n_users as f64,
        "lists/s",
        || {
            black_box(engine.recommend_batch(black_box(&requests)).len());
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Int8 quantization benchmarks: the raw `dot8_i8` kernel against its f32
/// counterpart, quantized-IVF build cost (what a hot reload adds on top of
/// the f32 index), and the quantized uncached top-20 at the same 100k-item
/// d32 catalog the `ann` suite measures — so `quant_rec_uncached_100k`
/// reads directly against `ann_topk20_uncached_100k_d32`. The resident
/// footprint of both table representations and the sampled drift
/// recall@20 are recorded as `metric` lines alongside the timings.
pub fn quant(h: &mut Harness) {
    /// Clustered mixture-of-Gaussians, same construction and seeds as the
    /// `ann` suite but with σ=1.0 intra-cluster spread instead of 0.1: the
    /// ann catalog packs items tighter than int8 resolution (adjacent
    /// scores differ by less than half a quantization step, so their order
    /// is undefined under any int8 scheme), while at σ=1.0 the top-20 is
    /// rank-stable and the drift gate measures the scheme rather than the
    /// catalog's ties. List sizes (and therefore probed-candidate counts
    /// and timings) are unchanged — items are center-assigned `r % k`
    /// either way — so `quant_rec_uncached_100k` still reads directly
    /// against `ann_topk20_uncached_100k_d32`.
    fn clustered(n: usize, k: usize, dim: usize, seed: u64) -> Mat {
        let mut rng = seeded_rng(seed);
        let mut centers = vec![0f32; k * dim];
        rng.fill_normal_f32(&mut centers, 4.0);
        Mat::from_fn(n, dim, |r, c| {
            centers[(r % k) * dim + c] + rng.normal_f32() * 1.0
        })
    }

    // Raw kernel: one 4096-wide int8 dot (128 I8x32 blocks) vs the f32
    // kernel on the same data, dequantized.
    let n = 4096usize;
    let mut rng = seeded_rng(17);
    let mut fa = vec![0f32; n];
    let mut fb = vec![0f32; n];
    rng.fill_normal_f32(&mut fa, 1.0);
    rng.fill_normal_f32(&mut fb, 1.0);
    let qa: Vec<i8> = fa
        .iter()
        .map(|&v| (v * 40.0).clamp(-127.0, 127.0) as i8)
        .collect();
    let qb: Vec<i8> = fb
        .iter()
        .map(|&v| (v * 40.0).clamp(-127.0, 127.0) as i8)
        .collect();
    h.bench("quant_dot", || {
        black_box(graphaug_par::dot8_i8(black_box(&qa), black_box(&qb)));
    });
    h.bench("f32_dot_4096", || {
        black_box(graphaug_par::dot8(black_box(&fa), black_box(&fb)));
    });

    // 100k-item d32 catalog, identical to the `ann` suite's 100k scale.
    let n_users = 256usize;
    let (d, n_items, centers) = (32usize, 100_000usize, 256usize);
    let item_emb = clustered(n_items, centers, d, 11 + n_items as u64);
    let user_emb = clustered(n_users, centers, d, 13 + n_items as u64);
    let graph = generate(&SyntheticConfig::new(n_users, n_items, 4 * n_users).seed(1));
    let ivf_params = IvfParams::new();
    let quant_params = QuantParams::new();

    // Quantized index build — the incremental reload cost of the int8 path.
    let item_q = QuantRows::quantize(&item_emb);
    h.bench("quant_ivf_build", || {
        black_box(QuantIvf::build(black_box(&item_q), &ivf_params).nlists());
    });

    let tables = ModelTables::from_embeddings(
        user_emb,
        item_emb,
        graph,
        1,
        Some(&ivf_params),
        Some(&quant_params),
    );
    let qb = tables.quant().expect("quant tables built");
    assert!(
        qb.enabled(),
        "bench catalog must clear the drift floor (drift={})",
        qb.build_drift()
    );
    h.metric("quant_drift20_100k", qb.build_drift());
    h.metric("quant_table_bytes_100k", qb.table_bytes() as f64);
    h.metric("f32_table_bytes_100k", tables.table_bytes_f32() as f64);

    // Uncached quantized top-20, cycling users — the direct competitor of
    // `ann_topk20_uncached_100k_d32` on the identical catalog.
    let mut user = 0u32;
    h.bench("quant_rec_uncached_100k", || {
        black_box(tables.top_k_quant(user, 20).unwrap().0.len());
        user = (user + 1) % n_users as u32;
    });
}

/// Streaming-ingestion benchmarks: the three costs of the online-learning
/// loop, at the same 300×250 model scale as the `checkpoint`/`serving`
/// suites so they read against the batch-training numbers.
///
/// * `ingest_append` — one durable log append: a 16-byte checksummed
///   record plus the per-record fsync (the latency a `PUT` pays before
///   its `OK`);
/// * `apply_deltas` — merging a 256-record window onto the base graph
///   with dedup and re-validation (the graph-side cost of one round);
/// * `finetune_step` — one warm-start fine-tune round (a guarded extra
///   epoch continuing the persisted sampler stream, plus the checkpoint
///   publish), reported per training step.
pub fn ingest(h: &mut Harness) {
    use graphaug_ingest::{apply_deltas, LogWriter};

    let record = |k: u64| (((k * 7 + 3) % 300) as u32, ((k * 11 + 5) % 250) as u32);

    // Durable append: fsync dominates — this is the floor of the PUT path.
    let log_dir =
        std::env::temp_dir().join(format!("graphaug-bench-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&log_dir);
    {
        let mut writer = LogWriter::open(&log_dir, 1 << 20).expect("open bench log");
        let mut k = 0u64;
        h.bench_throughput("ingest_append", 1.0, "records/s", || {
            let (u, i) = record(k);
            black_box(writer.append(u, i).unwrap());
            k += 1;
        });
    }
    let _ = std::fs::remove_dir_all(&log_dir);

    // Delta application: one complete window onto the serving-scale graph.
    let base = generate(&SyntheticConfig::new(300, 250, 6000).seed(1));
    let window: Vec<(u32, u32)> = (6000..6256).map(record).collect();
    h.bench_throughput("apply_deltas", window.len() as f64, "records/s", || {
        black_box(
            apply_deltas(black_box(&base), black_box(&window))
                .unwrap()
                .applied,
        );
    });

    // One full fine-tune round on a warm 300×250 runtime. Each call trains
    // `steps_per_epoch` guarded steps and publishes a checkpoint
    // generation (keep-2 pruning bounds the directory), so the per-step
    // rate includes the publish overhead a live round actually pays.
    let steps = 8usize;
    let cfg = GraphAugConfig::new()
        .seed(3)
        .epochs(2)
        .steps_per_epoch(steps);
    let ckpt_dir =
        std::env::temp_dir().join(format!("graphaug-bench-finetune-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mut rt = Runtime::new(RuntimeConfig::new(cfg).checkpoint_dir(&ckpt_dir), &base)
        .expect("open bench runtime");
    rt.run().expect("warm-start base training");
    h.bench_throughput("finetune_step", steps as f64, "steps/s", || {
        black_box(rt.fine_tune_round().unwrap().epochs_completed);
    });
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

/// Shard-router benchmarks: the pure hash, a routed single-user `REC`
/// through a real TCP router in front of three in-process replicas, the
/// cross-shard fan-out of a 64-user batch, and the fast-fail path for a
/// down shard (which must cost no network round-trip at all). Same
/// 300×250 model scale as the `serving` suite so the routing overhead
/// reads directly against the raw engine latency measured there.
pub fn router(h: &mut Harness) {
    // The hash itself: pure arithmetic, the per-user routing overhead.
    let mut user = 0u32;
    h.bench_throughput("router_shard_hash", 1.0, "Musers/s", || {
        for _ in 0..1_000_000u32 {
            black_box(shard_of(black_box(user), 3));
            user = user.wrapping_add(1);
        }
    });

    let train = generate(&SyntheticConfig::new(300, 250, 6000).seed(1));
    let cfg = GraphAugConfig::new().seed(3);
    let model = GraphAug::new(cfg.clone(), &train);
    let state = TrainState {
        compat: RunCompat {
            n_users: train.n_users() as u64,
            n_items: train.n_items() as u64,
            n_edges: train.n_interactions() as u64,
            seed: 3,
            embed_dim: 32,
        },
        epoch: 4,
        lr_scale: 1.0,
        consecutive_bad: 0,
        attempt: 24,
        step_in_epoch: 0,
        log_offset: 0,
        finetunes: 0,
        loss_window: vec![0.45; 8],
        model: model.training_state(),
        sampler: TripletSampler::new(&train, 7).state(),
    };
    let dir = std::env::temp_dir().join(format!("graphaug-bench-router-{}", std::process::id()));
    let mut ckpt = Checkpointer::new(&dir).expect("temp checkpoint dir");
    ckpt.write(&state).expect("write bench checkpoint");

    // Three replicas over the same checkpoint, each on an ephemeral port.
    let source = ModelSource::new(cfg, train.clone(), &dir);
    let replicas: Vec<_> = (0..3)
        .map(|_| {
            let engine = std::sync::Arc::new(Engine::open(source.clone()).expect("open replica"));
            serve(engine, "127.0.0.1:0").expect("serve replica")
        })
        .collect();
    let addrs: Vec<String> = replicas.iter().map(|r| r.addr().to_string()).collect();
    let router = Router::new(RouterConfig::new(addrs.clone()));
    let handle = start_router(router.clone(), "127.0.0.1:0").expect("start router");
    let mut client = ServeClient::connect(&handle.addr().to_string()).expect("connect router");

    // Routed single-user REC: hash + relay + one replica round-trip (the
    // cache-hit path on the replica side, so the router overhead
    // dominates).
    let n_users = train.n_users() as u32;
    let mut u = 0u32;
    h.bench("router_rec_one_routed", || {
        black_box(client.rec_one(u, 20).expect("routed REC").len());
        u = (u + 1) % n_users;
    });

    // Cross-shard fan-out: one 64-user batch spanning all three shards,
    // answered in request order.
    let batch: Vec<String> = (0..64u32).map(|x| x.to_string()).collect();
    let line = format!("REC {} 20", batch.join(","));
    h.bench_throughput("router_rec_batch64_fanout", 64.0, "lists/s", || {
        black_box(client.request_lines(&line, 64).expect("routed batch").len());
    });

    // Failover path: a one-shard replica set whose primary is a dead
    // loopback port (marked down, so no network is wasted on it) and
    // whose secondary is a live replica. Every routed request walks the
    // failover order and is answered by the secondary — the steady-state
    // cost of serving through a dead primary.
    {
        let sets = vec![vec!["127.0.0.1:9".to_string(), addrs[1].clone()]];
        let fo_router = Router::new(RouterConfig::from_sets(sets));
        fo_router.health().force_down(0, 0);
        let fo_handle = start_router(fo_router.clone(), "127.0.0.1:0").expect("start router");
        let mut fo_client =
            ServeClient::connect(&fo_handle.addr().to_string()).expect("connect router");
        let mut u = 0u32;
        h.bench("router_rec_failover_deadprimary", || {
            black_box(fo_client.rec_one(u, 20).expect("failover REC").len());
            u = (u + 1) % n_users;
        });
        assert!(
            fo_router.failover_count() > 0,
            "failover bench must be served by the secondary"
        );
        fo_client.quit();
        fo_handle.stop();
    }

    // Down-shard fast-fail: a typed ERR with no network round-trip — this
    // is the property that keeps a dead replica from dragging tail
    // latency for everyone else. Stop the replica first so the prober
    // agrees it is dead (fresh connections are refused).
    let mut replicas = replicas;
    replicas.remove(0).stop();
    router.health().force_down(0, 0);
    let down_user = (0..n_users)
        .find(|&x| shard_of(x, 3) == 0)
        .expect("some user maps to shard 0");
    h.bench("router_rec_downshard_fastfail", || {
        black_box(client.rec_one(down_user, 20).expect("fast-fail ERR").len());
    });

    client.quit();
    handle.stop();
    for r in replicas {
        r.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Supervisor respawn-to-READY wall clock: spawn the protocol-faithful
    // mock replica and wait for its READY line — the dominant term of the
    // supervisor's recovery path (process spawn + bind + announce),
    // measured without checkpoint-loading noise. Skipped (loudly) when
    // the mock_replica binary is not next to this one.
    match mock_replica_path() {
        Some(mock) => {
            let argv = vec![mock];
            h.bench("supervisor_spawn_ready_mock", || {
                let (child, addr) = spawn_ready(&argv, std::time::Duration::from_secs(30))
                    .expect("mock replica READY");
                black_box(addr.len());
                drop(child); // kill + reap
            });
        }
        None => eprintln!(
            "perf: mock_replica binary not found next to {:?}; \
             skipping supervisor_spawn_ready_mock",
            std::env::current_exe().ok()
        ),
    }
}

/// The `mock_replica` binary built alongside this one, if present
/// (`target/<profile>/` for bin runs, one level up for `deps/` test bins).
fn mock_replica_path() -> Option<String> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for cand in [dir.join("mock_replica"), dir.parent()?.join("mock_replica")] {
        if cand.is_file() {
            return Some(cand.to_string_lossy().into_owned());
        }
    }
    None
}
