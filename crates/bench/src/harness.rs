//! A lightweight wall-clock benchmark harness (the workspace's `criterion`
//! replacement).
//!
//! Each benchmark runs a warmup window followed by `N` timed samples; very
//! fast closures are batched so a sample never measures below timer
//! granularity. Results print as a table and serialize into the
//! `BENCH_*.json` trajectory format consumed by cross-PR perf comparisons:
//!
//! ```json
//! {
//!   "schema": "graphaug-bench/v1",
//!   "suite": "spmm",
//!   "benches": [
//!     { "name": "spmm/csr_x_dense_d32/small", "iters": 30, "batch": 1,
//!       "min_ns": 1, "median_ns": 2, "p95_ns": 3, "max_ns": 4, "mean_ns": 2 }
//!   ]
//! }
//! ```
//!
//! Environment knobs:
//!
//! * `GRAPHAUG_BENCH_OUT` — write the JSON to this path (default
//!   `BENCH_<suite>.json` in the current directory).
//! * `GRAPHAUG_BENCH_ITERS` — timed samples per benchmark (default 30).
//! * `GRAPHAUG_BENCH_WARMUP_MS` — warmup window per benchmark (default 300).
//! * `GRAPHAUG_BENCH_MAX_MS` — per-benchmark measurement budget (default
//!   2000); sampling stops early once spent.

use std::time::{Duration, Instant};

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id (`suite/function/params`).
    pub name: String,
    /// Number of timed samples taken.
    pub iters: usize,
    /// Closure invocations per sample (auto-calibrated for fast closures).
    pub batch: usize,
    /// Fastest sample.
    pub min_ns: u128,
    /// Median sample — the headline number for trajectory comparisons.
    pub median_ns: u128,
    /// 95th-percentile sample (tail noise indicator).
    pub p95_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Mean over all samples.
    pub mean_ns: u128,
    /// Optional derived throughput: `(units_per_second, unit_label)`, from
    /// the declared work per iteration and the median sample (e.g.
    /// `GFLOP/s` for matmul, `Medges/s` for SpMM).
    pub throughput: Option<(f64, String)>,
}

/// A benchmark suite accumulating [`BenchResult`]s plus free-form scalar
/// metrics (quality numbers like sampled recall that ride along with the
/// timings).
pub struct Harness {
    suite: String,
    results: Vec<BenchResult>,
    /// `(name, value)` quality metrics; serialized into a separate
    /// `"metrics"` JSON section that the trajectory comparator ignores
    /// (its scanner only picks up objects carrying `median_ns`), so a
    /// recall value can never be misread as a regressed timing.
    metrics: Vec<(String, f64)>,
    warmup: Duration,
    samples: usize,
    max_time: Duration,
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Harness {
    /// Creates a suite, reading iteration/warmup budgets from the
    /// environment (see module docs).
    pub fn new(suite: &str) -> Self {
        Harness {
            suite: suite.to_string(),
            results: Vec::new(),
            metrics: Vec::new(),
            warmup: Duration::from_millis(env_u64("GRAPHAUG_BENCH_WARMUP_MS", 300)),
            samples: env_u64("GRAPHAUG_BENCH_ITERS", 30) as usize,
            max_time: Duration::from_millis(env_u64("GRAPHAUG_BENCH_MAX_MS", 2000)),
        }
    }

    /// Times `f`: warmup until the warmup window is spent, calibrate a batch
    /// size so one sample is ≥ ~20 µs, then record up to the configured
    /// number of samples within the measurement budget.
    pub fn bench(&mut self, name: &str, f: impl FnMut()) {
        self.bench_inner(name, None, f);
    }

    /// Like [`Harness::bench`], but also records throughput: `work` is the
    /// amount of work one closure call performs (e.g. FLOPs or edges) and
    /// `unit` labels the per-second rate derived from the median sample
    /// (`"GFLOP/s"` ⇒ `work / 1e9 / median_seconds`, `"Medges/s"` ⇒
    /// `work / 1e6 / median_seconds`, anything else ⇒ `work /
    /// median_seconds`).
    pub fn bench_throughput(&mut self, name: &str, work: f64, unit: &str, f: impl FnMut()) {
        self.bench_inner(name, Some((work, unit.to_string())), f);
    }

    fn bench_inner(&mut self, name: &str, work: Option<(f64, String)>, mut f: impl FnMut()) {
        // Warmup (also primes caches/allocator) while estimating cost.
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < self.warmup || warm_calls == 0 {
            f();
            warm_calls += 1;
        }
        let est_per_call = warm_start.elapsed().as_nanos() / warm_calls as u128;
        // One sample should dominate timer granularity.
        let batch = (20_000 / est_per_call.max(1)).clamp(1, 1_000_000) as usize;

        let mut samples_ns: Vec<u128> = Vec::with_capacity(self.samples);
        let run_start = Instant::now();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            samples_ns.push(t.elapsed().as_nanos() / batch as u128);
            if run_start.elapsed() > self.max_time {
                break;
            }
        }
        samples_ns.sort_unstable();
        let n = samples_ns.len();
        let median_ns = samples_ns[n / 2];
        let throughput = work.map(|(w, unit)| {
            let per_sec = w / (median_ns.max(1) as f64 * 1e-9);
            let scaled = match unit.as_str() {
                "GFLOP/s" => per_sec / 1e9,
                "Medges/s" => per_sec / 1e6,
                _ => per_sec,
            };
            (scaled, unit)
        });
        let result = BenchResult {
            name: name.to_string(),
            iters: n,
            batch,
            min_ns: samples_ns[0],
            median_ns,
            p95_ns: samples_ns[(n * 95 / 100).min(n - 1)],
            max_ns: samples_ns[n - 1],
            mean_ns: samples_ns.iter().sum::<u128>() / n as u128,
            throughput,
        };
        let rate = match &result.throughput {
            Some((v, u)) => format!("  {v:>8.2} {u}"),
            None => String::new(),
        };
        println!(
            "{:<40} median {:>12}  p95 {:>12}  ({} samples × {}){}",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            result.iters,
            result.batch,
            rate
        );
        self.results.push(result);
    }

    /// Records a scalar quality metric (e.g. `ann_recall20_100k`). Printed
    /// with the timings and serialized under `"metrics"` — deliberately
    /// *outside* the `"benches"` array, so `bench_compare`'s
    /// `median_ns`-keyed scanner never treats it as a timing.
    pub fn metric(&mut self, name: &str, value: f64) {
        println!("{name:<40} metric {value:>14.6}");
        self.metrics.push((name.to_string(), value));
    }

    /// Renders the suite as `BENCH_*.json` trajectory JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"graphaug-bench/v1\",\n");
        out.push_str(&format!(
            "  \"suite\": {},\n  \"benches\": [\n",
            json_str(&self.suite)
        ));
        for (i, r) in self.results.iter().enumerate() {
            let rate = match &r.throughput {
                Some((v, u)) => {
                    format!(
                        ", \"throughput\": {:.3}, \"throughput_unit\": {}",
                        v,
                        json_str(u)
                    )
                }
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{ \"name\": {}, \"iters\": {}, \"batch\": {}, \"min_ns\": {}, \
                 \"median_ns\": {}, \"p95_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}{} }}{}\n",
                json_str(&r.name),
                r.iters,
                r.batch,
                r.min_ns,
                r.median_ns,
                r.p95_ns,
                r.max_ns,
                r.mean_ns,
                rate,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]");
        if !self.metrics.is_empty() {
            out.push_str(",\n  \"metrics\": [\n");
            for (i, (name, value)) in self.metrics.iter().enumerate() {
                out.push_str(&format!(
                    "    {{ \"name\": {}, \"value\": {value:.6} }}{}\n",
                    json_str(name),
                    if i + 1 == self.metrics.len() { "" } else { "," }
                ));
            }
            out.push_str("  ]");
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes the JSON report (`GRAPHAUG_BENCH_OUT` or
    /// `BENCH_<suite>.json`) and prints its destination.
    pub fn finish(self) {
        let path = std::env::var("GRAPHAUG_BENCH_OUT")
            .unwrap_or_else(|_| format!("BENCH_{}.json", self.suite));
        std::fs::write(&path, self.to_json())
            .unwrap_or_else(|e| panic!("cannot write bench report {path}: {e}"));
        println!("bench report: {path}");
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_ordered_stats_and_json() {
        // Keep the budget tiny so the unit test stays fast.
        std::env::set_var("GRAPHAUG_BENCH_WARMUP_MS", "1");
        std::env::set_var("GRAPHAUG_BENCH_ITERS", "5");
        std::env::set_var("GRAPHAUG_BENCH_MAX_MS", "200");
        let mut h = Harness::new("unit");
        let mut acc = 0u64;
        h.bench("noop_accumulate", || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        std::env::remove_var("GRAPHAUG_BENCH_WARMUP_MS");
        std::env::remove_var("GRAPHAUG_BENCH_ITERS");
        std::env::remove_var("GRAPHAUG_BENCH_MAX_MS");
        let r = &h.results[0];
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns && r.p95_ns <= r.max_ns);
        assert!(r.iters >= 1 && r.batch >= 1);
        let json = h.to_json();
        assert!(json.contains("\"graphaug-bench/v1\""));
        assert!(json.contains("\"noop_accumulate\""));
        assert!(json.contains("\"median_ns\""));
    }

    #[test]
    fn metrics_serialize_outside_the_benches_array() {
        let mut h = Harness::new("unit");
        h.metric("ann_recall20_100k", 0.9731);
        let json = h.to_json();
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"ann_recall20_100k\", \"value\": 0.973100"));
        // The comparator's scanner keys on `median_ns` per object; a metric
        // object must never carry it (that would turn recall into a fake
        // timing in cross-PR comparisons).
        let metric_obj = json
            .split('{')
            .find(|o| o.contains("ann_recall20_100k"))
            .unwrap();
        assert!(!metric_obj.contains("median_ns"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn throughput_is_derived_from_median() {
        std::env::set_var("GRAPHAUG_BENCH_WARMUP_MS", "1");
        std::env::set_var("GRAPHAUG_BENCH_ITERS", "5");
        std::env::set_var("GRAPHAUG_BENCH_MAX_MS", "200");
        let mut h = Harness::new("unit");
        h.bench_throughput("spin", 1_000_000.0, "Medges/s", || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        std::env::remove_var("GRAPHAUG_BENCH_WARMUP_MS");
        std::env::remove_var("GRAPHAUG_BENCH_ITERS");
        std::env::remove_var("GRAPHAUG_BENCH_MAX_MS");
        let r = &h.results[0];
        let (rate, unit) = r.throughput.as_ref().expect("throughput recorded");
        assert_eq!(unit, "Medges/s");
        // 1e6 edges / median_s / 1e6 == 1e9 / median_ns.
        let want = 1e9 / r.median_ns.max(1) as f64;
        assert!((rate - want).abs() < want * 1e-6);
        let json = h.to_json();
        assert!(json.contains("\"throughput\""));
        assert!(json.contains("\"throughput_unit\": \"Medges/s\""));
    }
}
