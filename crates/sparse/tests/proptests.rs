//! Property-based tests for the CSR invariants and algebra.

use graphaug_sparse::{bipartite_adjacency, sym_norm, Csr};
use proptest::prelude::*;

/// Strategy: a random COO triplet list within an `r × c` bound.
fn coo(max_r: usize, max_c: usize) -> impl Strategy<Value = Vec<(u32, u32, f32)>> {
    prop::collection::vec(
        (
            0..max_r as u32,
            0..max_c as u32,
            prop::num::f32::NORMAL.prop_map(|v| v.clamp(-10.0, 10.0)),
        ),
        0..60,
    )
}

proptest! {
    #[test]
    fn from_coo_always_satisfies_invariants(t in coo(8, 9)) {
        let m = Csr::from_coo(8, 9, t);
        prop_assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn transpose_is_involutive(t in coo(7, 5)) {
        let m = Csr::from_coo(7, 5, t);
        let tt = m.transpose().transpose();
        prop_assert_eq!(m, tt);
    }

    #[test]
    fn nnz_bounded_by_triplet_count(t in coo(6, 6)) {
        let n = t.len();
        let m = Csr::from_coo(6, 6, t);
        prop_assert!(m.nnz() <= n);
    }

    #[test]
    fn spmm_matches_dense_reference(t in coo(5, 4), dense in prop::collection::vec(-5.0f32..5.0, 4 * 3)) {
        let m = Csr::from_coo(5, 4, t);
        let got = m.spmm(&dense, 3);
        let dm = m.to_dense();
        for r in 0..5 {
            for k in 0..3 {
                let want: f32 = (0..4).map(|c| dm[r * 4 + c] * dense[c * 3 + k]).sum();
                prop_assert!((got[r * 3 + k] - want).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn spmm_is_linear(t in coo(5, 4), x in prop::collection::vec(-3.0f32..3.0, 4), y in prop::collection::vec(-3.0f32..3.0, 4)) {
        let m = Csr::from_coo(5, 4, t);
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = m.spmv(&sum);
        let (mx, my) = (m.spmv(&x), m.spmv(&y));
        for i in 0..5 {
            prop_assert!((lhs[i] - (mx[i] + my[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn sym_norm_is_symmetric(edges in prop::collection::vec((0..5u32, 0..6u32), 1..30)) {
        let adj = bipartite_adjacency(5, 6, &edges);
        let n = sym_norm(&adj, true);
        let d = n.to_dense();
        let dim = 11;
        for r in 0..dim {
            for c in 0..dim {
                prop_assert!((d[r * dim + c] - d[c * dim + r]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bipartite_adjacency_degree_matches_edge_multiset(edges in prop::collection::vec((0..4u32, 0..4u32), 0..20)) {
        use std::collections::HashSet;
        let uniq: HashSet<_> = edges.iter().copied().collect();
        let adj = bipartite_adjacency(4, 4, &edges);
        // Each unique undirected edge contributes 2 stored entries.
        prop_assert_eq!(adj.nnz(), uniq.len() * 2);
    }
}
