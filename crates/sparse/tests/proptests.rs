//! Property-based tests for the CSR invariants and algebra.
//!
//! Runs on the in-repo property runner (`graphaug_rng::prop`) — seeded case
//! generation, shrink-by-halving, replayable failure seeds.

use graphaug_rng::prop::{check, Gen, DEFAULT_CASES};
use graphaug_rng::{prop_assert, prop_assert_eq};
use graphaug_sparse::{bipartite_adjacency, sym_norm, Csr};

/// Generator: a random COO triplet list within an `r × c` bound, values
/// clamped to `[-10, 10]`.
fn coo(g: &mut Gen, max_r: usize, max_c: usize, max_len: usize) -> Vec<(u32, u32, f32)> {
    let n = g.len_in(0, max_len);
    g.vec_of(n, |g| {
        (
            g.random_range(0..max_r as u32),
            g.random_range(0..max_c as u32),
            g.random_range(-10.0f32..10.0),
        )
    })
}

/// Generator: a random `(user, item)` edge list.
fn edge_list(g: &mut Gen, max_u: u32, max_v: u32, lo: usize, hi: usize) -> Vec<(u32, u32)> {
    let n = g.len_in(lo, hi);
    g.vec_of(n, |g| (g.random_range(0..max_u), g.random_range(0..max_v)))
}

#[test]
fn from_coo_always_satisfies_invariants() {
    check("from_coo_always_satisfies_invariants", DEFAULT_CASES, |g| {
        let t = coo(g, 8, 9, 60);
        let m = Csr::from_coo(8, 9, t);
        prop_assert!(m.check_invariants().is_ok());
        Ok(())
    });
}

#[test]
fn transpose_is_involutive() {
    check("transpose_is_involutive", DEFAULT_CASES, |g| {
        let t = coo(g, 7, 5, 60);
        let m = Csr::from_coo(7, 5, t);
        let tt = m.transpose().transpose();
        prop_assert_eq!(m, tt);
        Ok(())
    });
}

#[test]
fn nnz_bounded_by_triplet_count() {
    check("nnz_bounded_by_triplet_count", DEFAULT_CASES, |g| {
        let t = coo(g, 6, 6, 60);
        let n = t.len();
        let m = Csr::from_coo(6, 6, t);
        prop_assert!(m.nnz() <= n);
        Ok(())
    });
}

#[test]
fn spmm_matches_dense_reference() {
    check("spmm_matches_dense_reference", DEFAULT_CASES, |g| {
        let t = coo(g, 5, 4, 60);
        let dense = g.vec_of(4 * 3, |g| g.random_range(-5.0f32..5.0));
        let m = Csr::from_coo(5, 4, t);
        let got = m.spmm(&dense, 3);
        let dm = m.to_dense();
        for r in 0..5 {
            for k in 0..3 {
                let want: f32 = (0..4).map(|c| dm[r * 4 + c] * dense[c * 3 + k]).sum();
                prop_assert!((got[r * 3 + k] - want).abs() < 1e-3);
            }
        }
        Ok(())
    });
}

#[test]
fn spmm_is_linear() {
    check("spmm_is_linear", DEFAULT_CASES, |g| {
        let t = coo(g, 5, 4, 60);
        let x = g.vec_of(4, |g| g.random_range(-3.0f32..3.0));
        let y = g.vec_of(4, |g| g.random_range(-3.0f32..3.0));
        let m = Csr::from_coo(5, 4, t);
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = m.spmv(&sum);
        let (mx, my) = (m.spmv(&x), m.spmv(&y));
        for i in 0..5 {
            prop_assert!((lhs[i] - (mx[i] + my[i])).abs() < 1e-3);
        }
        Ok(())
    });
}

#[test]
fn sym_norm_is_symmetric() {
    check("sym_norm_is_symmetric", DEFAULT_CASES, |g| {
        let edges = edge_list(g, 5, 6, 1, 30);
        let adj = bipartite_adjacency(5, 6, &edges);
        let n = sym_norm(&adj, true);
        let d = n.to_dense();
        let dim = 11;
        for r in 0..dim {
            for c in 0..dim {
                prop_assert!((d[r * dim + c] - d[c * dim + r]).abs() < 1e-6);
            }
        }
        Ok(())
    });
}

#[test]
fn bipartite_adjacency_degree_matches_edge_multiset() {
    check(
        "bipartite_adjacency_degree_matches_edge_multiset",
        DEFAULT_CASES,
        |g| {
            use std::collections::HashSet;
            let edges = edge_list(g, 4, 4, 0, 20);
            let uniq: HashSet<_> = edges.iter().copied().collect();
            let adj = bipartite_adjacency(4, 4, &edges);
            // Each unique undirected edge contributes 2 stored entries.
            prop_assert_eq!(adj.nnz(), uniq.len() * 2);
            Ok(())
        },
    );
}
