//! Property-based tests for the CSR invariants and algebra.
//!
//! Runs on the in-repo property runner (`graphaug_rng::prop`) — seeded case
//! generation, shrink-by-halving, replayable failure seeds.

use graphaug_rng::prop::{check, Gen, DEFAULT_CASES};
use graphaug_rng::{prop_assert, prop_assert_eq};
use graphaug_sparse::{bipartite_adjacency, sym_norm, Csr};

/// Generator: a random COO triplet list within an `r × c` bound, values
/// clamped to `[-10, 10]`.
fn coo(g: &mut Gen, max_r: usize, max_c: usize, max_len: usize) -> Vec<(u32, u32, f32)> {
    let n = g.len_in(0, max_len);
    g.vec_of(n, |g| {
        (
            g.random_range(0..max_r as u32),
            g.random_range(0..max_c as u32),
            g.random_range(-10.0f32..10.0),
        )
    })
}

/// Generator: a random `(user, item)` edge list.
fn edge_list(g: &mut Gen, max_u: u32, max_v: u32, lo: usize, hi: usize) -> Vec<(u32, u32)> {
    let n = g.len_in(lo, hi);
    g.vec_of(n, |g| (g.random_range(0..max_u), g.random_range(0..max_v)))
}

#[test]
fn from_coo_always_satisfies_invariants() {
    check("from_coo_always_satisfies_invariants", DEFAULT_CASES, |g| {
        let t = coo(g, 8, 9, 60);
        let m = Csr::from_coo(8, 9, t);
        prop_assert!(m.check_invariants().is_ok());
        Ok(())
    });
}

#[test]
fn transpose_is_involutive() {
    check("transpose_is_involutive", DEFAULT_CASES, |g| {
        let t = coo(g, 7, 5, 60);
        let m = Csr::from_coo(7, 5, t);
        let tt = m.transpose().transpose();
        prop_assert_eq!(m, tt);
        Ok(())
    });
}

#[test]
fn nnz_bounded_by_triplet_count() {
    check("nnz_bounded_by_triplet_count", DEFAULT_CASES, |g| {
        let t = coo(g, 6, 6, 60);
        let n = t.len();
        let m = Csr::from_coo(6, 6, t);
        prop_assert!(m.nnz() <= n);
        Ok(())
    });
}

#[test]
fn spmm_matches_dense_reference() {
    check("spmm_matches_dense_reference", DEFAULT_CASES, |g| {
        let t = coo(g, 5, 4, 60);
        let dense = g.vec_of(4 * 3, |g| g.random_range(-5.0f32..5.0));
        let m = Csr::from_coo(5, 4, t);
        let got = m.spmm(&dense, 3);
        let dm = m.to_dense();
        for r in 0..5 {
            for k in 0..3 {
                let want: f32 = (0..4).map(|c| dm[r * 4 + c] * dense[c * 3 + k]).sum();
                prop_assert!((got[r * 3 + k] - want).abs() < 1e-3);
            }
        }
        Ok(())
    });
}

#[test]
fn spmm_is_linear() {
    check("spmm_is_linear", DEFAULT_CASES, |g| {
        let t = coo(g, 5, 4, 60);
        let x = g.vec_of(4, |g| g.random_range(-3.0f32..3.0));
        let y = g.vec_of(4, |g| g.random_range(-3.0f32..3.0));
        let m = Csr::from_coo(5, 4, t);
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = m.spmv(&sum);
        let (mx, my) = (m.spmv(&x), m.spmv(&y));
        for i in 0..5 {
            prop_assert!((lhs[i] - (mx[i] + my[i])).abs() < 1e-3);
        }
        Ok(())
    });
}

#[test]
fn sym_norm_is_symmetric() {
    check("sym_norm_is_symmetric", DEFAULT_CASES, |g| {
        let edges = edge_list(g, 5, 6, 1, 30);
        let adj = bipartite_adjacency(5, 6, &edges);
        let n = sym_norm(&adj, true);
        let d = n.to_dense();
        let dim = 11;
        for r in 0..dim {
            for c in 0..dim {
                prop_assert!((d[r * dim + c] - d[c * dim + r]).abs() < 1e-6);
            }
        }
        Ok(())
    });
}

#[test]
fn bipartite_adjacency_degree_matches_edge_multiset() {
    check(
        "bipartite_adjacency_degree_matches_edge_multiset",
        DEFAULT_CASES,
        |g| {
            use std::collections::HashSet;
            let edges = edge_list(g, 4, 4, 0, 20);
            let uniq: HashSet<_> = edges.iter().copied().collect();
            let adj = bipartite_adjacency(4, 4, &edges);
            // Each unique undirected edge contributes 2 stored entries.
            prop_assert_eq!(adj.nnz(), uniq.len() * 2);
            Ok(())
        },
    );
}

#[test]
fn spmm_ew_matches_with_data_spmm() {
    check("spmm_ew_matches_with_data_spmm", DEFAULT_CASES, |g| {
        let t = coo(g, 6, 5, 60);
        let m = Csr::from_coo(6, 5, t);
        let d = g.len_in(1, 9);
        let w = g.vec_of(m.nnz(), |g| g.random_range(-2.0f32..2.0));
        let dense = g.vec_of(5 * d, |g| g.random_range(-3.0f32..3.0));
        let mut got = vec![0f32; 6 * d];
        m.spmm_ew_into(&w, &dense, d, &mut got);
        let want = m.with_data(w).spmm(&dense, d);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        Ok(())
    });
}

#[test]
fn spmm_ew_gradients_match_dense_reference() {
    check(
        "spmm_ew_gradients_match_dense_reference",
        DEFAULT_CASES,
        |g| {
            let t = coo(g, 6, 5, 40);
            let m = Csr::from_coo(6, 5, t);
            let d = g.len_in(1, 9);
            let w = g.vec_of(m.nnz(), |g| g.random_range(-2.0f32..2.0));
            let h = g.vec_of(5 * d, |g| g.random_range(-2.0f32..2.0));
            let dy = g.vec_of(6 * d, |g| g.random_range(-2.0f32..2.0));

            let mut dw = vec![0f32; m.nnz()];
            m.spmm_ew_dw_into(&h, &dy, d, &mut dw);
            let mut dh = vec![0f32; 5 * d];
            m.spmm_ew_dh_acc_into(&w, &dy, d, &mut dh);

            // Serial references straight from the definitions.
            let coo_entries = m.to_coo();
            for (e, (r, c, _)) in coo_entries.iter().enumerate() {
                let want: f32 = (0..d)
                    .map(|j| dy[*r as usize * d + j] * h[*c as usize * d + j])
                    .sum();
                prop_assert!((dw[e] - want).abs() < 1e-3, "dw[{}]", e);
            }
            let mut want_dh = vec![0f32; 5 * d];
            for (e, (r, c, _)) in coo_entries.iter().enumerate() {
                for j in 0..d {
                    want_dh[*c as usize * d + j] += w[e] * dy[*r as usize * d + j];
                }
            }
            for (a, b) in dh.iter().zip(&want_dh) {
                prop_assert!((a - b).abs() < 1e-3);
            }
            Ok(())
        },
    );
}

#[test]
fn spmm_wide_operands_match_dense_reference() {
    // Exercises both the width-specialized (8/16/32/64) and generic kernels
    // against the dense definition on random shapes.
    check("spmm_wide_operands_match_dense_reference", 32, |g| {
        let rows = g.len_in(1, 12);
        let cols = g.len_in(1, 10);
        let t = coo(g, rows, cols, 50);
        let m = Csr::from_coo(rows, cols, t);
        for d in [3usize, 8, 16, 32, 64] {
            let dense = g.vec_of(cols * d, |g| g.random_range(-2.0f32..2.0));
            let got = m.spmm(&dense, d);
            let dm = m.to_dense();
            for r in 0..rows {
                for k in 0..d {
                    let want: f32 = (0..cols).map(|c| dm[r * cols + c] * dense[c * d + k]).sum();
                    prop_assert!((got[r * d + k] - want).abs() < 1e-3);
                }
            }
        }
        Ok(())
    });
}
