//! Sparse matrix algebra for the GraphAug reproduction.
//!
//! This crate provides a compact CSR (compressed sparse row) matrix type and
//! the graph-normalization routines used throughout the workspace:
//!
//! * [`Csr`] — an immutable CSR matrix over `f32` values with builders from
//!   COO triplets, transposition, sparse×dense products, and per-pattern
//!   value replacement (used by the differentiable edge-weighted message
//!   passing in `graphaug-tensor`).
//! * [`norm`] — symmetric Laplacian normalization `D^{-1/2}(A+I)D^{-1/2}` and
//!   the bipartite user–item adjacency construction from interaction edges.
//!
//! The implementation favours allocation-free inner loops: `spmm` walks row
//! slices and writes into a caller-shaped output buffer, which keeps it on the
//! hot path of every GNN forward/backward pass without churn.

pub mod csr;
pub mod norm;

pub use csr::Csr;
pub use norm::{bipartite_adjacency, sym_norm, sym_norm_weights};
