//! Graph normalization: bipartite adjacency assembly and the symmetric
//! Laplacian normalization `D^{-1/2}(A + I)D^{-1/2}` used by every GNN
//! encoder in the workspace (paper, Sec. III-C).

use crate::csr::Csr;

/// Builds the symmetric `(I+J) × (I+J)` adjacency of the bipartite user–item
/// graph. Users occupy node ids `0..n_users`, items occupy
/// `n_users..n_users+n_items`. Every interaction `(u, v)` contributes the two
/// directed entries `(u, n_users+v)` and `(n_users+v, u)` with weight 1.
pub fn bipartite_adjacency(n_users: usize, n_items: usize, edges: &[(u32, u32)]) -> Csr {
    let n = n_users + n_items;
    let mut triplets = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in edges {
        let vi = n_users as u32 + v;
        triplets.push((u, vi, 1.0));
        triplets.push((vi, u, 1.0));
    }
    Csr::from_coo(n, n, triplets)
}

/// Symmetric Laplacian normalization with optional self-loops:
/// `Ã = D^{-1/2} (A [+ I]) D^{-1/2}` where `D` is the weighted degree of
/// `A [+ I]`. Isolated nodes keep a zero row (their self-loop weight is
/// normalized by degree 1 when `self_loops` is set).
pub fn sym_norm(adj: &Csr, self_loops: bool) -> Csr {
    assert_eq!(adj.n_rows(), adj.n_cols(), "adjacency must be square");
    let n = adj.n_rows();
    let mut triplets = adj.to_coo();
    if self_loops {
        // Merge with any existing diagonal via from_coo's duplicate summing.
        for i in 0..n as u32 {
            triplets.push((i, i, 1.0));
        }
    }
    let merged = Csr::from_coo(n, n, triplets);
    let sums = merged.row_sums();
    let inv_sqrt: Vec<f32> = sums
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s.sqrt() } else { 0.0 })
        .collect();
    let mut out = merged.to_coo();
    for (r, c, v) in &mut out {
        *v *= inv_sqrt[*r as usize] * inv_sqrt[*c as usize];
    }
    Csr::from_coo(n, n, out)
}

/// Computes per-edge symmetric normalization coefficients
/// `1 / sqrt(deg(r) * deg(c))` for the stored pattern of `adj`, using the
/// *unweighted* degrees of `adj` itself.
///
/// The GraphAug view encoders multiply learned soft edge weights by these
/// constants so that normalization stays outside the gradient path (see
/// DESIGN.md, "design choices").
pub fn sym_norm_weights(adj: &Csr) -> Vec<f32> {
    let deg = adj.row_degrees();
    let mut out = Vec::with_capacity(adj.nnz());
    for r in 0..adj.n_rows() {
        let (cols, _) = adj.row(r);
        for &c in cols {
            let d = (deg[r] as f32) * (deg[c as usize] as f32);
            out.push(if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bipartite_adjacency_is_symmetric() {
        let adj = bipartite_adjacency(2, 3, &[(0, 0), (0, 2), (1, 1)]);
        adj.check_invariants().unwrap();
        assert_eq!(adj.n_rows(), 5);
        assert_eq!(adj.nnz(), 6);
        let d = adj.to_dense();
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(d[r * 5 + c], d[c * 5 + r]);
            }
        }
        // user 0 — item 0 maps to nodes (0, 2).
        assert_eq!(d[2], 1.0);
    }

    #[test]
    fn sym_norm_rows_scale_correctly() {
        // Path graph 0-1-2 without self-loops: entry (0,1) = 1/sqrt(1*2).
        let adj = Csr::from_coo(
            3,
            3,
            vec![(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
        );
        let n = sym_norm(&adj, false);
        let d = n.to_dense();
        let want = 1.0 / (2.0f32).sqrt();
        assert!((d[1] - want).abs() < 1e-6);
        assert!((d[3] - want).abs() < 1e-6);
    }

    #[test]
    fn sym_norm_with_self_loops_keeps_spectrum_bounded() {
        let adj = bipartite_adjacency(2, 2, &[(0, 0), (0, 1), (1, 1)]);
        let n = sym_norm(&adj, true);
        n.check_invariants().unwrap();
        // The eigenvalues of D^{-1/2}(A+I)D^{-1/2} lie in [-1, 1]: repeated
        // application must not blow up the norm of any vector.
        let mut x = vec![0.5f32, -1.0, 0.25, 1.0];
        let norm = |v: &[f32]| v.iter().map(|a| a * a).sum::<f32>().sqrt();
        let n0 = norm(&x);
        for _ in 0..25 {
            x = n.spmv(&x);
        }
        assert!(norm(&x) <= n0 * 1.001, "spectral radius exceeds 1");
        // Diagonal present everywhere.
        let d = n.to_dense();
        for i in 0..4 {
            assert!(d[i * 4 + i] > 0.0);
        }
    }

    #[test]
    fn sym_norm_weights_match_norms_on_unit_graph() {
        let adj = bipartite_adjacency(2, 2, &[(0, 0), (0, 1), (1, 1)]);
        let w = sym_norm_weights(&adj);
        assert_eq!(w.len(), adj.nnz());
        // Reconstruct Ã (no self-loops) from the weights and compare against
        // sym_norm of the same graph.
        let rebuilt = adj.with_data(adj.data().iter().zip(&w).map(|(v, w)| v * w).collect());
        let direct = sym_norm(&adj, false);
        let (a, b) = (rebuilt.to_dense(), direct.to_dense());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn isolated_nodes_get_zero_rows() {
        let adj = Csr::from_coo(3, 3, vec![(0, 1, 1.0), (1, 0, 1.0)]);
        let n = sym_norm(&adj, false);
        assert_eq!(n.row(2).0.len(), 0);
    }
}
