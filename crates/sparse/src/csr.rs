//! Compressed sparse row matrices.

/// An immutable sparse matrix in CSR layout over `f32` values.
///
/// Invariants (checked by `debug_assert!` and property tests):
/// * `indptr.len() == n_rows + 1`, `indptr[0] == 0`, `indptr` is
///   non-decreasing and `indptr[n_rows] == indices.len() == data.len()`;
/// * column indices within each row are strictly increasing (no duplicates);
/// * every column index is `< n_cols`.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from unsorted COO triplets `(row, col, value)`.
    ///
    /// Duplicate coordinates are combined by summing their values. Zeros are
    /// kept (the pattern may be meaningful even at value zero, e.g. a masked
    /// edge in a sampled view).
    pub fn from_coo(n_rows: usize, n_cols: usize, mut triplets: Vec<(u32, u32, f32)>) -> Self {
        for &(r, c, _) in &triplets {
            assert!(
                (r as usize) < n_rows && (c as usize) < n_cols,
                "triplet ({r},{c}) out of bounds for {n_rows}x{n_cols}"
            );
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);

        let mut indptr = vec![0usize; n_rows + 1];
        let mut indices = Vec::with_capacity(triplets.len());
        let mut data: Vec<f32> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            if let (Some(&last_c), true) = (indices.last(), indptr[r as usize + 1] > 0) {
                // Same row as the previous entry and same column: merge.
                if last_c == c && indptr[r as usize + 1] == indices.len() {
                    *data.last_mut().expect("data parallel to indices") += v;
                    continue;
                }
            }
            indices.push(c);
            data.push(v);
            indptr[r as usize + 1] = indices.len();
        }
        // Forward-fill indptr for empty rows.
        for i in 1..=n_rows {
            if indptr[i] < indptr[i - 1] {
                indptr[i] = indptr[i - 1];
            }
        }
        Csr {
            n_rows,
            n_cols,
            indptr,
            indices,
            data,
        }
    }

    /// Builds an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Csr {
            n_rows: n,
            n_cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            data: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[s..e], &self.data[s..e])
    }

    /// The raw row-pointer array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The raw column-index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The raw value array.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a matrix with the same sparsity pattern but new values.
    ///
    /// This is the backbone of differentiable edge sampling: the augmentor
    /// produces one weight per stored edge and the encoder rebuilds the view
    /// adjacency around the fixed pattern.
    pub fn with_data(&self, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), self.nnz(), "value vector must match nnz");
        Csr {
            data,
            ..self.clone()
        }
    }

    /// Applies `f` to every stored value, returning a new matrix.
    pub fn map_data(&self, f: impl Fn(f32) -> f32) -> Self {
        self.with_data(self.data.iter().map(|&v| f(v)).collect())
    }

    /// Row of `(row, col, value)` triplets in row-major order.
    pub fn to_coo(&self) -> Vec<(u32, u32, f32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                out.push((r as u32, *c, *v));
            }
        }
        out
    }

    /// Out-degree (stored-entry count) of every row.
    pub fn row_degrees(&self) -> Vec<usize> {
        (0..self.n_rows)
            .map(|i| self.indptr[i + 1] - self.indptr[i])
            .collect()
    }

    /// Sum of stored values per row (weighted degree).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.n_rows)
            .map(|i| self.row(i).1.iter().sum())
            .collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.n_cols {
            counts[i] += counts[i - 1];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0u32; self.nnz()];
        let mut data = vec![0f32; self.nnz()];
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                let slot = cursor[*c as usize];
                indices[slot] = r as u32;
                data[slot] = *v;
                cursor[*c as usize] += 1;
            }
        }
        Csr {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            indptr,
            indices,
            data,
        }
    }

    /// Sparse × dense product: `out = self * dense`, where `dense` is a
    /// row-major `n_cols × d` buffer and `out` a row-major `n_rows × d`
    /// buffer. `out` is overwritten.
    pub fn spmm_into(&self, dense: &[f32], d: usize, out: &mut [f32]) {
        assert_eq!(dense.len(), self.n_cols * d, "dense operand shape mismatch");
        assert_eq!(out.len(), self.n_rows * d, "output shape mismatch");
        out.fill(0.0);
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            let orow = &mut out[r * d..(r + 1) * d];
            for (c, &v) in cols.iter().zip(vals) {
                let drow = &dense[*c as usize * d..(*c as usize + 1) * d];
                for (o, x) in orow.iter_mut().zip(drow) {
                    *o += v * x;
                }
            }
        }
    }

    /// Sparse × dense product returning a fresh buffer.
    pub fn spmm(&self, dense: &[f32], d: usize) -> Vec<f32> {
        let mut out = vec![0f32; self.n_rows * d];
        self.spmm_into(dense, d, &mut out);
        out
    }

    /// Sparse × vector product.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n_cols);
        (0..self.n_rows)
            .map(|r| {
                let (cols, vals) = self.row(r);
                cols.iter().zip(vals).map(|(c, v)| v * x[*c as usize]).sum()
            })
            .collect()
    }

    /// Densifies into a row-major buffer (testing helper; avoid in hot code).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0f32; self.n_rows * self.n_cols];
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                out[r * self.n_cols + *c as usize] = *v;
            }
        }
        out
    }

    /// Checks the structural invariants; used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.indptr.len() != self.n_rows + 1 {
            return Err("indptr length".into());
        }
        if self.indptr[0] != 0 || *self.indptr.last().unwrap() != self.indices.len() {
            return Err("indptr endpoints".into());
        }
        if self.indices.len() != self.data.len() {
            return Err("indices/data length mismatch".into());
        }
        for i in 0..self.n_rows {
            if self.indptr[i] > self.indptr[i + 1] {
                return Err(format!("indptr decreasing at row {i}"));
            }
            let (cols, _) = self.row(i);
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {i} columns not strictly increasing"));
                }
            }
            if let Some(&last) = cols.last() {
                if last as usize >= self.n_cols {
                    return Err(format!("row {i} column out of range"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_coo(
            3,
            4,
            vec![(0, 1, 2.0), (0, 3, 1.0), (2, 0, -1.0), (2, 2, 4.0)],
        )
    }

    #[test]
    fn from_coo_builds_sorted_rows() {
        let m = Csr::from_coo(2, 3, vec![(1, 2, 5.0), (0, 1, 1.0), (1, 0, 3.0)]);
        m.check_invariants().unwrap();
        assert_eq!(m.row(0), (&[1u32][..], &[1.0f32][..]));
        assert_eq!(m.row(1), (&[0u32, 2][..], &[3.0f32, 5.0][..]));
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let m = Csr::from_coo(1, 2, vec![(0, 1, 1.0), (0, 1, 2.5), (0, 0, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row(0).1, &[1.0, 3.5]);
    }

    #[test]
    fn empty_rows_have_zero_span() {
        let m = sample();
        m.check_invariants().unwrap();
        assert_eq!(m.row(1).0.len(), 0);
        assert_eq!(m.row_degrees(), vec![2, 0, 2]);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let id = Csr::identity(3);
        let dense: Vec<f32> = (0..6).map(|x| x as f32).collect();
        assert_eq!(id.spmm(&dense, 2), dense);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        let t = m.transpose();
        t.check_invariants().unwrap();
        let dm = m.to_dense();
        let dt = t.to_dense();
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(dm[r * 4 + c], dt[c * 3 + r]);
            }
        }
    }

    #[test]
    fn spmm_matches_dense_reference() {
        let m = sample();
        let d = 2usize;
        let dense: Vec<f32> = (0..8).map(|x| (x as f32) * 0.5 - 1.0).collect();
        let got = m.spmm(&dense, d);
        let dm = m.to_dense();
        for r in 0..3 {
            for k in 0..d {
                let want: f32 = (0..4).map(|c| dm[r * 4 + c] * dense[c * d + k]).sum();
                assert!((got[r * d + k] - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn spmv_matches_spmm_single_column() {
        let m = sample();
        let x = vec![1.0, -2.0, 0.5, 3.0];
        assert_eq!(m.spmv(&x), m.spmm(&x, 1));
    }

    #[test]
    fn with_data_keeps_pattern() {
        let m = sample();
        let new = m.with_data(vec![9.0; m.nnz()]);
        assert_eq!(new.indices(), m.indices());
        assert!(new.data().iter().all(|&v| v == 9.0));
    }

    #[test]
    #[should_panic(expected = "value vector must match nnz")]
    fn with_data_rejects_wrong_length() {
        sample().with_data(vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_coo_rejects_out_of_bounds() {
        Csr::from_coo(1, 1, vec![(0, 1, 1.0)]);
    }

    #[test]
    fn to_coo_round_trips() {
        let m = sample();
        let rebuilt = Csr::from_coo(3, 4, m.to_coo());
        assert_eq!(m, rebuilt);
    }

    #[test]
    fn row_sums_are_value_sums() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 3.0]);
    }
}
