//! Compressed sparse row matrices.
//!
//! The SpMM family (`spmm_into`, `spmm_ew_into`, and the `spmm_ew` gradient
//! kernels) runs on the `graphaug-par` runtime: output rows are partitioned
//! into fixed chunks, each chunk owns a disjoint slice of the output, and
//! every output element is accumulated in the same (ascending-entry) order
//! regardless of the thread count — so results are bit-identical under any
//! `GRAPHAUG_THREADS`. The inner loops run on explicit [`F32x8`] lanes for
//! the embedding widths the workspace actually uses (8/16/32/64 columns),
//! compiled through `simd_dispatch!` into an AVX2 build and a scalar build
//! of the same fixed-order source — the two are bit-identical, so
//! `GRAPHAUG_SIMD` is purely a performance knob. The `spmm_ew` weight
//! gradient reduces per-entry dot products through [`dot8`]'s fixed lane
//! tree (shared with `matmul_nt`).

use graphaug_par::{dot8, simd_dispatch, F32x8};
use std::sync::OnceLock;

/// An immutable sparse matrix in CSR layout over `f32` values.
///
/// Invariants (checked by `debug_assert!` and property tests):
/// * `indptr.len() == n_rows + 1`, `indptr[0] == 0`, `indptr` is
///   non-decreasing and `indptr[n_rows] == indices.len() == data.len()`;
/// * column indices within each row are strictly increasing (no duplicates);
/// * every column index is `< n_cols`.
#[derive(Clone, Debug)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<f32>,
    /// Lazily-built transposed traversal plan for the edge-weighted SpMM
    /// backward pass (see [`TransposePlan`]). Excluded from equality; shared
    /// by clones via [`Csr::with_data`]/[`Csr::map_data`], which preserve
    /// the pattern.
    tplan: OnceLock<TransposePlan>,
}

impl PartialEq for Csr {
    fn eq(&self, other: &Self) -> bool {
        self.n_rows == other.n_rows
            && self.n_cols == other.n_cols
            && self.indptr == other.indptr
            && self.indices == other.indices
            && self.data == other.data
    }
}

/// A transposed traversal order over a [`Csr`] pattern: for every *column*
/// `c`, the original rows that store an entry in `c` and each entry's index
/// into the CSR value array.
///
/// This is what makes the `spmm_ew` dense-gradient reduction deterministic
/// and lock-free: `dH[c] = Σ_e w[entry(e)] · dY[src_row(e)]` walks entries
/// of column `c` only, so each `dH` row is owned by exactly one parallel
/// chunk and its accumulation order is fixed by the plan, not by the
/// scheduler.
#[derive(Clone, Debug)]
pub struct TransposePlan {
    /// Per column: span into `src_row`/`entry` (`len == n_cols + 1`).
    indptr: Vec<usize>,
    /// Original row of each transposed entry, grouped by column.
    src_row: Vec<u32>,
    /// Index of the entry in the original CSR `data`/`indices` arrays.
    entry: Vec<u32>,
}

impl Csr {
    /// Builds a CSR matrix from unsorted COO triplets `(row, col, value)`.
    ///
    /// Duplicate coordinates are combined by summing their values. Zeros are
    /// kept (the pattern may be meaningful even at value zero, e.g. a masked
    /// edge in a sampled view).
    pub fn from_coo(n_rows: usize, n_cols: usize, mut triplets: Vec<(u32, u32, f32)>) -> Self {
        for &(r, c, _) in &triplets {
            assert!(
                (r as usize) < n_rows && (c as usize) < n_cols,
                "triplet ({r},{c}) out of bounds for {n_rows}x{n_cols}"
            );
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);

        let mut indptr = vec![0usize; n_rows + 1];
        let mut indices = Vec::with_capacity(triplets.len());
        let mut data: Vec<f32> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            if let (Some(&last_c), true) = (indices.last(), indptr[r as usize + 1] > 0) {
                // Same row as the previous entry and same column: merge.
                if last_c == c && indptr[r as usize + 1] == indices.len() {
                    *data.last_mut().expect("data parallel to indices") += v;
                    continue;
                }
            }
            indices.push(c);
            data.push(v);
            indptr[r as usize + 1] = indices.len();
        }
        // Forward-fill indptr for empty rows.
        for i in 1..=n_rows {
            if indptr[i] < indptr[i - 1] {
                indptr[i] = indptr[i - 1];
            }
        }
        Csr {
            n_rows,
            n_cols,
            indptr,
            indices,
            data,
            tplan: OnceLock::new(),
        }
    }

    /// Builds an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Csr {
            n_rows: n,
            n_cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            data: vec![1.0; n],
            tplan: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[s..e], &self.data[s..e])
    }

    /// The raw row-pointer array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The raw column-index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The raw value array.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a matrix with the same sparsity pattern but new values.
    ///
    /// This is the backbone of differentiable edge sampling: the augmentor
    /// produces one weight per stored edge and the encoder rebuilds the view
    /// adjacency around the fixed pattern.
    pub fn with_data(&self, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), self.nnz(), "value vector must match nnz");
        Csr {
            data,
            ..self.clone()
        }
    }

    /// Applies `f` to every stored value, returning a new matrix.
    pub fn map_data(&self, f: impl Fn(f32) -> f32) -> Self {
        self.with_data(self.data.iter().map(|&v| f(v)).collect())
    }

    /// Row of `(row, col, value)` triplets in row-major order.
    pub fn to_coo(&self) -> Vec<(u32, u32, f32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                out.push((r as u32, *c, *v));
            }
        }
        out
    }

    /// Out-degree (stored-entry count) of every row.
    pub fn row_degrees(&self) -> Vec<usize> {
        (0..self.n_rows)
            .map(|i| self.indptr[i + 1] - self.indptr[i])
            .collect()
    }

    /// Sum of stored values per row (weighted degree).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.n_rows)
            .map(|i| self.row(i).1.iter().sum())
            .collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.n_cols {
            counts[i] += counts[i - 1];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0u32; self.nnz()];
        let mut data = vec![0f32; self.nnz()];
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                let slot = cursor[*c as usize];
                indices[slot] = r as u32;
                data[slot] = *v;
                cursor[*c as usize] += 1;
            }
        }
        Csr {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            indptr,
            indices,
            data,
            tplan: OnceLock::new(),
        }
    }

    /// The transposed traversal plan of this pattern, built on first use and
    /// cached for the lifetime of the matrix (patterns are shared via `Arc`
    /// across training steps, so the counting sort is paid once, not per
    /// backward pass).
    pub fn transpose_plan(&self) -> &TransposePlan {
        self.tplan.get_or_init(|| {
            assert!(self.nnz() <= u32::MAX as usize, "pattern too large");
            let mut counts = vec![0usize; self.n_cols + 1];
            for &c in &self.indices {
                counts[c as usize + 1] += 1;
            }
            for i in 1..=self.n_cols {
                counts[i] += counts[i - 1];
            }
            let indptr = counts.clone();
            let mut cursor = counts;
            let mut src_row = vec![0u32; self.nnz()];
            let mut entry = vec![0u32; self.nnz()];
            for r in 0..self.n_rows {
                for e in self.indptr[r]..self.indptr[r + 1] {
                    let c = self.indices[e] as usize;
                    let slot = cursor[c];
                    src_row[slot] = r as u32;
                    entry[slot] = e as u32;
                    cursor[c] += 1;
                }
            }
            TransposePlan {
                indptr,
                src_row,
                entry,
            }
        })
    }

    /// Sparse × dense product: `out = self * dense`, where `dense` is a
    /// row-major `n_cols × d` buffer and `out` a row-major `n_rows × d`
    /// buffer. `out` is overwritten. Parallel over fixed row chunks.
    pub fn spmm_into(&self, dense: &[f32], d: usize, out: &mut [f32]) {
        assert_eq!(dense.len(), self.n_cols * d, "dense operand shape mismatch");
        assert_eq!(out.len(), self.n_rows * d, "output shape mismatch");
        graphaug_par::parallel_rows(out, d.max(1), |row0, rows| {
            spmm_span(
                &self.indptr,
                &self.indices,
                &self.data,
                dense,
                d,
                false,
                row0,
                rows,
            );
        });
    }

    /// Like [`Csr::spmm_into`] but accumulates (`out += self * dense`)
    /// instead of overwriting — the gradient-accumulation path of the tape.
    pub fn spmm_acc_into(&self, dense: &[f32], d: usize, out: &mut [f32]) {
        assert_eq!(dense.len(), self.n_cols * d, "dense operand shape mismatch");
        assert_eq!(out.len(), self.n_rows * d, "output shape mismatch");
        graphaug_par::parallel_rows(out, d.max(1), |row0, rows| {
            spmm_span(
                &self.indptr,
                &self.indices,
                &self.data,
                dense,
                d,
                true,
                row0,
                rows,
            );
        });
    }

    /// Edge-weighted sparse × dense product: the stored values are replaced
    /// by `w` (one weight per stored entry, CSR order). `out` is
    /// overwritten.
    pub fn spmm_ew_into(&self, w: &[f32], dense: &[f32], d: usize, out: &mut [f32]) {
        assert_eq!(w.len(), self.nnz(), "one weight per stored entry");
        assert_eq!(dense.len(), self.n_cols * d, "dense operand shape mismatch");
        assert_eq!(out.len(), self.n_rows * d, "output shape mismatch");
        graphaug_par::parallel_rows(out, d.max(1), |row0, rows| {
            spmm_span(&self.indptr, &self.indices, w, dense, d, false, row0, rows);
        });
    }

    /// Edge-weight gradient of the edge-weighted product:
    /// `dw[e] = dY[row(e)] · H[col(e)]` for every stored entry `e`.
    /// Entries are partitioned by output row, so each chunk writes a
    /// disjoint `dw` span and no merging is needed.
    pub fn spmm_ew_dw_into(&self, h: &[f32], dy: &[f32], d: usize, dw: &mut [f32]) {
        assert_eq!(h.len(), self.n_cols * d, "dense operand shape mismatch");
        assert_eq!(
            dy.len(),
            self.n_rows * d,
            "upstream gradient shape mismatch"
        );
        assert_eq!(dw.len(), self.nnz(), "one gradient per stored entry");
        let base = graphaug_par::SendMutPtr::new(dw);
        graphaug_par::parallel_spans(self.n_rows, |_, rr| {
            let (s, e) = (self.indptr[rr.start], self.indptr[rr.end]);
            // Safety: row spans are disjoint, so entry spans are disjoint.
            let dws = unsafe { base.slice_mut(s, e - s) };
            spmm_dw_span(&self.indptr, &self.indices, h, dy, d, rr.start, rr.end, dws);
        });
    }

    /// Dense-operand gradient of the edge-weighted product, accumulated:
    /// `dh[c] += Σ_{e : col(e) = c} w[e] · dY[row(e)]`.
    ///
    /// Uses the cached [`TransposePlan`] so each `dh` row is owned by one
    /// chunk and accumulated in plan order — deterministic for any thread
    /// count, with no per-thread scratch buffers to merge.
    pub fn spmm_ew_dh_acc_into(&self, w: &[f32], dy: &[f32], d: usize, dh: &mut [f32]) {
        assert_eq!(w.len(), self.nnz(), "one weight per stored entry");
        assert_eq!(
            dy.len(),
            self.n_rows * d,
            "upstream gradient shape mismatch"
        );
        assert_eq!(dh.len(), self.n_cols * d, "dense gradient shape mismatch");
        let plan = self.transpose_plan();
        graphaug_par::parallel_rows(dh, d.max(1), |row0, rows| {
            dh_span(
                &plan.indptr,
                &plan.src_row,
                &plan.entry,
                w,
                dy,
                d,
                row0,
                rows,
            );
        });
    }

    /// Sparse × dense product returning a fresh buffer.
    pub fn spmm(&self, dense: &[f32], d: usize) -> Vec<f32> {
        let mut out = vec![0f32; self.n_rows * d];
        self.spmm_into(dense, d, &mut out);
        out
    }

    /// Sparse × vector product.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n_cols);
        (0..self.n_rows)
            .map(|r| {
                let (cols, vals) = self.row(r);
                cols.iter().zip(vals).map(|(c, v)| v * x[*c as usize]).sum()
            })
            .collect()
    }

    /// Densifies into a row-major buffer (testing helper; avoid in hot code).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0f32; self.n_rows * self.n_cols];
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                out[r * self.n_cols + *c as usize] = *v;
            }
        }
        out
    }

    /// Checks the structural invariants; used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.indptr.len() != self.n_rows + 1 {
            return Err("indptr length".into());
        }
        if self.indptr[0] != 0 || *self.indptr.last().unwrap() != self.indices.len() {
            return Err("indptr endpoints".into());
        }
        if self.indices.len() != self.data.len() {
            return Err("indices/data length mismatch".into());
        }
        for i in 0..self.n_rows {
            if self.indptr[i] > self.indptr[i + 1] {
                return Err(format!("indptr decreasing at row {i}"));
            }
            let (cols, _) = self.row(i);
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {i} columns not strictly increasing"));
                }
            }
            if let Some(&last) = cols.last() {
                if last as usize >= self.n_cols {
                    return Err(format!("row {i} column out of range"));
                }
            }
        }
        Ok(())
    }
}

simd_dispatch! {
    /// Span kernel of sparse × dense, reading entry values from `vals`
    /// (either the CSR's own data or an external per-entry weight vector).
    /// `acc` selects accumulate-into vs overwrite semantics at the final
    /// write-out only; the reduction itself is unaffected.
    #[allow(clippy::too_many_arguments)]
    fn spmm_span(indptr: &[usize], indices: &[u32], vals: &[f32], dense: &[f32], d: usize, acc: bool, row0: usize, rows: &mut [f32]) {
        match d {
            8 => spmm_span_lanes::<1>(indptr, indices, vals, dense, acc, row0, rows),
            16 => spmm_span_lanes::<2>(indptr, indices, vals, dense, acc, row0, rows),
            32 => spmm_span_lanes::<4>(indptr, indices, vals, dense, acc, row0, rows),
            64 => spmm_span_lanes::<8>(indptr, indices, vals, dense, acc, row0, rows),
            _ => spmm_span_generic(indptr, indices, vals, dense, d, acc, row0, rows),
        }
    }
}

/// Width-specialized SpMM row kernel over `NL` 8-wide lanes: the output row
/// lives in two `[F32x8; NL]` accumulator files (even/odd entries) across
/// all nonzeros, merged even-file + odd-file at the end. That is exactly
/// the scalar even/odd semantics the kernel has always had, so per output
/// element the value is a fixed function of the row — thread-invariant and
/// identical between the lane and scalar builds.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn spmm_span_lanes<const NL: usize>(
    indptr: &[usize],
    indices: &[u32],
    vals: &[f32],
    dense: &[f32],
    accumulate: bool,
    row0: usize,
    rows: &mut [f32],
) {
    let m = NL * 8;
    for (i, orow) in rows.chunks_exact_mut(m).enumerate() {
        let r = row0 + i;
        let (s, e) = (indptr[r], indptr[r + 1]);
        let mut acc = [F32x8::zero(); NL];
        let mut acc2 = [F32x8::zero(); NL];
        let (cols, vs) = (&indices[s..e], &vals[s..e]);
        let mut t = 0usize;
        // Safety (all gathers): every stored column index is < n_cols
        // (structural invariant enforced by `from_coo`) and the public
        // entry points assert `dense.len() == n_cols * d`.
        while t + 2 <= cols.len() {
            let (c0, c1) = (cols[t] as usize, cols[t + 1] as usize);
            let (v0, v1) = (F32x8::splat(vs[t]), F32x8::splat(vs[t + 1]));
            let d0 = unsafe { dense.get_unchecked(c0 * m..c0 * m + m) };
            let d1 = unsafe { dense.get_unchecked(c1 * m..c1 * m + m) };
            for l in 0..NL {
                acc[l] = acc[l].mul_acc(v0, F32x8::load(&d0[l * 8..]));
                acc2[l] = acc2[l].mul_acc(v1, F32x8::load(&d1[l * 8..]));
            }
            t += 2;
        }
        if t < cols.len() {
            let c0 = cols[t] as usize;
            let v0 = F32x8::splat(vs[t]);
            let d0 = unsafe { dense.get_unchecked(c0 * m..c0 * m + m) };
            for l in 0..NL {
                acc[l] = acc[l].mul_acc(v0, F32x8::load(&d0[l * 8..]));
            }
        }
        for (l, a) in acc.iter().enumerate() {
            let merged = a.add(acc2[l]);
            if accumulate {
                F32x8::load(&orow[l * 8..])
                    .add(merged)
                    .store(&mut orow[l * 8..]);
            } else {
                merged.store(&mut orow[l * 8..]);
            }
        }
    }
}

/// Generic-width SpMM row kernel: walks the row's nonzeros once per 64-lane
/// column block with a stack accumulator, preserving ascending entry order
/// per output element.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn spmm_span_generic(
    indptr: &[usize],
    indices: &[u32],
    vals: &[f32],
    dense: &[f32],
    d: usize,
    accumulate: bool,
    row0: usize,
    rows: &mut [f32],
) {
    if d == 0 {
        return;
    }
    for (i, orow) in rows.chunks_exact_mut(d).enumerate() {
        let r = row0 + i;
        let (s, e) = (indptr[r], indptr[r + 1]);
        let mut j0 = 0usize;
        while j0 < d {
            let w = (d - j0).min(64);
            let mut acc = [0f32; 64];
            for (c, &v) in indices[s..e].iter().zip(&vals[s..e]) {
                let drow = &dense[*c as usize * d + j0..*c as usize * d + j0 + w];
                for (a, x) in acc[..w].iter_mut().zip(drow) {
                    *a += v * x;
                }
            }
            if accumulate {
                for (o, a) in orow[j0..j0 + w].iter_mut().zip(&acc[..w]) {
                    *o += a;
                }
            } else {
                orow[j0..j0 + w].copy_from_slice(&acc[..w]);
            }
            j0 += w;
        }
    }
}

simd_dispatch! {
    /// Span kernel of the `spmm_ew` weight gradient: one [`dot8`] per
    /// stored entry of the rows in `rr_start..rr_end`, written to the
    /// chunk's disjoint `dw` span.
    #[allow(clippy::too_many_arguments)]
    fn spmm_dw_span(indptr: &[usize], indices: &[u32], h: &[f32], dy: &[f32], d: usize, rr_start: usize, rr_end: usize, dws: &mut [f32]) {
        let mut k = 0usize;
        for r in rr_start..rr_end {
            let cols = &indices[indptr[r]..indptr[r + 1]];
            let grow = &dy[r * d..r * d + d];
            for &c in cols {
                let hrow = &h[c as usize * d..c as usize * d + d];
                dws[k] = dot8(grow, hrow);
                k += 1;
            }
        }
    }
}

simd_dispatch! {
    /// Span kernel of the `spmm_ew` dense gradient over the transposed
    /// traversal plan (see [`Csr::spmm_ew_dh_acc_into`]).
    #[allow(clippy::too_many_arguments)]
    fn dh_span(indptr: &[usize], src_row: &[u32], entry: &[u32], w: &[f32], dy: &[f32], d: usize, row0: usize, rows: &mut [f32]) {
        match d {
            8 => dh_span_lanes::<1>(indptr, src_row, entry, w, dy, row0, rows),
            16 => dh_span_lanes::<2>(indptr, src_row, entry, w, dy, row0, rows),
            32 => dh_span_lanes::<4>(indptr, src_row, entry, w, dy, row0, rows),
            64 => dh_span_lanes::<8>(indptr, src_row, entry, w, dy, row0, rows),
            _ => dh_span_generic(indptr, src_row, entry, w, dy, d, row0, rows),
        }
    }
}

/// Width-specialized `dh` row kernel over `NL` 8-wide lanes: one
/// accumulator file per row, ascending plan-entry order (unchanged from the
/// scalar kernel), added into the output once at row end.
#[inline(always)]
fn dh_span_lanes<const NL: usize>(
    indptr: &[usize],
    src_row: &[u32],
    entry: &[u32],
    w: &[f32],
    dy: &[f32],
    row0: usize,
    rows: &mut [f32],
) {
    let m = NL * 8;
    for (i, orow) in rows.chunks_exact_mut(m).enumerate() {
        let c = row0 + i;
        let (s, e) = (indptr[c], indptr[c + 1]);
        let mut acc = [F32x8::zero(); NL];
        for (sr, en) in src_row[s..e].iter().zip(&entry[s..e]) {
            let wgt = F32x8::splat(w[*en as usize]);
            let grow = &dy[*sr as usize * m..*sr as usize * m + m];
            for (l, lane) in acc.iter_mut().enumerate() {
                *lane = lane.mul_acc(wgt, F32x8::load(&grow[l * 8..]));
            }
        }
        for (l, a) in acc.iter().enumerate() {
            F32x8::load(&orow[l * 8..])
                .add(*a)
                .store(&mut orow[l * 8..]);
        }
    }
}

/// Generic-width `dh` row kernel.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dh_span_generic(
    indptr: &[usize],
    src_row: &[u32],
    entry: &[u32],
    w: &[f32],
    dy: &[f32],
    d: usize,
    row0: usize,
    rows: &mut [f32],
) {
    if d == 0 {
        return;
    }
    for (i, orow) in rows.chunks_exact_mut(d).enumerate() {
        let c = row0 + i;
        let (s, e) = (indptr[c], indptr[c + 1]);
        for (sr, en) in src_row[s..e].iter().zip(&entry[s..e]) {
            let wgt = w[*en as usize];
            let grow = &dy[*sr as usize * d..*sr as usize * d + d];
            for (o, x) in orow.iter_mut().zip(grow) {
                *o += wgt * x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_coo(
            3,
            4,
            vec![(0, 1, 2.0), (0, 3, 1.0), (2, 0, -1.0), (2, 2, 4.0)],
        )
    }

    #[test]
    fn from_coo_builds_sorted_rows() {
        let m = Csr::from_coo(2, 3, vec![(1, 2, 5.0), (0, 1, 1.0), (1, 0, 3.0)]);
        m.check_invariants().unwrap();
        assert_eq!(m.row(0), (&[1u32][..], &[1.0f32][..]));
        assert_eq!(m.row(1), (&[0u32, 2][..], &[3.0f32, 5.0][..]));
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let m = Csr::from_coo(1, 2, vec![(0, 1, 1.0), (0, 1, 2.5), (0, 0, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row(0).1, &[1.0, 3.5]);
    }

    #[test]
    fn empty_rows_have_zero_span() {
        let m = sample();
        m.check_invariants().unwrap();
        assert_eq!(m.row(1).0.len(), 0);
        assert_eq!(m.row_degrees(), vec![2, 0, 2]);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let id = Csr::identity(3);
        let dense: Vec<f32> = (0..6).map(|x| x as f32).collect();
        assert_eq!(id.spmm(&dense, 2), dense);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        let t = m.transpose();
        t.check_invariants().unwrap();
        let dm = m.to_dense();
        let dt = t.to_dense();
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(dm[r * 4 + c], dt[c * 3 + r]);
            }
        }
    }

    #[test]
    fn spmm_matches_dense_reference() {
        let m = sample();
        let d = 2usize;
        let dense: Vec<f32> = (0..8).map(|x| (x as f32) * 0.5 - 1.0).collect();
        let got = m.spmm(&dense, d);
        let dm = m.to_dense();
        for r in 0..3 {
            for k in 0..d {
                let want: f32 = (0..4).map(|c| dm[r * 4 + c] * dense[c * d + k]).sum();
                assert!((got[r * d + k] - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn spmm_acc_into_accumulates() {
        let m = sample();
        let dense: Vec<f32> = (0..8).map(|x| x as f32 * 0.25).collect();
        let once = m.spmm(&dense, 2);
        let mut acc = once.clone();
        m.spmm_acc_into(&dense, 2, &mut acc);
        for (a, o) in acc.iter().zip(&once) {
            assert!((a - 2.0 * o).abs() < 1e-6);
        }
    }

    #[test]
    fn spmm_ew_matches_with_data_spmm() {
        let m = sample();
        let w: Vec<f32> = (0..m.nnz()).map(|i| i as f32 * 0.5 - 1.0).collect();
        let dense: Vec<f32> = (0..8).map(|x| (x as f32) * 0.3 - 0.7).collect();
        let mut out = vec![0f32; 3 * 2];
        m.spmm_ew_into(&w, &dense, 2, &mut out);
        let want = m.with_data(w).spmm(&dense, 2);
        assert_eq!(out, want);
    }

    #[test]
    fn transpose_plan_covers_every_entry_once() {
        let m = sample();
        let p = m.transpose_plan();
        assert_eq!(p.indptr.len(), m.n_cols() + 1);
        let mut seen = vec![0usize; m.nnz()];
        for c in 0..m.n_cols() {
            for e in p.indptr[c]..p.indptr[c + 1] {
                let en = p.entry[e] as usize;
                seen[en] += 1;
                // The entry really lives in column c of row src_row.
                let r = p.src_row[e] as usize;
                let (cols, _) = m.row(r);
                assert!(cols.contains(&(c as u32)));
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn spmm_ew_gradients_match_dense_reference() {
        let m = sample();
        let d = 2usize;
        let w: Vec<f32> = (0..m.nnz()).map(|i| 0.3 + i as f32 * 0.2).collect();
        let h: Vec<f32> = (0..m.n_cols() * d)
            .map(|x| (x as f32) * 0.1 - 0.3)
            .collect();
        let dy: Vec<f32> = (0..m.n_rows() * d).map(|x| 1.0 - x as f32 * 0.15).collect();

        let mut dw = vec![0f32; m.nnz()];
        m.spmm_ew_dw_into(&h, &dy, d, &mut dw);
        let mut dh = vec![0f32; m.n_cols() * d];
        m.spmm_ew_dh_acc_into(&w, &dy, d, &mut dh);

        // Dense reference: Y = (W ∘ P) H, dW_e = dY[r]·H[c], dH = (W∘P)ᵀ dY.
        let coo = m.to_coo();
        for (e, (r, c, _)) in coo.iter().enumerate() {
            let want: f32 = (0..d)
                .map(|j| dy[*r as usize * d + j] * h[*c as usize * d + j])
                .sum();
            assert!((dw[e] - want).abs() < 1e-5, "dw[{e}]");
        }
        let mut want_dh = vec![0f32; m.n_cols() * d];
        for (e, (r, c, _)) in coo.iter().enumerate() {
            for j in 0..d {
                want_dh[*c as usize * d + j] += w[e] * dy[*r as usize * d + j];
            }
        }
        for (a, b) in dh.iter().zip(&want_dh) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn spmv_matches_spmm_single_column() {
        let m = sample();
        let x = vec![1.0, -2.0, 0.5, 3.0];
        assert_eq!(m.spmv(&x), m.spmm(&x, 1));
    }

    #[test]
    fn with_data_keeps_pattern() {
        let m = sample();
        let new = m.with_data(vec![9.0; m.nnz()]);
        assert_eq!(new.indices(), m.indices());
        assert!(new.data().iter().all(|&v| v == 9.0));
    }

    #[test]
    #[should_panic(expected = "value vector must match nnz")]
    fn with_data_rejects_wrong_length() {
        sample().with_data(vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_coo_rejects_out_of_bounds() {
        Csr::from_coo(1, 1, vec![(0, 1, 1.0)]);
    }

    #[test]
    fn to_coo_round_trips() {
        let m = sample();
        let rebuilt = Csr::from_coo(3, 4, m.to_coo());
        assert_eq!(m, rebuilt);
    }

    #[test]
    fn row_sums_are_value_sums() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 3.0]);
    }
}
