//! IVF ANN integration tests: the index build must be bit-deterministic
//! for any thread count, full-probe search must reproduce the exact
//! ranking hex-exactly end to end (engine and TCP), the recall gate must
//! fail closed into the exact path, the response cache must never mix the
//! two scorer modes, and a hot reload must rebuild (and re-gate) the
//! index per generation.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use graphaug_core::GraphAugConfig;
use graphaug_data::{generate, SyntheticConfig};
use graphaug_graph::InteractionGraph;
use graphaug_rng::prop::{check, DEFAULT_CASES};
use graphaug_rng::{prop_assert, prop_assert_eq};
use graphaug_runtime::{checkpoint, Runtime, RuntimeConfig};
use graphaug_serve::{
    parse_ok_line, serve, Engine, IvfIndex, IvfParams, ModelSource, ModelTables, ScoredItem,
};
use graphaug_tensor::Mat;

/// `set_thread_count` is process-global; serialize the tests that flip it.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("graphaug-ann-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn toy_graph() -> InteractionGraph {
    generate(&SyntheticConfig::new(60, 45, 700).clusters(4).seed(21))
}

fn toy_model() -> GraphAugConfig {
    GraphAugConfig::fast_test()
        .seed(5)
        .epochs(4)
        .steps_per_epoch(3)
}

fn train_into(dir: &Path, graph: &InteractionGraph) {
    let mut rt = Runtime::new(RuntimeConfig::new(toy_model()).checkpoint_dir(dir), graph).unwrap();
    rt.run().unwrap();
}

fn hex_list(items: &[ScoredItem]) -> String {
    items
        .iter()
        .map(|s| format!("{}:{:08x}", s.item, s.score.to_bits()))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Full-probe params: every list probed, so ANN output must equal exact.
fn full_probe() -> IvfParams {
    IvfParams::new().nlists(7).nprobe(7)
}

#[test]
fn index_build_is_bit_identical_across_thread_counts() {
    let _guard = lock();
    let graph = toy_graph();
    let dir = TempDir::new("threads");
    train_into(dir.path(), &graph);
    let (generation, state) = checkpoint::load_latest_valid(dir.path()).unwrap();

    let mut runs = Vec::new();
    for threads in [1usize, 3, 4] {
        graphaug_par::set_thread_count(threads);
        let source = ModelSource::new(toy_model(), graph.clone(), dir.path()).ann(IvfParams::new());
        let tables = ModelTables::build(&source, generation, &state, state.fingerprint()).unwrap();
        let ann = tables.ann().expect("index built");
        // The whole build is pinned: quantizer bits, list membership, the
        // recall estimate, and the served lists.
        let mut served = String::new();
        for user in [0u32, 17, 42] {
            let (top, _) = tables.top_k_ann(user, 10).unwrap();
            served.push_str(&hex_list(&top));
            served.push('\n');
        }
        runs.push((
            ann.index().fingerprint(),
            ann.build_recall().to_bits(),
            ann.enabled(),
            served,
        ));
    }
    graphaug_par::set_thread_count(1);
    assert_eq!(runs[0], runs[1], "threads=1 vs threads=3");
    assert_eq!(runs[0], runs[2], "threads=1 vs threads=4");
}

#[test]
fn full_probe_rec_equals_recx_on_the_wire() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let graph = toy_graph();
    let dir = TempDir::new("wire");
    train_into(dir.path(), &graph);
    let source = ModelSource::new(toy_model(), graph.clone(), dir.path()).ann(full_probe());
    let engine = Arc::new(Engine::open(source).unwrap());
    assert!(engine.tables().ann().unwrap().enabled());
    let handle = serve(engine.clone(), "127.0.0.1:0").unwrap();

    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut ask = |req: &str| {
        writeln!(writer, "{req}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };

    for user in [0u32, 9, 33, 59] {
        for k in [1usize, 5, 20] {
            let rec = ask(&format!("REC {user} {k}"));
            let recx = ask(&format!("RECX {user} {k}"));
            // nprobe = nlists: the fast path visits every item, so the two
            // verbs must answer byte-identically.
            assert_eq!(rec, recx, "user={user} k={k}");
            let ok = parse_ok_line(&rec).expect("well-formed OK line");
            let direct = engine.recommend_exact(user, k).unwrap();
            assert_eq!(hex_list(&ok.items), hex_list(&direct.items));
        }
    }
    let stats = ask("STATS");
    assert!(stats.contains(" ann=on "), "{stats}");
}

#[test]
fn narrow_probe_serves_ann_and_self_audits() {
    let graph = toy_graph();
    let dir = TempDir::new("audit");
    train_into(dir.path(), &graph);
    // Narrow probe, audit every ANN-computed list, no floor (this test is
    // about the counters, not quality).
    let params = IvfParams::new()
        .nlists(9)
        .nprobe(3)
        .recall_floor(0.0)
        .audit_every(1);
    let source = ModelSource::new(toy_model(), graph.clone(), dir.path()).ann(params);
    let engine = Engine::open(source).unwrap();
    assert!(engine.tables().ann().unwrap().enabled());

    let n_items = engine.tables().n_items() as u64;
    let served = 30u64;
    for user in 0..served as u32 {
        engine.recommend(user, 10).unwrap();
    }
    let stats = engine.stats();
    assert!(stats.ann_on);
    assert_eq!(stats.ann_probes, served * 3, "3 probes per request");
    assert!(
        stats.ann_cands < served * n_items,
        "a narrow probe must score fewer candidates than exact would \
         ({} vs {})",
        stats.ann_cands,
        served * n_items
    );
    assert_eq!(stats.exact_fallbacks, 0);
    let recall = stats
        .recall_sampled
        .expect("audit_every=1 samples every request");
    assert!((0.0..=1.0).contains(&recall));

    // The exact oracle is untouched by the live index: RECX-path output
    // still matches a from-scratch exact build.
    let plain = Engine::open(ModelSource::new(toy_model(), graph, dir.path())).unwrap();
    for user in [0u32, 29] {
        assert_eq!(
            hex_list(&engine.recommend_exact(user, 10).unwrap().items),
            hex_list(&plain.recommend(user, 10).unwrap().items)
        );
    }
}

#[test]
fn cache_never_mixes_rec_and_recx_entries() {
    let graph = toy_graph();
    let dir = TempDir::new("modekey");
    train_into(dir.path(), &graph);
    let source = ModelSource::new(toy_model(), graph, dir.path()).ann(full_probe());
    let engine = Engine::open(source).unwrap();

    // Same (user, k, generation), four calls alternating modes: each mode
    // must miss once and then hit its *own* entry.
    assert!(!engine.recommend(5, 8).unwrap().from_cache);
    assert!(engine.recommend(5, 8).unwrap().from_cache);
    assert!(
        !engine.recommend_exact(5, 8).unwrap().from_cache,
        "an exact request must not be answered from the ANN entry"
    );
    assert!(engine.recommend_exact(5, 8).unwrap().from_cache);
    let stats = engine.stats();
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_misses, 2);
}

#[test]
fn recall_gate_refuses_and_serving_falls_back_to_exact() {
    let graph = toy_graph();
    let dir = TempDir::new("gate");
    train_into(dir.path(), &graph);
    // An unsatisfiable floor: the build must keep the index but disable it.
    let params = IvfParams::new().nlists(9).nprobe(1).recall_floor(1.1);
    let source = ModelSource::new(toy_model(), graph.clone(), dir.path()).ann(params);
    let engine = Engine::open(source).unwrap();
    let tables = engine.tables();
    let ann = tables.ann().expect("index still built and reported");
    assert!(!ann.enabled());

    let rec = engine.recommend(3, 10).unwrap();
    let plain = Engine::open(ModelSource::new(toy_model(), graph, dir.path())).unwrap();
    assert_eq!(
        hex_list(&rec.items),
        hex_list(&plain.recommend(3, 10).unwrap().items),
        "disabled index must serve the exact ranking"
    );
    let stats = engine.stats();
    assert!(!stats.ann_on);
    assert_eq!(stats.exact_fallbacks, 1);
    assert_eq!(stats.ann_probes, 0);
    assert!(stats.recall_sampled.is_none());
}

/// Property: for *any* embedding matrix and index geometry, the IVF build
/// is bit-identical at every thread count — fingerprint covers quantizer
/// bits, list membership, and the packed rows.
#[test]
fn prop_index_build_is_thread_count_invariant() {
    let _guard = lock();
    check("ann_build_thread_invariant", DEFAULT_CASES / 4, |g| {
        let n_items = g.len_in(4, 120);
        let dim = g.len_in(2, 20);
        let data = g.vec_of(n_items * dim, |g| g.random_range(-2.0f32..2.0));
        let items = Mat::from_vec(n_items, dim, data);
        let params = IvfParams::new()
            .nlists(g.len_in(1, 12))
            .seed(g.random_range(0..u64::MAX));

        let mut prints = Vec::new();
        for threads in [1usize, 3, 4] {
            graphaug_par::set_thread_count(threads);
            prints.push(IvfIndex::build(&items, &params).fingerprint());
        }
        graphaug_par::set_thread_count(1);
        prop_assert_eq!(prints[0], prints[1]);
        prop_assert_eq!(prints[0], prints[2]);
        Ok(())
    });
}

/// Property: with `nprobe = nlists` the ANN path is hex-identical to the
/// exact scorer for any embeddings, geometry, and `k` — including
/// duplicate-heavy scores, where the shared total-order tie-break (equal
/// score → lower index) is what keeps the two paths aligned.
#[test]
fn prop_full_probe_matches_exact_hex_under_ties() {
    check("ann_full_probe_parity", DEFAULT_CASES / 4, |g| {
        let n_users = g.len_in(2, 16);
        let n_items = g.len_in(4, 90);
        let dim = g.len_in(2, 10);
        // A tiny value palette makes duplicate dot products near-certain,
        // so ties are exercised on every case, not by luck.
        let palette = [-1.0f32, -0.5, 0.0, 0.5, 1.0];
        let draw = |g: &mut graphaug_rng::prop::Gen, n: usize| {
            g.vec_of(n, |g| palette[g.random_range(0..palette.len())])
        };
        let users = draw(g, n_users * dim);
        let items = draw(g, n_items * dim);
        let graph = generate(
            &SyntheticConfig::new(n_users, n_items, 2 * n_users).seed(g.random_range(0..1 << 32)),
        );
        let nlists = g.len_in(1, 9);
        let params = IvfParams::new()
            .nlists(nlists)
            .nprobe(nlists)
            .recall_floor(0.0)
            .seed(g.random_range(0..u64::MAX));

        let ann_tables = ModelTables::from_embeddings(
            Mat::from_vec(n_users, dim, users.clone()),
            Mat::from_vec(n_items, dim, items.clone()),
            graph.clone(),
            1,
            Some(&params),
            None,
        );
        let exact_tables = ModelTables::from_embeddings(
            Mat::from_vec(n_users, dim, users),
            Mat::from_vec(n_items, dim, items),
            graph,
            1,
            None,
            None,
        );
        prop_assert!(ann_tables.ann().expect("index built").enabled());

        let k = g.len_in(1, n_items + 4);
        for user in 0..n_users as u32 {
            let (approx, how) = ann_tables.top_k_ann(user, k).map_err(|e| e.to_string())?;
            prop_assert!(how.used_ann);
            let exact = exact_tables.top_k(user, k).map_err(|e| e.to_string())?;
            prop_assert_eq!(hex_list(&approx), hex_list(&exact));
        }
        Ok(())
    });
}

#[test]
fn hot_reload_rebuilds_and_regates_the_index() {
    let graph = toy_graph();
    let stage = TempDir::new("regate-stage");
    train_into(stage.path(), &graph);
    let generations = checkpoint::list_generations(stage.path());
    assert!(generations.len() >= 2, "need two generations to swap");

    // Serve the oldest generation with ANN on, then reveal the newest.
    let dir = TempDir::new("regate");
    let first = generations.first().unwrap();
    let last = generations.last().unwrap();
    fs::copy(
        checkpoint::generation_path(stage.path(), *first),
        checkpoint::generation_path(dir.path(), *first),
    )
    .unwrap();
    let source = ModelSource::new(toy_model(), graph, dir.path()).ann(full_probe());
    let engine = Engine::open(source).unwrap();
    let before = engine.tables();
    assert_eq!(before.generation(), *first);
    assert!(before.ann().unwrap().enabled());

    fs::copy(
        checkpoint::generation_path(stage.path(), *last),
        checkpoint::generation_path(dir.path(), *last),
    )
    .unwrap();
    assert_eq!(engine.reload_if_newer().unwrap(), Some(*last));
    let after = engine.tables();
    assert_eq!(after.generation(), *last);
    let ann = after.ann().expect("reload rebuilds the index");
    assert!(ann.enabled(), "gate re-ran on the new tables");
    // The new index quantizes the *new* embeddings — full-probe output must
    // match the new generation's exact ranking.
    let (top, how) = after.top_k_ann(11, 10).unwrap();
    assert!(how.used_ann);
    assert_eq!(hex_list(&top), hex_list(&after.top_k(11, 10).unwrap()));
}
