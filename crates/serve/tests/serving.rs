//! Serving integration tests: the served ranking must be bit-identical to
//! the offline `graphaug-eval` ranking for the same checkpoint (at several
//! thread counts), hot reload must never tear or drop an in-flight
//! request, the response cache must be generation-keyed and bit-faithful,
//! and the TCP protocol must round-trip scores exactly.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use graphaug_core::{GraphAug, GraphAugConfig};
use graphaug_data::{generate, SyntheticConfig};
use graphaug_eval::{evaluate, topk_indices, Recommender};
use graphaug_graph::{InteractionGraph, TrainTestSplit};
use graphaug_runtime::checkpoint::{generation_path, list_generations};
use graphaug_runtime::{Checkpointer, Runtime, RuntimeConfig};
use graphaug_serve::{
    parse_ok_line, serve, spawn_watcher, Engine, ModelSource, ModelTables, ScoredItem,
};

/// `set_thread_count` is process-global; serialize the tests that flip it.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A unique, self-cleaning directory per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("graphaug-serve-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn toy_graph() -> InteractionGraph {
    generate(&SyntheticConfig::new(60, 45, 700).clusters(4).seed(21))
}

fn toy_model() -> GraphAugConfig {
    GraphAugConfig::fast_test()
        .seed(5)
        .epochs(4)
        .steps_per_epoch(3)
}

/// Trains the toy model to completion, leaving checkpoints under `dir`.
fn train_into(dir: &Path, graph: &InteractionGraph) {
    let mut rt = Runtime::new(RuntimeConfig::new(toy_model()).checkpoint_dir(dir), graph).unwrap();
    rt.run().unwrap();
}

/// Bit-exact rendering of a ranked list.
fn hex_list(items: &[ScoredItem]) -> String {
    items
        .iter()
        .map(|s| format!("{}:{:08x}", s.item, s.score.to_bits()))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The offline ranking exactly as `graphaug-eval` computes it: score all
/// items through the `Recommender` trait, mask train items to `-inf`,
/// bounded-heap top-K.
fn offline_hex(model: &dyn Recommender, graph: &InteractionGraph, user: u32, k: usize) -> String {
    let mut scores = model.score_items(user as usize);
    for &v in graph.items_of(user as usize) {
        scores[v as usize] = f32::NEG_INFINITY;
    }
    let ranked = topk_indices(&scores, k);
    hex_list(
        &ranked
            .iter()
            .map(|&i| ScoredItem {
                item: i,
                score: scores[i as usize],
            })
            .collect::<Vec<_>>(),
    )
}

#[test]
fn served_topk_is_bit_identical_to_offline_eval_at_1_and_4_threads() {
    let _guard = lock();
    let graph = toy_graph();
    let split = TrainTestSplit::per_user(&graph, 0.25, 3);
    let dir = TempDir::new("parity");
    train_into(dir.path(), &split.train);

    // Offline side: the training-restore path, independent of the serving
    // table builder.
    let (generation, state) =
        graphaug_runtime::checkpoint::load_latest_valid(dir.path()).expect("trained checkpoints");
    let mut offline = GraphAug::new(toy_model(), &split.train);
    offline.restore_training_state(&state.model).unwrap();

    let source = ModelSource::new(toy_model(), split.train.clone(), dir.path());
    let mut per_thread_outputs: Vec<String> = Vec::new();
    for threads in [1usize, 4] {
        graphaug_par::set_thread_count(threads);
        let engine = Engine::open(source.clone()).unwrap();
        assert_eq!(engine.stats().generation, generation);

        let mut all = String::new();
        for user in 0..split.train.n_users() as u32 {
            for k in [1usize, 7, 20] {
                let served = engine.recommend(user, k).unwrap();
                let served_hex = hex_list(&served.items);
                let expect = offline_hex(&offline, &split.train, user, k);
                assert_eq!(
                    served_hex, expect,
                    "user {user} k {k} at {threads} threads: served ranking \
                     must equal offline eval bit-for-bit"
                );
                all.push_str(&served_hex);
                all.push('\n');
            }
        }
        per_thread_outputs.push(all);

        // Aggregate-metric parity through the eval harness itself.
        let tables = engine.tables();
        assert_eq!(
            evaluate(tables.as_ref(), &split, &[5, 20]).bitline(),
            evaluate(&offline, &split, &[5, 20]).bitline(),
            "EvalResult bitlines must match at {threads} threads"
        );
    }
    graphaug_par::set_thread_count(1);
    assert_eq!(
        per_thread_outputs[0], per_thread_outputs[1],
        "served output must be thread-count invariant"
    );
}

#[test]
fn batched_requests_match_single_requests_and_share_one_generation() {
    let graph = toy_graph();
    let dir = TempDir::new("batch");
    train_into(dir.path(), &graph);
    let engine = Engine::open(ModelSource::new(toy_model(), graph.clone(), dir.path())).unwrap();

    let requests: Vec<(u32, usize)> = (0..graph.n_users() as u32).map(|u| (u, 9)).collect();
    let batch = engine.recommend_batch(&requests);
    assert_eq!(batch.len(), requests.len());
    let gen0 = engine.stats().generation;
    for (result, &(user, k)) in batch.iter().zip(&requests) {
        let rec = result.as_ref().unwrap();
        assert_eq!(rec.user, user);
        assert_eq!(rec.generation, gen0, "whole batch serves one generation");
        let single = engine.recommend(user, k).unwrap();
        assert_eq!(hex_list(&rec.items), hex_list(&single.items));
    }

    // Out-of-range users fail cleanly without poisoning the batch.
    let mixed = engine.recommend_batch(&[(0, 5), (9999, 5), (1, 5)]);
    assert!(mixed[0].is_ok());
    assert!(mixed[1].is_err());
    assert!(mixed[2].is_ok());
}

#[test]
fn response_cache_is_bit_faithful_and_generation_keyed() {
    let graph = toy_graph();
    let dir = TempDir::new("cache");
    train_into(dir.path(), &graph);
    let engine = Engine::open(ModelSource::new(toy_model(), graph, dir.path())).unwrap();

    let cold = engine.recommend(3, 8).unwrap();
    assert!(!cold.from_cache);
    let warm = engine.recommend(3, 8).unwrap();
    assert!(warm.from_cache, "second identical request hits the cache");
    assert_eq!(hex_list(&cold.items), hex_list(&warm.items));
    let stats = engine.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);

    // A different k is a different key.
    let other = engine.recommend(3, 9).unwrap();
    assert!(!other.from_cache);
}

/// Replays training epoch by epoch, copying every checkpoint file aside
/// before the retention policy prunes it. Returns `(gen, file_bytes)` in
/// ascending generation order.
fn all_generations(graph: &InteractionGraph) -> Vec<(u64, Vec<u8>)> {
    let dir = TempDir::new("stage");
    let mut rt = Runtime::new(
        RuntimeConfig::new(toy_model()).checkpoint_dir(dir.path()),
        graph,
    )
    .unwrap();
    let mut kept: Vec<(u64, Vec<u8>)> = Vec::new();
    for epoch in 1..=4u64 {
        rt.run_until(epoch).unwrap();
        for generation in list_generations(dir.path()) {
            if kept.iter().all(|&(g, _)| g != generation) {
                let bytes = fs::read(generation_path(dir.path(), generation)).unwrap();
                kept.push((generation, bytes));
            }
        }
    }
    kept.sort_by_key(|&(g, _)| g);
    kept
}

#[test]
fn hot_reload_is_atomic_under_concurrent_readers() {
    let graph = toy_graph();
    let generations = all_generations(&graph);
    assert!(generations.len() >= 3, "need several generations to swap");

    // Expected bit-exact answer for every (generation, user) the readers
    // can observe, built straight from the checkpoint bytes.
    let source = ModelSource::new(toy_model(), graph.clone(), Path::new("/unused"));
    let users: Vec<u32> = (0..graph.n_users() as u32).collect();
    const K: usize = 10;
    let mut expected: std::collections::HashMap<(u64, u32), String> =
        std::collections::HashMap::new();
    let stage = TempDir::new("expect");
    for (generation, bytes) in &generations {
        let path = generation_path(stage.path(), *generation);
        fs::write(&path, bytes).unwrap();
        let state = Checkpointer::load(&path).unwrap();
        let tables = ModelTables::build(&source, *generation, &state, state.fingerprint()).unwrap();
        for &user in &users {
            expected.insert(
                (*generation, user),
                hex_list(&tables.top_k(user, K).unwrap()),
            );
        }
    }

    // Serve the oldest generation, then feed newer ones in while readers
    // hammer the engine from four threads.
    let dir = TempDir::new("reload");
    let (first, rest) = generations.split_first().unwrap();
    fs::write(generation_path(dir.path(), first.0), &first.1).unwrap();
    let engine =
        Arc::new(Engine::open(ModelSource::new(toy_model(), graph.clone(), dir.path())).unwrap());
    assert_eq!(engine.stats().generation, first.0);

    let stop = Arc::new(AtomicBool::new(false));
    let expected = Arc::new(expected);
    let mut readers = Vec::new();
    for reader in 0..4u32 {
        let engine = engine.clone();
        let stop = stop.clone();
        let expected = expected.clone();
        let users = users.clone();
        readers.push(std::thread::spawn(move || {
            let mut observed = Vec::new();
            let mut last_gen = 0u64;
            let mut i = reader as usize;
            while !stop.load(Ordering::Relaxed) {
                let user = users[i % users.len()];
                i += 1;
                let rec = engine.recommend(user, K).expect("serving never fails");
                // A response must be *exactly* the answer of some single
                // generation — any torn table would produce a hex line
                // matching no generation at all.
                let want = expected
                    .get(&(rec.generation, user))
                    .expect("response claims a known generation");
                assert_eq!(
                    &hex_list(&rec.items),
                    want,
                    "reader {reader}: torn or stale response for user {user} \
                     at generation {}",
                    rec.generation
                );
                assert!(
                    rec.generation >= last_gen,
                    "generation must never move backwards within a connection"
                );
                last_gen = rec.generation;
                observed.push(rec.generation);
            }
            observed
        }));
    }

    // Roll the remaining generations out one at a time.
    let mut swapped = Vec::new();
    for (generation, bytes) in rest {
        std::thread::sleep(std::time::Duration::from_millis(15));
        fs::write(generation_path(dir.path(), *generation), bytes).unwrap();
        let result = engine.reload_if_newer().unwrap();
        assert_eq!(result, Some(*generation));
        swapped.push(*generation);
    }
    std::thread::sleep(std::time::Duration::from_millis(15));
    stop.store(true, Ordering::Relaxed);

    let mut seen_gens = std::collections::BTreeSet::new();
    let mut total = 0usize;
    for handle in readers {
        let observed = handle.join().expect("reader must not panic");
        total += observed.len();
        seen_gens.extend(observed);
    }
    assert!(total > 0, "readers actually served requests");
    assert!(
        seen_gens.len() >= 2,
        "readers should observe at least two generations across the \
         swaps (saw {seen_gens:?})"
    );
    let stats = engine.stats();
    assert_eq!(stats.reloads, swapped.len() as u64);
    assert_eq!(stats.generation, *swapped.last().unwrap());
    assert_eq!(stats.reload_errors, 0);
}

#[test]
fn identical_checkpoint_under_a_newer_generation_is_rebadged_not_rebuilt() {
    let graph = toy_graph();
    let dir = TempDir::new("skip");
    train_into(dir.path(), &graph);
    let engine = Engine::open(ModelSource::new(toy_model(), graph.clone(), dir.path())).unwrap();
    let serving = engine.stats().generation;
    let before = engine.recommend(5, 10).unwrap();

    // Re-publish the serving checkpoint's bytes under the next generation
    // number (a backfill / checkpoint-dir restore). The state is
    // byte-identical, so the reload must take the fingerprint fast path:
    // no decode-forward-quantize-gate rebuild, just a rebadge.
    let bytes = fs::read(generation_path(dir.path(), serving)).unwrap();
    fs::write(generation_path(dir.path(), serving + 1), &bytes).unwrap();
    assert_eq!(engine.reload_if_newer().unwrap(), Some(serving + 1));
    let stats = engine.stats();
    assert_eq!(stats.generation, serving + 1);
    assert_eq!(
        stats.reload_skips, 1,
        "identical state must skip the rebuild"
    );
    assert_eq!(
        stats.reloads, 0,
        "no full rebuild may run for identical state"
    );

    // Served bits are unchanged; only the generation badge moved (and with
    // it the cache keying, so the fresh generation recomputes its entry).
    let after = engine.recommend(5, 10).unwrap();
    assert_eq!(after.generation, serving + 1);
    assert_eq!(hex_list(&before.items), hex_list(&after.items));

    // A genuinely different state under a yet-newer generation still takes
    // the full rebuild path and refreshes the fingerprint.
    let earlier = all_generations(&graph)
        .into_iter()
        .next()
        .expect("staged generations");
    assert_ne!(earlier.1, bytes, "staged generation differs from final");
    fs::write(generation_path(dir.path(), serving + 2), &earlier.1).unwrap();
    assert_eq!(engine.reload_if_newer().unwrap(), Some(serving + 2));
    let stats = engine.stats();
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.reload_skips, 1);
}

#[test]
fn watcher_picks_up_new_generations_in_the_background() {
    let graph = toy_graph();
    let generations = all_generations(&graph);
    let (first, rest) = generations.split_first().unwrap();

    let dir = TempDir::new("watch");
    fs::write(generation_path(dir.path(), first.0), &first.1).unwrap();
    let engine = Arc::new(Engine::open(ModelSource::new(toy_model(), graph, dir.path())).unwrap());
    let watcher = spawn_watcher(engine.clone(), std::time::Duration::from_millis(2));

    let (last_gen, last_bytes) = rest.last().unwrap();
    fs::write(generation_path(dir.path(), *last_gen), last_bytes).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while engine.stats().generation != *last_gen {
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never swapped to generation {last_gen}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    watcher.stop();
    assert_eq!(engine.stats().reloads, 1);
}

#[test]
fn tcp_round_trip_matches_the_engine_bit_exactly() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let graph = toy_graph();
    let dir = TempDir::new("tcp");
    train_into(dir.path(), &graph);
    let engine = Arc::new(Engine::open(ModelSource::new(toy_model(), graph, dir.path())).unwrap());
    let handle = serve(engine.clone(), "127.0.0.1:0").unwrap();

    fn recv(reader: &mut BufReader<TcpStream>) -> String {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }
    fn ask(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
        writeln!(writer, "{req}").unwrap();
        recv(reader)
    }

    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    assert_eq!(ask(&mut writer, &mut reader, "PING"), "PONG");

    // Single REC: the wire bits must equal the in-process answer exactly.
    let direct = engine.recommend(7, 5).unwrap();
    let ok = parse_ok_line(&ask(&mut writer, &mut reader, "REC 7 5")).expect("well-formed OK line");
    assert_eq!(ok.user, 7);
    assert_eq!(ok.k, 5);
    assert_eq!(ok.gen, direct.generation);
    assert_eq!(hex_list(&ok.items), hex_list(&direct.items));

    // Multi-user REC answers one line per user, in request order.
    writeln!(writer, "REC 1,2,3 4").unwrap();
    for expect_user in [1u32, 2, 3] {
        let ok = parse_ok_line(&recv(&mut reader)).expect("well-formed OK line");
        assert_eq!(ok.user, expect_user);
        let direct = engine.recommend(expect_user, 4).unwrap();
        assert_eq!(hex_list(&ok.items), hex_list(&direct.items));
    }

    assert!(ask(&mut writer, &mut reader, "REC 99999 5").starts_with("ERR "));
    assert!(ask(&mut writer, &mut reader, "BOGUS").starts_with("ERR "));
    let stats_line = ask(&mut writer, &mut reader, "STATS");
    assert!(stats_line.starts_with("STATS gen="), "got {stats_line:?}");
    assert_eq!(ask(&mut writer, &mut reader, "QUIT"), "BYE");
    handle.stop();
}
