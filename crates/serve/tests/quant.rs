//! Int8 quantization integration tests: the quantizer must be
//! bit-deterministic for any thread count, the integer kernel must agree
//! between lane and scalar builds, quantized IVF full-probe must equal the
//! quantized full scan hex-exactly, the drift gate must fail closed into
//! the f32 path (serving bits hex-identical to the `RECX` oracle), the
//! response cache must never mix scorer modes, a hot reload must
//! re-quantize and re-gate per generation, and the wire-level `STATS`
//! must carry the quant fields.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use graphaug_core::GraphAugConfig;
use graphaug_data::{generate, SyntheticConfig};
use graphaug_graph::InteractionGraph;
use graphaug_rng::prop::{check, DEFAULT_CASES};
use graphaug_rng::{prop_assert, prop_assert_eq};
use graphaug_runtime::{checkpoint, Runtime, RuntimeConfig};
use graphaug_serve::{
    parse_ok_line, serve, Engine, IvfParams, ModelSource, ModelTables, QuantParams, QuantRows,
    ScoredItem,
};
use graphaug_tensor::Mat;

/// `set_thread_count`/`set_simd_enabled` are process-global; serialize the
/// tests that flip them.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("graphaug-quant-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn toy_graph() -> InteractionGraph {
    generate(&SyntheticConfig::new(60, 45, 700).clusters(4).seed(21))
}

fn toy_model() -> GraphAugConfig {
    GraphAugConfig::fast_test()
        .seed(5)
        .epochs(4)
        .steps_per_epoch(3)
}

fn train_into(dir: &Path, graph: &InteractionGraph) {
    let mut rt = Runtime::new(RuntimeConfig::new(toy_model()).checkpoint_dir(dir), graph).unwrap();
    rt.run().unwrap();
}

fn hex_list(items: &[ScoredItem]) -> String {
    items
        .iter()
        .map(|s| format!("{}:{:08x}", s.item, s.score.to_bits()))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Property: for any matrix — including all-zero rows and rows dominated
/// by a single outlier — dequantizing recovers every weight to within half
/// a quantization step (`scale / 2`), the symmetric-rounding error bound.
#[test]
fn prop_quantize_roundtrip_error_is_bounded_by_half_a_step() {
    check("quant_roundtrip_bound", DEFAULT_CASES / 2, |g| {
        let rows = g.len_in(1, 24);
        let dim = g.len_in(1, 40);
        let mut data = g.vec_of(rows * dim, |g| g.random_range(-8.0f32..8.0));
        // Force the edge geometries on (deterministically chosen) rows: an
        // all-zero row (scale 0) and a single-outlier row (every other
        // weight lands in the lowest quantization bins).
        let zero_row = g.random_range(0..rows);
        data[zero_row * dim..(zero_row + 1) * dim].fill(0.0);
        if rows > 1 {
            let outlier_row = (zero_row + 1) % rows;
            let span = &mut data[outlier_row * dim..(outlier_row + 1) * dim];
            for v in span.iter_mut() {
                *v = g.random_range(-0.05f32..0.05);
            }
            span[dim - 1] = 120.0;
        }
        let m = Mat::from_vec(rows, dim, data.clone());
        let q = QuantRows::quantize(&m);
        let back = q.dequantize();
        for r in 0..rows {
            let scale = q.scale(r);
            prop_assert!(scale >= 0.0);
            for c in 0..dim {
                let err = (back.row(r)[c] - data[r * dim + c]).abs();
                // f32 slack for the dequant multiply itself.
                prop_assert!(
                    err <= scale / 2.0 + scale * 1e-5,
                    "row {r} col {c}: err {err} vs scale {scale}"
                );
            }
        }
        Ok(())
    });
}

/// Property: `dot8_i8` is bit-identical between the lane kernel and the
/// scalar fallback, at every supported thread count — the integer
/// accumulation is exact, so there is nothing to round differently.
#[test]
fn prop_dot8_i8_lane_and_scalar_agree_at_every_thread_count() {
    let _guard = lock();
    check("quant_dot_lane_scalar_parity", DEFAULT_CASES / 2, |g| {
        let n = g.len_in(0, 200);
        let a = g.vec_of(n, |g| g.random_range(-128i64..128) as i8);
        let b = g.vec_of(n, |g| g.random_range(-128i64..128) as i8);
        let mut results = Vec::new();
        for threads in [1usize, 3, 4] {
            graphaug_par::set_thread_count(threads);
            for simd in [true, false] {
                graphaug_par::set_simd_enabled(simd);
                results.push(graphaug_par::dot8_i8(&a, &b));
            }
        }
        graphaug_par::set_simd_enabled(true);
        graphaug_par::set_thread_count(1);
        for &r in &results {
            prop_assert_eq!(results[0], r);
        }
        Ok(())
    });
}

/// Property: quantization produces byte-identical tables (fingerprint over
/// every int8 weight and every scale's bits) at every thread count.
#[test]
fn prop_quantization_is_byte_deterministic_across_thread_counts() {
    let _guard = lock();
    check("quant_thread_determinism", DEFAULT_CASES / 4, |g| {
        let rows = g.len_in(1, 60);
        let dim = g.len_in(1, 24);
        let data = g.vec_of(rows * dim, |g| g.random_range(-4.0f32..4.0));
        let m = Mat::from_vec(rows, dim, data);
        let mut prints = Vec::new();
        for threads in [1usize, 3, 4] {
            graphaug_par::set_thread_count(threads);
            prints.push(QuantRows::quantize(&m).fingerprint());
        }
        graphaug_par::set_thread_count(1);
        prop_assert_eq!(prints[0], prints[1]);
        prop_assert_eq!(prints[0], prints[2]);
        Ok(())
    });
}

/// The quantized IVF probe visits every list ⇒ its output must be
/// hex-identical to the quantized full scan (the integer scores of the
/// same items are exactly equal, and both paths share the tie-break).
#[test]
fn quant_full_probe_equals_quant_full_scan_hex() {
    let graph = toy_graph();
    let dir = TempDir::new("fullprobe");
    train_into(dir.path(), &graph);
    let (generation, state) = checkpoint::load_latest_valid(dir.path()).unwrap();

    let full_probe = IvfParams::new().nlists(7).nprobe(7).recall_floor(0.0);
    let ivf_source = ModelSource::new(toy_model(), graph.clone(), dir.path())
        .ann(full_probe)
        .quant(QuantParams::new().drift_floor(0.0));
    let scan_source =
        ModelSource::new(toy_model(), graph, dir.path()).quant(QuantParams::new().drift_floor(0.0));
    let ivf_tables =
        ModelTables::build(&ivf_source, generation, &state, state.fingerprint()).unwrap();
    let scan_tables =
        ModelTables::build(&scan_source, generation, &state, state.fingerprint()).unwrap();
    assert!(ivf_tables.quant().unwrap().ivf().is_some());
    assert!(scan_tables.quant().unwrap().ivf().is_none());

    for user in [0u32, 17, 42, 59] {
        for k in [1usize, 5, 20] {
            let (via_ivf, how) = ivf_tables.top_k_quant(user, k).unwrap();
            assert!(how.used_quant);
            let (via_scan, how) = scan_tables.top_k_quant(user, k).unwrap();
            assert!(how.used_quant);
            assert_eq!(hex_list(&via_ivf), hex_list(&via_scan), "user={user} k={k}");
        }
    }
}

/// The fail-closed acceptance check: an impossible drift floor disables
/// the quantized path, and `REC` then serves f32 bits **hex-identical** to
/// the pinned `RECX` oracle — on the wire, byte for byte.
#[test]
fn impossible_drift_floor_serves_f32_bits_identical_to_recx() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let graph = toy_graph();
    let dir = TempDir::new("gate");
    train_into(dir.path(), &graph);
    let source = ModelSource::new(toy_model(), graph.clone(), dir.path())
        .quant(QuantParams::new().drift_floor(1.1));
    let engine = Arc::new(Engine::open(source).unwrap());
    let tables = engine.tables();
    let qb = tables.quant().expect("tables still built and reported");
    assert!(!qb.enabled(), "an impossible floor must refuse the gate");
    assert!(qb.build_drift() <= 1.0);

    let handle = serve(engine.clone(), "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut ask = |req: &str| {
        writeln!(writer, "{req}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };

    for user in [0u32, 9, 33, 59] {
        for k in [1usize, 5, 20] {
            let rec = ask(&format!("REC {user} {k}"));
            let recx = ask(&format!("RECX {user} {k}"));
            assert_eq!(rec, recx, "user={user} k={k}");
            parse_ok_line(&rec).expect("well-formed OK line");
        }
    }
    let stats = ask("STATS");
    assert!(stats.contains(" quant=off "), "{stats}");

    // Belt and braces: the engine-level bits equal a quant-free build's.
    let plain = Engine::open(ModelSource::new(toy_model(), graph, dir.path())).unwrap();
    for user in [0u32, 44] {
        assert_eq!(
            hex_list(&engine.recommend(user, 10).unwrap().items),
            hex_list(&plain.recommend(user, 10).unwrap().items)
        );
    }
}

/// Same `(user, k, generation)` through `REC` (quant mode) and `RECX`:
/// each mode must miss once and then hit its own cache entry, never the
/// other mode's.
#[test]
fn cache_never_mixes_quant_and_exact_entries() {
    let graph = toy_graph();
    let dir = TempDir::new("modekey");
    train_into(dir.path(), &graph);
    let source =
        ModelSource::new(toy_model(), graph, dir.path()).quant(QuantParams::new().drift_floor(0.0));
    let engine = Engine::open(source).unwrap();
    assert!(engine.tables().quant().unwrap().enabled());

    assert!(!engine.recommend(5, 8).unwrap().from_cache);
    assert!(engine.recommend(5, 8).unwrap().from_cache);
    assert!(
        !engine.recommend_exact(5, 8).unwrap().from_cache,
        "an exact request must not be answered from the quant entry"
    );
    assert!(engine.recommend_exact(5, 8).unwrap().from_cache);
    let stats = engine.stats();
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.quant_served, 1, "one uncached quant list");
}

/// The every-Nth self-audit samples drift online and reports it through
/// `EngineStats` (and the `STATS` wire line renders it).
#[test]
fn quant_self_audit_reports_sampled_drift() {
    let graph = toy_graph();
    let dir = TempDir::new("audit");
    train_into(dir.path(), &graph);
    let source = ModelSource::new(toy_model(), graph, dir.path())
        .quant(QuantParams::new().drift_floor(0.0).audit_every(1));
    let engine = Engine::open(source).unwrap();
    assert!(engine.tables().quant().unwrap().enabled());

    for user in 0..30u32 {
        engine.recommend(user, 10).unwrap();
    }
    let stats = engine.stats();
    assert!(stats.quant_on);
    assert_eq!(stats.quant_served, 30);
    assert!(stats.table_bytes > 0);
    let drift = stats
        .drift_sampled
        .expect("audit_every=1 samples every request");
    assert!((0.0..=1.0).contains(&drift));
    assert_eq!(stats.exact_fallbacks, 0);
}

/// A hot reload re-quantizes the *new* generation's embeddings and
/// re-runs the drift gate — quantized serving after the swap reflects the
/// new tables.
#[test]
fn hot_reload_requantizes_and_regates() {
    let graph = toy_graph();
    let stage = TempDir::new("regate-stage");
    train_into(stage.path(), &graph);
    let generations = checkpoint::list_generations(stage.path());
    assert!(generations.len() >= 2, "need two generations to swap");

    let dir = TempDir::new("regate");
    let first = generations.first().unwrap();
    let last = generations.last().unwrap();
    fs::copy(
        checkpoint::generation_path(stage.path(), *first),
        checkpoint::generation_path(dir.path(), *first),
    )
    .unwrap();
    let source =
        ModelSource::new(toy_model(), graph, dir.path()).quant(QuantParams::new().drift_floor(0.0));
    let engine = Engine::open(source).unwrap();
    let before = engine.tables();
    assert_eq!(before.generation(), *first);
    let drift_before = before.quant().unwrap().build_drift();
    let print_before = before.quant().unwrap().user_rows().fingerprint();

    fs::copy(
        checkpoint::generation_path(stage.path(), *last),
        checkpoint::generation_path(dir.path(), *last),
    )
    .unwrap();
    assert_eq!(engine.reload_if_newer().unwrap(), Some(*last));
    let after = engine.tables();
    assert_eq!(after.generation(), *last);
    let qb = after.quant().expect("reload rebuilds the quant tables");
    assert!(qb.enabled(), "gate re-ran on the new tables");
    assert_ne!(
        qb.user_rows().fingerprint(),
        print_before,
        "new generation must re-quantize new embeddings"
    );
    // The re-gate measured the *new* tables (usually a different estimate;
    // at minimum it is a fresh, valid one).
    assert!((0.0..=1.0).contains(&qb.build_drift()));
    let _ = drift_before;
    // Served quant output matches a from-scratch build of the new
    // generation, bit for bit.
    let (generation, state) = checkpoint::load_latest_valid(dir.path()).unwrap();
    assert_eq!(generation, *last);
    let fresh =
        ModelTables::build(engine.source(), generation, &state, state.fingerprint()).unwrap();
    let (reloaded, _) = after.top_k_quant(11, 10).unwrap();
    let (scratch, _) = fresh.top_k_quant(11, 10).unwrap();
    assert_eq!(hex_list(&reloaded), hex_list(&scratch));
}
