//! Immutable serving tables materialized from one training checkpoint.
//!
//! A [`ModelTables`] is everything a request needs, frozen at build time:
//! the final user/item embedding matrices (one inference forward pass over
//! the clean graph), the per-user seen-item lists for filtering, and the
//! checkpoint generation the tables came from. Instances are immutable
//! after construction and shared behind an `Arc`, which is what makes the
//! engine's hot swap safe: a request that started on generation N keeps
//! its `Arc<ModelTables>` alive until it finishes, no matter how many
//! swaps land meanwhile.

use std::path::{Path, PathBuf};

use graphaug_core::{GraphAug, GraphAugConfig};
use graphaug_eval::{topk_indices, Recommender};
use graphaug_graph::InteractionGraph;
use graphaug_runtime::{RunCompat, SnapshotError, TrainState};
use graphaug_tensor::{Mat, RestoreError};

/// Why a serving operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// No valid checkpoint exists under the source directory.
    NoCheckpoint(PathBuf),
    /// A checkpoint could not be read or decoded.
    Snapshot(SnapshotError),
    /// A decoded checkpoint did not fit the configured model shape.
    Restore(RestoreError),
    /// The requested user id is outside the model's user range.
    UnknownUser {
        /// The offending user id.
        user: u32,
        /// Number of users the model knows.
        n_users: usize,
    },
    /// Network/socket failure in the server layer.
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoCheckpoint(dir) => {
                write!(f, "no valid checkpoint under {}", dir.display())
            }
            ServeError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
            ServeError::Restore(e) => write!(f, "checkpoint does not fit this model: {e}"),
            ServeError::UnknownUser { user, n_users } => {
                write!(f, "unknown user {user} (model has users 0..{n_users})")
            }
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<RestoreError> for ServeError {
    fn from(e: RestoreError) -> Self {
        ServeError::Restore(e)
    }
}

/// One ranked item with its preference score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredItem {
    /// Item id.
    pub item: u32,
    /// Dot-product preference score (bit-identical to offline eval).
    pub score: f32,
}

/// Where serving tables come from: the model configuration and training
/// graph that define the run, plus the checkpoint directory a trainer
/// writes into. The config/graph pair must match the training run — the
/// checkpoint's [`RunCompat`] header is checked on every load, so serving
/// a checkpoint against the wrong graph fails loudly instead of returning
/// silent nonsense.
#[derive(Clone)]
pub struct ModelSource {
    /// Model hyperparameters of the training run.
    pub config: GraphAugConfig,
    /// The training interaction graph (defines embedding shapes and the
    /// seen-item lists used for filtering).
    pub graph: InteractionGraph,
    /// Directory the trainer checkpoints into.
    pub checkpoint_dir: PathBuf,
}

impl ModelSource {
    /// Bundles a source description.
    pub fn new(config: GraphAugConfig, graph: InteractionGraph, checkpoint_dir: &Path) -> Self {
        ModelSource {
            config,
            graph,
            checkpoint_dir: checkpoint_dir.to_path_buf(),
        }
    }

    /// The [`RunCompat`] identity this source expects checkpoints to carry.
    pub fn compat(&self) -> RunCompat {
        RunCompat {
            n_users: self.graph.n_users() as u64,
            n_items: self.graph.n_items() as u64,
            n_edges: self.graph.n_interactions() as u64,
            seed: self.config.seed,
            embed_dim: self.config.embed_dim as u64,
        }
    }
}

/// Immutable, checkpoint-pinned serving state: embedding tables plus
/// seen-item lists.
pub struct ModelTables {
    generation: u64,
    epoch: u64,
    user_emb: Mat,
    item_emb: Mat,
    graph: InteractionGraph,
}

impl ModelTables {
    /// Builds tables from a decoded checkpoint: verifies the [`RunCompat`]
    /// header against the source, restores the model state, and runs the
    /// encoder forward exactly once ([`GraphAug::for_inference`]).
    pub fn build(
        source: &ModelSource,
        generation: u64,
        state: &TrainState,
    ) -> Result<ModelTables, ServeError> {
        state.compat.check(&source.compat())?;
        let model = GraphAug::for_inference(source.config.clone(), &source.graph, &state.model)?;
        let (user_emb, item_emb) = model.embeddings().expect("GraphAug always has embeddings");
        Ok(ModelTables {
            generation,
            epoch: state.epoch,
            user_emb: user_emb.clone(),
            item_emb: item_emb.clone(),
            graph: source.graph.clone(),
        })
    }

    /// Checkpoint generation these tables were built from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Training epochs completed when the source checkpoint was written.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of users the tables cover.
    pub fn n_users(&self) -> usize {
        self.user_emb.rows()
    }

    /// Number of items the tables cover.
    pub fn n_items(&self) -> usize {
        self.item_emb.rows()
    }

    /// Items `user` already interacted with in the training graph (these
    /// are filtered out of every recommendation, mirroring the eval
    /// harness's train-item masking).
    pub fn seen(&self, user: u32) -> &[u32] {
        self.graph.items_of(user as usize)
    }

    /// Top-`k` unseen items for `user`, ranked by dot-product score with
    /// ties broken toward the lower item id.
    ///
    /// This is, step for step, the offline evaluation ranking: the scores
    /// come from the `Recommender::score_items` default implementation
    /// (the same summation order the eval harness uses), seen items are
    /// masked to `-inf` exactly like train-item masking, and the selection
    /// is the shared bounded-heap [`topk_indices`]. Served output is
    /// therefore bit-identical to `graphaug-eval` for the same checkpoint.
    pub fn top_k(&self, user: u32, k: usize) -> Result<Vec<ScoredItem>, ServeError> {
        if (user as usize) >= self.n_users() {
            return Err(ServeError::UnknownUser {
                user,
                n_users: self.n_users(),
            });
        }
        let mut scores = self.score_items(user as usize);
        for &v in self.seen(user) {
            scores[v as usize] = f32::NEG_INFINITY;
        }
        Ok(topk_indices(&scores, k)
            .into_iter()
            .map(|item| ScoredItem {
                item,
                score: scores[item as usize],
            })
            .collect())
    }
}

impl Recommender for ModelTables {
    fn name(&self) -> &str {
        "graphaug-serve"
    }

    fn embeddings(&self) -> Option<(&Mat, &Mat)> {
        Some((&self.user_emb, &self.item_emb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_graph::TripletSampler;

    fn source_with_state() -> (ModelSource, TrainState) {
        let graph = generate(&SyntheticConfig::new(50, 40, 500).clusters(3).seed(4));
        let cfg = GraphAugConfig::fast_test();
        let mut model = GraphAug::new(cfg.clone(), &graph);
        let mut sampler = TripletSampler::new(&graph, cfg.seed.wrapping_add(101));
        for _ in 0..4 {
            model.train_step(&mut sampler);
        }
        model.refresh_embeddings();
        let compat = ModelSource::new(cfg.clone(), graph.clone(), Path::new("/unused")).compat();
        let state = TrainState {
            compat,
            epoch: 1,
            lr_scale: 1.0,
            consecutive_bad: 0,
            attempt: 4,
            loss_window: Vec::new(),
            model: model.training_state(),
            sampler: sampler.state(),
        };
        (ModelSource::new(cfg, graph, Path::new("/unused")), state)
    }

    #[test]
    fn build_verifies_compat() {
        let (source, state) = source_with_state();
        let tables = ModelTables::build(&source, 7, &state).unwrap();
        assert_eq!(tables.generation(), 7);
        assert_eq!(tables.n_users(), 50);
        assert_eq!(tables.n_items(), 40);

        let mut wrong = source.clone();
        wrong.config.seed += 1;
        match ModelTables::build(&wrong, 7, &state) {
            Err(ServeError::Snapshot(SnapshotError::Incompatible(_))) => {}
            Err(other) => panic!("expected Incompatible, got {other:?}"),
            Ok(_) => panic!("expected Incompatible, got Ok"),
        }
    }

    #[test]
    fn top_k_filters_seen_items_and_ranks_descending() {
        let (source, state) = source_with_state();
        let tables = ModelTables::build(&source, 0, &state).unwrap();
        for user in [0u32, 7, 49] {
            let top = tables.top_k(user, 10).unwrap();
            assert_eq!(top.len(), 10);
            for w in top.windows(2) {
                assert!(w[0].score >= w[1].score, "ranked descending");
            }
            for s in &top {
                assert!(
                    tables.seen(user).binary_search(&s.item).is_err(),
                    "seen item {} served to user {user}",
                    s.item
                );
            }
        }
    }

    #[test]
    fn top_k_rejects_out_of_range_users() {
        let (source, state) = source_with_state();
        let tables = ModelTables::build(&source, 0, &state).unwrap();
        assert!(matches!(
            tables.top_k(50, 5),
            Err(ServeError::UnknownUser { user: 50, .. })
        ));
    }

    #[test]
    fn top_k_clamps_k_to_unseen_catalog() {
        let (source, state) = source_with_state();
        let tables = ModelTables::build(&source, 0, &state).unwrap();
        let top = tables.top_k(0, 10_000).unwrap();
        // All items come back, seen ones last (masked to -inf) — but never
        // more than the catalog.
        assert_eq!(top.len(), tables.n_items());
        assert!(tables.top_k(0, 0).unwrap().is_empty());
    }
}
