//! Immutable serving tables materialized from one training checkpoint.
//!
//! A [`ModelTables`] is everything a request needs, frozen at build time:
//! the final user/item embedding matrices (one inference forward pass over
//! the clean graph), the per-user seen-item lists for filtering, and the
//! checkpoint generation the tables came from. Instances are immutable
//! after construction and shared behind an `Arc`, which is what makes the
//! engine's hot swap safe: a request that started on generation N keeps
//! its `Arc<ModelTables>` alive until it finishes, no matter how many
//! swaps land meanwhile.

use std::path::{Path, PathBuf};

use graphaug_core::{GraphAug, GraphAugConfig};
use graphaug_eval::{overlap_count, topk_indices, topk_pairs, Recommender};
use graphaug_graph::InteractionGraph;
use graphaug_ingest::{apply_deltas, read_range, IngestError};
use graphaug_rng::StdRng;
use graphaug_runtime::{RunCompat, SnapshotError, TrainState};
use graphaug_tensor::{Mat, RestoreError};

use crate::ann::{IvfIndex, IvfParams};
use crate::quant::{score_q, QuantIvf, QuantParams, QuantRows};

/// Why a serving operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// No valid checkpoint exists under the source directory.
    NoCheckpoint(PathBuf),
    /// A checkpoint could not be read or decoded.
    Snapshot(SnapshotError),
    /// A decoded checkpoint did not fit the configured model shape.
    Restore(RestoreError),
    /// The requested user id is outside the model's user range.
    UnknownUser {
        /// The offending user id.
        user: u32,
        /// Number of users the model knows.
        n_users: usize,
    },
    /// The checkpoint was trained past the base graph (its watermark is
    /// nonzero) but the source carries no interaction-log directory to
    /// replay the deltas from.
    LogRequired {
        /// The checkpoint's watermark.
        log_offset: u64,
    },
    /// The interaction log could not be replayed up to the checkpoint's
    /// watermark (corrupt record, chain gap, out-of-range ids).
    Ingest(IngestError),
    /// Network/socket failure in the server layer.
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoCheckpoint(dir) => {
                write!(f, "no valid checkpoint under {}", dir.display())
            }
            ServeError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
            ServeError::Restore(e) => write!(f, "checkpoint does not fit this model: {e}"),
            ServeError::UnknownUser { user, n_users } => {
                write!(f, "unknown user {user} (model has users 0..{n_users})")
            }
            ServeError::LogRequired { log_offset } => write!(
                f,
                "checkpoint watermark is {log_offset} but the source has no log_dir to replay"
            ),
            ServeError::Ingest(e) => write!(f, "log replay error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<RestoreError> for ServeError {
    fn from(e: RestoreError) -> Self {
        ServeError::Restore(e)
    }
}

impl From<IngestError> for ServeError {
    fn from(e: IngestError) -> Self {
        ServeError::Ingest(e)
    }
}

/// One ranked item with its preference score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredItem {
    /// Item id.
    pub item: u32,
    /// Dot-product preference score (bit-identical to offline eval).
    pub score: f32,
}

/// Where serving tables come from: the model configuration and training
/// graph that define the run, plus the checkpoint directory a trainer
/// writes into. The config/graph pair must match the training run — the
/// checkpoint's [`RunCompat`] header is checked on every load, so serving
/// a checkpoint against the wrong graph fails loudly instead of returning
/// silent nonsense.
#[derive(Clone)]
pub struct ModelSource {
    /// Model hyperparameters of the training run.
    pub config: GraphAugConfig,
    /// The training interaction graph (defines embedding shapes and the
    /// seen-item lists used for filtering).
    pub graph: InteractionGraph,
    /// Directory the trainer checkpoints into.
    pub checkpoint_dir: PathBuf,
    /// When set, every table build also constructs an IVF item index with
    /// these parameters (and re-runs its recall gate), so the ANN fast path
    /// survives hot reloads automatically.
    pub ann: Option<IvfParams>,
    /// When set, every table build also freezes int8 quantized tables (and
    /// re-runs their drift gate), so quantized serving — like ANN —
    /// survives hot reloads automatically. Combined with [`Self::ann`], the
    /// quantized build packs an int8 IVF index with the ANN geometry.
    pub quant: Option<QuantParams>,
    /// When set, checkpoints trained past the base graph (nonzero
    /// `log_offset` watermark) are served by replaying this interaction
    /// log's records `[0, watermark)` onto `graph` — the online-learning
    /// handoff. Without it, only watermark-zero checkpoints build.
    pub log_dir: Option<PathBuf>,
}

impl ModelSource {
    /// Bundles a source description (exact serving only; see [`Self::ann`]).
    pub fn new(config: GraphAugConfig, graph: InteractionGraph, checkpoint_dir: &Path) -> Self {
        ModelSource {
            config,
            graph,
            checkpoint_dir: checkpoint_dir.to_path_buf(),
            ann: None,
            quant: None,
            log_dir: None,
        }
    }

    /// Enables the IVF ANN fast path for every table build from this source.
    pub fn ann(mut self, params: IvfParams) -> Self {
        self.ann = Some(params);
        self
    }

    /// Enables int8-quantized serving for every table build from this
    /// source.
    pub fn quant(mut self, params: QuantParams) -> Self {
        self.quant = Some(params);
        self
    }

    /// Attaches the interaction log the online trainer appends to, so
    /// table builds can resolve watermarked checkpoints (see
    /// [`Self::log_dir`]).
    pub fn log_dir(mut self, dir: &Path) -> Self {
        self.log_dir = Some(dir.to_path_buf());
        self
    }

    /// The [`RunCompat`] identity this source expects watermark-zero
    /// checkpoints to carry (see [`Self::compat_of`] for grown graphs).
    pub fn compat(&self) -> RunCompat {
        self.compat_of(&self.graph)
    }

    /// The [`RunCompat`] identity of a checkpoint trained over `graph`
    /// (the base graph or any watermark-resolved growth of it).
    pub fn compat_of(&self, graph: &InteractionGraph) -> RunCompat {
        RunCompat {
            n_users: graph.n_users() as u64,
            n_items: graph.n_items() as u64,
            n_edges: graph.n_interactions() as u64,
            seed: self.config.seed,
            embed_dim: self.config.embed_dim as u64,
        }
    }

    /// The graph a checkpoint with watermark `log_offset` was trained on:
    /// the base graph plus interaction-log records `[0, log_offset)`,
    /// checksum-verified and deduplicated exactly like the trainer applied
    /// them. Watermark zero needs no log at all.
    pub fn graph_at(&self, log_offset: u64) -> Result<InteractionGraph, ServeError> {
        if log_offset == 0 {
            return Ok(self.graph.clone());
        }
        let dir = self
            .log_dir
            .as_ref()
            .ok_or(ServeError::LogRequired { log_offset })?;
        let records = read_range(dir, 0, log_offset)?;
        Ok(apply_deltas(&self.graph, &records)?.graph)
    }
}

/// An IVF index attached to one generation of serving tables, together
/// with its audited quality: the build-time sampled recall vs the exact
/// oracle, and whether that recall cleared the configured floor. Built
/// alongside the tables at swap time (off the request path) and frozen —
/// a reload rebuilds both from scratch, so the gate re-runs per
/// generation.
#[derive(Clone)]
pub struct AnnBuild {
    index: IvfIndex,
    nprobe: usize,
    build_recall: f64,
    enabled: bool,
    probe_k: usize,
    audit_every: u64,
}

impl AnnBuild {
    /// The coarse-quantized item index.
    pub fn index(&self) -> &IvfIndex {
        &self.index
    }

    /// Lists probed per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Build-time sampled recall@`probe_k` vs the exact oracle.
    pub fn build_recall(&self) -> f64 {
        self.build_recall
    }

    /// Whether the build-time recall cleared the configured floor. When
    /// false the tables answer every request through the exact path.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Cutoff used for the build-time gate and the online self-audit.
    pub fn probe_k(&self) -> usize {
        self.probe_k
    }

    /// Online self-audit cadence (every Nth ANN-served list is re-ranked
    /// exactly; `0` = off).
    pub fn audit_every(&self) -> u64 {
        self.audit_every
    }
}

/// How one top-K request was actually answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnnQuery {
    /// True when the f32 IVF fast path produced the list; false means the
    /// exact scorer ran (no index, disabled index, or an explicit exact
    /// request) — or the quantized path did (see [`Self::used_quant`]).
    pub used_ann: bool,
    /// True when the int8 quantized scorer produced the list (full-catalog
    /// quant scan or quantized IVF). Mutually exclusive with `used_ann`.
    pub used_quant: bool,
    /// Inverted lists probed (0 on any full-catalog path).
    pub probes: u32,
    /// Candidate items scored (catalog size on a full-catalog path).
    pub cands: u32,
}

/// Int8 quantized tables attached to one generation of serving tables,
/// together with their audited quality: the build-time sampled drift
/// recall vs the f32 oracle, and whether it cleared the configured floor.
/// Frozen at table-build time like [`AnnBuild`]; a hot reload re-quantizes
/// and re-gates per generation.
#[derive(Clone)]
pub struct QuantBuild {
    user_q: QuantRows,
    item_q: QuantRows,
    ivf: Option<QuantIvf>,
    nprobe: usize,
    build_drift: f64,
    enabled: bool,
    probe_k: usize,
    audit_every: u64,
}

impl QuantBuild {
    /// The quantized user table.
    pub fn user_rows(&self) -> &QuantRows {
        &self.user_q
    }

    /// The quantized item table.
    pub fn item_rows(&self) -> &QuantRows {
        &self.item_q
    }

    /// The int8 IVF index, when the source also carries [`IvfParams`].
    pub fn ivf(&self) -> Option<&QuantIvf> {
        self.ivf.as_ref()
    }

    /// Lists probed per query on the quantized IVF path.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Build-time sampled recall@`probe_k` of the quantized ranking vs the
    /// f32 oracle.
    pub fn build_drift(&self) -> f64 {
        self.build_drift
    }

    /// Whether the build-time drift cleared the configured floor. When
    /// false the tables answer every request through the f32 path.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Cutoff used for the build-time gate and the online self-audit.
    pub fn probe_k(&self) -> usize {
        self.probe_k
    }

    /// Online self-audit cadence (every Nth quantized-served list is
    /// re-ranked through the f32 oracle; `0` = off).
    pub fn audit_every(&self) -> u64 {
        self.audit_every
    }

    /// Resident bytes of the quantized embedding tables (weights +
    /// scales, both tables; the IVF payload is counted separately, like
    /// the f32 index).
    pub fn table_bytes(&self) -> usize {
        self.user_q.table_bytes() + self.item_q.table_bytes()
    }
}

/// Immutable, checkpoint-pinned serving state: embedding tables plus
/// seen-item lists, and (optionally) the IVF index over the item table.
#[derive(Clone)]
pub struct ModelTables {
    generation: u64,
    epoch: u64,
    log_offset: u64,
    finetunes: u64,
    fingerprint: u64,
    user_emb: Mat,
    item_emb: Mat,
    graph: InteractionGraph,
    ann: Option<AnnBuild>,
    quant: Option<QuantBuild>,
}

impl ModelTables {
    /// Builds tables from a decoded checkpoint: verifies the [`RunCompat`]
    /// header against the source, restores the model state, and runs the
    /// encoder forward exactly once ([`GraphAug::for_inference`]). When the
    /// source carries [`IvfParams`], the IVF index is built and
    /// recall-gated here too — table build happens off the request path, so
    /// reload cost absorbs index cost.
    ///
    /// `fingerprint` is the checkpoint's frame checksum — a caller that
    /// read the checkpoint file gets it free from
    /// `checkpoint::load_latest_valid_with_fingerprint` (re-deriving it
    /// from `state` via [`TrainState::fingerprint`] works too, at the
    /// cost of a full re-encode).
    pub fn build(
        source: &ModelSource,
        generation: u64,
        state: &TrainState,
        fingerprint: u64,
    ) -> Result<ModelTables, ServeError> {
        // Resolve the graph the checkpoint was actually trained on — for a
        // watermarked checkpoint that is the base graph plus a replay of
        // the interaction log up to `state.log_offset` — then verify the
        // compat header against *that* graph, not the base.
        let graph = source.graph_at(state.log_offset)?;
        state.compat.check(&source.compat_of(&graph))?;
        let model = GraphAug::for_inference(source.config.clone(), &graph, &state.model)?;
        let (user_emb, item_emb) = model.embeddings().expect("GraphAug always has embeddings");
        Ok(ModelTables {
            generation,
            epoch: state.epoch,
            log_offset: state.log_offset,
            finetunes: state.finetunes,
            fingerprint,
            user_emb: user_emb.clone(),
            item_emb: item_emb.clone(),
            graph,
            ann: None,
            quant: None,
        }
        .with_ann(source.ann.as_ref())
        .with_quant(source.quant.as_ref(), source.ann.as_ref()))
    }

    /// Builds tables directly from frozen embedding matrices, skipping the
    /// checkpoint decode and encoder forward. This is how the bench suite
    /// and large-scale tests get 100k-item catalogs without training a
    /// 100k-node model; serving proper always goes through [`Self::build`].
    pub fn from_embeddings(
        user_emb: Mat,
        item_emb: Mat,
        graph: InteractionGraph,
        generation: u64,
        ann: Option<&IvfParams>,
        quant: Option<&QuantParams>,
    ) -> ModelTables {
        ModelTables {
            generation,
            epoch: 0,
            log_offset: 0,
            finetunes: 0,
            fingerprint: 0,
            user_emb,
            item_emb,
            graph,
            ann: None,
            quant: None,
        }
        .with_ann(ann)
        .with_quant(quant, ann)
    }

    /// A copy of these tables under a new generation number, everything
    /// else untouched. This is the reload fast path for a checkpoint whose
    /// [`TrainState::fingerprint`] matches the serving tables': the state
    /// bytes are identical, so the expensive rebuild (decode, log replay,
    /// encoder forward, quantization, recall/drift gates) is provably a
    /// no-op and the engine only rebadges the generation.
    pub fn rebadged(&self, generation: u64) -> ModelTables {
        ModelTables {
            generation,
            ..self.clone()
        }
    }

    /// Attaches (or skips) the IVF index: builds the quantizer over the
    /// frozen item table, then estimates recall@`probe_k` on a seeded probe
    /// set of users against the exact oracle. Below the floor the index is
    /// kept but **disabled** — serving falls back to exact and the engine
    /// reports the refusal — so a bad quantization can never silently
    /// degrade ranking quality.
    fn with_ann(mut self, params: Option<&IvfParams>) -> ModelTables {
        let Some(params) = params else { return self };
        if self.n_items() == 0 {
            return self;
        }
        let index = IvfIndex::build(&self.item_emb, params);
        let nprobe = params.effective_nprobe(index.nlists());
        let probe_k = params.probe_k.max(1);
        let mut rng = StdRng::stream(params.seed, 1);
        let (mut hits, mut total) = (0usize, 0usize);
        if self.n_users() > 0 {
            for _ in 0..params.probe_users {
                let user = rng.bounded_u64(self.n_users() as u64) as u32;
                let exact = self.top_k(user, probe_k).expect("probe user in range");
                let (approx, _) = self.top_k_probed(&index, nprobe, user, probe_k);
                let exact_items: Vec<u32> = exact.iter().map(|s| s.item).collect();
                let approx_items: Vec<u32> = approx.iter().map(|s| s.item).collect();
                hits += overlap_count(&approx_items, &exact_items);
                total += exact.len();
            }
        }
        let build_recall = if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        };
        self.ann = Some(AnnBuild {
            index,
            nprobe,
            build_recall,
            enabled: build_recall >= params.recall_floor,
            probe_k,
            audit_every: params.audit_every,
        });
        self
    }

    /// Freezes (or skips) the int8 tables: quantizes both embedding
    /// matrices, optionally packs the quantized IVF index (when the source
    /// also carries ANN geometry), then estimates the quantized ranking's
    /// recall@`probe_k` on a seeded probe set against the f32 oracle.
    /// Below the drift floor the quantized tables are kept but
    /// **disabled** — serving falls back to the f32 path and the engine
    /// reports the refusal — so quantization noise can never silently
    /// degrade ranking quality.
    fn with_quant(
        mut self,
        params: Option<&QuantParams>,
        ivf_params: Option<&IvfParams>,
    ) -> ModelTables {
        let Some(params) = params else { return self };
        if self.n_items() == 0 {
            return self;
        }
        let user_q = QuantRows::quantize(&self.user_emb);
        let item_q = QuantRows::quantize(&self.item_emb);
        let ivf = ivf_params.map(|p| QuantIvf::build(&item_q, p));
        let nprobe = match (&ivf, ivf_params) {
            (Some(ix), Some(p)) => p.effective_nprobe(ix.nlists()),
            _ => 0,
        };
        let probe_k = params.probe_k.max(1);
        // Gate against the *actually served* path: probe through the same
        // build (IVF and all) that enabled serving would use.
        let candidate = QuantBuild {
            user_q,
            item_q,
            ivf,
            nprobe,
            build_drift: 0.0,
            enabled: true,
            probe_k,
            audit_every: params.audit_every,
        };
        let mut rng = StdRng::stream(params.seed, 2);
        let (mut hits, mut total) = (0usize, 0usize);
        if self.n_users() > 0 {
            for _ in 0..params.probe_users {
                let user = rng.bounded_u64(self.n_users() as u64) as u32;
                let exact = self.top_k(user, probe_k).expect("probe user in range");
                let (quant, _) = self.top_k_quant_with(&candidate, user, probe_k);
                let exact_items: Vec<u32> = exact.iter().map(|s| s.item).collect();
                let quant_items: Vec<u32> = quant.iter().map(|s| s.item).collect();
                hits += overlap_count(&quant_items, &exact_items);
                total += exact.len();
            }
        }
        let build_drift = if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        };
        self.quant = Some(QuantBuild {
            build_drift,
            enabled: build_drift >= params.drift_floor,
            ..candidate
        });
        self
    }

    /// Checkpoint generation these tables were built from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Training epochs completed when the source checkpoint was written.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The source checkpoint's watermark: these tables serve the base
    /// graph plus interaction-log records `[0, log_offset)`.
    pub fn log_offset(&self) -> u64 {
        self.log_offset
    }

    /// Fine-tune rounds the source checkpoint had absorbed.
    pub fn finetunes(&self) -> u64 {
        self.finetunes
    }

    /// The source checkpoint's frame checksum ([`TrainState::fingerprint`]);
    /// `0` for tables built via [`Self::from_embeddings`]. Equal
    /// fingerprints mean byte-identical checkpoint files, which is what
    /// licenses the engine's skip-rebuild reload path.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The graph these tables were resolved against (base plus replayed
    /// deltas up to [`Self::log_offset`]) — the one [`Self::seen`] masks
    /// from.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }

    /// Number of users the tables cover.
    pub fn n_users(&self) -> usize {
        self.user_emb.rows()
    }

    /// Number of items the tables cover.
    pub fn n_items(&self) -> usize {
        self.item_emb.rows()
    }

    /// Items `user` already interacted with in the training graph (these
    /// are filtered out of every recommendation, mirroring the eval
    /// harness's train-item masking).
    pub fn seen(&self, user: u32) -> &[u32] {
        self.graph.items_of(user as usize)
    }

    /// Top-`k` unseen items for `user`, ranked by dot-product score with
    /// ties broken toward the lower item id.
    ///
    /// This is, step for step, the offline evaluation ranking: the scores
    /// come from the `Recommender::score_items` default implementation
    /// (the same summation order the eval harness uses), seen items are
    /// masked to `-inf` exactly like train-item masking, and the selection
    /// is the shared bounded-heap [`topk_indices`]. Served output is
    /// therefore bit-identical to `graphaug-eval` for the same checkpoint.
    pub fn top_k(&self, user: u32, k: usize) -> Result<Vec<ScoredItem>, ServeError> {
        if (user as usize) >= self.n_users() {
            return Err(ServeError::UnknownUser {
                user,
                n_users: self.n_users(),
            });
        }
        let mut scores = self.score_items(user as usize);
        for &v in self.seen(user) {
            scores[v as usize] = f32::NEG_INFINITY;
        }
        Ok(topk_indices(&scores, k)
            .into_iter()
            .map(|item| ScoredItem {
                item,
                score: scores[item as usize],
            })
            .collect())
    }

    /// Top-`k` for `user` through the IVF fast path when an enabled index
    /// is attached, else through the exact scorer. Also reports how the
    /// request was answered (for the engine's counters and self-audit).
    ///
    /// The fast path preserves the exact path's semantics item-for-item:
    /// candidates are scored in the `score_items` summation order, seen
    /// items stay *in* the candidate set masked to `-inf` (so they surface
    /// at the tail when `k` exceeds the unseen count, exactly like the
    /// dense path), and selection is [`topk_pairs`], which shares
    /// [`topk_indices`]'s tie-break. With `nprobe = nlists` every item is a
    /// candidate exactly once and the output is hex-identical to
    /// [`Self::top_k`].
    pub fn top_k_ann(
        &self,
        user: u32,
        k: usize,
    ) -> Result<(Vec<ScoredItem>, AnnQuery), ServeError> {
        if (user as usize) >= self.n_users() {
            return Err(ServeError::UnknownUser {
                user,
                n_users: self.n_users(),
            });
        }
        match &self.ann {
            Some(ann) if ann.enabled => {
                let (top, cands) = self.top_k_probed(&ann.index, ann.nprobe, user, k);
                Ok((
                    top,
                    AnnQuery {
                        used_ann: true,
                        used_quant: false,
                        probes: ann.nprobe as u32,
                        cands,
                    },
                ))
            }
            _ => Ok((
                self.top_k(user, k)?,
                AnnQuery {
                    used_ann: false,
                    used_quant: false,
                    probes: 0,
                    cands: self.n_items() as u32,
                },
            )),
        }
    }

    /// Scores only the items in `user`'s `nprobe` best inverted lists and
    /// selects top-`k`. Returns the ranked list and the candidate count.
    /// Each candidate's score is computed with the exact scorer's summation
    /// (`Σ item[d]·user[d]` in ascending dimension order) — **not** the
    /// SIMD dot — so full-probe output is bit-identical to the dense path.
    fn top_k_probed(
        &self,
        index: &IvfIndex,
        nprobe: usize,
        user: u32,
        k: usize,
    ) -> (Vec<ScoredItem>, u32) {
        let urow = self.user_emb.row(user as usize);
        let seen = self.seen(user);
        let lists = index.probe(urow, nprobe);
        let cands: u32 = lists
            .iter()
            .map(|&l| index.list(l as usize).len() as u32)
            .sum();
        let dim = index.dim();
        // Score from the index's packed row copies (bit-exact duplicates of
        // `item_emb` rows) so the hot loop streams sequentially instead of
        // gathering scattered catalog rows.
        let candidates = lists
            .iter()
            .flat_map(|&l| {
                let (ids, vecs) = index.list_entries(l as usize);
                ids.iter().zip(vecs.chunks_exact(dim))
            })
            .map(|(&v, vrow)| {
                let score = if seen.binary_search(&v).is_ok() {
                    f32::NEG_INFINITY
                } else {
                    vrow.iter().zip(urow).map(|(a, b)| a * b).sum()
                };
                (v, score)
            });
        let top = topk_pairs(candidates, k)
            .into_iter()
            .map(|(item, score)| ScoredItem { item, score })
            .collect();
        (top, cands)
    }

    /// Scores every item for `user` through the int8 tables:
    /// `dot8_i8(q_user, q_item) · (scale_user · scale_item)` per item, in
    /// ascending item order. The integer accumulation is exact, so the
    /// result is bit-identical for any thread count and for the SIMD lane
    /// vs scalar builds — quantization noise is the *only* difference from
    /// [`Recommender::score_items`].
    ///
    /// # Panics
    ///
    /// Panics when no quantized tables are attached (the source carried no
    /// [`QuantParams`]).
    pub fn score_items_q(&self, user: usize) -> Vec<f32> {
        let qb = self.quant.as_ref().expect("quantized tables attached");
        let qu = qb.user_q.row(user);
        let su = qb.user_q.scale(user);
        (0..self.n_items())
            .map(|i| score_q(qu, su, qb.item_q.row(i), qb.item_q.scale(i)))
            .collect()
    }

    /// Top-`k` for `user` through the quantized path when enabled tables
    /// are attached, else through [`Self::top_k_ann`] (which itself falls
    /// back to exact). Also reports how the request was answered.
    ///
    /// The quantized path mirrors the f32 paths structurally: the full
    /// scan is `score_items_q` + seen-mask + [`topk_indices`]; the IVF
    /// scan probes with the f32 user row and scores packed int8 candidates
    /// with the same per-item formula, selecting via [`topk_pairs`]. Both
    /// compute identical per-item scores, so quant-IVF at
    /// `nprobe = nlists` is hex-identical to the quant full scan — and a
    /// disabled gate serves f32 bits indistinguishable from `RECX`.
    pub fn top_k_quant(
        &self,
        user: u32,
        k: usize,
    ) -> Result<(Vec<ScoredItem>, AnnQuery), ServeError> {
        if (user as usize) >= self.n_users() {
            return Err(ServeError::UnknownUser {
                user,
                n_users: self.n_users(),
            });
        }
        match &self.quant {
            Some(qb) if qb.enabled => {
                let (top, how) = self.top_k_quant_with(qb, user, k);
                Ok((top, how))
            }
            _ => self.top_k_ann(user, k),
        }
    }

    /// The quantized ranking for `user` through an explicit [`QuantBuild`]
    /// (used both for live serving and for the build-time drift probe,
    /// where the build is not attached yet).
    fn top_k_quant_with(
        &self,
        qb: &QuantBuild,
        user: u32,
        k: usize,
    ) -> (Vec<ScoredItem>, AnnQuery) {
        let seen = self.seen(user);
        match &qb.ivf {
            Some(ivf) => {
                let urow = self.user_emb.row(user as usize);
                let qu = qb.user_q.row(user as usize);
                let su = qb.user_q.scale(user as usize);
                let lists = ivf.probe(urow, qb.nprobe);
                let dim = ivf.dim();
                let cands: u32 = lists
                    .iter()
                    .map(|&l| ivf.list(l as usize).len() as u32)
                    .sum();
                let candidates = lists
                    .iter()
                    .flat_map(|&l| {
                        let (ids, rows, scales) = ivf.list_entries(l as usize);
                        ids.iter().zip(rows.chunks_exact(dim)).zip(scales)
                    })
                    .map(|((&v, vrow), &vscale)| {
                        let score = if seen.binary_search(&v).is_ok() {
                            f32::NEG_INFINITY
                        } else {
                            score_q(qu, su, vrow, vscale)
                        };
                        (v, score)
                    });
                let top = topk_pairs(candidates, k)
                    .into_iter()
                    .map(|(item, score)| ScoredItem { item, score })
                    .collect();
                (
                    top,
                    AnnQuery {
                        used_ann: false,
                        used_quant: true,
                        probes: qb.nprobe as u32,
                        cands,
                    },
                )
            }
            None => {
                let qu = qb.user_q.row(user as usize);
                let su = qb.user_q.scale(user as usize);
                let mut scores: Vec<f32> = (0..self.n_items())
                    .map(|i| score_q(qu, su, qb.item_q.row(i), qb.item_q.scale(i)))
                    .collect();
                for &v in seen {
                    scores[v as usize] = f32::NEG_INFINITY;
                }
                let top = topk_indices(&scores, k)
                    .into_iter()
                    .map(|item| ScoredItem {
                        item,
                        score: scores[item as usize],
                    })
                    .collect();
                (
                    top,
                    AnnQuery {
                        used_ann: false,
                        used_quant: true,
                        probes: 0,
                        cands: self.n_items() as u32,
                    },
                )
            }
        }
    }

    /// The IVF index build attached to these tables, if the source asked
    /// for one (disabled builds are still reported — the engine surfaces
    /// the refusal in `STATS`).
    pub fn ann(&self) -> Option<&AnnBuild> {
        self.ann.as_ref()
    }

    /// The quantized table build attached to these tables, if the source
    /// asked for one (disabled builds are still reported — the engine
    /// surfaces the refusal in `STATS`).
    pub fn quant(&self) -> Option<&QuantBuild> {
        self.quant.as_ref()
    }

    /// Resident bytes of the f32 embedding tables (users + items, 4 bytes
    /// per weight; index payloads are counted separately).
    pub fn table_bytes_f32(&self) -> usize {
        (self.user_emb.rows() * self.user_emb.cols() + self.item_emb.rows() * self.item_emb.cols())
            * 4
    }

    /// Resident bytes of the embedding representation the default (`REC`)
    /// path scores from: the int8 tables when quantized serving is
    /// enabled, the f32 tables otherwise. This is the `table_bytes` that
    /// `STATS` reports — the observable for the ~4× quantization shrink.
    pub fn table_bytes(&self) -> usize {
        match &self.quant {
            Some(qb) if qb.enabled => qb.table_bytes(),
            _ => self.table_bytes_f32(),
        }
    }
}

impl Recommender for ModelTables {
    fn name(&self) -> &str {
        "graphaug-serve"
    }

    fn embeddings(&self) -> Option<(&Mat, &Mat)> {
        Some((&self.user_emb, &self.item_emb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_graph::TripletSampler;

    fn source_with_state() -> (ModelSource, TrainState) {
        let graph = generate(&SyntheticConfig::new(50, 40, 500).clusters(3).seed(4));
        let cfg = GraphAugConfig::fast_test();
        let mut model = GraphAug::new(cfg.clone(), &graph);
        let mut sampler = TripletSampler::new(&graph, cfg.seed.wrapping_add(101));
        for _ in 0..4 {
            model.train_step(&mut sampler);
        }
        model.refresh_embeddings();
        let compat = ModelSource::new(cfg.clone(), graph.clone(), Path::new("/unused")).compat();
        let state = TrainState {
            compat,
            epoch: 1,
            lr_scale: 1.0,
            consecutive_bad: 0,
            attempt: 4,
            step_in_epoch: 0,
            log_offset: 0,
            finetunes: 0,
            loss_window: Vec::new(),
            model: model.training_state(),
            sampler: sampler.state(),
        };
        (ModelSource::new(cfg, graph, Path::new("/unused")), state)
    }

    #[test]
    fn build_verifies_compat() {
        let (source, state) = source_with_state();
        let tables = ModelTables::build(&source, 7, &state, state.fingerprint()).unwrap();
        assert_eq!(tables.generation(), 7);
        assert_eq!(tables.n_users(), 50);
        assert_eq!(tables.n_items(), 40);

        let mut wrong = source.clone();
        wrong.config.seed += 1;
        match ModelTables::build(&wrong, 7, &state, state.fingerprint()) {
            Err(ServeError::Snapshot(SnapshotError::Incompatible(_))) => {}
            Err(other) => panic!("expected Incompatible, got {other:?}"),
            Ok(_) => panic!("expected Incompatible, got Ok"),
        }
    }

    #[test]
    fn top_k_filters_seen_items_and_ranks_descending() {
        let (source, state) = source_with_state();
        let tables = ModelTables::build(&source, 0, &state, state.fingerprint()).unwrap();
        for user in [0u32, 7, 49] {
            let top = tables.top_k(user, 10).unwrap();
            assert_eq!(top.len(), 10);
            for w in top.windows(2) {
                assert!(w[0].score >= w[1].score, "ranked descending");
            }
            for s in &top {
                assert!(
                    tables.seen(user).binary_search(&s.item).is_err(),
                    "seen item {} served to user {user}",
                    s.item
                );
            }
        }
    }

    #[test]
    fn top_k_rejects_out_of_range_users() {
        let (source, state) = source_with_state();
        let tables = ModelTables::build(&source, 0, &state, state.fingerprint()).unwrap();
        assert!(matches!(
            tables.top_k(50, 5),
            Err(ServeError::UnknownUser { user: 50, .. })
        ));
    }

    #[test]
    fn full_probe_ann_is_hex_identical_to_exact() {
        let (mut source, state) = source_with_state();
        // nprobe = nlists: every item is a candidate exactly once, so the
        // IVF path must reproduce the dense ranking bit-for-bit — scores
        // and tie-breaks included.
        source.ann = Some(IvfParams::new().nlists(6).nprobe(6));
        let tables = ModelTables::build(&source, 0, &state, state.fingerprint()).unwrap();
        assert!(tables.ann().unwrap().enabled(), "full probe recall is 1.0");
        for user in [0u32, 13, 49] {
            for k in [1usize, 5, 20, 10_000] {
                let exact = tables.top_k(user, k).unwrap();
                let (approx, how) = tables.top_k_ann(user, k).unwrap();
                assert!(how.used_ann);
                assert_eq!(how.cands as usize, tables.n_items());
                assert_eq!(exact.len(), approx.len(), "user={user} k={k}");
                for (e, a) in exact.iter().zip(&approx) {
                    assert_eq!(e.item, a.item, "user={user} k={k}");
                    assert_eq!(
                        e.score.to_bits(),
                        a.score.to_bits(),
                        "user={user} k={k} item={}",
                        e.item
                    );
                }
            }
        }
    }

    #[test]
    fn narrow_probe_scores_fewer_candidates() {
        let (mut source, state) = source_with_state();
        source.ann = Some(IvfParams::new().nlists(8).nprobe(2).recall_floor(0.0));
        let tables = ModelTables::build(&source, 0, &state, state.fingerprint()).unwrap();
        let (_, how) = tables.top_k_ann(3, 5).unwrap();
        assert!(how.used_ann);
        assert_eq!(how.probes, 2);
        assert!(
            (how.cands as usize) < tables.n_items(),
            "2/8 lists probed must not cover the catalog ({} of {})",
            how.cands,
            tables.n_items()
        );
    }

    #[test]
    fn recall_gate_disables_ann_below_floor() {
        let (mut source, state) = source_with_state();
        // A floor above 1.0 is unsatisfiable: the build must keep the index
        // but refuse to serve through it.
        source.ann = Some(IvfParams::new().nlists(8).nprobe(1).recall_floor(1.1));
        let tables = ModelTables::build(&source, 0, &state, state.fingerprint()).unwrap();
        let ann = tables.ann().unwrap();
        assert!(!ann.enabled());
        assert!(ann.build_recall() <= 1.0);
        // Requests fall back to the exact path, loudly flagged as such.
        let (top, how) = tables.top_k_ann(7, 10).unwrap();
        assert!(!how.used_ann);
        assert_eq!(how.cands as usize, tables.n_items());
        assert_eq!(top, tables.top_k(7, 10).unwrap());
    }

    #[test]
    fn from_embeddings_serves_without_a_checkpoint() {
        let (source, state) = source_with_state();
        let built = ModelTables::build(&source, 3, &state, state.fingerprint()).unwrap();
        let direct = ModelTables::from_embeddings(
            built.user_emb.clone(),
            built.item_emb.clone(),
            source.graph.clone(),
            3,
            Some(&IvfParams::new().nlists(6).nprobe(6)),
            None,
        );
        assert_eq!(direct.generation(), 3);
        for user in [0u32, 21] {
            let (a, _) = direct.top_k_ann(user, 10).unwrap();
            assert_eq!(a, built.top_k(user, 10).unwrap());
        }
    }

    #[test]
    fn top_k_clamps_k_to_unseen_catalog() {
        let (source, state) = source_with_state();
        let tables = ModelTables::build(&source, 0, &state, state.fingerprint()).unwrap();
        let top = tables.top_k(0, 10_000).unwrap();
        // All items come back, seen ones last (masked to -inf) — but never
        // more than the catalog.
        assert_eq!(top.len(), tables.n_items());
        assert!(tables.top_k(0, 0).unwrap().is_empty());
    }
}
