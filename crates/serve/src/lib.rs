//! Online recommendation serving for the GraphAug reproduction.
//!
//! Every prior layer of the workspace stops at offline training and
//! evaluation; this crate answers the actual production question — *"what
//! should user `u` see right now?"* — on top of the `graphaug-runtime`
//! checkpoint store:
//!
//! 1. **Tables** ([`tables`]) — load the newest valid checkpoint, run the
//!    mixhop encoder forward **once** (via `GraphAug::for_inference`), and
//!    freeze the resulting user/item embedding matrices plus the seen-item
//!    lists into an immutable [`ModelTables`]. `ModelTables` implements the
//!    evaluation stack's `Recommender` trait, so a served ranking is
//!    *bit-identical* to the offline `graphaug-eval` ranking for the same
//!    checkpoint — the integration tests assert this with hex-exact
//!    comparisons.
//! 2. **ANN index** ([`ann`]) — an optional dependency-free IVF-flat index
//!    over the frozen item table: a seeded, bit-deterministic k-means
//!    coarse quantizer partitions the catalog into inverted lists so a
//!    query scores only its `nprobe` best-matching lists instead of every
//!    item. A build-time recall gate (and an online self-audit) keeps the
//!    approximation honest; probing all lists reproduces the exact ranking
//!    hex-identically.
//! 3. **Quantized tables** ([`quant`]) — optional int8 per-row-scaled
//!    copies of both embedding tables (~4× smaller resident state) scored
//!    with the exact-integer `dot8_i8` kernel, plus a quantized IVF index
//!    packing int8 rows per inverted list. A build-time drift gate
//!    (sampled recall vs the f32 oracle) and an every-Nth self-audit keep
//!    quantization noise bounded; below the floor, serving falls back to
//!    f32 bits.
//! 4. **Engine** ([`engine`]) — top-K queries with seen-item filtering over
//!    the bounded-heap `topk_indices` (or the quant/ANN fast path when one
//!    is attached and enabled), batched requests fanned out over
//!    `graphaug-par`, an LRU response cache keyed by
//!    `(user, k, model generation, serve mode)`, and **hot reload**: a
//!    background watcher notices a newer checkpoint generation on disk,
//!    rebuilds the tables — and the index, re-running its recall gate — off
//!    the request path, and atomically swaps them in without dropping or
//!    tearing any in-flight request.
//! 5. **Server** ([`proto`], [`server`]) — a dependency-free blocking TCP
//!    server speaking a one-line-per-request text protocol (`REC` serves
//!    the fast path, `RECX` pins the exact-parity oracle), plus the
//!    `serve_main` and `loadgen` binaries (demo service and latency/QPS
//!    load generator).
//!
//! # Quickstart
//!
//! ```
//! use graphaug_core::GraphAugConfig;
//! use graphaug_data::{generate, SyntheticConfig};
//! use graphaug_runtime::{Runtime, RuntimeConfig};
//! use graphaug_serve::{Engine, ModelSource};
//!
//! // Train two epochs, checkpointing every epoch.
//! let graph = generate(&SyntheticConfig::new(40, 30, 400).seed(1));
//! let dir = std::env::temp_dir().join("graphaug-serve-quickstart");
//! let model = GraphAugConfig::fast_test().epochs(2);
//! let mut rt = Runtime::new(
//!     RuntimeConfig::new(model.clone()).checkpoint_dir(&dir),
//!     &graph,
//! )
//! .unwrap();
//! rt.run().unwrap();
//!
//! // Serve top-10 recommendations from the newest checkpoint.
//! let engine = Engine::open(ModelSource::new(model, graph, &dir)).unwrap();
//! let rec = engine.recommend(3, 10).unwrap();
//! assert_eq!(rec.items.len(), 10);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod ann;
pub mod cache;
pub mod client;
pub mod engine;
pub mod proto;
pub mod quant;
pub mod server;
pub mod tables;
pub mod workload;

pub use ann::{IvfIndex, IvfParams};
pub use cache::LruCache;
pub use client::{percentile, resolve_addr, stats_field, LatencySummary, ServeClient};
pub use engine::{
    spawn_watcher, Engine, EngineStats, Recommendation, Watcher, DEFAULT_CACHE_CAPACITY,
};
pub use proto::{
    err_kind, ok_line, parse_ok_line, parse_request, OkLine, Request, MAX_K, MAX_REC_USERS,
};
pub use quant::{QuantIvf, QuantParams, QuantRows};
pub use server::{serve, ServerHandle};
pub use tables::{
    AnnBuild, AnnQuery, ModelSource, ModelTables, QuantBuild, ScoredItem, ServeError,
};
pub use workload::UserSampler;
