//! A hand-rolled, dependency-free LRU cache for serving responses.
//!
//! Entries live in a slab of doubly-linked nodes (indices, not pointers —
//! no unsafe) with a `HashMap` from key to slot. `get` promotes to the
//! front; `insert` evicts the back slot once the capacity is reached and
//! reuses it, so a warmed cache performs zero allocation per operation
//! (beyond the values themselves).
//!
//! The engine keys this by `(user, k, model generation, exact)`: a hot
//! model swap changes the generation and thereby *implicitly* invalidates
//! every cached response from the old tables — stale entries simply stop
//! being addressable and age out of the LRU list. The `exact` mode bit
//! separates ANN fast-path (`REC`) entries from exact-parity-oracle
//! (`RECX`) entries, so an approximate list can never be replayed to a
//! client that demanded the exact ranking (or vice versa).

use std::collections::HashMap;
use std::hash::Hash;

const NONE: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Fixed-capacity least-recently-used map.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Node<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NONE,
            tail: NONE,
            capacity,
        }
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            NONE => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NONE => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NONE;
        self.slots[slot].next = self.head;
        match self.head {
            NONE => self.tail = slot,
            h => self.slots[h].prev = slot,
        }
        self.head = slot;
    }

    /// Looks up `key`, promoting a hit to most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let slot = *self.map.get(key)?;
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
        Some(&self.slots[slot].value)
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// when the cache is full. Returns the evicted `(key, value)`, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&slot) = self.map.get(&key) {
            let old = std::mem::replace(&mut self.slots[slot].value, value);
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return Some((key, old));
        }
        if self.slots.len() < self.capacity {
            let slot = self.slots.len();
            self.slots.push(Node {
                key: key.clone(),
                value,
                prev: NONE,
                next: NONE,
            });
            self.map.insert(key, slot);
            self.push_front(slot);
            return None;
        }
        // Full: reuse the LRU slot in place.
        let victim = self.tail;
        self.unlink(victim);
        let evicted_key = self.slots[victim].key.clone();
        self.map.remove(&evicted_key);
        let evicted_value = std::mem::replace(&mut self.slots[victim].value, value);
        self.slots[victim].key = key.clone();
        self.map.insert(key, victim);
        self.push_front(victim);
        Some((evicted_key, evicted_value))
    }

    /// Drops every entry (capacity unchanged).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NONE;
        self.tail = NONE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_promotes_and_insert_evicts_lru() {
        let mut c = LruCache::new(3);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c");
        assert_eq!(c.len(), 3);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(&1), Some(&"a"));
        let evicted = c.insert(4, "d");
        assert_eq!(evicted, Some((2, "b")));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
        assert_eq!(c.get(&4), Some(&"d"));
    }

    #[test]
    fn reinsert_replaces_value_and_promotes() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        let old = c.insert(1, 11);
        assert_eq!(old, Some((1, 10)));
        // 2 is now LRU.
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn capacity_one_always_holds_the_newest() {
        let mut c = LruCache::new(1);
        for i in 0..10 {
            c.insert(i, i * 2);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&i), Some(&(i * 2)));
        }
        assert_eq!(c.get(&8), None);
    }

    #[test]
    fn eviction_order_follows_access_pattern() {
        // Exhaustively compare against a naive reference model.
        let mut c = LruCache::new(4);
        let mut reference: Vec<(u32, u32)> = Vec::new(); // front = MRU
        let ops: Vec<(bool, u32)> = (0..200)
            .map(|i| ((i * 7 + 3) % 3 == 0, (i * 13 + 5) % 9))
            .map(|(g, k)| (g, k as u32))
            .collect();
        for (is_get, key) in ops {
            if is_get {
                let hit = c.get(&key).copied();
                let ref_hit = reference.iter().position(|&(k, _)| k == key);
                match ref_hit {
                    Some(pos) => {
                        let entry = reference.remove(pos);
                        assert_eq!(hit, Some(entry.1));
                        reference.insert(0, entry);
                    }
                    None => assert_eq!(hit, None),
                }
            } else {
                c.insert(key, key * 100);
                if let Some(pos) = reference.iter().position(|&(k, _)| k == key) {
                    reference.remove(pos);
                }
                reference.insert(0, (key, key * 100));
                reference.truncate(4);
            }
            assert_eq!(c.len(), reference.len());
            for &(k, v) in &reference {
                assert!(c.map.contains_key(&k), "missing key {k}");
                let slot = c.map[&k];
                assert_eq!(c.slots[slot].value, v);
            }
        }
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut c = LruCache::new(2);
        c.insert("x", 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 2);
        c.insert("y", 2);
        assert_eq!(c.get(&"y"), Some(&2));
    }
}
