//! Int8-quantized embedding tables and the quantized IVF index.
//!
//! The f32 tables put a hard memory-bandwidth floor under the REC path:
//! PR 7's packed-row scan is already sequential, so the only way left to
//! move the ceiling is to move fewer bytes. This module freezes each
//! embedding matrix into [`QuantRows`] — one `i8` weight per f32 weight
//! plus one f32 scale per row (~4× smaller) — and scores with the exact
//! integer kernel [`graphaug_par::dot8_i8`] (32 weights per op).
//!
//! # Quantization scheme
//!
//! Symmetric per-row affine-free quantization: `scale = max|w| / 127`,
//! `q = round_half_even(w / scale)` clamped to `[-127, 127]`. Symmetric
//! (no zero point) keeps the dot product a pure integer sum:
//!
//! ```text
//! score(u, i) = dot8_i8(qu, qi) as f32 · (scale_u · scale_i)
//! ```
//!
//! Per-row scales matter because embedding norms spread over an order of
//! magnitude after training — a single tensor-wide scale would crush
//! low-norm rows to zero. Round-half-even is the IEEE default rounding and
//! kills the systematic upward bias of round-half-up on the exact .5
//! midpoints a deterministic pipeline *will* hit repeatedly. The
//! per-weight reconstruction error is bounded by `scale / 2`.
//!
//! # Determinism contract
//!
//! Quantization is pure scalar f32 arithmetic per row, parallelized with
//! one slot per row — same bytes for any `GRAPHAUG_THREADS`. Scoring
//! accumulates in `i32`, which is *exact*: lane/scalar builds and every
//! thread count agree bit-for-bit by construction, so any ranking drift
//! vs the f32 oracle is attributable to quantization alone. That drift is
//! what the serving-side gate (`crate::tables`) samples and bounds.

use graphaug_par::{dot8_i8, parallel_spans, SendMutPtr};
use graphaug_tensor::Mat;

use crate::ann::{CoarsePartition, Fnv, IvfParams};

/// Serving-side knobs for quantized tables: the drift gate and the online
/// self-audit. (Index geometry still comes from [`IvfParams`] — the
/// quantized index reuses the ANN coarse partition parameters.)
#[derive(Clone, Debug)]
pub struct QuantParams {
    /// Build-time drift gate: sampled recall@`probe_k` of the quantized
    /// ranking vs the f32 oracle must reach this floor or quantized
    /// serving stays disabled (requests fall back to the f32 path,
    /// loudly).
    pub drift_floor: f64,
    /// Number of seeded probe users for the build-time drift estimate.
    pub probe_users: usize,
    /// Cutoff for the build-time drift estimate and the online self-audit.
    pub probe_k: usize,
    /// Online self-audit cadence: every `audit_every`-th quantized-served
    /// list is also ranked through the f32 oracle and folded into the
    /// running drift estimate. `0` disables the audit.
    pub audit_every: u64,
    /// Seed for the drift-probe user draw.
    pub seed: u64,
}

impl Default for QuantParams {
    fn default() -> Self {
        QuantParams {
            drift_floor: 0.9,
            probe_users: 64,
            probe_k: 20,
            audit_every: 64,
            seed: 0x9a17,
        }
    }
}

impl QuantParams {
    /// Default parameters.
    pub fn new() -> Self {
        QuantParams::default()
    }

    /// Sets the drift floor for the build-time gate.
    pub fn drift_floor(mut self, f: f64) -> Self {
        self.drift_floor = f;
        self
    }

    /// Sets the online self-audit cadence (`0` = off).
    pub fn audit_every(mut self, n: u64) -> Self {
        self.audit_every = n;
        self
    }

    /// Sets the drift-probe seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

/// One embedding matrix frozen to int8: `rows × dim` quantized weights
/// plus one f32 scale per row. Immutable after construction, like every
/// serving table.
#[derive(Clone)]
pub struct QuantRows {
    rows: usize,
    dim: usize,
    q: Vec<i8>,
    scales: Vec<f32>,
}

/// `round_half_even(x / scale)` clamped to the int8 symmetric range.
#[inline]
fn quantize_weight(w: f32, inv_scale: f32) -> i8 {
    (w * inv_scale).round_ties_even().clamp(-127.0, 127.0) as i8
}

impl QuantRows {
    /// Quantizes `m` row by row: `scale = max|w| / 127`, weights rounded
    /// half-to-even and clamped to `[-127, 127]`. An all-zero row gets
    /// `scale = 0` and all-zero weights (reconstructs exactly).
    ///
    /// Parallel over rows with one output slot per row — bit-identical
    /// bytes for any thread count, and no SIMD dispatch on this path at
    /// all (plain scalar f32 per weight).
    pub fn quantize(m: &Mat) -> QuantRows {
        let (rows, dim) = (m.rows(), m.cols());
        let mut q = vec![0i8; rows * dim];
        let mut scales = vec![0f32; rows];
        {
            let qp = SendMutPtr::new(&mut q);
            let sp = SendMutPtr::new(&mut scales);
            parallel_spans(rows, |_, range| {
                // Safety: spans tile `0..rows` disjointly, so each row's
                // weight slots and scale slot have exactly one writer.
                let qs =
                    unsafe { qp.slice_mut(range.start * dim, (range.end - range.start) * dim) };
                let ss = unsafe { sp.slice_mut(range.start, range.end - range.start) };
                for (i, r) in range.clone().enumerate() {
                    let row = m.row(r);
                    let mut amax = 0f32;
                    for &w in row {
                        amax = amax.max(w.abs());
                    }
                    let (scale, inv) = if amax > 0.0 {
                        (amax / 127.0, 127.0 / amax)
                    } else {
                        (0.0, 0.0)
                    };
                    ss[i] = scale;
                    for (dst, &w) in qs[i * dim..(i + 1) * dim].iter_mut().zip(row) {
                        *dst = quantize_weight(w, inv);
                    }
                }
            });
        }
        QuantRows {
            rows,
            dim,
            q,
            scales,
        }
    }

    /// Number of quantized rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Weights per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The quantized weights of row `r`.
    pub fn row(&self, r: usize) -> &[i8] {
        &self.q[r * self.dim..(r + 1) * self.dim]
    }

    /// The dequantization scale of row `r`.
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Reconstructs every row as `q · scale` — the f32 matrix the
    /// quantized scorer effectively serves. The quantized IVF trains its
    /// coarse quantizer over this (the index is built over the rows that
    /// will actually be scored, not the pre-quantization originals).
    pub fn dequantize(&self) -> Mat {
        Mat::from_fn(self.rows, self.dim, |r, c| {
            self.q[r * self.dim + c] as f32 * self.scales[r]
        })
    }

    /// Resident bytes of the quantized payload (weights + scales). For
    /// `dim = 32` this is 36 bytes/row vs 128 f32 — the ~4× shrink.
    pub fn table_bytes(&self) -> usize {
        self.q.len() + self.scales.len() * 4
    }

    /// A stable fingerprint of the quantized bytes and scale bit patterns,
    /// for byte-determinism assertions.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.eat(self.rows as u32);
        h.eat(self.dim as u32);
        for chunk in self.q.chunks(4) {
            let mut w = [0u8; 4];
            for (d, &b) in w.iter_mut().zip(chunk) {
                *d = b as u8;
            }
            h.eat(u32::from_le_bytes(w));
        }
        for &s in &self.scales {
            h.eat(s.to_bits());
        }
        h.0
    }
}

/// The quantized IVF-flat index: the shared [`CoarsePartition`] (f32
/// centroids, probed with the f32 user row) plus each member's **int8**
/// row and scale packed in list order. Compared to [`crate::ann::IvfIndex`]
/// the packed payload is `dim + 4` bytes per entry instead of `4·dim` —
/// PR 7's sequential-scan win and the 4× shrink compound.
#[derive(Clone)]
pub struct QuantIvf {
    part: CoarsePartition,
    /// The quantized row of each entry in the partition's `list_items`,
    /// packed in the same order (`list_items.len() × dim`).
    list_q: Vec<i8>,
    /// The scale of each packed entry (`list_items.len()`).
    list_scales: Vec<f32>,
}

impl QuantIvf {
    /// Builds the index over the quantized catalog: the coarse quantizer
    /// is trained on the *dequantized* rows (`q · scale` — what scoring
    /// actually serves), then each inverted-list entry packs its int8 row
    /// and scale. Bit-deterministic for any thread count, like the f32
    /// build.
    pub fn build(items: &QuantRows, params: &IvfParams) -> QuantIvf {
        let served = items.dequantize();
        let part = CoarsePartition::build(&served, params);
        let dim = part.dim;
        let mut list_q = vec![0i8; part.list_items.len() * dim];
        let mut list_scales = vec![0f32; part.list_items.len()];
        for (slot, &item) in part.list_items.iter().enumerate() {
            list_q[slot * dim..(slot + 1) * dim].copy_from_slice(items.row(item as usize));
            list_scales[slot] = items.scale(item as usize);
        }
        QuantIvf {
            part,
            list_q,
            list_scales,
        }
    }

    /// Number of inverted lists.
    pub fn nlists(&self) -> usize {
        self.part.nlists
    }

    /// Embedding dimensionality the index was built over.
    pub fn dim(&self) -> usize {
        self.part.dim
    }

    /// The item ids of inverted list `l` (ascending).
    pub fn list(&self, l: usize) -> &[u32] {
        self.part.list(l)
    }

    /// The item ids of inverted list `l` with their packed int8 rows
    /// (`ids.len() × dim`) and per-entry scales (`ids.len()`), all in the
    /// same order — the sequential-scan form of the quantized hot loop.
    pub fn list_entries(&self, l: usize) -> (&[u32], &[i8], &[f32]) {
        let (lo, hi) = self.part.list_range(l);
        (
            &self.part.list_items[lo..hi],
            &self.list_q[lo * self.part.dim..hi * self.part.dim],
            &self.list_scales[lo..hi],
        )
    }

    /// The `nprobe` list ids best matching the (f32) `query` row. Probing
    /// stays in f32 — it is `O(nlists · dim)`, off the bandwidth-critical
    /// scan, and reusing the f32 centroids keeps list ranking identical to
    /// an f32 index built over the same served rows.
    pub fn probe(&self, query: &[f32], nprobe: usize) -> Vec<u32> {
        self.part.probe(query, nprobe)
    }

    /// Resident bytes of the index payload (centroids + lists + packed
    /// int8 rows + scales).
    pub fn resident_bytes(&self) -> usize {
        self.part.resident_bytes() + self.list_q.len() + self.list_scales.len() * 4
    }

    /// A stable fingerprint (partition + packed quantized payload) for
    /// bit-determinism assertions.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        self.part.fingerprint_into(&mut h);
        for chunk in self.list_q.chunks(4) {
            let mut w = [0u8; 4];
            for (d, &b) in w.iter_mut().zip(chunk) {
                *d = b as u8;
            }
            h.eat(u32::from_le_bytes(w));
        }
        for &s in &self.list_scales {
            h.eat(s.to_bits());
        }
        h.0
    }
}

/// The quantized score of one candidate: exact integer dot, then one f32
/// multiply by the combined scale. Shared by the full-catalog scan and the
/// IVF candidate scan, so both paths produce bit-identical scores for the
/// same item.
#[inline]
pub fn score_q(qu: &[i8], user_scale: f32, qi: &[i8], item_scale: f32) -> f32 {
    dot8_i8(qu, qi) as f32 * (user_scale * item_scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_rng::seeded_rng;

    fn random_mat(rows: usize, dim: usize, seed: u64) -> Mat {
        let mut rng = seeded_rng(seed);
        Mat::from_fn(rows, dim, |_, _| rng.normal_f32() * 0.8)
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let m = random_mat(40, 24, 7);
        let q = QuantRows::quantize(&m);
        for r in 0..m.rows() {
            let scale = q.scale(r) as f64;
            for (c, &w) in m.row(r).iter().enumerate() {
                let back = q.row(r)[c] as f64 * scale;
                assert!(
                    (w as f64 - back).abs() <= scale * 0.5 + 1e-9,
                    "row {r} col {c}: w={w} back={back} scale={scale}"
                );
            }
        }
    }

    #[test]
    fn all_zero_rows_reconstruct_exactly() {
        let m = Mat::from_fn(3, 16, |r, _| if r == 1 { 0.0 } else { 1.5 });
        let q = QuantRows::quantize(&m);
        assert_eq!(q.scale(1), 0.0);
        assert!(q.row(1).iter().all(|&v| v == 0));
        assert!(q.dequantize().row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn round_half_even_is_unbiased_at_midpoints() {
        // inv_scale = 1: the weights are their own quantization grid, so
        // .5 midpoints hit the tie rule directly.
        assert_eq!(quantize_weight(0.5, 1.0), 0);
        assert_eq!(quantize_weight(1.5, 1.0), 2);
        assert_eq!(quantize_weight(2.5, 1.0), 2);
        assert_eq!(quantize_weight(-0.5, 1.0), 0);
        assert_eq!(quantize_weight(-1.5, 1.0), -2);
        assert_eq!(quantize_weight(200.0, 1.0), 127);
        assert_eq!(quantize_weight(-200.0, 1.0), -127);
    }

    #[test]
    fn single_outlier_row_keeps_outlier_at_127_and_bounds_the_rest() {
        let m = Mat::from_fn(1, 8, |_, c| if c == 3 { -12.7 } else { 0.05 });
        let q = QuantRows::quantize(&m);
        assert_eq!(q.row(0)[3], -127, "outlier pins the scale");
        let scale = q.scale(0) as f64;
        for (c, &w) in m.row(0).iter().enumerate() {
            let back = q.row(0)[c] as f64 * scale;
            assert!((w as f64 - back).abs() <= scale * 0.5 + 1e-9, "col {c}");
        }
    }

    #[test]
    fn score_q_matches_f64_reference() {
        let m = random_mat(6, 32, 13);
        let q = QuantRows::quantize(&m);
        for a in 0..3 {
            for b in 3..6 {
                let got = score_q(q.row(a), q.scale(a), q.row(b), q.scale(b)) as f64;
                let want: f64 = q
                    .row(a)
                    .iter()
                    .zip(q.row(b))
                    .map(|(&x, &y)| x as f64 * y as f64)
                    .sum::<f64>()
                    * (q.scale(a) * q.scale(b)) as f64;
                assert!((got - want).abs() < want.abs().max(1.0) * 1e-5);
            }
        }
    }

    #[test]
    fn quant_ivf_covers_catalog_and_packs_matching_rows() {
        let m = random_mat(300, 16, 21);
        let q = QuantRows::quantize(&m);
        let idx = QuantIvf::build(&q, &IvfParams::new().nlists(9));
        let mut seen = vec![false; 300];
        for l in 0..idx.nlists() {
            let (ids, rows, scales) = idx.list_entries(l);
            assert_eq!(rows.len(), ids.len() * idx.dim());
            assert_eq!(scales.len(), ids.len());
            for (slot, &item) in ids.iter().enumerate() {
                assert!(!seen[item as usize]);
                seen[item as usize] = true;
                assert_eq!(
                    &rows[slot * idx.dim()..(slot + 1) * idx.dim()],
                    q.row(item as usize),
                    "packed row differs from source row"
                );
                assert_eq!(scales[slot].to_bits(), q.scale(item as usize).to_bits());
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
