//! The serving engine: swap-in-place tables, request batching, response
//! cache, and hot checkpoint reload.
//!
//! # Swap protocol (hand-rolled arc-swap)
//!
//! The live tables sit behind `Mutex<Arc<ModelTables>>`. Readers take the
//! lock only long enough to clone the `Arc` (a refcount bump); a reload
//! builds the replacement tables entirely **outside** the lock (checkpoint
//! decode + one encoder forward — the expensive part) and then swaps the
//! `Arc` in one short critical section. Consequences:
//!
//! * a request observes exactly one generation end to end — it keeps its
//!   cloned `Arc` for its whole lifetime, so a swap can never hand it a
//!   half-old/half-new ("torn") table;
//! * no request is ever dropped or blocked behind a rebuild — the swap
//!   critical section is two pointer moves;
//! * the old tables are freed when the last in-flight request holding
//!   them finishes (standard `Arc` reclamation — no hazard pointers
//!   needed because the `Mutex` serializes the swap itself).
//!
//! # Cache keying
//!
//! Responses are cached in an [`LruCache`] keyed by
//! `(user, k, generation, mode)`. A hot swap bumps the generation, so
//! every old entry becomes unaddressable immediately — stale responses
//! cannot be served after a reload, without any explicit invalidation
//! pass. The mode bits keep the three scorers — exact (`RECX`), f32 ANN,
//! and int8 quantized — from ever sharing an entry: a cached approximate
//! list must not satisfy an exact request, a cached quantized list must
//! not satisfy an f32 one, nor any other cross-pairing.
//!
//! # Fast paths and self-audits
//!
//! When the [`ModelSource`] carries IVF parameters and the build-time
//! recall gate passed, non-exact requests go through
//! `ModelTables::top_k_ann`; probed-list and candidate counts accumulate
//! in the stats. Every `audit_every`-th ANN-*computed* list is re-ranked
//! through the exact scorer and the overlap folded into a running
//! recall estimate ([`EngineStats::recall_sampled`]) — a live quality
//! meter on real traffic, not just the build-time probe set.
//!
//! Quantized serving ([`ModelSource::quant`]) works the same way one
//! level up: non-exact requests go through `ModelTables::top_k_quant`
//! (int8 tables, quantized IVF when ANN geometry is also configured), and
//! every `audit_every`-th quantized-computed list feeds a separate running
//! drift estimate ([`EngineStats::drift_sampled`]) against the same f32
//! oracle the `RECX` verb pins. Both gates fail closed: a disabled build
//! serves f32 bits.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use graphaug_runtime::checkpoint;

use crate::cache::LruCache;
use crate::tables::{ModelSource, ModelTables, ScoredItem, ServeError};

/// Default response-cache capacity (entries).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Which scorer a cached response came from. `Exact` is the `RECX`
/// oracle; `F32` is the default `REC` path without enabled quantized
/// tables (full scan or f32 ANN); `Quant` is the int8 path. Distinct
/// variants mean the three never share a cache entry — a quantized list
/// can never satisfy an f32 request even at the same
/// `(user, k, generation)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum ServeMode {
    Exact,
    F32,
    Quant,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    user: u32,
    k: u32,
    generation: u64,
    mode: ServeMode,
}

/// One served recommendation list.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// The user the list is for.
    pub user: u32,
    /// Requested cutoff.
    pub k: usize,
    /// Checkpoint generation of the tables that produced the list.
    pub generation: u64,
    /// Ranked items, best first (shared with the response cache).
    pub items: Arc<Vec<ScoredItem>>,
    /// True when the list came from the response cache.
    pub from_cache: bool,
}

/// Monotonic serving counters (all relaxed atomics — diagnostics, not
/// synchronization).
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Checkpoint generation currently serving.
    pub generation: u64,
    /// Total user-lists served (one batch of `n` users counts `n`).
    pub requests: u64,
    /// Lists answered from the response cache.
    pub cache_hits: u64,
    /// Lists computed from the tables.
    pub cache_misses: u64,
    /// Completed hot reloads that rebuilt the tables.
    pub reloads: u64,
    /// Reload attempts that failed (old tables kept serving).
    pub reload_errors: u64,
    /// Newer generations whose checkpoint fingerprint matched the serving
    /// tables': byte-identical state, so the rebuild (decode, log replay,
    /// encoder forward, quantize, gates) was skipped and the generation
    /// merely rebadged.
    pub reload_skips: u64,
    /// True when the serving tables carry an *enabled* IVF index (built,
    /// and its build-time recall cleared the floor).
    pub ann_on: bool,
    /// Total inverted lists probed by ANN-served requests.
    pub ann_probes: u64,
    /// Total candidate items scored by ANN-served requests.
    pub ann_cands: u64,
    /// Non-exact requests that were nevertheless answered by the exact
    /// scorer (no index configured, or the recall gate disabled it).
    pub exact_fallbacks: u64,
    /// Running recall of the online self-audit: of the exact top-K items,
    /// the fraction the sampled ANN lists also returned. `None` until the
    /// first audited request.
    pub recall_sampled: Option<f64>,
    /// True when the serving tables carry *enabled* int8 quantized tables
    /// (built, and their build-time drift cleared the floor).
    pub quant_on: bool,
    /// Resident bytes of the embedding representation the default (`REC`)
    /// path scores from — int8 tables (weights + scales) when quantized
    /// serving is on, f32 tables otherwise. The before/after observable
    /// for the ~4× quantization shrink.
    pub table_bytes: u64,
    /// Lists computed by the quantized scorer.
    pub quant_served: u64,
    /// Running drift recall of the quantized self-audit: of the f32-oracle
    /// top-K items, the fraction the sampled quantized lists also
    /// returned. `None` until the first audited request.
    pub drift_sampled: Option<f64>,
    /// Records currently in the interaction log the source watches
    /// (`0` without a [`ModelSource::log_dir`]) — the live stream's length,
    /// polled at stats time.
    pub ingested: u64,
    /// The serving checkpoint's watermark: log records `[0, log_offset)`
    /// are baked into the tables.
    pub log_offset: u64,
    /// Fine-tune rounds the serving checkpoint had absorbed.
    pub finetunes: u64,
}

/// The online serving engine. Cheap to share (`Arc<Engine>`); all methods
/// take `&self`.
pub struct Engine {
    source: ModelSource,
    current: Mutex<Arc<ModelTables>>,
    cache: Mutex<LruCache<CacheKey, Arc<Vec<ScoredItem>>>>,
    generation: AtomicU64,
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    reloads: AtomicU64,
    reload_errors: AtomicU64,
    reload_skips: AtomicU64,
    /// Fingerprint of the serving checkpoint ([`TrainState::fingerprint`]
    /// of the state the tables were built from) — the cheap hash a reload
    /// compares before paying for a rebuild.
    fingerprint: AtomicU64,
    ann_probes: AtomicU64,
    ann_cands: AtomicU64,
    exact_fallbacks: AtomicU64,
    /// Ticks once per ANN-computed list; every `audit_every`-th tick
    /// triggers the exact re-rank.
    audit_ticker: AtomicU64,
    recall_hits: AtomicU64,
    recall_total: AtomicU64,
    quant_served: AtomicU64,
    /// Ticks once per quantized-computed list; every `audit_every`-th tick
    /// triggers the f32-oracle re-rank.
    drift_ticker: AtomicU64,
    drift_hits: AtomicU64,
    drift_total: AtomicU64,
    /// Serializes reloads so two watchers (or a watcher plus an explicit
    /// reload call) never build the same generation twice concurrently.
    reload_lock: Mutex<()>,
}

impl Engine {
    /// Opens an engine over `source`, building tables from the newest
    /// valid checkpoint in its directory. Fails with
    /// [`ServeError::NoCheckpoint`] when nothing decodes cleanly.
    pub fn open(source: ModelSource) -> Result<Engine, ServeError> {
        Engine::open_with_cache(source, DEFAULT_CACHE_CAPACITY)
    }

    /// [`Engine::open`] with an explicit response-cache capacity.
    pub fn open_with_cache(
        source: ModelSource,
        cache_capacity: usize,
    ) -> Result<Engine, ServeError> {
        let (generation, state, fingerprint) =
            checkpoint::load_latest_valid_with_fingerprint(&source.checkpoint_dir)
                .ok_or_else(|| ServeError::NoCheckpoint(source.checkpoint_dir.clone()))?;
        Engine::open_preloaded(source, generation, &state, fingerprint, cache_capacity)
    }

    /// Opens an engine over an already-decoded checkpoint. A caller that
    /// just probed the directory to decide whether training is needed
    /// (`serve_main`) hands the decoded state straight in instead of
    /// paying the decode twice. `fingerprint` is the checkpoint's frame
    /// checksum (see [`ModelTables::build`]).
    pub fn open_preloaded(
        source: ModelSource,
        generation: u64,
        state: &graphaug_runtime::TrainState,
        fingerprint: u64,
        cache_capacity: usize,
    ) -> Result<Engine, ServeError> {
        let tables = Arc::new(ModelTables::build(&source, generation, state, fingerprint)?);
        Ok(Engine {
            source,
            generation: AtomicU64::new(tables.generation()),
            fingerprint: AtomicU64::new(tables.fingerprint()),
            current: Mutex::new(tables),
            cache: Mutex::new(LruCache::new(cache_capacity)),
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_errors: AtomicU64::new(0),
            reload_skips: AtomicU64::new(0),
            ann_probes: AtomicU64::new(0),
            ann_cands: AtomicU64::new(0),
            exact_fallbacks: AtomicU64::new(0),
            audit_ticker: AtomicU64::new(0),
            recall_hits: AtomicU64::new(0),
            recall_total: AtomicU64::new(0),
            quant_served: AtomicU64::new(0),
            drift_ticker: AtomicU64::new(0),
            drift_hits: AtomicU64::new(0),
            drift_total: AtomicU64::new(0),
            reload_lock: Mutex::new(()),
        })
    }

    /// The source this engine serves from.
    pub fn source(&self) -> &ModelSource {
        &self.source
    }

    /// Snapshots the live tables for one request (or one batch): a
    /// refcount bump under a momentary lock. The returned `Arc` pins the
    /// generation for as long as the caller holds it.
    pub fn tables(&self) -> Arc<ModelTables> {
        self.current.lock().expect("tables lock").clone()
    }

    /// Current serving counters.
    pub fn stats(&self) -> EngineStats {
        let tables = self.tables();
        let total = self.recall_total.load(Ordering::Relaxed);
        let drift_total = self.drift_total.load(Ordering::Relaxed);
        EngineStats {
            generation: self.generation.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            reload_errors: self.reload_errors.load(Ordering::Relaxed),
            reload_skips: self.reload_skips.load(Ordering::Relaxed),
            ann_on: tables.ann().is_some_and(|a| a.enabled()),
            ann_probes: self.ann_probes.load(Ordering::Relaxed),
            ann_cands: self.ann_cands.load(Ordering::Relaxed),
            exact_fallbacks: self.exact_fallbacks.load(Ordering::Relaxed),
            recall_sampled: (total > 0)
                .then(|| self.recall_hits.load(Ordering::Relaxed) as f64 / total as f64),
            quant_on: tables.quant().is_some_and(|q| q.enabled()),
            table_bytes: tables.table_bytes() as u64,
            quant_served: self.quant_served.load(Ordering::Relaxed),
            drift_sampled: (drift_total > 0)
                .then(|| self.drift_hits.load(Ordering::Relaxed) as f64 / drift_total as f64),
            ingested: self
                .source
                .log_dir
                .as_ref()
                .map_or(0, |dir| graphaug_ingest::log_len(dir).unwrap_or(0)),
            log_offset: tables.log_offset(),
            finetunes: tables.finetunes(),
        }
    }

    /// Serves one user's top-`k` list through the default (ANN-when-
    /// available) path — see [`Engine::recommend_batch`].
    pub fn recommend(&self, user: u32, k: usize) -> Result<Recommendation, ServeError> {
        self.recommend_batch(&[(user, k)])
            .pop()
            .expect("one request in, one response out")
    }

    /// Serves one user's top-`k` list through the exact scorer
    /// unconditionally — the `RECX` parity oracle. Bit-identical to
    /// offline evaluation regardless of any attached index.
    pub fn recommend_exact(&self, user: u32, k: usize) -> Result<Recommendation, ServeError> {
        self.recommend_batch_mode(&[(user, k)], true)
            .pop()
            .expect("one request in, one response out")
    }

    /// [`Engine::recommend_batch_mode`] in the default (non-exact) mode:
    /// the IVF fast path when an enabled index is attached, the exact
    /// scorer otherwise.
    pub fn recommend_batch(
        &self,
        requests: &[(u32, usize)],
    ) -> Vec<Result<Recommendation, ServeError>> {
        self.recommend_batch_mode(requests, false)
    }

    /// Serves a batch of `(user, k)` requests against **one** table
    /// snapshot, so every response in the batch carries the same
    /// generation even if a hot swap lands mid-batch. `exact` selects the
    /// parity-oracle path (`RECX`): the full-catalog scorer runs even when
    /// an ANN index is live, and responses cache under the exact mode bit.
    ///
    /// The cache is probed serially up front (it is a mutex-guarded LRU —
    /// keeping it out of the parallel section keeps workers lock-free);
    /// misses fan out over `graphaug-par` spans, each worker writing its
    /// own disjoint slot; results are inserted back serially. Scoring is
    /// read-only over immutable tables, so the fan-out is trivially
    /// bit-deterministic for any thread count. (The self-audit counters do
    /// race across workers, but they only feed diagnostics — response
    /// bytes never depend on them.)
    pub fn recommend_batch_mode(
        &self,
        requests: &[(u32, usize)],
        exact: bool,
    ) -> Vec<Result<Recommendation, ServeError>> {
        let tables = self.tables();
        let generation = tables.generation();
        // The serving mode is a per-generation property of the tables:
        // within one snapshot every non-exact request goes through the same
        // scorer, so the mode bit is computed once per batch.
        let mode = if exact {
            ServeMode::Exact
        } else if tables.quant().is_some_and(|q| q.enabled()) {
            ServeMode::Quant
        } else {
            ServeMode::F32
        };
        self.requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);

        let mut out: Vec<Option<Result<Recommendation, ServeError>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut misses: Vec<usize> = Vec::new();
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for (i, &(user, k)) in requests.iter().enumerate() {
                let key = CacheKey {
                    user,
                    k: k.min(u32::MAX as usize) as u32,
                    generation,
                    mode,
                };
                if let Some(items) = cache.get(&key) {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    out[i] = Some(Ok(Recommendation {
                        user,
                        k,
                        generation,
                        items: items.clone(),
                        from_cache: true,
                    }));
                } else {
                    misses.push(i);
                }
            }
        }
        self.cache_misses
            .fetch_add(misses.len() as u64, Ordering::Relaxed);

        let ann_audit_every = tables.ann().map_or(0, |a| a.audit_every());
        let quant_audit_every = tables.quant().map_or(0, |q| q.audit_every());
        let mut computed: Vec<Option<Result<Vec<ScoredItem>, ServeError>>> =
            (0..misses.len()).map(|_| None).collect();
        {
            let tables = &tables;
            let misses = &misses;
            let base = graphaug_par::SendMutPtr::new(&mut computed);
            graphaug_par::parallel_spans(misses.len(), |_, range| {
                // Safety: spans tile `0..misses.len()` disjointly, so each
                // slot has exactly one writer.
                let slice = unsafe { base.slice_mut(range.start, range.end - range.start) };
                for (slot, &req_idx) in slice.iter_mut().zip(&misses[range]) {
                    let (user, k) = requests[req_idx];
                    *slot = Some(if exact {
                        tables.top_k(user, k)
                    } else {
                        // Falls through quant → ANN → exact, whichever is
                        // attached and enabled.
                        tables.top_k_quant(user, k).map(|(items, how)| {
                            if how.used_quant {
                                self.quant_served.fetch_add(1, Ordering::Relaxed);
                                self.ann_probes
                                    .fetch_add(how.probes as u64, Ordering::Relaxed);
                                self.ann_cands
                                    .fetch_add(how.cands as u64, Ordering::Relaxed);
                                self.audit(
                                    tables,
                                    quant_audit_every,
                                    user,
                                    k,
                                    &items,
                                    (&self.drift_ticker, &self.drift_hits, &self.drift_total),
                                );
                            } else if how.used_ann {
                                self.ann_probes
                                    .fetch_add(how.probes as u64, Ordering::Relaxed);
                                self.ann_cands
                                    .fetch_add(how.cands as u64, Ordering::Relaxed);
                                self.audit(
                                    tables,
                                    ann_audit_every,
                                    user,
                                    k,
                                    &items,
                                    (&self.audit_ticker, &self.recall_hits, &self.recall_total),
                                );
                            } else {
                                self.exact_fallbacks.fetch_add(1, Ordering::Relaxed);
                            }
                            items
                        })
                    });
                }
            });
        }

        let mut cache = self.cache.lock().expect("cache lock");
        for (&req_idx, result) in misses.iter().zip(computed) {
            let (user, k) = requests[req_idx];
            let result = result.expect("every miss slot is filled");
            out[req_idx] = Some(match result {
                Ok(items) => {
                    let items = Arc::new(items);
                    cache.insert(
                        CacheKey {
                            user,
                            k: k.min(u32::MAX as usize) as u32,
                            generation,
                            mode,
                        },
                        items.clone(),
                    );
                    Ok(Recommendation {
                        user,
                        k,
                        generation,
                        items,
                        from_cache: false,
                    })
                }
                Err(e) => Err(e),
            });
        }
        out.into_iter()
            .map(|r| r.expect("every request slot is filled"))
            .collect()
    }

    /// Online self-audit: every `audit_every`-th approximately-computed
    /// list is also ranked through the exact f32 scorer, and the top-K
    /// overlap feeds the running estimate behind the `(ticker, hits,
    /// total)` counters — [`EngineStats::recall_sampled`] for ANN lists,
    /// [`EngineStats::drift_sampled`] for quantized ones. Costs one exact
    /// scan per sampled request — cadence bounds the overhead.
    fn audit(
        &self,
        tables: &ModelTables,
        audit_every: u64,
        user: u32,
        k: usize,
        approx: &[ScoredItem],
        (ticker, hits_ctr, total_ctr): (&AtomicU64, &AtomicU64, &AtomicU64),
    ) {
        if audit_every == 0 {
            return;
        }
        let tick = ticker.fetch_add(1, Ordering::Relaxed);
        if !tick.is_multiple_of(audit_every) {
            return;
        }
        let Ok(exact) = tables.top_k(user, k) else {
            return;
        };
        let exact_items: Vec<u32> = exact.iter().map(|s| s.item).collect();
        let approx_items: Vec<u32> = approx.iter().map(|s| s.item).collect();
        let hits = graphaug_eval::overlap_count(&approx_items, &exact_items);
        hits_ctr.fetch_add(hits as u64, Ordering::Relaxed);
        total_ctr.fetch_add(exact.len() as u64, Ordering::Relaxed);
    }

    /// Checks the checkpoint directory for a generation newer than the one
    /// serving; if found (and it decodes to a valid, compatible state),
    /// rebuilds the tables **off the request path** and swaps them in.
    /// Returns `Ok(Some(new_generation))` after a swap, `Ok(None)` when
    /// already current. On error the old tables keep serving untouched.
    ///
    /// Note the newest-*valid* semantics inherited from
    /// `checkpoint::load_latest_valid`: a torn newest file is walked past,
    /// and if the newest valid generation is not newer than the serving
    /// one, the reload is a no-op rather than a downgrade.
    pub fn reload_if_newer(&self) -> Result<Option<u64>, ServeError> {
        let serving = self.generation.load(Ordering::Relaxed);
        // Cheap poll: directory listing only.
        match checkpoint::newest_generation(&self.source.checkpoint_dir) {
            Some(newest) if newest > serving => {}
            _ => return Ok(None),
        }
        let _guard = self.reload_lock.lock().expect("reload lock");
        // Re-check under the reload lock — another reloader may have won.
        let serving = self.generation.load(Ordering::Relaxed);
        let Some((generation, state, fingerprint)) =
            checkpoint::load_latest_valid_with_fingerprint(&self.source.checkpoint_dir)
        else {
            return Ok(None);
        };
        if generation <= serving {
            return Ok(None);
        }
        // Cheap hash compare before the expensive rebuild: an equal
        // fingerprint (read straight off the frame header — no re-encode)
        // means the checkpoint frame is byte-identical to the one serving,
        // so decode + replay + forward + quantize + gates would reproduce
        // the live tables bit-for-bit. Rebadge instead.
        if fingerprint == self.fingerprint.load(Ordering::Relaxed) {
            let rebadged = Arc::new(self.tables().rebadged(generation));
            *self.current.lock().expect("tables lock") = rebadged;
            self.generation.store(generation, Ordering::Relaxed);
            self.reload_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(generation));
        }
        let built = ModelTables::build(&self.source, generation, &state, fingerprint);
        let tables = match built {
            Ok(t) => Arc::new(t),
            Err(e) => {
                self.reload_errors.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        // The swap itself: two pointer moves under a momentary lock.
        *self.current.lock().expect("tables lock") = tables;
        self.generation.store(generation, Ordering::Relaxed);
        self.fingerprint.store(fingerprint, Ordering::Relaxed);
        self.reloads.fetch_add(1, Ordering::Relaxed);
        Ok(Some(generation))
    }
}

/// Handle of a background reload watcher; stops (and joins) the thread on
/// [`Watcher::stop`] or drop.
pub struct Watcher {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watcher {
    /// Signals the watcher thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Watcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns a background thread that polls the checkpoint directory every
/// `period` and hot-swaps newer generations in. Reload errors are counted
/// in [`EngineStats::reload_errors`] and the previous tables keep serving
/// — a bad checkpoint must never take the service down.
pub fn spawn_watcher(engine: Arc<Engine>, period: Duration) -> Watcher {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::Builder::new()
        .name("graphaug-serve-watcher".into())
        .spawn(move || {
            let tick = Duration::from_millis(5).min(period);
            let mut elapsed = period; // fire one check immediately
            while !stop_flag.load(Ordering::Relaxed) {
                if elapsed >= period {
                    elapsed = Duration::ZERO;
                    let _ = engine.reload_if_newer();
                }
                std::thread::sleep(tick);
                elapsed += tick;
            }
        })
        .expect("spawn reload watcher");
    Watcher {
        stop,
        handle: Some(handle),
    }
}

/// Convenience: does `dir` currently hold any checkpoint generations?
pub fn has_checkpoints(dir: &Path) -> bool {
    checkpoint::newest_generation(dir).is_some()
}
