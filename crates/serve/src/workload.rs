//! Request-mix shaping for the load generators: which user does the next
//! request ask about?
//!
//! Serving a million users is not serving a uniform million users —
//! recommendation traffic is zipfian (a few heavy users dominate) and
//! occasionally pathological (a hot-key storm hammers a handful of ids,
//! e.g. after a push notification). A [`UserSampler`] makes those mixes a
//! first-class, *seeded* scenario ingredient: the same seed draws the same
//! request stream, so a chaos run that fails replays exactly.

use graphaug_rng::StdRng;

/// A seeded distribution over user ids `0..n_users`.
#[derive(Clone, Debug)]
pub enum UserSampler {
    /// Every user equally likely.
    Uniform {
        /// Number of users drawn from.
        n_users: u32,
    },
    /// Zipf-distributed ranks: user `r` drawn with probability ∝
    /// `(r+1)^-s`. Carries the precomputed CDF so draws are `O(log n)`.
    Zipf {
        /// Number of users drawn from.
        n_users: u32,
        /// Cumulative probabilities, ascending, last entry 1.0.
        cdf: Vec<f64>,
    },
    /// Hot-key storm: with probability `hot_frac` draw uniformly from the
    /// first `hot_users` ids, otherwise uniformly from the whole range.
    Hot {
        /// Number of users drawn from.
        n_users: u32,
        /// Size of the hot set (ids `0..hot_users`).
        hot_users: u32,
        /// Fraction of traffic aimed at the hot set.
        hot_frac: f64,
    },
}

impl UserSampler {
    /// Uniform traffic over `n_users`.
    pub fn uniform(n_users: u32) -> UserSampler {
        assert!(n_users > 0, "sampler needs at least one user");
        UserSampler::Uniform { n_users }
    }

    /// Zipfian traffic with exponent `s` (`s = 0` degenerates to uniform;
    /// `s ≈ 1` is the classic heavy head).
    pub fn zipf(n_users: u32, s: f64) -> UserSampler {
        assert!(n_users > 0, "sampler needs at least one user");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n_users as usize);
        let mut total = 0.0f64;
        for r in 0..n_users {
            total += (r as f64 + 1.0).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        UserSampler::Zipf { n_users, cdf }
    }

    /// Hot-key storm: `hot_frac` of traffic on users `0..hot_users`.
    pub fn hot(n_users: u32, hot_users: u32, hot_frac: f64) -> UserSampler {
        assert!(n_users > 0, "sampler needs at least one user");
        assert!(
            (0.0..=1.0).contains(&hot_frac),
            "hot fraction must be in [0,1]"
        );
        UserSampler::Hot {
            n_users,
            hot_users: hot_users.clamp(1, n_users),
            hot_frac,
        }
    }

    /// Draws the next user id.
    pub fn draw(&self, rng: &mut StdRng) -> u32 {
        match self {
            UserSampler::Uniform { n_users } => rng.bounded_u64(*n_users as u64) as u32,
            UserSampler::Zipf { n_users, cdf } => {
                let u = rng.f64_unit();
                let rank = cdf.partition_point(|&c| c < u);
                (rank as u32).min(n_users - 1)
            }
            UserSampler::Hot {
                n_users,
                hot_users,
                hot_frac,
            } => {
                if rng.random_bool(*hot_frac) {
                    rng.bounded_u64(*hot_users as u64) as u32
                } else {
                    rng.bounded_u64(*n_users as u64) as u32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_rng::seeded_rng;

    fn histogram(sampler: &UserSampler, n_users: usize, draws: usize) -> Vec<usize> {
        let mut rng = seeded_rng(7);
        let mut counts = vec![0usize; n_users];
        for _ in 0..draws {
            counts[sampler.draw(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn draws_are_seed_deterministic() {
        for sampler in [
            UserSampler::uniform(100),
            UserSampler::zipf(100, 1.1),
            UserSampler::hot(100, 4, 0.9),
        ] {
            let mut a = seeded_rng(3);
            let mut b = seeded_rng(3);
            let xs: Vec<u32> = (0..200).map(|_| sampler.draw(&mut a)).collect();
            let ys: Vec<u32> = (0..200).map(|_| sampler.draw(&mut b)).collect();
            assert_eq!(xs, ys);
        }
    }

    #[test]
    fn uniform_covers_the_range_evenly() {
        let counts = histogram(&UserSampler::uniform(10), 10, 10_000);
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform bucket way off: {c}");
        }
    }

    #[test]
    fn zipf_is_head_heavy_and_in_range() {
        let counts = histogram(&UserSampler::zipf(50, 1.2), 50, 10_000);
        assert!(
            counts[0] > counts[10] && counts[0] > counts[49],
            "rank 0 must dominate: {counts:?}"
        );
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
        // s = 0 degenerates to uniform-ish: head must NOT dominate 10x.
        let flat = histogram(&UserSampler::zipf(50, 0.0), 50, 10_000);
        assert!(flat[0] < 10 * flat[49].max(1));
    }

    #[test]
    fn hot_storm_concentrates_on_the_hot_set() {
        let counts = histogram(&UserSampler::hot(100, 4, 0.9), 100, 10_000);
        let hot: usize = counts[..4].iter().sum();
        assert!(hot > 8_500, "hot set should absorb ~90%+ε: {hot}");
    }
}
