//! The serving wire protocol: one line per request, one line per response,
//! ASCII only, no external dependencies on either side.
//!
//! Requests:
//!
//! ```text
//! REC <user>[,<user>...] <k>    top-K lists (quant/IVF fast path when enabled)
//! RECX <user>[,<user>...] <k>   top-K through the exact-parity oracle
//! STATS                         serving counters + table shape
//! PING                          liveness probe
//! QUIT                          close the connection
//! ```
//!
//! `REC` and `RECX` answer with identical `OK` line shapes; the verbs
//! differ only in which scorer runs. On a replica without an (enabled)
//! ANN index the two are byte-identical — `RECX` exists so clients and
//! the parity harness can pin the exact ranking even while the fast path
//! serves production traffic.
//!
//! Responses (one line per requested user, in request order):
//!
//! ```text
//! OK gen=<g> user=<u> k=<k> items=<i1,i2,...> bits=<hex32,hex32,...>
//! ERR <message>
//! STATS gen=<g> users=<n> items=<n> requests=<n> cache_hits=<n> cache_misses=<n> reloads=<n> reload_errors=<n> ann=<on|off> ann_probes=<n> ann_cands=<n> exact_fallbacks=<n> recall_sampled=<r|-> quant=<on|off> table_bytes=<n> quant_served=<n> drift_sampled=<r|->
//! PONG
//! BYE
//! ```
//!
//! `bits` carries each score's **f32 bit pattern** in hex — the same
//! bit-exact rendering idea as `EvalResult::bitline()` — so a client (or
//! the parity harness) can assert served scores equal offline scores
//! exactly, with no decimal round-trip in between.

use crate::engine::Recommendation;
use crate::tables::ScoredItem;

/// Largest `k` a single `REC` may ask for. Anything above this is a typed
/// `ERR`, so a hostile `REC 0 99999999` can never turn into an oversized
/// allocation server-side.
pub const MAX_K: usize = 4096;

/// Largest user batch a single `REC` line may carry.
pub const MAX_REC_USERS: usize = 1024;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Top-`k` lists for each listed user.
    Rec {
        /// Requested users, served in order.
        users: Vec<u32>,
        /// Cutoff shared by the batch.
        k: usize,
        /// True for `RECX`: force the exact-parity scorer even when an ANN
        /// index is enabled.
        exact: bool,
    },
    /// Serving counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Close the connection.
    Quit,
}

/// Parses one request line. Errors are human-readable fragments suitable
/// for an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut parts = line.split_ascii_whitespace();
    match parts.next() {
        Some(verb @ ("REC" | "RECX")) => {
            let users_part = parts
                .next()
                .ok_or_else(|| format!("{verb} needs <users> <k>"))?;
            let k_part = parts
                .next()
                .ok_or_else(|| format!("{verb} needs <users> <k>"))?;
            if parts.next().is_some() {
                return Err(format!("{verb} takes exactly two arguments"));
            }
            let users = users_part
                .split(',')
                .map(|u| u.parse::<u32>().map_err(|_| format!("bad user id {u:?}")))
                .collect::<Result<Vec<u32>, String>>()?;
            if users.is_empty() {
                return Err(format!("{verb} needs at least one user"));
            }
            if users.len() > MAX_REC_USERS {
                return Err(format!(
                    "too many users in one {verb} ({} > {MAX_REC_USERS})",
                    users.len()
                ));
            }
            let k = k_part
                .parse::<usize>()
                .map_err(|_| format!("bad k {k_part:?}"))?;
            if k > MAX_K {
                return Err(format!("k too large ({k} > {MAX_K})"));
            }
            Ok(Request::Rec {
                users,
                k,
                exact: verb == "RECX",
            })
        }
        Some("STATS") => Ok(Request::Stats),
        Some("PING") => Ok(Request::Ping),
        Some("QUIT") => Ok(Request::Quit),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("empty request".into()),
    }
}

/// Renders a served recommendation as its `OK` line.
pub fn ok_line(rec: &Recommendation) -> String {
    let mut items = String::new();
    let mut bits = String::new();
    for (i, s) in rec.items.iter().enumerate() {
        if i > 0 {
            items.push(',');
            bits.push(',');
        }
        items.push_str(&s.item.to_string());
        bits.push_str(&format!("{:08x}", s.score.to_bits()));
    }
    format!(
        "OK gen={} user={} k={} items={} bits={}",
        rec.generation, rec.user, rec.k, items, bits
    )
}

/// The typed class of a router-originated `ERR` line, if any.
///
/// The router prefixes the errors *it* generates with a machine-readable
/// kind token — `ERR down …` (no serving-eligible replica for the owning
/// shard), `ERR deadline …` (the request's time budget was exhausted
/// across retry/failover), `ERR admin …` (an admin verb arrived on the
/// public port). Replica-produced `ERR` lines are relayed verbatim and
/// carry no kind token, so this returns `None` for them — which is
/// exactly how a client tells "the router gave up" apart from "the
/// replica answered with an application error".
pub fn err_kind(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("ERR ")?;
    let token = rest.split_ascii_whitespace().next()?;
    matches!(token, "down" | "deadline" | "admin").then_some(token)
}

/// A parsed `OK` response line (client side: loadgen and the parity
/// harness).
#[derive(Clone, Debug, PartialEq)]
pub struct OkLine {
    /// Serving generation.
    pub gen: u64,
    /// User the list is for.
    pub user: u32,
    /// Requested cutoff.
    pub k: usize,
    /// Ranked items with scores reconstructed from their bit patterns.
    pub items: Vec<ScoredItem>,
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
}

/// Parses an `OK` line produced by [`ok_line`]. Returns `None` on any
/// malformed field (clients treat that as a protocol error).
pub fn parse_ok_line(line: &str) -> Option<OkLine> {
    if !line.starts_with("OK ") {
        return None;
    }
    let gen = field(line, "gen=")?.parse().ok()?;
    let user = field(line, "user=")?.parse().ok()?;
    let k = field(line, "k=")?.parse().ok()?;
    let items_s = field(line, "items=")?;
    let bits_s = field(line, "bits=")?;
    let mut items = Vec::new();
    if !items_s.is_empty() {
        let ids = items_s.split(',');
        let mut bits = bits_s.split(',');
        for id in ids {
            let item = id.parse().ok()?;
            let b = u32::from_str_radix(bits.next()?, 16).ok()?;
            items.push(ScoredItem {
                item,
                score: f32::from_bits(b),
            });
        }
        if bits.next().is_some() {
            return None; // more scores than items
        }
    } else if !bits_s.is_empty() {
        return None;
    }
    Some(OkLine {
        gen,
        user,
        k,
        items,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn request_parsing_round_trips() {
        assert_eq!(
            parse_request("REC 4 10"),
            Ok(Request::Rec {
                users: vec![4],
                k: 10,
                exact: false
            })
        );
        assert_eq!(
            parse_request("REC 1,2,3 20"),
            Ok(Request::Rec {
                users: vec![1, 2, 3],
                k: 20,
                exact: false
            })
        );
        assert_eq!(
            parse_request("RECX 1,2 5"),
            Ok(Request::Rec {
                users: vec![1, 2],
                k: 5,
                exact: true
            })
        );
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("PING"), Ok(Request::Ping));
        assert_eq!(parse_request("QUIT"), Ok(Request::Quit));
        assert!(parse_request("").is_err());
        assert!(parse_request("REC").is_err());
        assert!(parse_request("REC x 5").is_err());
        assert!(parse_request("REC 1 x").is_err());
        assert!(parse_request("REC 1 2 3").is_err());
        assert!(parse_request("NOPE 1 2").is_err());
        // RECX shares REC's validation, including its error surface.
        assert!(parse_request("RECX").is_err());
        assert!(parse_request("RECX x 5").is_err());
        assert!(
            parse_request("RECXY 1 5").is_err(),
            "verb must match exactly"
        );
    }

    #[test]
    fn truncated_and_malformed_requests_yield_typed_errors() {
        // Truncated lines at every prefix of a valid request.
        let full = "REC 1,2,3 20";
        for end in 0..full.len() {
            let _ = parse_request(&full[..end]); // must not panic
        }
        assert!(parse_request("REC").is_err());
        assert!(parse_request("REC 1,2,").is_err(), "trailing comma");
        assert!(parse_request("REC ,1 5").is_err(), "leading comma");
        assert!(parse_request("REC 1,,2 5").is_err(), "empty id");
        assert!(parse_request("REC -1 5").is_err(), "negative user");
        assert!(parse_request("REC 4294967296 5").is_err(), "user > u32");
        assert!(parse_request("REC 1 -5").is_err(), "negative k");
        assert!(parse_request("REC 1 5.0").is_err(), "non-integer k");
        assert!(
            parse_request("rec 1 5").is_err(),
            "verbs are case-sensitive"
        );
        assert!(parse_request("  \t ").is_err(), "whitespace only");
    }

    #[test]
    fn oversized_requests_are_rejected_not_allocated() {
        // k beyond the cap, and k beyond usize entirely.
        assert!(parse_request(&format!("REC 1 {}", MAX_K + 1)).is_err());
        assert!(parse_request("REC 1 99999999999999999999999999").is_err());
        assert_eq!(
            parse_request(&format!("REC 1 {MAX_K}")),
            Ok(Request::Rec {
                users: vec![1],
                k: MAX_K,
                exact: false
            })
        );
        // A user batch one past the cap fails; at the cap it parses.
        let ids = |n: usize| {
            (0..n as u32)
                .map(|u| u.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        assert!(parse_request(&format!("REC {} 5", ids(MAX_REC_USERS + 1))).is_err());
        assert!(parse_request(&format!("REC {} 5", ids(MAX_REC_USERS))).is_ok());
    }

    #[test]
    fn arbitrary_garbage_never_panics_the_parser() {
        graphaug_rng::prop::check("proto_parse_no_panic", 256, |g| {
            let len = g.len_in(0, 64);
            let line: String = (0..len)
                .map(|_| {
                    // Bias toward protocol-adjacent bytes so the fuzz hits
                    // the interesting branches, not just the unknown-verb
                    // arm.
                    let alphabet = b"REC STAQUIPNG0123456789,.- \t";
                    alphabet[g.bounded_u64(alphabet.len() as u64) as usize] as char
                })
                .collect();
            // The property is "returns, never panics"; both Ok and Err are
            // acceptable outcomes.
            let _ = parse_request(&line);
            Ok(())
        });
    }

    #[test]
    fn ok_line_round_trips_bit_exactly() {
        let rec = Recommendation {
            user: 7,
            k: 3,
            generation: 42,
            items: Arc::new(vec![
                ScoredItem {
                    item: 5,
                    score: 1.25,
                },
                ScoredItem {
                    item: 0,
                    score: f32::from_bits(0x3f80_0001), // 1.0 + 1 ULP
                },
                ScoredItem {
                    item: 9,
                    score: -0.0,
                },
            ]),
            from_cache: false,
        };
        let line = ok_line(&rec);
        let parsed = parse_ok_line(&line).expect("parses");
        assert_eq!(parsed.gen, 42);
        assert_eq!(parsed.user, 7);
        assert_eq!(parsed.k, 3);
        assert_eq!(parsed.items.len(), 3);
        for (a, b) in parsed.items.iter().zip(rec.items.iter()) {
            assert_eq!(a.item, b.item);
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "bit-exact scores");
        }
    }

    #[test]
    fn empty_recommendation_round_trips() {
        let rec = Recommendation {
            user: 1,
            k: 0,
            generation: 0,
            items: Arc::new(Vec::new()),
            from_cache: false,
        };
        let parsed = parse_ok_line(&ok_line(&rec)).expect("parses");
        assert!(parsed.items.is_empty());
    }

    #[test]
    fn err_kinds_distinguish_router_errors_from_relayed_ones() {
        assert_eq!(err_kind("ERR down user 5: shard 1 down"), Some("down"));
        assert_eq!(
            err_kind("ERR deadline user 5: budget 50ms exhausted at shard 1"),
            Some("deadline")
        );
        assert_eq!(err_kind("ERR admin REPLACE is admin-only"), Some("admin"));
        // Relayed replica errors carry no kind token.
        assert_eq!(err_kind("ERR unknown user 999999"), None);
        assert_eq!(err_kind("ERR k too large (9999 > 4096)"), None);
        assert_eq!(err_kind("OK gen=1 user=2 k=3 items= bits="), None);
        assert_eq!(err_kind("ERR "), None);
    }

    #[test]
    fn malformed_ok_lines_are_rejected() {
        assert!(parse_ok_line("ERR nope").is_none());
        assert!(parse_ok_line("OK gen=1 user=2").is_none());
        assert!(parse_ok_line("OK gen=1 user=2 k=3 items=1,2 bits=3f800000").is_none());
        assert!(parse_ok_line("OK gen=1 user=2 k=3 items= bits=3f800000").is_none());
    }
}
