//! A dependency-free blocking TCP server for the serving engine.
//!
//! One accept loop in a background thread, one thread per connection,
//! line-buffered I/O — deliberately boring: the interesting guarantees
//! (atomic table swaps, batch consistency, cache correctness) live in the
//! [`crate::engine`] layer, and this layer only moves lines.
//!
//! A `REC` request with multiple users is served through
//! [`crate::Engine::recommend_batch`], so the whole batch is answered from
//! one table snapshot (one generation) and fans out over `graphaug-par`.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::engine::Engine;
use crate::proto::{ok_line, parse_request, Request};
use crate::tables::ServeError;

/// A running server; dropping (or calling [`ServerHandle::stop`]) shuts
/// the accept loop down. Already-open connections finish on their own
/// threads.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
/// `engine` until the handle is stopped.
pub fn serve(engine: Arc<Engine>, addr: &str) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(addr).map_err(|e| ServeError::Io(e.to_string()))?;
    let local = listener
        .local_addr()
        .map_err(|e| ServeError::Io(e.to_string()))?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let accept_thread = std::thread::Builder::new()
        .name("graphaug-serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let engine = engine.clone();
                let _ = std::thread::Builder::new()
                    .name("graphaug-serve-conn".into())
                    .spawn(move || handle_connection(&engine, stream));
            }
        })
        .map_err(|e| ServeError::Io(e.to_string()))?;
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(engine: &Engine, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let done = respond(engine, &line, &mut writer).is_err();
        if writer.flush().is_err() || done {
            break;
        }
    }
}

/// Writes the response line(s) for one request. `Err(())` means the
/// connection should close (QUIT or a write failure).
fn respond(engine: &Engine, line: &str, w: &mut impl Write) -> Result<(), ()> {
    let put = |w: &mut dyn Write, s: &str| -> Result<(), ()> { writeln!(w, "{s}").map_err(|_| ()) };
    match parse_request(line) {
        Ok(Request::Rec { users, k, exact }) => {
            let requests: Vec<(u32, usize)> = users.into_iter().map(|u| (u, k)).collect();
            for result in engine.recommend_batch_mode(&requests, exact) {
                match result {
                    Ok(rec) => put(w, &ok_line(&rec))?,
                    Err(e) => put(w, &format!("ERR {e}"))?,
                }
            }
            Ok(())
        }
        Ok(Request::Stats) => {
            let s = engine.stats();
            let tables = engine.tables();
            put(
                w,
                &format!(
                    "STATS gen={} users={} items={} requests={} cache_hits={} \
                     cache_misses={} reloads={} reload_errors={} ann={} \
                     ann_probes={} ann_cands={} exact_fallbacks={} recall_sampled={} \
                     quant={} table_bytes={} quant_served={} drift_sampled={} \
                     reload_skips={} ingested={} log_offset={} finetunes={}",
                    s.generation,
                    tables.n_users(),
                    tables.n_items(),
                    s.requests,
                    s.cache_hits,
                    s.cache_misses,
                    s.reloads,
                    s.reload_errors,
                    if s.ann_on { "on" } else { "off" },
                    s.ann_probes,
                    s.ann_cands,
                    s.exact_fallbacks,
                    // `-` until the self-audit has sampled anything, so the
                    // field is always present and splittable.
                    s.recall_sampled
                        .map_or_else(|| "-".to_string(), |r| format!("{r:.4}")),
                    if s.quant_on { "on" } else { "off" },
                    s.table_bytes,
                    s.quant_served,
                    s.drift_sampled
                        .map_or_else(|| "-".to_string(), |r| format!("{r:.4}")),
                    s.reload_skips,
                    s.ingested,
                    s.log_offset,
                    s.finetunes,
                ),
            )
        }
        Ok(Request::Ping) => put(w, "PONG"),
        Ok(Request::Quit) => {
            put(w, "BYE")?;
            Err(())
        }
        Err(msg) => put(w, &format!("ERR {msg}")),
    }
}
