//! A reusable blocking client for the serving wire protocol.
//!
//! Everything that used to live ad hoc inside `loadgen` — connect, write a
//! request line, read response lines, pick fields out of a `STATS` line —
//! is factored here so the load generator, the shard router's downstream
//! connections, and the chaos scenario driver all speak the protocol
//! through one code path. The client is deliberately dumb about *content*:
//! `REC` responses come back as raw lines, so a proxy relaying them
//! forwards the replica's bytes verbatim (which is what makes routed
//! responses bit-identical to direct ones — no reparse/rerender step can
//! perturb a score's hex bit pattern).

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Resolves `addr` to a socket address, rejecting malformed input with a
/// readable message instead of a panic or a hang.
pub fn resolve_addr(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("bad address {addr:?}: resolves to nothing"))
}

/// One line-oriented protocol connection.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServeClient {
    /// Connects with no timeouts (blocking until the OS gives up).
    pub fn connect(addr: &str) -> io::Result<ServeClient> {
        let resolved = resolve_addr(addr).map_err(io::Error::other)?;
        Self::from_stream(TcpStream::connect(resolved)?)
    }

    /// Connects with a connect timeout and an optional per-read/write I/O
    /// timeout — the shape a proxy needs so one hung replica cannot wedge
    /// a routed connection forever.
    pub fn connect_with_timeouts(
        addr: &str,
        connect: Duration,
        io_timeout: Option<Duration>,
    ) -> io::Result<ServeClient> {
        let resolved = resolve_addr(addr).map_err(io::Error::other)?;
        let stream = TcpStream::connect_timeout(&resolved, connect)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> io::Result<ServeClient> {
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Re-arms the per-read/write timeout on the live socket. Both halves
    /// share one file description, so setting it on either applies to the
    /// connection. A proxy carrying a per-request deadline calls this
    /// before reusing a cached connection, clamping the socket timeout to
    /// the request's remaining budget.
    pub fn set_io_timeout(&self, io_timeout: Option<Duration>) -> io::Result<()> {
        let stream = self.writer.get_ref();
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)
    }

    /// Writes one request line and flushes it.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Reads one response line (without its trailing newline). A closed
    /// connection is an `UnexpectedEof` error, never an empty success —
    /// and so is a connection that closes **mid-line**: a response without
    /// its terminating newline is a truncated transport artifact of a
    /// dying server, and relaying it as data would let a half-written
    /// `OK …` line masquerade as a complete answer. Callers (the router's
    /// relay path in particular) treat it like any other I/O failure:
    /// drop the connection, report the replica, fail over.
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if !line.ends_with('\n') {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "server died mid-response (truncated line, {} bytes)",
                    line.len()
                ),
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends `line` and reads exactly `n` response lines.
    pub fn request_lines(&mut self, line: &str, n: usize) -> io::Result<Vec<String>> {
        self.send_line(line)?;
        (0..n).map(|_| self.read_line()).collect()
    }

    /// `REC` for a batch of users: one raw response line per user, in
    /// request order (each either `OK …` or `ERR …`).
    pub fn rec_raw(&mut self, users: &[u32], k: usize) -> io::Result<Vec<String>> {
        let list = users
            .iter()
            .map(|u| u.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.request_lines(&format!("REC {list} {k}"), users.len())
    }

    /// `REC` for one user: the raw response line.
    pub fn rec_one(&mut self, user: u32, k: usize) -> io::Result<String> {
        self.rec_one_mode(user, k, false)
    }

    /// `REC` or `RECX` (exact-parity oracle) for one user: the raw
    /// response line.
    pub fn rec_one_mode(&mut self, user: u32, k: usize, exact: bool) -> io::Result<String> {
        let verb = if exact { "RECX" } else { "REC" };
        self.send_line(&format!("{verb} {user} {k}"))?;
        self.read_line()
    }

    /// `STATS`: the raw response line.
    pub fn stats_line(&mut self) -> io::Result<String> {
        self.send_line("STATS")?;
        self.read_line()
    }

    /// `PING`: true iff the server answered `PONG`.
    pub fn ping(&mut self) -> io::Result<bool> {
        self.send_line("PING")?;
        Ok(self.read_line()? == "PONG")
    }

    /// Sends `QUIT` and drops the connection; errors are ignored (the
    /// server may already be gone).
    pub fn quit(mut self) {
        let _ = self.send_line("QUIT");
    }
}

/// Picks a `key=value` field out of a `STATS`-style line.
pub fn stats_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
}

/// Nearest-rank percentile over an ascending-sorted latency vector.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Aggregated latency/throughput numbers for one load-generation phase.
#[derive(Clone, Debug)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: usize,
    /// Median latency in microseconds.
    pub p50_us: u64,
    /// 95th percentile in microseconds.
    pub p95_us: u64,
    /// 99th percentile in microseconds.
    pub p99_us: u64,
    /// Requests per second over the wall-clock window.
    pub qps: f64,
}

impl LatencySummary {
    /// Summarizes raw microsecond samples taken over `elapsed`.
    pub fn from_samples(mut samples: Vec<u64>, elapsed: Duration) -> LatencySummary {
        samples.sort_unstable();
        LatencySummary {
            count: samples.len(),
            p50_us: percentile(&samples, 0.50),
            p95_us: percentile(&samples, 0.95),
            p99_us: percentile(&samples, 0.99),
            qps: samples.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_addresses_are_rejected_with_a_message() {
        assert!(resolve_addr("not an address").is_err());
        assert!(resolve_addr("127.0.0.1").is_err(), "missing port");
        assert!(resolve_addr("127.0.0.1:99999").is_err(), "port overflow");
        assert!(resolve_addr("127.0.0.1:0").is_ok());
    }

    #[test]
    fn stats_fields_parse_positionally_anywhere() {
        let line = "STATS gen=4 users=150 items=120 requests=9";
        assert_eq!(stats_field(line, "users="), Some("150"));
        assert_eq!(stats_field(line, "gen="), Some("4"));
        assert_eq!(stats_field(line, "absent="), None);
    }

    #[test]
    fn a_mid_line_death_is_a_typed_transport_error_not_data() {
        // The server answers one complete line, then writes half a line
        // and slams the connection — the client must surface the partial
        // read as UnexpectedEof, never as a successful (truncated) answer.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream
                .write_all(b"OK gen=1 user=0 k=2 items=1,2 bits=a,b\n")
                .unwrap();
            stream.write_all(b"OK gen=1 user=1 k=2 item").unwrap();
            // drop → FIN mid-line
        });
        let mut client = ServeClient::connect(&addr.to_string()).unwrap();
        assert!(client.read_line().unwrap().starts_with("OK "));
        let err = client.read_line().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("truncated"), "{err}");
        server.join().unwrap();
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn latency_summary_counts_and_rates() {
        let s = LatencySummary::from_samples(vec![30, 10, 20], Duration::from_millis(3));
        assert_eq!(s.count, 3);
        assert_eq!(s.p50_us, 20);
        assert!((s.qps - 1000.0).abs() < 1.0);
    }
}
