//! A seeded closed-loop load generator for `serve_main`.
//!
//! ```text
//! loadgen <addr> [--requests N] [--conns N] [--seed S] [--kmax K]
//! ```
//!
//! Opens `--conns` connections, each driving a deterministic request
//! stream (`StdRng::stream(seed, conn)`), and reports latency percentiles
//! and throughput:
//!
//! ```text
//! loadgen: requests=2000 conns=4 errors=0 elapsed_ms=312 qps=6410.3 p50_us=140 p95_us=309 p99_us=481
//! ```
//!
//! Every response is parsed and validated (user echo, list length ≤ k,
//! strictly valid hex score bits); any `ERR` or malformed line counts as
//! an error and fails the run (non-zero exit), so this doubles as a
//! protocol conformance check under concurrency.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Instant;

use graphaug_rng::StdRng;
use graphaug_serve::parse_ok_line;

struct Args {
    addr: String,
    requests: usize,
    conns: usize,
    seed: u64,
    kmax: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().ok_or("missing <addr>")?;
    let mut out = Args {
        addr,
        requests: 2000,
        conns: 4,
        seed: 1,
        kmax: 20,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or(format!("{name} needs a value"))
                .and_then(|v| v.parse::<u64>().map_err(|_| format!("bad {name} value")))
        };
        match flag.as_str() {
            "--requests" => out.requests = value("--requests")? as usize,
            "--conns" => out.conns = (value("--conns")? as usize).max(1),
            "--seed" => out.seed = value("--seed")?,
            "--kmax" => out.kmax = (value("--kmax")? as usize).max(1),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(out)
}

/// Asks the server for its table shape so the request stream stays
/// in-range.
fn fetch_user_count(addr: &str) -> Result<u32, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "STATS").map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let users = line
        .split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix("users="))
        .ok_or_else(|| format!("bad STATS response: {}", line.trim()))?;
    users
        .parse::<u32>()
        .map_err(|_| format!("bad user count in: {}", line.trim()))
}

struct ConnReport {
    latencies_us: Vec<u64>,
    errors: usize,
}

fn drive_connection(
    addr: &str,
    requests: usize,
    n_users: u32,
    kmax: usize,
    mut rng: StdRng,
) -> Result<ConnReport, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);
    let mut latencies_us = Vec::with_capacity(requests);
    let mut errors = 0usize;
    let mut line = String::new();
    for _ in 0..requests {
        let user = rng.bounded_u64(n_users as u64) as u32;
        let k = 1 + rng.bounded_u64(kmax as u64) as usize;
        let start = Instant::now();
        writeln!(writer, "REC {user} {k}").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        latencies_us.push(start.elapsed().as_micros() as u64);
        match parse_ok_line(line.trim_end()) {
            Some(ok) if ok.user == user && ok.k == k && ok.items.len() <= k => {}
            _ => {
                errors += 1;
                eprintln!("loadgen: bad response for REC {user} {k}: {}", line.trim());
            }
        }
    }
    writeln!(writer, "QUIT").ok();
    writer.flush().ok();
    Ok(ConnReport {
        latencies_us,
        errors,
    })
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            eprintln!("usage: loadgen <addr> [--requests N] [--conns N] [--seed S] [--kmax K]");
            return ExitCode::from(2);
        }
    };

    let n_users = match fetch_user_count(&args.addr) {
        Ok(n) if n > 0 => n,
        Ok(_) => {
            eprintln!("loadgen: server reports zero users");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    let per_conn = args.requests.div_ceil(args.conns);
    let start = Instant::now();
    let mut handles = Vec::new();
    for conn in 0..args.conns {
        let addr = args.addr.clone();
        let rng = StdRng::stream(args.seed, conn as u64);
        let kmax = args.kmax;
        handles.push(std::thread::spawn(move || {
            drive_connection(&addr, per_conn, n_users, kmax, rng)
        }));
    }

    let mut latencies = Vec::new();
    let mut errors = 0usize;
    for handle in handles {
        match handle.join() {
            Ok(Ok(report)) => {
                latencies.extend(report.latencies_us);
                errors += report.errors;
            }
            Ok(Err(e)) => {
                eprintln!("loadgen: connection failed: {e}");
                errors += 1;
            }
            Err(_) => {
                eprintln!("loadgen: worker panicked");
                errors += 1;
            }
        }
    }
    let elapsed = start.elapsed();

    latencies.sort_unstable();
    let total = latencies.len();
    let qps = total as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "loadgen: requests={} conns={} errors={} elapsed_ms={} qps={:.1} p50_us={} p95_us={} p99_us={}",
        total,
        args.conns,
        errors,
        elapsed.as_millis(),
        qps,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );

    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
