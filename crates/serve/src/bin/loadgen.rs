//! A seeded closed-loop load generator for `serve_main` (and, since the
//! wire protocol is identical, for `router_main`).
//!
//! ```text
//! loadgen <addr> [--requests N] [--conns N] [--seed S] [--kmax K]
//!                [--zipf S] [--hot H:FRAC] [--exact] [--quant-parity N]
//!                [--put N --users U --items I] [--dump N] [--stats]
//! ```
//!
//! Opens `--conns` connections, each driving a deterministic request
//! stream (`StdRng::stream(seed, conn)`), and reports latency percentiles
//! and throughput:
//!
//! ```text
//! loadgen: requests=2000 conns=4 errors=0 elapsed_ms=312 qps=6410.3 p50_us=140 p95_us=309 p99_us=481
//! ```
//!
//! `--zipf 1.1` skews users zipfian (rank 0 hottest); `--hot 4:0.9` aims
//! 90% of traffic at users 0..4 (a hot-key storm). The default is uniform.
//! `--exact` drives the `RECX` exact-oracle verb instead of `REC`, so the
//! two scorer paths can be load-compared on one running server.
//!
//! `--quant-parity N` replaces the load phase with a parity sweep: `N`
//! seeded probes each issue the same `(user, k)` through `REC` (the
//! quant/ANN fast path) *and* `RECX` (the pinned f32 oracle) on one
//! connection, print the overlap@k per run, and summarize the min/mean
//! overlap at the end. On a server without an enabled fast path the two
//! verbs are byte-identical and every overlap is `k/k`.
//!
//! Three single-connection modes support the online-learning smoke:
//! `--put N` streams `N` seeded `PUT user item` interactions to an
//! **ingest** listener (`--users`/`--items` bound the draws; every record
//! must come back `OK off=…` durable), `--dump N` prints the raw `OK` line
//! for users `0..N` at `k = --kmax` (a deterministic snapshot of the
//! served rankings, byte-comparable between a live run and a replay), and
//! `--stats` prints the server's raw `STATS` line.
//!
//! Argument problems are **typed** ([`ArgError`]) and rejected before any
//! traffic is sent — `--kmax 0` at parse time, `--kmax` beyond the
//! server's catalog right after the `STATS` probe — instead of surfacing
//! later as per-request `ERR` noise mid-run.
//!
//! Every response is parsed and validated (user echo, list length ≤ k,
//! strictly valid hex score bits); any `ERR` or malformed line counts as
//! an error and fails the run (non-zero exit), so this doubles as a
//! protocol conformance check under concurrency.

use std::process::ExitCode;
use std::time::Instant;

use graphaug_eval::overlap_count;
use graphaug_rng::StdRng;
use graphaug_serve::client::{resolve_addr, stats_field, LatencySummary, ServeClient};
use graphaug_serve::{parse_ok_line, UserSampler};

const USAGE: &str = "usage: loadgen <addr> [--requests N] [--conns N] [--seed S] [--kmax K] \
     [--zipf S] [--hot H:FRAC] [--exact] [--quant-parity N] \
     [--put N --users U --items I] [--dump N] [--stats]";

/// Why the argument list was rejected. Typed so tests (and callers) can
/// assert the *category* of refusal rather than string-matching, and so
/// every bad invocation dies before the first request goes out.
#[derive(Debug, PartialEq)]
enum ArgError {
    /// The positional `<addr>` is absent (or a flag appeared in its place).
    MissingAddr(Option<String>),
    /// `<addr>` did not resolve.
    BadAddr(String),
    /// A flag that wants a value hit end-of-argv.
    MissingValue(&'static str),
    /// A flag's value failed to parse or violated its range.
    Invalid {
        /// Which flag.
        flag: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// `--requests`/`--conns`/`--kmax` of zero (nothing to do / divide by
    /// zero / guaranteed-empty lists).
    Zero(&'static str),
    /// `--kmax` exceeds the serving catalog: every draw of `k` above the
    /// item count is wasted work the server would silently clamp.
    KmaxBeyondCatalog {
        /// Requested --kmax.
        kmax: usize,
        /// Items the server reports.
        items: usize,
    },
    /// An unrecognized flag.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingAddr(None) => write!(f, "missing <addr>"),
            ArgError::MissingAddr(Some(got)) => write!(f, "expected <addr>, got flag {got:?}"),
            ArgError::BadAddr(e) => write!(f, "bad <addr>: {e}"),
            ArgError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ArgError::Invalid { flag, reason } => write!(f, "bad {flag} value: {reason}"),
            ArgError::Zero(flag) => write!(f, "{flag} must be at least 1"),
            ArgError::KmaxBeyondCatalog { kmax, items } => write!(
                f,
                "--kmax {kmax} exceeds the server catalog of {items} items"
            ),
            ArgError::Unknown(flag) => write!(f, "unknown flag {flag:?}"),
        }
    }
}

enum Skew {
    Uniform,
    Zipf(f64),
    Hot { hot_users: u32, hot_frac: f64 },
}

struct Args {
    addr: String,
    requests: usize,
    conns: usize,
    seed: u64,
    kmax: usize,
    skew: Skew,
    exact: bool,
    quant_parity: usize,
    put: usize,
    put_users: u32,
    put_items: u32,
    dump: usize,
    stats: bool,
}

/// Parses an argument list (everything after argv[0]). Separated from
/// `std::env::args` so the unit tests below can drive it directly.
fn parse_arg_list(mut args: impl Iterator<Item = String>) -> Result<Args, ArgError> {
    let addr = args.next().ok_or(ArgError::MissingAddr(None))?;
    if addr.starts_with('-') {
        return Err(ArgError::MissingAddr(Some(addr)));
    }
    resolve_addr(&addr).map_err(ArgError::BadAddr)?;
    let mut out = Args {
        addr,
        requests: 2000,
        conns: 4,
        seed: 1,
        kmax: 20,
        skew: Skew::Uniform,
        exact: false,
        quant_parity: 0,
        put: 0,
        put_users: 0,
        put_items: 0,
        dump: 0,
        stats: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &'static str| args.next().ok_or(ArgError::MissingValue(name));
        let int = |name: &'static str, v: Result<String, ArgError>| {
            v.and_then(|v| {
                v.parse::<u64>().map_err(|e| ArgError::Invalid {
                    flag: name,
                    reason: e.to_string(),
                })
            })
        };
        match flag.as_str() {
            "--requests" => out.requests = int("--requests", value("--requests"))? as usize,
            "--conns" => out.conns = int("--conns", value("--conns"))? as usize,
            "--seed" => out.seed = int("--seed", value("--seed"))?,
            "--kmax" => out.kmax = int("--kmax", value("--kmax"))? as usize,
            "--exact" => out.exact = true,
            "--quant-parity" => {
                out.quant_parity = int("--quant-parity", value("--quant-parity"))? as usize;
                if out.quant_parity == 0 {
                    return Err(ArgError::Zero("--quant-parity"));
                }
            }
            "--put" => {
                out.put = int("--put", value("--put"))? as usize;
                if out.put == 0 {
                    return Err(ArgError::Zero("--put"));
                }
            }
            "--users" => out.put_users = int("--users", value("--users"))? as u32,
            "--items" => out.put_items = int("--items", value("--items"))? as u32,
            "--dump" => {
                out.dump = int("--dump", value("--dump"))? as usize;
                if out.dump == 0 {
                    return Err(ArgError::Zero("--dump"));
                }
            }
            "--stats" => out.stats = true,
            "--zipf" => {
                let s = value("--zipf")?
                    .parse::<f64>()
                    .map_err(|e| ArgError::Invalid {
                        flag: "--zipf",
                        reason: e.to_string(),
                    })?;
                if !(s.is_finite() && s >= 0.0) {
                    return Err(ArgError::Invalid {
                        flag: "--zipf",
                        reason: "exponent must be finite and >= 0".into(),
                    });
                }
                out.skew = Skew::Zipf(s);
            }
            "--hot" => {
                let v = value("--hot")?;
                let (h, fr) = v.split_once(':').ok_or(ArgError::Invalid {
                    flag: "--hot",
                    reason: "wants H:FRAC, e.g. 4:0.9".into(),
                })?;
                let hot_users = h.parse::<u32>().map_err(|e| ArgError::Invalid {
                    flag: "--hot",
                    reason: format!("user count: {e}"),
                })?;
                let hot_frac = fr.parse::<f64>().map_err(|e| ArgError::Invalid {
                    flag: "--hot",
                    reason: format!("fraction: {e}"),
                })?;
                if hot_users == 0 || !(0.0..=1.0).contains(&hot_frac) {
                    return Err(ArgError::Invalid {
                        flag: "--hot",
                        reason: "wants H >= 1 and FRAC in [0,1]".into(),
                    });
                }
                out.skew = Skew::Hot {
                    hot_users,
                    hot_frac,
                };
            }
            other => return Err(ArgError::Unknown(other.to_string())),
        }
    }
    if out.requests == 0 {
        return Err(ArgError::Zero("--requests"));
    }
    if out.conns == 0 {
        return Err(ArgError::Zero("--conns"));
    }
    if out.kmax == 0 {
        return Err(ArgError::Zero("--kmax"));
    }
    if out.quant_parity > 0 && out.exact {
        return Err(ArgError::Invalid {
            flag: "--quant-parity",
            reason: "incompatible with --exact (the sweep drives both verbs itself)".into(),
        });
    }
    if out.put > 0 && (out.put_users == 0 || out.put_items == 0) {
        // The ingest listener's STATS carries no catalog shape, so the
        // draw bounds must come from the caller.
        return Err(ArgError::Invalid {
            flag: "--put",
            reason: "needs --users U and --items I draw bounds (both >= 1)".into(),
        });
    }
    let modes = [out.put > 0, out.dump > 0, out.stats, out.quant_parity > 0];
    if modes.iter().filter(|&&m| m).count() > 1 {
        return Err(ArgError::Invalid {
            flag: "--put",
            reason: "--put/--dump/--stats/--quant-parity are mutually exclusive modes".into(),
        });
    }
    Ok(out)
}

/// Asks the server for its table shape, so the request stream stays
/// in-range and an over-catalog `--kmax` dies before traffic starts.
fn fetch_table_shape(addr: &str) -> Result<(u32, usize), String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let line = client.stats_line().map_err(|e| format!("STATS: {e}"))?;
    let users = stats_field(&line, "users=").and_then(|v| v.parse::<u32>().ok());
    let items = stats_field(&line, "items=").and_then(|v| v.parse::<usize>().ok());
    match (users, items) {
        (Some(u), Some(i)) => Ok((u, i)),
        _ => Err(format!("bad STATS response: {line}")),
    }
}

/// Drives the `--quant-parity` sweep on one connection: each probe sends
/// the same `(user, k)` through both verbs and scores the fast path's
/// overlap@k against the pinned `RECX` oracle. Prints one line per probe
/// plus a min/mean summary; returns `Err` on any malformed response.
fn quant_parity_sweep(
    addr: &str,
    probes: usize,
    kmax: usize,
    n_users: u32,
    seed: u64,
) -> Result<(), String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut rng = StdRng::stream(seed, 0);
    let (mut min, mut sum) = (1.0f64, 0.0f64);
    for probe in 0..probes {
        let user = rng.bounded_u64(n_users as u64) as u32;
        let k = 1 + rng.bounded_u64(kmax as u64) as usize;
        let fast = client
            .rec_one_mode(user, k, false)
            .map_err(|e| e.to_string())?;
        let oracle = client
            .rec_one_mode(user, k, true)
            .map_err(|e| e.to_string())?;
        let parse = |line: &str, verb: &str| {
            parse_ok_line(line)
                .filter(|ok| ok.user == user && ok.k == k && ok.items.len() <= k)
                .map(|ok| ok.items.iter().map(|s| s.item).collect::<Vec<u32>>())
                .ok_or_else(|| format!("bad response for {verb} {user} {k}: {line}"))
        };
        let fast_items = parse(&fast, "REC")?;
        let oracle_items = parse(&oracle, "RECX")?;
        let hits = overlap_count(&fast_items, &oracle_items);
        let ratio = if oracle_items.is_empty() {
            1.0
        } else {
            hits as f64 / oracle_items.len() as f64
        };
        min = min.min(ratio);
        sum += ratio;
        println!(
            "quant-parity[{probe}]: user={user} k={k} overlap={hits}/{} ratio={ratio:.4}",
            oracle_items.len()
        );
    }
    client.quit();
    println!(
        "quant-parity: probes={probes} min_overlap={min:.4} mean_overlap={:.4}",
        sum / probes as f64
    );
    Ok(())
}

/// Streams `n` seeded `PUT` interactions to an ingest listener and
/// requires every one acknowledged durable (`OK off=…`); any refusal or
/// malformed reply fails the run. Prints the final log offset so scripts
/// can assert the whole stream landed.
fn put_stream(addr: &str, n: usize, users: u32, items: u32, seed: u64) -> Result<(), String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut rng = StdRng::stream(seed, 0);
    let mut last_off = 0u64;
    for i in 0..n {
        let user = rng.bounded_u64(users as u64);
        let item = rng.bounded_u64(items as u64);
        let line = client
            .request_lines(&format!("PUT {user} {item}"), 1)
            .map_err(|e| e.to_string())?
            .pop()
            .expect("one reply per PUT");
        match line
            .strip_prefix("OK off=")
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(off) => last_off = off,
            None => return Err(format!("PUT {user} {item} (record {i}) refused: {line}")),
        }
    }
    client.quit();
    println!("put: sent={n} last_off={last_off}");
    Ok(())
}

/// Prints the raw `OK` line for users `0..n` at a fixed `k`: a
/// deterministic snapshot of the served rankings (ids and hex score bits
/// included), byte-comparable between a live run and a log replay.
fn dump_rankings(addr: &str, n: u32, k: usize) -> Result<(), String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    for user in 0..n {
        let line = client.rec_one(user, k).map_err(|e| e.to_string())?;
        parse_ok_line(&line)
            .filter(|ok| ok.user == user && ok.k == k && ok.items.len() <= k)
            .ok_or_else(|| format!("bad response for REC {user} {k}: {line}"))?;
        println!("{line}");
    }
    client.quit();
    Ok(())
}

/// Prints the server's raw `STATS` line and exits.
fn print_stats(addr: &str) -> Result<(), String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let line = client.stats_line().map_err(|e| e.to_string())?;
    println!("{line}");
    client.quit();
    Ok(())
}

struct ConnReport {
    latencies_us: Vec<u64>,
    errors: usize,
}

fn drive_connection(
    addr: &str,
    requests: usize,
    sampler: &UserSampler,
    kmax: usize,
    exact: bool,
    mut rng: StdRng,
) -> Result<ConnReport, String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let verb = if exact { "RECX" } else { "REC" };
    let mut latencies_us = Vec::with_capacity(requests);
    let mut errors = 0usize;
    for _ in 0..requests {
        let user = sampler.draw(&mut rng);
        let k = 1 + rng.bounded_u64(kmax as u64) as usize;
        let start = Instant::now();
        let line = client
            .rec_one_mode(user, k, exact)
            .map_err(|e| e.to_string())?;
        latencies_us.push(start.elapsed().as_micros() as u64);
        match parse_ok_line(&line) {
            Some(ok) if ok.user == user && ok.k == k && ok.items.len() <= k => {}
            _ => {
                errors += 1;
                eprintln!("loadgen: bad response for {verb} {user} {k}: {line}");
            }
        }
    }
    client.quit();
    Ok(ConnReport {
        latencies_us,
        errors,
    })
}

fn main() -> ExitCode {
    let args = match parse_arg_list(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    // The single-connection modes that talk to servers whose STATS carries
    // no catalog shape (ingest listeners) — or that only echo it — run
    // before the shape probe.
    if args.put > 0 {
        return match put_stream(
            &args.addr,
            args.put,
            args.put_users,
            args.put_items,
            args.seed,
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("loadgen: put stream failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.stats {
        return match print_stats(&args.addr) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("loadgen: stats failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let (n_users, n_items) = match fetch_table_shape(&args.addr) {
        Ok((u, i)) if u > 0 => (u, i),
        Ok(_) => {
            eprintln!("loadgen: server reports zero users");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.kmax > n_items {
        // Typed refusal before the first request, not 2000 clamped lists.
        eprintln!(
            "loadgen: {}",
            ArgError::KmaxBeyondCatalog {
                kmax: args.kmax,
                items: n_items
            }
        );
        return ExitCode::from(2);
    }
    if args.dump > 0 {
        let n = (args.dump as u32).min(n_users);
        return match dump_rankings(&args.addr, n, args.kmax) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("loadgen: dump failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.quant_parity > 0 {
        return match quant_parity_sweep(
            &args.addr,
            args.quant_parity,
            args.kmax,
            n_users,
            args.seed,
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("loadgen: quant-parity sweep failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let sampler = match args.skew {
        Skew::Uniform => UserSampler::uniform(n_users),
        Skew::Zipf(s) => UserSampler::zipf(n_users, s),
        Skew::Hot {
            hot_users,
            hot_frac,
        } => UserSampler::hot(n_users, hot_users, hot_frac),
    };

    let per_conn = args.requests.div_ceil(args.conns);
    let start = Instant::now();
    let mut handles = Vec::new();
    for conn in 0..args.conns {
        let addr = args.addr.clone();
        let rng = StdRng::stream(args.seed, conn as u64);
        let kmax = args.kmax;
        let exact = args.exact;
        let sampler = sampler.clone();
        handles.push(std::thread::spawn(move || {
            drive_connection(&addr, per_conn, &sampler, kmax, exact, rng)
        }));
    }

    let mut latencies = Vec::new();
    let mut errors = 0usize;
    for handle in handles {
        match handle.join() {
            Ok(Ok(report)) => {
                latencies.extend(report.latencies_us);
                errors += report.errors;
            }
            Ok(Err(e)) => {
                eprintln!("loadgen: connection failed: {e}");
                errors += 1;
            }
            Err(_) => {
                eprintln!("loadgen: worker panicked");
                errors += 1;
            }
        }
    }
    let elapsed = start.elapsed();

    let s = LatencySummary::from_samples(latencies, elapsed);
    println!(
        "loadgen: requests={} conns={} errors={} elapsed_ms={} qps={:.1} p50_us={} p95_us={} p99_us={}",
        s.count,
        args.conns,
        errors,
        elapsed.as_millis(),
        s.qps,
        s.p50_us,
        s.p95_us,
        s.p99_us,
    );

    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_string)
    }

    #[test]
    fn kmax_zero_is_a_typed_parse_error() {
        assert_eq!(
            parse_arg_list(argv("127.0.0.1:9 --kmax 0")).err(),
            Some(ArgError::Zero("--kmax"))
        );
    }

    #[test]
    fn zero_requests_and_conns_are_rejected() {
        assert_eq!(
            parse_arg_list(argv("127.0.0.1:9 --requests 0")).err(),
            Some(ArgError::Zero("--requests"))
        );
        assert_eq!(
            parse_arg_list(argv("127.0.0.1:9 --conns 0")).err(),
            Some(ArgError::Zero("--conns"))
        );
    }

    #[test]
    fn valid_invocations_parse() {
        let a = parse_arg_list(argv("127.0.0.1:9 --requests 10 --kmax 5 --exact")).unwrap();
        assert_eq!(a.requests, 10);
        assert_eq!(a.kmax, 5);
        assert!(a.exact);
        let plain = parse_arg_list(argv("127.0.0.1:9")).unwrap();
        assert!(!plain.exact);
        assert_eq!(plain.kmax, 20);
    }

    #[test]
    fn missing_and_malformed_values_are_typed() {
        assert_eq!(
            parse_arg_list(argv("")).err(),
            Some(ArgError::MissingAddr(None))
        );
        assert_eq!(
            parse_arg_list(argv("--kmax 5")).err(),
            Some(ArgError::MissingAddr(Some("--kmax".into())))
        );
        assert_eq!(
            parse_arg_list(argv("127.0.0.1:9 --kmax")).err(),
            Some(ArgError::MissingValue("--kmax"))
        );
        assert!(matches!(
            parse_arg_list(argv("127.0.0.1:9 --kmax nope")).err(),
            Some(ArgError::Invalid { flag: "--kmax", .. })
        ));
        assert_eq!(
            parse_arg_list(argv("127.0.0.1:9 --frobnicate")).err(),
            Some(ArgError::Unknown("--frobnicate".into()))
        );
    }

    #[test]
    fn quant_parity_args_are_typed() {
        let a = parse_arg_list(argv("127.0.0.1:9 --quant-parity 32")).unwrap();
        assert_eq!(a.quant_parity, 32);
        assert_eq!(
            parse_arg_list(argv("127.0.0.1:9 --quant-parity 0")).err(),
            Some(ArgError::Zero("--quant-parity"))
        );
        assert_eq!(
            parse_arg_list(argv("127.0.0.1:9 --quant-parity")).err(),
            Some(ArgError::MissingValue("--quant-parity"))
        );
        assert!(matches!(
            parse_arg_list(argv("127.0.0.1:9 --quant-parity nope")).err(),
            Some(ArgError::Invalid {
                flag: "--quant-parity",
                ..
            })
        ));
        // The sweep pins both verbs itself; `--exact` contradicts it.
        assert!(matches!(
            parse_arg_list(argv("127.0.0.1:9 --quant-parity 8 --exact")).err(),
            Some(ArgError::Invalid {
                flag: "--quant-parity",
                ..
            })
        ));
    }

    #[test]
    fn put_dump_stats_modes_are_typed() {
        let a = parse_arg_list(argv("127.0.0.1:9 --put 64 --users 150 --items 120")).unwrap();
        assert_eq!((a.put, a.put_users, a.put_items), (64, 150, 120));
        // PUT draws need explicit bounds — the ingest STATS has none.
        assert!(matches!(
            parse_arg_list(argv("127.0.0.1:9 --put 64")).err(),
            Some(ArgError::Invalid { flag: "--put", .. })
        ));
        assert_eq!(
            parse_arg_list(argv("127.0.0.1:9 --put 0")).err(),
            Some(ArgError::Zero("--put"))
        );
        let d = parse_arg_list(argv("127.0.0.1:9 --dump 16 --kmax 5")).unwrap();
        assert_eq!((d.dump, d.kmax), (16, 5));
        assert_eq!(
            parse_arg_list(argv("127.0.0.1:9 --dump 0")).err(),
            Some(ArgError::Zero("--dump"))
        );
        assert!(parse_arg_list(argv("127.0.0.1:9 --stats")).unwrap().stats);
        // One mode per invocation.
        assert!(matches!(
            parse_arg_list(argv("127.0.0.1:9 --stats --dump 4")).err(),
            Some(ArgError::Invalid { .. })
        ));
    }

    #[test]
    fn catalog_bound_error_renders_both_numbers() {
        let e = ArgError::KmaxBeyondCatalog {
            kmax: 500,
            items: 120,
        };
        let msg = e.to_string();
        assert!(msg.contains("500") && msg.contains("120"), "{msg}");
    }
}
