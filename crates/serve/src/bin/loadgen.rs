//! A seeded closed-loop load generator for `serve_main` (and, since the
//! wire protocol is identical, for `router_main`).
//!
//! ```text
//! loadgen <addr> [--requests N] [--conns N] [--seed S] [--kmax K]
//!                [--zipf S] [--hot H:FRAC]
//! ```
//!
//! Opens `--conns` connections, each driving a deterministic request
//! stream (`StdRng::stream(seed, conn)`), and reports latency percentiles
//! and throughput:
//!
//! ```text
//! loadgen: requests=2000 conns=4 errors=0 elapsed_ms=312 qps=6410.3 p50_us=140 p95_us=309 p99_us=481
//! ```
//!
//! `--zipf 1.1` skews users zipfian (rank 0 hottest); `--hot 4:0.9` aims
//! 90% of traffic at users 0..4 (a hot-key storm). The default is uniform.
//!
//! Every response is parsed and validated (user echo, list length ≤ k,
//! strictly valid hex score bits); any `ERR` or malformed line counts as
//! an error and fails the run (non-zero exit), so this doubles as a
//! protocol conformance check under concurrency.

use std::process::ExitCode;
use std::time::Instant;

use graphaug_rng::StdRng;
use graphaug_serve::client::{resolve_addr, stats_field, LatencySummary, ServeClient};
use graphaug_serve::{parse_ok_line, UserSampler};

const USAGE: &str = "usage: loadgen <addr> [--requests N] [--conns N] [--seed S] [--kmax K] \
     [--zipf S] [--hot H:FRAC]";

enum Skew {
    Uniform,
    Zipf(f64),
    Hot { hot_users: u32, hot_frac: f64 },
}

struct Args {
    addr: String,
    requests: usize,
    conns: usize,
    seed: u64,
    kmax: usize,
    skew: Skew,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().ok_or("missing <addr>")?;
    if addr.starts_with('-') {
        return Err(format!("expected <addr>, got flag {addr:?}"));
    }
    resolve_addr(&addr)?;
    let mut out = Args {
        addr,
        requests: 2000,
        conns: 4,
        seed: 1,
        kmax: 20,
        skew: Skew::Uniform,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        let int = |name: &str, v: Result<String, String>| {
            v.and_then(|v| v.parse::<u64>().map_err(|_| format!("bad {name} value")))
        };
        match flag.as_str() {
            "--requests" => out.requests = int("--requests", value("--requests"))? as usize,
            "--conns" => out.conns = int("--conns", value("--conns"))? as usize,
            "--seed" => out.seed = int("--seed", value("--seed"))?,
            "--kmax" => out.kmax = int("--kmax", value("--kmax"))? as usize,
            "--zipf" => {
                let s = value("--zipf")?
                    .parse::<f64>()
                    .map_err(|_| "bad --zipf value".to_string())?;
                if !(s.is_finite() && s >= 0.0) {
                    return Err("--zipf exponent must be finite and >= 0".into());
                }
                out.skew = Skew::Zipf(s);
            }
            "--hot" => {
                let v = value("--hot")?;
                let (h, f) = v
                    .split_once(':')
                    .ok_or("--hot wants H:FRAC, e.g. 4:0.9".to_string())?;
                let hot_users = h
                    .parse::<u32>()
                    .map_err(|_| "bad --hot user count".to_string())?;
                let hot_frac = f
                    .parse::<f64>()
                    .map_err(|_| "bad --hot fraction".to_string())?;
                if hot_users == 0 || !(0.0..=1.0).contains(&hot_frac) {
                    return Err("--hot wants H >= 1 and FRAC in [0,1]".into());
                }
                out.skew = Skew::Hot {
                    hot_users,
                    hot_frac,
                };
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.requests == 0 {
        return Err("--requests must be at least 1".into());
    }
    if out.conns == 0 {
        return Err("--conns must be at least 1".into());
    }
    if out.kmax == 0 {
        return Err("--kmax must be at least 1".into());
    }
    Ok(out)
}

/// Asks the server for its table shape so the request stream stays
/// in-range.
fn fetch_user_count(addr: &str) -> Result<u32, String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let line = client.stats_line().map_err(|e| format!("STATS: {e}"))?;
    stats_field(&line, "users=")
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| format!("bad STATS response: {line}"))
}

struct ConnReport {
    latencies_us: Vec<u64>,
    errors: usize,
}

fn drive_connection(
    addr: &str,
    requests: usize,
    sampler: &UserSampler,
    kmax: usize,
    mut rng: StdRng,
) -> Result<ConnReport, String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut latencies_us = Vec::with_capacity(requests);
    let mut errors = 0usize;
    for _ in 0..requests {
        let user = sampler.draw(&mut rng);
        let k = 1 + rng.bounded_u64(kmax as u64) as usize;
        let start = Instant::now();
        let line = client.rec_one(user, k).map_err(|e| e.to_string())?;
        latencies_us.push(start.elapsed().as_micros() as u64);
        match parse_ok_line(&line) {
            Some(ok) if ok.user == user && ok.k == k && ok.items.len() <= k => {}
            _ => {
                errors += 1;
                eprintln!("loadgen: bad response for REC {user} {k}: {line}");
            }
        }
    }
    client.quit();
    Ok(ConnReport {
        latencies_us,
        errors,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let n_users = match fetch_user_count(&args.addr) {
        Ok(n) if n > 0 => n,
        Ok(_) => {
            eprintln!("loadgen: server reports zero users");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sampler = match args.skew {
        Skew::Uniform => UserSampler::uniform(n_users),
        Skew::Zipf(s) => UserSampler::zipf(n_users, s),
        Skew::Hot {
            hot_users,
            hot_frac,
        } => UserSampler::hot(n_users, hot_users, hot_frac),
    };

    let per_conn = args.requests.div_ceil(args.conns);
    let start = Instant::now();
    let mut handles = Vec::new();
    for conn in 0..args.conns {
        let addr = args.addr.clone();
        let rng = StdRng::stream(args.seed, conn as u64);
        let kmax = args.kmax;
        let sampler = sampler.clone();
        handles.push(std::thread::spawn(move || {
            drive_connection(&addr, per_conn, &sampler, kmax, rng)
        }));
    }

    let mut latencies = Vec::new();
    let mut errors = 0usize;
    for handle in handles {
        match handle.join() {
            Ok(Ok(report)) => {
                latencies.extend(report.latencies_us);
                errors += report.errors;
            }
            Ok(Err(e)) => {
                eprintln!("loadgen: connection failed: {e}");
                errors += 1;
            }
            Err(_) => {
                eprintln!("loadgen: worker panicked");
                errors += 1;
            }
        }
    }
    let elapsed = start.elapsed();

    let s = LatencySummary::from_samples(latencies, elapsed);
    println!(
        "loadgen: requests={} conns={} errors={} elapsed_ms={} qps={:.1} p50_us={} p95_us={} p99_us={}",
        s.count,
        args.conns,
        errors,
        elapsed.as_millis(),
        s.qps,
        s.p50_us,
        s.p95_us,
        s.p99_us,
    );

    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
