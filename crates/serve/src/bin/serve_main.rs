//! The serving demo binary driven by `ci.sh` and the README quickstart.
//!
//! ```text
//! serve_main <checkpoint-dir> [--addr HOST:PORT] [--watch-ms N] [--parity-users N]
//!            [--ann] [--ann-nlists N] [--ann-nprobe N] [--ann-floor F] [--ann-audit N]
//!            [--quant] [--quant-floor F] [--quant-audit N] [--log-dir PATH]
//! ```
//!
//! Runs a self-contained service over the standard demo workload (the same
//! deterministic synthetic graph the kill/resume harness trains):
//!
//! 1. probes `<checkpoint-dir>` **once**: a valid checkpoint is decoded
//!    and reused directly (`reusing checkpoint gen=…`, no re-train, no
//!    second decode); otherwise the demo model is trained there first
//!    (checkpoint every epoch);
//! 2. opens the serving [`Engine`] from that state — with `--ann`, the IVF
//!    item index is built and recall-gated at open, printing `ANN ok
//!    recall=…` (or `ANN DISABLED …` with an exact fallback when the gate
//!    refuses); with `--quant`, int8 tables are built and drift-gated at
//!    open, printing `QUANT ok drift=…` (or `QUANT DISABLED …` with an
//!    f32 fallback when the gate refuses);
//! 3. runs a **parity self-check** through the exact-oracle path (`RECX`
//!    semantics — independent of any ANN index): the offline
//!    `graphaug-eval` ranking (computed through the independent
//!    training-restore path) must match the served lists hex-exactly, and
//!    the `EvalResult::bitline()`s of both sides must be byte-identical —
//!    printed as `PARITY ok …`;
//! 4. starts the TCP server (printing `READY addr=… gen=…`) with a hot
//!    reload watcher, then serves until killed.
//!
//! `--addr 127.0.0.1:0` (the default) binds an ephemeral loopback port so
//! smoke tests can run concurrently.
//!
//! `--log-dir PATH` attaches the interaction log an `ingestd` process
//! appends to: checkpoints fine-tuned past the base graph (nonzero
//! watermark) are then resolved by replaying the log, so the watcher
//! hot-reloads the online-learning loop's generations with zero downtime.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use graphaug_core::GraphAug;
use graphaug_eval::{evaluate, topk_indices, Recommender};
use graphaug_graph::{InteractionGraph, TrainTestSplit};
use graphaug_runtime::{checkpoint, demo_config, demo_split, Runtime, RuntimeConfig};
use graphaug_serve::{
    serve, spawn_watcher, Engine, IvfParams, ModelSource, QuantParams, DEFAULT_CACHE_CAPACITY,
};

/// Offline top-K for one user, computed exactly as the eval harness does:
/// score every item, mask train items to `-inf`, bounded-heap top-K.
/// `graph` is the watermark-resolved training graph — base plus replayed
/// deltas — so seen-item masking matches the served tables.
fn offline_topk(model: &dyn Recommender, graph: &InteractionGraph, user: u32, k: usize) -> String {
    let mut scores = model.score_items(user as usize);
    for &v in graph.items_of(user as usize) {
        scores[v as usize] = f32::NEG_INFINITY;
    }
    let ranked = topk_indices(&scores, k);
    hex_list(
        &ranked
            .iter()
            .map(|&i| (i, scores[i as usize]))
            .collect::<Vec<_>>(),
    )
}

/// Bit-exact rendering of a ranked list (item ids + f32 score bit
/// patterns), mirroring the `EvalResult::bitline()` idea.
fn hex_list(items: &[(u32, f32)]) -> String {
    let mut out = String::new();
    for (i, &(item, score)) in items.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&format!("{item}:{:08x}", score.to_bits()));
    }
    out
}

fn parity_check(engine: &Engine, split: &TrainTestSplit, users: usize) -> Result<String, String> {
    let source = engine.source();
    let dir = &source.checkpoint_dir;
    let (generation, state) = checkpoint::load_latest_valid(dir)
        .ok_or_else(|| format!("no valid checkpoint under {}", dir.display()))?;
    // Independent offline path: training-style construct + restore, over
    // the same watermark-resolved graph the serving tables were built on
    // (base graph plus a fresh replay of the interaction log).
    let graph = source
        .graph_at(state.log_offset)
        .map_err(|e| format!("offline graph resolution failed: {e}"))?;
    let mut offline = GraphAug::new(source.config.clone(), &graph);
    offline
        .restore_training_state(&state.model)
        .map_err(|e| format!("offline restore failed: {e}"))?;

    // Per-user ranked-list parity at several cutoffs, hex-exact.
    let tables = engine.tables();
    if tables.generation() != generation {
        return Err(format!(
            "engine serves gen {} but newest valid is {generation}",
            tables.generation()
        ));
    }
    let n_users = graph.n_users().min(users);
    let mut compared = 0usize;
    for user in 0..n_users as u32 {
        for k in [1usize, 5, 20] {
            // The exact-oracle path (`RECX` semantics): parity vs offline
            // eval must hold bit-for-bit whether or not an ANN index is
            // live, so the check pins the scorer, not the fast path.
            let served = engine
                .recommend_exact(user, k)
                .map_err(|e| format!("serve failed for user {user}: {e}"))?;
            let served_hex = hex_list(
                &served
                    .items
                    .iter()
                    .map(|s| (s.item, s.score))
                    .collect::<Vec<_>>(),
            );
            let offline_hex = offline_topk(&offline, &graph, user, k);
            if served_hex != offline_hex {
                return Err(format!(
                    "top-{k} mismatch for user {user}:\n  served:  {served_hex}\n  offline: {offline_hex}"
                ));
            }
            compared += 1;
        }
    }

    // Aggregate-metric parity: the served tables, evaluated as a
    // Recommender, must reproduce the offline model's bitline exactly.
    let served_bitline = evaluate(tables.as_ref(), split, &[20]).bitline();
    let offline_bitline = evaluate(&offline, split, &[20]).bitline();
    if served_bitline != offline_bitline {
        return Err(format!(
            "bitline mismatch:\n  served:  {served_bitline}\n  offline: {offline_bitline}"
        ));
    }
    Ok(format!(
        "PARITY ok gen={generation} lists={compared} {served_bitline}"
    ))
}

struct Args {
    dir: String,
    addr: String,
    watch_ms: u64,
    parity_users: usize,
    ann: bool,
    ann_nlists: usize,
    ann_nprobe: usize,
    ann_floor: f64,
    ann_audit: u64,
    quant: bool,
    quant_floor: f64,
    quant_audit: u64,
    log_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let dir = args.next().ok_or("missing <checkpoint-dir>")?;
    let mut out = Args {
        dir,
        addr: "127.0.0.1:0".into(),
        watch_ms: 100,
        parity_users: 16,
        ann: false,
        ann_nlists: 0,
        ann_nprobe: 0,
        ann_floor: 0.9,
        ann_audit: 64,
        quant: false,
        quant_floor: 0.9,
        quant_audit: 64,
        log_dir: None,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => out.addr = value("--addr")?,
            "--watch-ms" => {
                out.watch_ms = value("--watch-ms")?
                    .parse()
                    .map_err(|_| "bad --watch-ms".to_string())?
            }
            "--parity-users" => {
                out.parity_users = value("--parity-users")?
                    .parse()
                    .map_err(|_| "bad --parity-users".to_string())?
            }
            "--ann" => out.ann = true,
            "--ann-nlists" => {
                out.ann_nlists = value("--ann-nlists")?
                    .parse()
                    .map_err(|_| "bad --ann-nlists".to_string())?
            }
            "--ann-nprobe" => {
                out.ann_nprobe = value("--ann-nprobe")?
                    .parse()
                    .map_err(|_| "bad --ann-nprobe".to_string())?
            }
            "--ann-floor" => {
                out.ann_floor = value("--ann-floor")?
                    .parse()
                    .map_err(|_| "bad --ann-floor".to_string())?
            }
            "--ann-audit" => {
                out.ann_audit = value("--ann-audit")?
                    .parse()
                    .map_err(|_| "bad --ann-audit".to_string())?
            }
            "--quant" => out.quant = true,
            "--quant-floor" => {
                out.quant_floor = value("--quant-floor")?
                    .parse()
                    .map_err(|_| "bad --quant-floor".to_string())?
            }
            "--quant-audit" => {
                out.quant_audit = value("--quant-audit")?
                    .parse()
                    .map_err(|_| "bad --quant-audit".to_string())?
            }
            "--log-dir" => out.log_dir = Some(value("--log-dir")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_main: {e}");
            eprintln!(
                "usage: serve_main <checkpoint-dir> [--addr HOST:PORT] [--watch-ms N] [--parity-users N] \
                 [--ann] [--ann-nlists N] [--ann-nprobe N] [--ann-floor F] [--ann-audit N] \
                 [--quant] [--quant-floor F] [--quant-audit N] [--log-dir PATH]"
            );
            return ExitCode::from(2);
        }
    };

    let split = demo_split();
    let cfg = demo_config();
    let dir = Path::new(&args.dir);

    // One probe decides training *and* feeds the engine: a valid checkpoint
    // is decoded exactly once and handed straight to `open_preloaded`, so a
    // warm restart never pays a redundant decode (or a redundant re-train).
    let preloaded = checkpoint::load_latest_valid_with_fingerprint(dir);
    match &preloaded {
        Some((generation, state, _)) => println!(
            "reusing checkpoint gen={generation} epoch={} under {} — skipping training",
            state.epoch,
            dir.display()
        ),
        None => {
            println!(
                "no valid checkpoint under {} — training demo model",
                dir.display()
            );
            let rt_cfg = RuntimeConfig::new(cfg.clone()).checkpoint_dir(dir);
            let mut rt = match Runtime::new(rt_cfg, &split.train) {
                Ok(rt) => rt,
                Err(e) => {
                    eprintln!("serve_main: training setup failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match rt.run() {
                Ok(report) => println!(
                    "trained {} epochs, {} checkpoints written",
                    report.epochs_completed, report.checkpoints_written
                ),
                Err(e) => {
                    eprintln!("serve_main: training failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let mut source = ModelSource::new(cfg, split.train.clone(), dir);
    if args.ann {
        let mut params = IvfParams::new()
            .recall_floor(args.ann_floor)
            .audit_every(args.ann_audit);
        if args.ann_nlists > 0 {
            params = params.nlists(args.ann_nlists);
        }
        if args.ann_nprobe > 0 {
            params = params.nprobe(args.ann_nprobe);
        }
        source = source.ann(params);
    }
    if args.quant {
        source = source.quant(
            QuantParams::new()
                .drift_floor(args.quant_floor)
                .audit_every(args.quant_audit),
        );
    }
    if let Some(log_dir) = &args.log_dir {
        source = source.log_dir(Path::new(log_dir));
    }
    let opened = match preloaded {
        Some((generation, state, fingerprint)) => Engine::open_preloaded(
            source,
            generation,
            &state,
            fingerprint,
            DEFAULT_CACHE_CAPACITY,
        ),
        None => Engine::open(source),
    };
    let engine = match opened {
        Ok(e) => Arc::new(e),
        Err(e) => {
            eprintln!("serve_main: cannot open engine: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.ann {
        match engine.tables().ann() {
            Some(ann) if ann.enabled() => println!(
                "ANN ok recall={:.4} floor={:.4} nlists={} nprobe={}",
                ann.build_recall(),
                args.ann_floor,
                ann.index().nlists(),
                ann.nprobe()
            ),
            Some(ann) => println!(
                "ANN DISABLED recall={:.4} below floor={:.4} (nlists={} nprobe={}) — serving exact",
                ann.build_recall(),
                args.ann_floor,
                ann.index().nlists(),
                ann.nprobe()
            ),
            None => println!("ANN DISABLED empty catalog — serving exact"),
        }
    }

    if args.quant {
        match engine.tables().quant() {
            Some(q) if q.enabled() => println!(
                "QUANT ok drift={:.4} floor={:.4} table_bytes={} ivf={}",
                q.build_drift(),
                args.quant_floor,
                q.table_bytes(),
                if q.ivf().is_some() { "on" } else { "off" }
            ),
            Some(q) => println!(
                "QUANT DISABLED drift={:.4} below floor={:.4} — serving f32",
                q.build_drift(),
                args.quant_floor
            ),
            None => println!("QUANT DISABLED empty catalog — serving f32"),
        }
    }

    match parity_check(&engine, &split, args.parity_users) {
        Ok(line) => println!("{line}"),
        Err(e) => {
            eprintln!("PARITY FAIL: {e}");
            return ExitCode::FAILURE;
        }
    }

    let handle = match serve(engine.clone(), &args.addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve_main: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let _watcher = spawn_watcher(engine.clone(), Duration::from_millis(args.watch_ms));
    println!(
        "READY addr={} gen={}",
        handle.addr(),
        engine.stats().generation
    );

    // Serve until killed (the accept loop runs on its own thread).
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
