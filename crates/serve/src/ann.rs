//! A dependency-free IVF-flat item index for sublinear serving.
//!
//! Every exact `REC` scores the full catalog — `O(items · dim)` per
//! request — which is the per-replica QPS ceiling at catalog scale. This
//! module trades a small, *audited* amount of recall for a sublinear
//! candidate set: a k-means coarse quantizer partitions the frozen item
//! embeddings into `nlists` inverted lists at table-build time, and a
//! query only scores the items in its `nprobe` best-matching lists.
//!
//! # Determinism contract
//!
//! The index build is **bit-deterministic** for any `GRAPHAUG_THREADS` and
//! for the SIMD lane vs scalar builds:
//!
//! * centroid seeding and the training sample come from seeded
//!   `graphaug-rng` streams (`StdRng::stream(seed, …)`);
//! * the iteration count is fixed (no convergence-dependent early exit);
//! * assignment runs through [`graphaug_par::l2sq8`] (fixed reduction
//!   order, lane/scalar bit-identical) and parallelizes over items with
//!   each item writing its own slot — no cross-thread reductions;
//! * centroid updates accumulate members in ascending item order on one
//!   thread, and ties in the argmin go to the lower centroid index.
//!
//! # Exact-parity contract
//!
//! Candidate scoring happens *outside* this module (in
//! [`crate::tables::ModelTables`]) in the exact scorer's summation order,
//! and the final selection is `graphaug_eval::topk_pairs`, which shares the
//! exact path's total-order tie-break. Since every item lives in exactly
//! one inverted list, probing **all** lists (`nprobe = nlists`) visits the
//! full catalog and reproduces the exact ranking hex-exactly — the
//! degenerate configuration the parity proptests pin.

use graphaug_eval::topk_pairs;
use graphaug_par::{dot8, l2sq8};
use graphaug_rng::StdRng;
use graphaug_tensor::Mat;

/// Build/search parameters for the IVF index, plus the serving-side
/// gate/audit knobs that travel with it.
#[derive(Clone, Debug)]
pub struct IvfParams {
    /// Number of inverted lists (coarse centroids). `0` = auto:
    /// `round(sqrt(n_items))`, clamped to `[1, n_items]`.
    pub nlists: usize,
    /// Lists probed per query. `0` = auto: `max(1, nlists / 8)`. Clamped to
    /// `[1, nlists]` at build time.
    pub nprobe: usize,
    /// Fixed k-means iteration count (no data-dependent early exit — part
    /// of the determinism contract).
    pub kmeans_iters: usize,
    /// k-means training-sample cap. `0` = auto: `max(32 · nlists, 4096)`,
    /// clamped to `n_items`.
    pub sample: usize,
    /// Seed for the `graphaug-rng` streams (sample shuffle, centroid
    /// seeding, probe-set draw).
    pub seed: u64,
    /// Build-time recall gate: sampled recall@`probe_k` vs the exact oracle
    /// must reach this floor or the ANN path stays disabled (serving falls
    /// back to exact, loudly).
    pub recall_floor: f64,
    /// Number of seeded probe users for the build-time recall estimate.
    pub probe_users: usize,
    /// Cutoff for the build-time recall estimate and the online self-audit.
    pub probe_k: usize,
    /// Online self-audit cadence: every `audit_every`-th ANN-served list is
    /// also ranked exactly and folded into the running recall estimate.
    /// `0` disables the audit.
    pub audit_every: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        IvfParams {
            nlists: 0,
            nprobe: 0,
            kmeans_iters: 8,
            sample: 0,
            seed: 0x1f51,
            recall_floor: 0.9,
            probe_users: 64,
            probe_k: 20,
            audit_every: 64,
        }
    }
}

impl IvfParams {
    /// Default parameters.
    pub fn new() -> Self {
        IvfParams::default()
    }

    /// Sets the list count (`0` = auto).
    pub fn nlists(mut self, n: usize) -> Self {
        self.nlists = n;
        self
    }

    /// Sets the probe width (`0` = auto).
    pub fn nprobe(mut self, n: usize) -> Self {
        self.nprobe = n;
        self
    }

    /// Sets the build seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the recall floor for the build-time gate.
    pub fn recall_floor(mut self, f: f64) -> Self {
        self.recall_floor = f;
        self
    }

    /// Sets the online self-audit cadence (`0` = off).
    pub fn audit_every(mut self, n: u64) -> Self {
        self.audit_every = n;
        self
    }

    /// The effective list count for a catalog of `n_items`.
    pub fn effective_nlists(&self, n_items: usize) -> usize {
        let auto = (n_items as f64).sqrt().round() as usize;
        let n = if self.nlists == 0 { auto } else { self.nlists };
        n.clamp(1, n_items.max(1))
    }

    /// The effective probe width for `nlists` lists.
    pub fn effective_nprobe(&self, nlists: usize) -> usize {
        let n = if self.nprobe == 0 {
            (nlists / 8).max(1)
        } else {
            self.nprobe
        };
        n.clamp(1, nlists.max(1))
    }
}

/// Incremental FNV-1a 64 over little-endian `u32` words — the shared
/// fingerprint accumulator of the index builds (f32 and quantized), so
/// determinism assertions hash both through one code path.
pub(crate) struct Fnv(pub u64);

impl Fnv {
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub fn eat(&mut self, w: u32) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// The storage-agnostic half of an IVF index: coarse centroids plus the
/// CSR inverted-list *membership* (which item belongs to which list), with
/// no embedding payload. [`IvfIndex`] packs bit-exact f32 rows next to it;
/// the quantized index (`crate::quant::QuantIvf`) packs int8 rows and
/// per-row scales instead — both share this partition and its probe, so
/// the determinism contract is proven once.
#[derive(Clone)]
pub(crate) struct CoarsePartition {
    pub dim: usize,
    pub nlists: usize,
    /// Row-major centroid matrix, `nlists × dim`.
    pub centroids: Vec<f32>,
    /// `nlists + 1` offsets into `list_items`.
    pub list_offsets: Vec<u32>,
    /// Item ids grouped by owning list, ascending within each list.
    pub list_items: Vec<u32>,
}

impl CoarsePartition {
    /// Seeded, fixed-iteration k-means over `items`, then a CSR pack of
    /// the final full-catalog assignment. Bit-deterministic for any thread
    /// count (see the module docs for the contract).
    pub fn build(items: &Mat, params: &IvfParams) -> CoarsePartition {
        let n = items.rows();
        let dim = items.cols();
        assert!(n > 0, "cannot index an empty catalog");
        let nlists = params.effective_nlists(n);

        // Seeded training sample: a partial Fisher–Yates over item ids from
        // stream 0. The shuffled head doubles as the (distinct) initial
        // centroid picks.
        let sample_cap = if params.sample == 0 {
            (32 * nlists).max(4096)
        } else {
            params.sample
        };
        let m = sample_cap.min(n);
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::stream(params.seed, 0);
        for i in 0..m {
            let j = i + rng.bounded_u64((n - i) as u64) as usize;
            ids.swap(i, j);
        }
        let sample = &ids[..m];

        let mut centroids = vec![0f32; nlists * dim];
        for (c, &item) in sample.iter().take(nlists).enumerate() {
            centroids[c * dim..(c + 1) * dim].copy_from_slice(items.row(item as usize));
        }

        // Fixed-count Lloyd iterations over the sample. Assignment is
        // parallel (slot-per-point); the centroid update is a single
        // ascending-order pass, so the reduction order never moves.
        let mut assign = vec![0u32; m];
        for _ in 0..params.kmeans_iters {
            assign_points(items, sample, &centroids, nlists, dim, &mut assign);
            let mut sums = vec![0f32; nlists * dim];
            let mut counts = vec![0u32; nlists];
            for (slot, &item) in sample.iter().enumerate() {
                let c = assign[slot] as usize;
                counts[c] += 1;
                let row = items.row(item as usize);
                let acc = &mut sums[c * dim..(c + 1) * dim];
                for (a, &x) in acc.iter_mut().zip(row) {
                    *a += x;
                }
            }
            for c in 0..nlists {
                // An emptied cluster keeps its previous centroid — still
                // deterministic, and it can re-acquire members later.
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f32;
                    for (dst, &s) in centroids[c * dim..(c + 1) * dim]
                        .iter_mut()
                        .zip(&sums[c * dim..(c + 1) * dim])
                    {
                        *dst = s * inv;
                    }
                }
            }
        }

        // Final assignment of the full catalog, then CSR-pack the inverted
        // lists in ascending item order.
        let all: Vec<u32> = (0..n as u32).collect();
        let mut final_assign = vec![0u32; n];
        assign_points(items, &all, &centroids, nlists, dim, &mut final_assign);
        let mut counts = vec![0u32; nlists];
        for &c in &final_assign {
            counts[c as usize] += 1;
        }
        let mut list_offsets = vec![0u32; nlists + 1];
        for c in 0..nlists {
            list_offsets[c + 1] = list_offsets[c] + counts[c];
        }
        let mut cursor: Vec<u32> = list_offsets[..nlists].to_vec();
        let mut list_items = vec![0u32; n];
        for (item, &c) in final_assign.iter().enumerate() {
            list_items[cursor[c as usize] as usize] = item as u32;
            cursor[c as usize] += 1;
        }

        CoarsePartition {
            dim,
            nlists,
            centroids,
            list_offsets,
            list_items,
        }
    }

    /// The item ids of inverted list `l` (ascending).
    #[inline]
    pub fn list(&self, l: usize) -> &[u32] {
        &self.list_items[self.list_offsets[l] as usize..self.list_offsets[l + 1] as usize]
    }

    /// The `(lo, hi)` entry range of list `l` in packed-slot order.
    #[inline]
    pub fn list_range(&self, l: usize) -> (usize, usize) {
        (
            self.list_offsets[l] as usize,
            self.list_offsets[l + 1] as usize,
        )
    }

    /// The `nprobe` list ids best matching `query` by descending centroid
    /// inner product (ties toward the lower list id — the [`topk_pairs`]
    /// contract).
    pub fn probe(&self, query: &[f32], nprobe: usize) -> Vec<u32> {
        let scored = (0..self.nlists as u32)
            .map(|c| (c, dot8(query, &self.centroids[c as usize * self.dim..])));
        topk_pairs(scored, nprobe.clamp(1, self.nlists))
            .into_iter()
            .map(|(c, _)| c)
            .collect()
    }

    /// Bytes of the membership payload (centroids + offsets + ids).
    pub fn resident_bytes(&self) -> usize {
        self.centroids.len() * 4 + self.list_offsets.len() * 4 + self.list_items.len() * 4
    }

    /// Folds the partition (shape, centroid bit patterns, offsets, list
    /// membership) into `h`.
    pub fn fingerprint_into(&self, h: &mut Fnv) {
        h.eat(self.nlists as u32);
        h.eat(self.dim as u32);
        for &c in &self.centroids {
            h.eat(c.to_bits());
        }
        for &o in &self.list_offsets {
            h.eat(o);
        }
        for &i in &self.list_items {
            h.eat(i);
        }
    }
}

/// An immutable IVF-flat index over one frozen item-embedding matrix: a
/// [`CoarsePartition`] plus bit-exact copies of each member's embedding
/// row packed in list order (the "flat" in IVF-flat). The packed rows make
/// candidate scoring stream sequentially instead of gathering scattered
/// `item_emb` rows — without them the cache misses eat most of the
/// sublinear-candidate advantage. Built once per table swap; shared
/// read-only by every request thread.
#[derive(Clone)]
pub struct IvfIndex {
    part: CoarsePartition,
    /// The embedding row of each entry in `part.list_items`, packed in the
    /// same order (`list_items.len() × dim`). Bit-exact copies of the
    /// source matrix rows, so scoring from here preserves hex parity.
    list_vecs: Vec<f32>,
}

impl IvfIndex {
    /// Builds the index over `items` (one embedding row per item) with a
    /// seeded, fixed-iteration k-means quantizer. Bit-deterministic for any
    /// thread count (see the module docs for the contract).
    pub fn build(items: &Mat, params: &IvfParams) -> IvfIndex {
        let part = CoarsePartition::build(items, params);
        let dim = part.dim;
        let mut list_vecs = vec![0f32; part.list_items.len() * dim];
        for (slot, &item) in part.list_items.iter().enumerate() {
            list_vecs[slot * dim..(slot + 1) * dim].copy_from_slice(items.row(item as usize));
        }
        IvfIndex { part, list_vecs }
    }

    /// Number of inverted lists.
    #[inline]
    pub fn nlists(&self) -> usize {
        self.part.nlists
    }

    /// Embedding dimensionality the index was built over.
    #[inline]
    pub fn dim(&self) -> usize {
        self.part.dim
    }

    /// The item ids of inverted list `l` (ascending).
    #[inline]
    pub fn list(&self, l: usize) -> &[u32] {
        self.part.list(l)
    }

    /// The item ids of inverted list `l` together with their packed
    /// embedding rows (`ids.len() × dim`, same order) — the
    /// sequential-scan form the scoring hot loop wants.
    #[inline]
    pub fn list_entries(&self, l: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = self.part.list_range(l);
        (
            &self.part.list_items[lo..hi],
            &self.list_vecs[lo * self.part.dim..hi * self.part.dim],
        )
    }

    /// Total indexed items (= catalog size: every item is in exactly one
    /// list).
    pub fn len(&self) -> usize {
        self.part.list_items.len()
    }

    /// True when the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.part.list_items.is_empty()
    }

    /// The `nprobe` list ids best matching `query`, ranked by descending
    /// centroid inner product (ties toward the lower list id — the
    /// [`topk_pairs`] contract). Inner-product probing matches the serving
    /// objective (max dot-product), and `dot8` keeps it lane/scalar
    /// bit-identical.
    pub fn probe(&self, query: &[f32], nprobe: usize) -> Vec<u32> {
        self.part.probe(query, nprobe)
    }

    /// Resident bytes of the index payload (centroids + lists + packed
    /// rows) — the extra memory a table swap pays for the ANN fast path.
    pub fn resident_bytes(&self) -> usize {
        self.part.resident_bytes() + self.list_vecs.len() * 4
    }

    /// A stable fingerprint of the whole index (centroid bit patterns,
    /// offsets, and list membership) for bit-determinism assertions.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        self.part.fingerprint_into(&mut h);
        h.0
    }
}

/// Assigns each of `points` (item ids into `items`) to its nearest centroid
/// by squared L2 distance, writing `out[slot]`. Parallel over disjoint
/// slots; argmin ties go to the lower centroid index.
fn assign_points(
    items: &Mat,
    points: &[u32],
    centroids: &[f32],
    nlists: usize,
    dim: usize,
    out: &mut [u32],
) {
    debug_assert_eq!(points.len(), out.len());
    let base = graphaug_par::SendMutPtr::new(out);
    graphaug_par::parallel_spans(points.len(), |_, range| {
        // Safety: spans tile `0..points.len()` disjointly, so each slot has
        // exactly one writer.
        let slice = unsafe { base.slice_mut(range.start, range.end - range.start) };
        for (slot, &item) in slice.iter_mut().zip(&points[range]) {
            let row = items.row(item as usize);
            let mut best = 0u32;
            let mut best_d = f32::INFINITY;
            for c in 0..nlists {
                let d = l2sq8(row, &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            *slot = best;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_rng::seeded_rng;

    /// `n` points around `k` well-separated centers.
    fn clustered(n: usize, k: usize, dim: usize, seed: u64) -> Mat {
        let mut rng = seeded_rng(seed);
        let mut centers = vec![0f32; k * dim];
        rng.fill_normal_f32(&mut centers, 4.0);
        Mat::from_fn(n, dim, |r, c| {
            centers[(r % k) * dim + c] + rng.normal_f32() * 0.1
        })
    }

    #[test]
    fn every_item_lands_in_exactly_one_list() {
        let items = clustered(500, 7, 16, 3);
        let idx = IvfIndex::build(&items, &IvfParams::new().nlists(13));
        assert_eq!(idx.nlists(), 13);
        assert_eq!(idx.len(), 500);
        let mut seen = vec![false; 500];
        for l in 0..idx.nlists() {
            let mut prev = None;
            for &item in idx.list(l) {
                assert!(!seen[item as usize], "item {item} in two lists");
                seen[item as usize] = true;
                assert!(prev.is_none_or(|p| p < item), "list not ascending");
                prev = Some(item);
            }
        }
        assert!(seen.iter().all(|&s| s), "item missing from all lists");
    }

    #[test]
    fn well_separated_clusters_stay_cohesive() {
        let k = 6;
        let items = clustered(600, k, 8, 9);
        let idx = IvfIndex::build(&items, &IvfParams::new().nlists(k));
        // Lloyd's may merge two ground-truth clusters into one list (random
        // init), but it must not *split* one: members of a ground-truth
        // cluster (ids congruent mod k) should land in one modal list.
        let mut list_of = vec![0u32; 600];
        for l in 0..idx.nlists() {
            for &item in idx.list(l) {
                list_of[item as usize] = l as u32;
            }
        }
        for class in 0..k as u32 {
            let mut counts = vec![0usize; idx.nlists()];
            let members: Vec<usize> = (0..600).filter(|i| *i as u32 % k as u32 == class).collect();
            for &m in &members {
                counts[list_of[m] as usize] += 1;
            }
            let modal = *counts.iter().max().expect("nonempty");
            assert!(
                modal as f64 / members.len() as f64 > 0.95,
                "ground-truth cluster {class} split across lists: {counts:?}"
            );
        }
    }

    #[test]
    fn build_is_bit_identical_across_thread_counts() {
        let items = clustered(700, 9, 24, 11);
        let params = IvfParams::new();
        let mut prints = Vec::new();
        for threads in [1usize, 3, 4] {
            graphaug_par::set_thread_count(threads);
            prints.push(IvfIndex::build(&items, &params).fingerprint());
        }
        graphaug_par::set_thread_count(1);
        assert_eq!(prints[0], prints[1], "threads=1 vs 3");
        assert_eq!(prints[0], prints[2], "threads=1 vs 4");
    }

    #[test]
    fn probe_ranks_lists_by_inner_product_with_stable_ties() {
        let items = clustered(200, 4, 8, 5);
        let idx = IvfIndex::build(&items, &IvfParams::new().nlists(4));
        let query = items.row(0);
        let all = idx.probe(query, idx.nlists());
        assert_eq!(all.len(), idx.nlists());
        // Probing more lists only ever extends the prefix.
        for p in 1..idx.nlists() {
            assert_eq!(idx.probe(query, p), all[..p], "nprobe={p}");
        }
        // The probed-first list should contain the query item itself (its
        // own cluster is nearest in a separated mixture).
        let catalog_list = (0..idx.nlists())
            .find(|&l| idx.list(l).contains(&0))
            .unwrap();
        assert!(
            all[..2].contains(&(catalog_list as u32)),
            "own cluster not probed early: {all:?}"
        );
    }

    #[test]
    fn tiny_catalogs_degenerate_cleanly() {
        let items = clustered(3, 1, 8, 2);
        let idx = IvfIndex::build(&items, &IvfParams::new());
        assert_eq!(idx.len(), 3);
        assert!(idx.nlists() >= 1);
        assert!(!idx.is_empty());
        let probed = idx.probe(items.row(1), 99);
        assert_eq!(probed.len(), idx.nlists(), "nprobe clamps to nlists");
    }
}
