//! In-repo deterministic randomness for the GraphAug workspace.
//!
//! Every sampled quantity in the reproduction — Gumbel/concrete edge draws
//! (paper Eq. 5), feature masks and Gaussian disturbance (Eq. 4), BPR
//! triplets, train/test splits, synthetic datasets — flows through this
//! crate, so a single `u64` seed pins the entire experiment byte-for-byte
//! on any machine, with no network-fetched crates involved.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna, 2019) seeded through
//! **SplitMix64**, the standard pairing: SplitMix64's bijective finalizer
//! diffuses low-entropy seeds (0, 1, 2, …) into well-separated 256-bit
//! states, and xoshiro256++ passes BigCrush while needing four words of
//! state and a handful of ALU ops per draw. Statistically this is a strict
//! upgrade over `rand::StdRng`'s ChaCha12 for simulation purposes (neither
//! is used for cryptography here) and, unlike `StdRng`, its stream is
//! specified by this file alone — a `rand` major-version bump can never
//! silently reshuffle every "seeded" experiment again.
//!
//! The API mirrors the `rand` idioms the workspace already used
//! (`StdRng::seed_from_u64`, `random_range`, `random::<T>()`, slice
//! `shuffle`/`choose`) so call sites migrate by swapping imports, plus the
//! distribution helpers the paper needs (Box–Muller normal, Gumbel(0,1),
//! logistic noise for the binary-concrete relaxation).

pub mod prop;

use std::ops::{Range, RangeInclusive};

/// SplitMix64 (Steele, Lea & Flood, 2014): a 64-bit bijective mixer used to
/// expand a single seed word into the xoshiro state. Also usable directly as
/// a tiny standalone stream (e.g. deriving per-case seeds in the property
/// runner).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot SplitMix64 finalizer: mixes `x` into a decorrelated 64-bit
/// value. Used for deriving independent child seeds from `(base, index)`
/// pairs.
#[inline]
pub fn splitmix64_mix(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// The workspace generator: xoshiro256++ with SplitMix64 seeding.
///
/// `PartialEq`/`Eq` compare generator *state*, which makes "same seed ⇒
/// same stream" assertions cheap in tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

/// Migration alias: call sites that used `rand::rngs::StdRng` keep reading
/// naturally. The concrete stream is xoshiro256++, pinned by this crate.
pub type StdRng = Xoshiro256PlusPlus;

/// Convenience constructor mirroring the helper the workspace has always
/// exposed (`graphaug_tensor::init::seeded_rng` re-exports this).
pub fn seeded_rng(seed: u64) -> StdRng {
    Xoshiro256PlusPlus::seed_from_u64(seed)
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Xoshiro256PlusPlus {
    /// Seeds the 256-bit state by running SplitMix64 from `seed` — the
    /// initialization recommended by the xoshiro authors. Any `u64` seed
    /// (including 0) yields a valid, well-mixed state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is the one fixed point of the transition; SplitMix64
        // cannot emit four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            return Xoshiro256PlusPlus {
                s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
            };
        }
        Xoshiro256PlusPlus { s }
    }

    /// Core xoshiro256++ step.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        out
    }

    /// Upper 32 bits of the next output (the better-mixed half).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` from the top 24 bits.
    #[inline]
    pub fn f32_unit(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Unbiased integer in `[0, n)` via Lemire's multiply-shift rejection.
    #[inline]
    pub fn bounded_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw of a "plain" value: `rng.random::<f32>()` gives `[0,1)`,
    /// integer types give their full range, `bool` is a fair coin.
    #[inline]
    pub fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform draw from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range. Integer ranges are exact (Lemire rejection); float ranges are
    /// `lo + u·(hi−lo)` with `u ∈ [0,1)`.
    #[inline]
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Standard normal via Box–Muller — two fresh uniforms per draw, the
    /// same recipe the workspace inlined before this crate existed, so the
    /// cost model of seeded experiments is unchanged.
    #[inline]
    pub fn normal_f32(&mut self) -> f32 {
        let u1 = self.random_range(1e-7f32..1.0);
        let u2 = self.random_range(0.0f32..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// Gumbel(0, 1) draw `−ln(−ln u)` — the noise of the concrete/Gumbel
    /// reparameterization in paper Eq. 5. Mean is the Euler–Mascheroni
    /// constant γ ≈ 0.5772.
    #[inline]
    pub fn gumbel_f32(&mut self) -> f32 {
        let u = self.random_range(1e-6f32..(1.0 - 1e-6));
        -(-u.ln()).ln()
    }

    /// Standard logistic draw `ln(u/(1−u))` — the difference of two Gumbels,
    /// i.e. the additive noise of the *binary* concrete distribution used
    /// for per-edge keep decisions.
    #[inline]
    pub fn logistic_f32(&mut self) -> f32 {
        let u = self.random_range(1e-6f32..(1.0 - 1e-6));
        (u / (1.0 - u)).ln()
    }

    /// Splits off an independently-seeded child generator (for handing a
    /// fresh stream to a sub-sampler without correlating it with the
    /// parent's continuation).
    pub fn fork(&mut self) -> Self {
        Xoshiro256PlusPlus::seed_from_u64(self.next_u64())
    }

    /// The raw 256-bit generator state, for checkpointing. Restoring the
    /// four words with [`Xoshiro256PlusPlus::from_state`] resumes the
    /// stream at exactly the next draw — the property the fault-tolerant
    /// training runtime relies on for bit-identical resume-after-crash.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by
    /// [`Xoshiro256PlusPlus::state`]. The all-zero state (the one fixed
    /// point of the transition, which no healthy generator can reach) is
    /// remapped to the guarded seed-0 state rather than producing a stuck
    /// stream from corrupted input.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Xoshiro256PlusPlus {
                s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
            };
        }
        Xoshiro256PlusPlus { s }
    }

    /// Derived stream `index` of logical generator `seed`: seeds from
    /// `splitmix64_mix(seed ^ index)`. This is the workspace-wide convention
    /// for handing one independent stream to each parallel chunk so results
    /// do not depend on the thread count — the sampler and the bulk tensor
    /// fills both use it.
    #[inline]
    pub fn stream(seed: u64, index: u64) -> Self {
        Xoshiro256PlusPlus::seed_from_u64(splitmix64_mix(seed ^ index))
    }

    /// One `N(0, 1)` pair via the Marsaglia polar method: rejection-sample a
    /// point in the unit disc (acceptance ≈ π/4), then scale by
    /// `sqrt(−2 ln s / s)`. Exact like Box–Muller but with no trig calls,
    /// which makes it roughly twice as fast in bulk.
    #[inline]
    fn polar_pair(&mut self) -> (f32, f32) {
        loop {
            let x = 2.0 * self.f32_unit() - 1.0;
            let y = 2.0 * self.f32_unit() - 1.0;
            let s = x * x + y * y;
            if s < 1.0 && s > 0.0 {
                let f = ((-2.0 * s.ln()) / s).sqrt();
                return (x * f, y * f);
            }
        }
    }

    /// Fills `out` with independent `N(0, std²)` draws using the polar
    /// method ([`polar_pair`](Self::polar_pair)). The stream is *not*
    /// interchangeable with repeated [`normal_f32`](Self::normal_f32) calls
    /// (different method, different draw count) — use one or the other for a
    /// given seeded quantity, not a mix.
    pub fn fill_normal_f32(&mut self, out: &mut [f32], std: f32) {
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            let (a, b) = self.polar_pair();
            pair[0] = a * std;
            pair[1] = b * std;
        }
        if let [last] = chunks.into_remainder() {
            *last = self.polar_pair().0 * std;
        }
    }

    /// Fills `out` with `1.0` (probability `p`) or `0.0` indicator draws —
    /// one uniform per element, the same per-element recipe as
    /// `random_range(0.0f32..1.0) < p`.
    pub fn fill_bernoulli_f32(&mut self, out: &mut [f32], p: f32) {
        for slot in out {
            *slot = if self.f32_unit() < p { 1.0 } else { 0.0 };
        }
    }

    /// Fills `out` with standard logistic draws — one
    /// [`logistic_f32`](Self::logistic_f32) per element, identical stream.
    pub fn fill_logistic_f32(&mut self, out: &mut [f32]) {
        for slot in out {
            *slot = self.logistic_f32();
        }
    }
}

/// Types drawable uniformly by [`Xoshiro256PlusPlus::random`].
pub trait FromRng: Sized {
    /// Draws one value.
    fn from_rng(rng: &mut Xoshiro256PlusPlus) -> Self;
}

impl FromRng for u64 {
    #[inline]
    fn from_rng(rng: &mut Xoshiro256PlusPlus) -> Self {
        rng.next_u64()
    }
}
impl FromRng for u32 {
    #[inline]
    fn from_rng(rng: &mut Xoshiro256PlusPlus) -> Self {
        rng.next_u32()
    }
}
impl FromRng for usize {
    #[inline]
    fn from_rng(rng: &mut Xoshiro256PlusPlus) -> Self {
        rng.next_u64() as usize
    }
}
impl FromRng for f32 {
    #[inline]
    fn from_rng(rng: &mut Xoshiro256PlusPlus) -> Self {
        rng.f32_unit()
    }
}
impl FromRng for f64 {
    #[inline]
    fn from_rng(rng: &mut Xoshiro256PlusPlus) -> Self {
        rng.f64_unit()
    }
}
impl FromRng for bool {
    #[inline]
    fn from_rng(rng: &mut Xoshiro256PlusPlus) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types accepted by [`Xoshiro256PlusPlus::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut Xoshiro256PlusPlus) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut Xoshiro256PlusPlus) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut Xoshiro256PlusPlus) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
    )*};
}
int_sample_range!(u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut Xoshiro256PlusPlus) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut Xoshiro256PlusPlus) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
    )*};
}
signed_sample_range!(i32 => u32, i64 => u64, isize => usize);

macro_rules! float_sample_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut Xoshiro256PlusPlus) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                self.start + rng.$unit() * (self.end - self.start)
            }
        }
    )*};
}
float_sample_range!(f32 => f32_unit, f64 => f64_unit);

/// Seeded shuffling and element choice for slices (drop-in for the
/// `rand::seq::SliceRandom` subset the workspace uses).
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// In-place Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut Xoshiro256PlusPlus);
    /// Uniformly chosen element (`None` on an empty slice).
    fn choose<'a>(&'a self, rng: &mut Xoshiro256PlusPlus) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Xoshiro256PlusPlus) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut Xoshiro256PlusPlus) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a, b, "states stay in lockstep");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn reference_vector_is_pinned() {
        // First outputs for seed 0 — pins the stream so an accidental edit
        // to the transition or seeding path cannot slip through unnoticed.
        let mut r = seeded_rng(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut again = seeded_rng(0);
        let got2: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(got, got2);
        // SplitMix64 reference outputs for seed 0 (widely published):
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn integer_ranges_hit_all_values_and_stay_in_bounds() {
        let mut r = seeded_rng(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let x: usize = r.random_range(0..7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
        for _ in 0..500 {
            let x: u32 = r.random_range(5..=9);
            assert!((5..=9).contains(&x));
            let y: i64 = r.random_range(-4i64..4);
            assert!((-4..4).contains(&y));
        }
    }

    #[test]
    fn uniform_f64_has_correct_moments() {
        // U(0,1): mean 1/2, variance 1/12.
        let mut r = seeded_rng(7);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.f64_unit()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 3e-3, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 2e-3, "var {var}");
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn normal_has_correct_moments() {
        let mut r = seeded_rng(11);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal_f32() as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn polar_fill_has_correct_moments_and_tail() {
        let mut r = seeded_rng(23);
        let n = 100_001; // odd length exercises the remainder path
        let mut buf = vec![0.0f32; n];
        r.fill_normal_f32(&mut buf, 2.0);
        let xs: Vec<f64> = buf.iter().map(|&x| x as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.04, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
        // N(0, 2²): |x| > 6 ≈ 3σ should be rare but |x| < 2 common.
        let in_one_sigma = xs.iter().filter(|x| x.abs() < 2.0).count() as f64 / n as f64;
        assert!(
            (in_one_sigma - 0.6827).abs() < 0.02,
            "1σ mass {in_one_sigma}"
        );
    }

    #[test]
    fn derived_streams_differ_from_each_other_and_the_parent() {
        let mut parent = seeded_rng(29);
        let mut s0 = StdRng::stream(29, 0);
        let mut s1 = StdRng::stream(29, 1);
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s0.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        // Deterministic: the same (seed, index) reproduces the stream.
        let mut again = StdRng::stream(29, 1);
        let c2: Vec<u64> = (0..8).map(|_| again.next_u64()).collect();
        assert_eq!(c, c2);
    }

    #[test]
    fn gumbel_mean_is_euler_mascheroni() {
        // Gumbel(0,1) has mean γ ≈ 0.57722 and variance π²/6.
        let mut r = seeded_rng(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gumbel_f32() as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.577_215_66).abs() < 0.01, "mean {mean}");
        assert!(
            (var - std::f64::consts::PI.powi(2) / 6.0).abs() < 0.05,
            "var {var}"
        );
    }

    #[test]
    fn logistic_is_symmetric_with_gumbel_difference_variance() {
        // Logistic(0,1) = Gumbel − Gumbel: mean 0, variance π²/3.
        let mut r = seeded_rng(17);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.logistic_f32() as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!(
            (var - std::f64::consts::PI.powi(2) / 3.0).abs() < 0.08,
            "var {var}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut r = seeded_rng(19);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>(), "exact permutation");
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "actually shuffled");
        let mut r2 = seeded_rng(19);
        let mut v2: Vec<u32> = (0..100).collect();
        v2.shuffle(&mut r2);
        assert_eq!(v, v2, "same seed, same permutation");
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut r = seeded_rng(23);
        let v = [10u32, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut r).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut r = seeded_rng(29);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn state_round_trip_resumes_the_stream_exactly() {
        let mut r = seeded_rng(37);
        for _ in 0..100 {
            r.next_u64();
        }
        let saved = r.state();
        let expect: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        let mut resumed = StdRng::from_state(saved);
        let got: Vec<u64> = (0..16).map(|_| resumed.next_u64()).collect();
        assert_eq!(expect, got, "restored stream continues bit-for-bit");
        assert_eq!(r, resumed, "states stay in lockstep after resume");
    }

    #[test]
    fn from_state_rejects_the_stuck_all_zero_state() {
        let mut r = StdRng::from_state([0; 4]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert!(
            a != 0 || b != 0,
            "zero state must not produce a zero stream"
        );
    }

    #[test]
    fn fork_decorrelates_child_from_parent() {
        let mut parent = seeded_rng(31);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
