//! A small in-repo property-testing runner (the workspace's `proptest`
//! replacement).
//!
//! Design, in order of what mattered:
//!
//! 1. **Hermetic** — no external crates, so the tier-1 gate runs fully
//!    offline.
//! 2. **Reproducible** — each case's seed derives deterministically from a
//!    base seed (`GRAPHAUG_PROP_SEED` env override) and the case index; a
//!    failure report prints the exact environment line that replays it.
//! 3. **Shrinking by halving** — generators draw collection *lengths*
//!    through [`Gen::len_in`], and on failure the runner replays the same
//!    seed with the length budget halved repeatedly, reporting the smallest
//!    budget that still fails. This is deliberately cruder than proptest's
//!    per-value simplification but catches the common case (big random
//!    input → small counterexample) with ~50 lines instead of a crate.
//!
//! A property is a closure `Fn(&mut Gen) -> Result<(), String>`; the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros (exported at
//! the crate root) keep test bodies close to their proptest originals.

use crate::{splitmix64_mix, StdRng, Xoshiro256PlusPlus};

/// Outcome of one property evaluation.
pub type PropResult = Result<(), String>;

/// Default number of cases per property (overridable per call site and via
/// `GRAPHAUG_PROP_CASES`).
pub const DEFAULT_CASES: u64 = 64;

/// Maximum number of halvings attempted while shrinking.
const MAX_SHRINK_LEVEL: u32 = 10;

/// Case-input generator handed to properties: a seeded RNG plus a size
/// budget the shrinker can squeeze.
pub struct Gen {
    rng: StdRng,
    /// Number of times collection-length budgets are halved (0 = full size).
    shrink_level: u32,
}

impl Gen {
    fn new(seed: u64, shrink_level: u32) -> Self {
        Gen {
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
            shrink_level,
        }
    }

    /// Draws a collection length in `[lo, hi)`, scaled down by the current
    /// shrink level: level `k` halves the width `k` times (never below
    /// `lo`). Route every "how many elements" decision through this so
    /// failures shrink toward small inputs.
    pub fn len_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty length range");
        let width = (hi - lo) >> self.shrink_level;
        if width == 0 {
            lo
        } else {
            self.rng.random_range(lo..lo + width + 1).min(hi - 1)
        }
    }

    /// A vector of `n` draws from `f`.
    pub fn vec_of<T>(&mut self, n: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        (0..n).map(|_| f(self)).collect()
    }
}

// Value draws go straight through to the RNG (`g.random_range(-2.0..2.0)`),
// keeping property bodies as terse as the proptest strategies they replace.
impl std::ops::Deref for Gen {
    type Target = StdRng;
    fn deref(&self) -> &StdRng {
        &self.rng
    }
}
impl std::ops::DerefMut for Gen {
    fn deref_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

fn base_seed() -> u64 {
    match std::env::var("GRAPHAUG_PROP_SEED") {
        Ok(v) => {
            let v = v.trim();
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                v.parse::<u64>()
            };
            parsed.unwrap_or_else(|_| panic!("unparsable GRAPHAUG_PROP_SEED: {v:?}"))
        }
        // "graphaug" in ASCII — an arbitrary but stable default.
        Err(_) => 0x6772_6170_6861_7567,
    }
}

fn case_count(requested: u64) -> u64 {
    std::env::var("GRAPHAUG_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(requested)
}

/// Runs `prop` over `cases` seeded inputs, shrinking and panicking with a
/// replay line on the first falsified case.
pub fn check(name: &str, cases: u64, prop: impl Fn(&mut Gen) -> PropResult) {
    let base = base_seed();
    let cases = case_count(cases);
    for case in 0..cases {
        let seed = splitmix64_mix(base ^ splitmix64_mix(case));
        if let Err(msg) = prop(&mut Gen::new(seed, 0)) {
            // Shrink: replay the identical stream with the length budget
            // halved until the property passes again.
            let mut level = 0;
            let mut smallest = msg;
            for candidate in 1..=MAX_SHRINK_LEVEL {
                match prop(&mut Gen::new(seed, candidate)) {
                    Err(m) => {
                        level = candidate;
                        smallest = m;
                    }
                    Ok(()) => break,
                }
            }
            panic!(
                "property `{name}` falsified at case {case}/{cases} \
                 (case seed {seed:#018x}, shrink level {level}): {smallest}\n\
                 replay with: GRAPHAUG_PROP_SEED={base:#x} cargo test --offline"
            );
        }
    }
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "why {x}")` — fail the
/// current property with context instead of panicking mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {}: {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` — equality assertion with both sides in the
/// failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}, {}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// `prop_assume!(cond)` — silently skip inputs that don't satisfy a
/// precondition (counts as a pass, like proptest's rejection).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u64;
        let counter = std::cell::Cell::new(0u64);
        check("trivially_true", 16, |g| {
            counter.set(counter.get() + 1);
            let n = g.len_in(1, 50);
            prop_assert!((1..50).contains(&n), "n {n}");
            Ok(())
        });
        ran += counter.get();
        assert_eq!(ran, 16);
    }

    #[test]
    fn len_in_respects_bounds_at_every_shrink_level() {
        for level in 0..=MAX_SHRINK_LEVEL {
            let mut g = Gen::new(99, level);
            for _ in 0..200 {
                let n = g.len_in(3, 120);
                assert!((3..120).contains(&n), "level {level} gave {n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_reports_and_panics() {
        check("always_false", 4, |g| {
            let n = g.len_in(1, 64);
            let v = g.vec_of(n, |g| g.random_range(0.0f32..1.0));
            prop_assert!(v.is_empty(), "vec had {} elements", v.len());
            Ok(())
        });
    }

    #[test]
    fn shrinking_reduces_reported_length() {
        // Capture the panic message and confirm the shrink level moved.
        let result = std::panic::catch_unwind(|| {
            check("too_long", 1, |g| {
                let n = g.len_in(1, 1024);
                prop_assert!(n == 0, "length was {n}"); // always fails
                Ok(())
            });
        });
        let err = result.expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("shrink level"), "message: {msg}");
        assert!(msg.contains("GRAPHAUG_PROP_SEED"), "message: {msg}");
    }
}
