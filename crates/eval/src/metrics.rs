//! Top-K ranking metrics: Recall@K and NDCG@K (the paper's Table II
//! metrics), plus the partial top-K selection they share.

/// `(score, index)` with the ranking order as `Ord`: an entry is *greater*
/// when it ranks **worse** (lower score, or equal score and larger index).
/// A max-heap of these keeps the worst kept candidate on top. Panics on
/// NaN, like the comparator it replaces.
#[derive(Clone, Copy)]
struct Worst(f32, u32);

impl PartialEq for Worst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Worst {}
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .partial_cmp(&self.0)
            .expect("scores must not be NaN")
            .then(self.1.cmp(&other.1))
    }
}

/// Returns the indices of the `k` largest scores, ordered descending.
///
/// **Tie-breaking is part of the contract**: equal scores rank the lower
/// index first, both within the returned order and when deciding which of
/// two equal-scored candidates survives the `k` cutoff. Offline evaluation
/// and the online serving engine (`graphaug-serve`) both rank through this
/// function, and the serving parity tests compare their outputs hex-exactly
/// — any tie-break drift would surface as a cross-process mismatch, so the
/// rule is locked by a regression proptest over duplicate-heavy score
/// vectors.
///
/// One pass over the scores with a bounded
/// min-heap of size `k` — after warm-up almost every element is rejected by
/// a single comparison against the current `k`-th best — then an
/// `O(k log k)` sort of the survivors.
pub fn topk_indices(scores: &[f32], k: usize) -> Vec<u32> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let mut heap = std::collections::BinaryHeap::with_capacity(k + 1);
    for (i, &s) in scores.iter().enumerate() {
        let cand = Worst(s, i as u32);
        if heap.len() < k {
            heap.push(cand);
        } else if cand < *heap.peek().expect("heap holds k entries") {
            heap.pop();
            heap.push(cand);
        }
    }
    let mut kept = heap.into_vec();
    kept.sort_unstable();
    kept.into_iter().map(|w| w.1).collect()
}

/// Bounded-heap top-K over an arbitrary `(index, score)` candidate stream —
/// the sparse-candidate sibling of [`topk_indices`], used by the IVF ANN
/// search path in `graphaug-serve` where only the probed inverted lists'
/// items are scored.
///
/// The selection shares [`topk_indices`]'s comparator, so the **tie-break
/// contract is identical**: equal scores rank the lower index first, both in
/// the returned order and at the `k` cutoff. Because that comparator is a
/// total order, the result does not depend on the order candidates arrive
/// in — which is what lets a full-probe ANN search (`nprobe = nlists`, all
/// items visited in cluster order) reproduce the dense exact ranking
/// hex-exactly.
pub fn topk_pairs(candidates: impl IntoIterator<Item = (u32, f32)>, k: usize) -> Vec<(u32, f32)> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap = std::collections::BinaryHeap::with_capacity(k + 1);
    for (i, s) in candidates {
        let cand = Worst(s, i);
        if heap.len() < k {
            heap.push(cand);
        } else if cand < *heap.peek().expect("heap holds k entries") {
            heap.pop();
            heap.push(cand);
        }
    }
    let mut kept = heap.into_vec();
    kept.sort_unstable();
    kept.into_iter().map(|w| (w.1, w.0)).collect()
}

/// Recall@K: fraction of this user's held-out items appearing in the top-K
/// ranked list.
pub fn recall_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|v| relevant.binary_search(v).is_ok())
        .count();
    hits as f64 / relevant.len() as f64
}

/// Count of `approx` items that also appear in `exact` (set overlap, order
/// ignored). This is the shared numerator of every approximate-vs-oracle
/// recall estimate in the serving stack — the ANN recall gate, the
/// quantization drift gate, and the engines' online self-audits all divide
/// it by the oracle list length. Sorts a copy of `exact`; neither input
/// needs to be pre-sorted.
pub fn overlap_count(approx: &[u32], exact: &[u32]) -> usize {
    let mut sorted: Vec<u32> = exact.to_vec();
    sorted.sort_unstable();
    approx
        .iter()
        .filter(|v| sorted.binary_search(v).is_ok())
        .count()
}

/// NDCG@K with binary relevance: `DCG = Σ 1/log₂(rank+1)` over hits,
/// normalized by the ideal DCG of `min(k, |relevant|)` leading hits.
pub fn ndcg_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let dcg: f64 = ranked
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, v)| relevant.binary_search(v).is_ok())
        .map(|(i, _)| 1.0 / ((i + 2) as f64).log2())
        .sum();
    let ideal: f64 = (0..relevant.len().min(k))
        .map(|i| 1.0 / ((i + 2) as f64).log2())
        .sum();
    dcg / ideal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_selects_largest_in_order() {
        let scores = vec![0.1, 0.9, 0.3, 0.7, 0.5];
        assert_eq!(topk_indices(&scores, 3), vec![1, 3, 4]);
    }

    #[test]
    fn topk_handles_k_larger_than_n() {
        let scores = vec![0.2, 0.1];
        assert_eq!(topk_indices(&scores, 10), vec![0, 1]);
    }

    #[test]
    fn topk_ties_break_by_index() {
        let scores = vec![0.5, 0.5, 0.5];
        assert_eq!(topk_indices(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn topk_pairs_agrees_with_topk_indices_on_dense_input() {
        let scores = vec![0.1, 0.9, 0.3, 0.9, 0.5, -2.0, 0.9];
        for k in 0..=scores.len() + 2 {
            let dense = topk_indices(&scores, k);
            let pairs = topk_pairs(scores.iter().enumerate().map(|(i, &s)| (i as u32, s)), k);
            assert_eq!(
                pairs.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
                dense,
                "k={k}"
            );
            for &(i, s) in &pairs {
                assert_eq!(s.to_bits(), scores[i as usize].to_bits());
            }
        }
    }

    #[test]
    fn topk_pairs_is_candidate_order_invariant_under_ties() {
        // Duplicate-heavy scores, candidates delivered in two different
        // orders: the total-order comparator must give the same answer.
        let scores = [0.5f32, 0.5, 0.25, 0.5, 0.25, 0.5];
        let forward: Vec<(u32, f32)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u32, s))
            .collect();
        let mut shuffled = forward.clone();
        shuffled.reverse();
        shuffled.swap(0, 3);
        for k in 1..=scores.len() {
            assert_eq!(
                topk_pairs(forward.iter().copied(), k),
                topk_pairs(shuffled.iter().copied(), k),
                "k={k}"
            );
        }
        // Ties break toward the lower index, same as topk_indices.
        assert_eq!(
            topk_pairs(shuffled.iter().copied(), 3),
            vec![(0, 0.5), (1, 0.5), (3, 0.5)]
        );
    }

    #[test]
    fn recall_counts_hits_over_relevant() {
        // relevant sorted.
        let ranked = vec![4, 2, 9, 1];
        let relevant = vec![1, 2, 7];
        assert!((recall_at_k(&ranked, &relevant, 4) - 2.0 / 3.0).abs() < 1e-12);
        assert!((recall_at_k(&ranked, &relevant, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recall_empty_relevant_is_zero() {
        assert_eq!(recall_at_k(&[1, 2], &[], 2), 0.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let ranked = vec![3, 8, 5, 0, 1];
        let relevant = vec![3, 5, 8];
        assert!((ndcg_at_k(&ranked, &relevant, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_rewards_early_hits() {
        let relevant = vec![7];
        let early = ndcg_at_k(&[7, 1, 2], &relevant, 3);
        let late = ndcg_at_k(&[1, 2, 7], &relevant, 3);
        assert!(early > late);
        assert!((early - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_caps_ideal_at_k() {
        // 5 relevant items but k=2: a ranking with the top-2 slots filled by
        // relevant items is ideal.
        let relevant = vec![0, 1, 2, 3, 4];
        assert!((ndcg_at_k(&[0, 1], &relevant, 2) - 1.0).abs() < 1e-12);
    }
}
