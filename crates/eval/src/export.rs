//! Exporting and re-importing trained embeddings.
//!
//! Training is expensive relative to serving; this module lets a pipeline
//! train once, persist the factorized model as plain text, and serve top-K
//! recommendations later (or from another process) without the training
//! stack. The format is line-oriented and dependency-free:
//!
//! ```text
//! graphaug-embeddings v1
//! users <I> items <J> dim <d>
//! u <f32> … <f32>      (I lines)
//! i <f32> … <f32>      (J lines)
//! ```

use graphaug_tensor::Mat;

use crate::model::Recommender;

/// A deserialized dot-product scorer: user/item embedding tables only.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbeddingSnapshot {
    /// `I × d` user embeddings.
    pub user_emb: Mat,
    /// `J × d` item embeddings.
    pub item_emb: Mat,
}

impl Recommender for EmbeddingSnapshot {
    fn name(&self) -> &str {
        "EmbeddingSnapshot"
    }
    fn embeddings(&self) -> Option<(&Mat, &Mat)> {
        Some((&self.user_emb, &self.item_emb))
    }
}

/// Errors raised while parsing an embedding dump.
#[derive(Debug, PartialEq, Eq)]
pub enum ImportError {
    /// Header missing or wrong version tag.
    BadHeader(String),
    /// A row failed to parse.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        reason: String,
    },
    /// Row counts did not match the header.
    WrongCount {
        /// Expected rows.
        expected: usize,
        /// Rows found.
        found: usize,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::BadHeader(h) => write!(f, "bad header: {h:?}"),
            ImportError::BadRow { line, reason } => write!(f, "line {line}: {reason}"),
            ImportError::WrongCount { expected, found } => {
                write!(f, "expected {expected} embedding rows, found {found}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

/// Serializes any dot-product [`Recommender`] to the text format.
/// Panics if the model does not expose embeddings.
pub fn export_embeddings(model: &dyn Recommender) -> String {
    let (u, i) = model
        .embeddings()
        .expect("export requires an embedding-based model");
    let mut out = String::with_capacity((u.len() + i.len()) * 12);
    out.push_str("graphaug-embeddings v1\n");
    out.push_str(&format!(
        "users {} items {} dim {}\n",
        u.rows(),
        i.rows(),
        u.cols()
    ));
    for r in 0..u.rows() {
        out.push('u');
        for &x in u.row(r) {
            out.push_str(&format!(" {x}"));
        }
        out.push('\n');
    }
    for r in 0..i.rows() {
        out.push('i');
        for &x in i.row(r) {
            out.push_str(&format!(" {x}"));
        }
        out.push('\n');
    }
    out
}

/// Parses a dump produced by [`export_embeddings`].
pub fn import_embeddings(text: &str) -> Result<EmbeddingSnapshot, ImportError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ImportError::BadHeader("empty input".into()))?;
    if header.trim() != "graphaug-embeddings v1" {
        return Err(ImportError::BadHeader(header.to_string()));
    }
    let (_, shape) = lines
        .next()
        .ok_or_else(|| ImportError::BadHeader("missing shape line".into()))?;
    let tokens: Vec<&str> = shape.split_whitespace().collect();
    let parse_field = |tokens: &[&str], key: &str, at: usize| -> Result<usize, ImportError> {
        if tokens.get(at).copied() != Some(key) {
            return Err(ImportError::BadHeader(shape.to_string()));
        }
        tokens
            .get(at + 1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ImportError::BadHeader(shape.to_string()))
    };
    let n_users = parse_field(&tokens, "users", 0)?;
    let n_items = parse_field(&tokens, "items", 2)?;
    let dim = parse_field(&tokens, "dim", 4)?;

    let mut user_emb = Mat::zeros(n_users, dim);
    let mut item_emb = Mat::zeros(n_items, dim);
    let (mut nu, mut ni) = (0usize, 0usize);
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let tag = it.next().expect("non-empty line");
        let vals: Result<Vec<f32>, _> = it.map(|t| t.parse::<f32>()).collect();
        let vals = vals.map_err(|e| ImportError::BadRow {
            line: idx + 1,
            reason: format!("bad float: {e}"),
        })?;
        if vals.len() != dim {
            return Err(ImportError::BadRow {
                line: idx + 1,
                reason: format!("expected {dim} values, got {}", vals.len()),
            });
        }
        match tag {
            "u" => {
                if nu >= n_users {
                    return Err(ImportError::WrongCount {
                        expected: n_users,
                        found: nu + 1,
                    });
                }
                user_emb.row_mut(nu).copy_from_slice(&vals);
                nu += 1;
            }
            "i" => {
                if ni >= n_items {
                    return Err(ImportError::WrongCount {
                        expected: n_items,
                        found: ni + 1,
                    });
                }
                item_emb.row_mut(ni).copy_from_slice(&vals);
                ni += 1;
            }
            other => {
                return Err(ImportError::BadRow {
                    line: idx + 1,
                    reason: format!("unknown row tag {other:?}"),
                })
            }
        }
    }
    if nu != n_users {
        return Err(ImportError::WrongCount {
            expected: n_users,
            found: nu,
        });
    }
    if ni != n_items {
        return Err(ImportError::WrongCount {
            expected: n_items,
            found: ni,
        });
    }
    Ok(EmbeddingSnapshot { user_emb, item_emb })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> EmbeddingSnapshot {
        EmbeddingSnapshot {
            user_emb: Mat::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.5 - 1.0),
            item_emb: Mat::from_fn(4, 2, |r, c| (r as f32) - (c as f32) * 0.25),
        }
    }

    #[test]
    fn round_trip_preserves_scores() {
        let snap = snapshot();
        let text = export_embeddings(&snap);
        let back = import_embeddings(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.score_items(1), snap.score_items(1));
    }

    #[test]
    fn rejects_wrong_version() {
        let err = import_embeddings("graphaug-embeddings v2\nusers 0 items 0 dim 1\n");
        assert!(matches!(err, Err(ImportError::BadHeader(_))));
    }

    #[test]
    fn rejects_truncated_rows() {
        let snap = snapshot();
        let text = export_embeddings(&snap);
        // Drop the final item row.
        let truncated: String =
            text.lines()
                .take(text.lines().count() - 1)
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
        let err = import_embeddings(&truncated);
        assert_eq!(
            err,
            Err(ImportError::WrongCount {
                expected: 4,
                found: 3
            })
        );
    }

    #[test]
    fn rejects_bad_floats_with_line_numbers() {
        let text = "graphaug-embeddings v1\nusers 1 items 0 dim 2\nu 0.5 oops\n";
        match import_embeddings(text) {
            Err(ImportError::BadRow { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected BadRow, got {other:?}"),
        }
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let text = "graphaug-embeddings v1\nusers 1 items 0 dim 3\nu 0.5 1.0\n";
        assert!(matches!(
            import_embeddings(text),
            Err(ImportError::BadRow { .. })
        ));
    }
}
