//! Embedding-distribution statistics for the paper's Figure 7 analysis.
//!
//! The paper visualizes UMAP projections to argue that GraphAug's embeddings
//! are more *uniformly* distributed on the hypersphere than LightGCN's
//! (which collapse) while retaining cluster structure. We quantify the same
//! claim with the Wang–Isola uniformity loss and provide a dependency-free
//! 2-D PCA projection for scatter output.

use graphaug_rng::StdRng;

use graphaug_tensor::Mat;

/// Wang–Isola uniformity: `log E exp(−t·‖x̂ − ŷ‖²)` over sampled pairs of
/// L2-normalized embeddings (t = 2). **Lower is more uniform.**
pub fn uniformity(embeddings: &Mat, n_pairs: usize, seed: u64) -> f64 {
    let n = embeddings.rows();
    assert!(n >= 2, "need at least two embeddings");
    let normed = normalize_rows(embeddings);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0f64;
    for _ in 0..n_pairs {
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        let d2: f32 = normed
            .row(i)
            .iter()
            .zip(normed.row(j))
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        acc += (-2.0 * d2 as f64).exp();
    }
    (acc / n_pairs as f64).ln()
}

fn normalize_rows(m: &Mat) -> Mat {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let n = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
        for x in row.iter_mut() {
            *x /= n;
        }
    }
    out
}

/// Projects embeddings onto their top-2 principal components via power
/// iteration with deflation. Returns an `n × 2` matrix of coordinates.
pub fn pca_2d(embeddings: &Mat, seed: u64) -> Mat {
    let (n, d) = embeddings.shape();
    assert!(n >= 2 && d >= 2, "pca_2d needs at least a 2x2 input");
    // Center.
    let mut mean = vec![0f32; d];
    for r in 0..n {
        for (m, &x) in mean.iter_mut().zip(embeddings.row(r)) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n as f32;
    }
    let centered = Mat::from_fn(n, d, |r, c| embeddings.get(r, c) - mean[c]);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut components: Vec<Vec<f32>> = Vec::with_capacity(2);
    for _ in 0..2 {
        let mut v: Vec<f32> = (0..d).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        for _ in 0..60 {
            // w = Cᵀ(Cv) / n, deflated against found components.
            let mut cv = vec![0f32; n];
            for (r, cvr) in cv.iter_mut().enumerate() {
                *cvr = centered.row(r).iter().zip(&v).map(|(a, b)| a * b).sum();
            }
            let mut w = vec![0f32; d];
            for (r, &cvr) in cv.iter().enumerate() {
                for (wi, &x) in w.iter_mut().zip(centered.row(r)) {
                    *wi += cvr * x;
                }
            }
            for comp in &components {
                let dot: f32 = w.iter().zip(comp).map(|(a, b)| a * b).sum();
                for (wi, &c) in w.iter_mut().zip(comp) {
                    *wi -= dot * c;
                }
            }
            let norm = w.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
            for wi in &mut w {
                *wi /= norm;
            }
            v = w;
        }
        // Re-orthogonalize the converged vector; power iteration against a
        // (near-)rank-deficient covariance can leave an O(1) leak onto the
        // previous component through catastrophic cancellation.
        for comp in &components {
            let dot: f32 = v.iter().zip(comp).map(|(a, b)| a * b).sum();
            for (vi, &c) in v.iter_mut().zip(comp) {
                *vi -= dot * c;
            }
        }
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-6 {
            for vi in &mut v {
                *vi /= norm;
            }
        } else {
            // Zero residual variance: any direction orthogonal to the found
            // components is a valid (degenerate) second axis.
            v = vec![0f32; d];
            'basis: for axis in 0..d {
                let mut cand = vec![0f32; d];
                cand[axis] = 1.0;
                for comp in &components {
                    let dot: f32 = cand.iter().zip(comp).map(|(a, b)| a * b).sum();
                    for (ci, &c) in cand.iter_mut().zip(comp) {
                        *ci -= dot * c;
                    }
                }
                let n = cand.iter().map(|x| x * x).sum::<f32>().sqrt();
                if n > 1e-3 {
                    for ci in &mut cand {
                        *ci /= n;
                    }
                    v = cand;
                    break 'basis;
                }
            }
        }
        components.push(v);
    }
    Mat::from_fn(n, 2, |r, c| {
        centered
            .row(r)
            .iter()
            .zip(&components[c])
            .map(|(a, b)| a * b)
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sphere_beats_collapsed() {
        // Collapsed cloud: all rows near one direction.
        let collapsed = Mat::from_fn(50, 6, |r, c| 1.0 + 0.01 * ((r + c) as f32).sin());
        // Spread cloud: pseudo-random directions.
        let spread = Mat::from_fn(50, 6, |r, c| ((r * 6 + c) as f32 * 2.3).sin());
        let u_col = uniformity(&collapsed, 5000, 1);
        let u_spd = uniformity(&spread, 5000, 1);
        assert!(
            u_spd < u_col,
            "spread {u_spd} should be lower than collapsed {u_col}"
        );
    }

    #[test]
    fn uniformity_is_deterministic_per_seed() {
        let e = Mat::from_fn(20, 4, |r, c| ((r * c) as f32).cos());
        assert_eq!(uniformity(&e, 1000, 3), uniformity(&e, 1000, 3));
    }

    #[test]
    fn pca_finds_dominant_axis() {
        // Points dominated by one direction with a faint second axis: the
        // first component captures nearly all variance, so coordinate 1 ≫
        // coordinate 2 in magnitude.
        let e = Mat::from_fn(40, 5, |r, c| {
            (r as f32 - 20.0) * [3.0, 1.0, 0.5, 0.1, 0.0][c]
                + 0.05 * ((r * 7) as f32).sin() * [0.0, 0.0, 0.0, 1.0, -1.0][c]
        });
        let p = pca_2d(&e, 7);
        assert_eq!(p.shape(), (40, 2));
        let var1: f32 = (0..40).map(|r| p.get(r, 0).powi(2)).sum();
        let var2: f32 = (0..40).map(|r| p.get(r, 1).powi(2)).sum();
        assert!(var1 > 100.0 * var2.max(1e-6), "var1 {var1} var2 {var2}");
    }

    #[test]
    fn pca_components_are_centered() {
        let e = Mat::from_fn(30, 4, |r, c| ((r * 4 + c) as f32 * 0.77).sin() + 5.0);
        let p = pca_2d(&e, 9);
        for c in 0..2 {
            let mean: f32 = (0..30).map(|r| p.get(r, c)).sum::<f32>() / 30.0;
            assert!(mean.abs() < 1e-3, "component {c} mean {mean}");
        }
    }
}
