//! Plain-text table and CSV emission for the experiment binaries.

/// A simple aligned text table builder.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}  ", cell, w = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (comma-escaped with quotes where needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a metric to the paper's 4-decimal convention.
pub fn fmt4(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["Model", "Recall@20"]);
        t.row(&["LightGCN".into(), "0.1799".into()]);
        t.row(&["Ours".into(), "0.2025".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Model"));
        assert_eq!(lines.len(), 4);
        // Column positions align.
        let pos0 = lines[2].find("0.1799").unwrap();
        let pos1 = lines[3].find("0.2025").unwrap();
        assert_eq!(pos0, pos1);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(&["name", "v"]);
        t.row(&["a,b".into(), "1".into()]);
        assert_eq!(t.to_csv(), "name,v\n\"a,b\",1\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        TextTable::new(&["a", "b"]).row(&["only".into()]);
    }

    #[test]
    fn fmt4_rounds() {
        assert_eq!(fmt4(0.12345), "0.1235");
        assert_eq!(fmt4(0.1), "0.1000");
    }
}
