//! The `Recommender` trait — the uniform scoring interface every model in
//! the workspace (GraphAug and all 18 baselines) implements.

use graphaug_tensor::Mat;

/// A trained recommender that can score all items for a user.
///
/// Most models are embedding-dot-product scorers and should implement
/// [`Recommender::embeddings`], inheriting the default `score_items`; models
/// with non-factored scoring functions (NCF's MLP head, AutoRec's decoder)
/// override `score_items` directly.
///
/// `Sync` is a supertrait because the evaluation harness scores users in
/// parallel — `score_items` must be callable from worker threads through a
/// shared reference.
pub trait Recommender: Sync {
    /// Human-readable model name (used in experiment tables).
    fn name(&self) -> &str;

    /// Final `(user, item)` embedding matrices when the model is a
    /// dot-product scorer. Used for scoring, MAD, and uniformity statistics.
    fn embeddings(&self) -> Option<(&Mat, &Mat)>;

    /// Preference scores for every item for `user`.
    fn score_items(&self, user: usize) -> Vec<f32> {
        let (ue, ie) = self
            .embeddings()
            .expect("models without embeddings must override score_items");
        let urow = ue.row(user);
        (0..ie.rows())
            .map(|v| ie.row(v).iter().zip(urow).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Concatenated user+item embedding matrix, when available (for the
    /// MAD/oversmoothing analyses that operate on all nodes).
    fn all_node_embeddings(&self) -> Option<Mat> {
        let (ue, ie) = self.embeddings()?;
        debug_assert_eq!(ue.cols(), ie.cols());
        let mut out = Mat::zeros(ue.rows() + ie.rows(), ue.cols());
        for r in 0..ue.rows() {
            out.row_mut(r).copy_from_slice(ue.row(r));
        }
        for r in 0..ie.rows() {
            out.row_mut(ue.rows() + r).copy_from_slice(ie.row(r));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        u: Mat,
        i: Mat,
    }

    impl Recommender for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn embeddings(&self) -> Option<(&Mat, &Mat)> {
            Some((&self.u, &self.i))
        }
    }

    #[test]
    fn default_scoring_is_dot_product() {
        let t = Toy {
            u: Mat::from_vec(1, 2, vec![1.0, 2.0]),
            i: Mat::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]),
        };
        assert_eq!(t.score_items(0), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn node_embeddings_concatenate() {
        let t = Toy {
            u: Mat::filled(2, 3, 1.0),
            i: Mat::filled(4, 3, 2.0),
        };
        let all = t.all_node_embeddings().unwrap();
        assert_eq!(all.shape(), (6, 3));
        assert_eq!(all.get(0, 0), 1.0);
        assert_eq!(all.get(5, 2), 2.0);
    }
}
