//! Evaluation stack for the GraphAug reproduction: metrics, oversmoothing
//! probes, distribution statistics, and the shared [`Recommender`] trait.
//!
//! * [`metrics`] — Recall@K / NDCG@K and top-K selection (Table II);
//! * [`harness`] — full-ranking evaluation with train-item masking, plus the
//!   convergence recorder behind Fig. 4;
//! * [mad](mad::mad) — Mean Average Distance, the oversmoothing probe of
//!   Tables III/VII;
//! * [uniformity](uniformity::uniformity) — Wang–Isola uniformity and a 2-D PCA projection for the
//!   Fig. 7 distribution study;
//! * [`model`] — the [`Recommender`] scoring interface implemented by
//!   GraphAug and all baselines;
//! * [`tables`] — text/CSV table emission used by the experiment binaries;
//! * [`export`] — plain-text persistence of trained embedding tables, so a
//!   pipeline can train once and serve top-K recommendations elsewhere.

pub mod export;
pub mod harness;
pub mod mad;
pub mod metrics;
pub mod model;
pub mod tables;
pub mod uniformity;

pub use export::{export_embeddings, import_embeddings, EmbeddingSnapshot, ImportError};
pub use harness::{
    evaluate, evaluate_item_group, evaluate_users, AtK, ConvergenceRecorder, EvalResult,
};
pub use mad::{mad, mad_exact, mad_sampled};
pub use metrics::{ndcg_at_k, overlap_count, recall_at_k, topk_indices, topk_pairs};
pub use model::Recommender;
pub use tables::{fmt4, TextTable};
pub use uniformity::{pca_2d, uniformity};
