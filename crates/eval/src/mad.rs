//! Mean Average Distance (MAD) — the paper's oversmoothing probe
//! (Tables III and VII).
//!
//! MAD is the mean cosine *distance* `1 − cos(xᵢ, xⱼ)` over node-embedding
//! pairs. Oversmoothed encoders collapse embeddings towards a shared
//! direction, driving MAD towards 0; the paper argues mixhop propagation
//! keeps MAD high (≈0.72 for GraphAug vs 0.66 for LightGCN on Gowalla).

use graphaug_rng::StdRng;

use graphaug_tensor::Mat;

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let mut dot = 0f32;
    let mut na = 0f32;
    let mut nb = 0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    let denom = (na.sqrt() * nb.sqrt()).max(1e-12);
    dot / denom
}

/// Exact MAD over all `n(n-1)/2` embedding pairs. Quadratic — use
/// [`mad_sampled`] beyond a few thousand rows.
pub fn mad_exact(embeddings: &Mat) -> f64 {
    let n = embeddings.rows();
    assert!(n >= 2, "need at least two embeddings");
    let mut acc = 0f64;
    let mut cnt = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            acc += (1.0 - cosine(embeddings.row(i), embeddings.row(j))) as f64;
            cnt += 1;
        }
    }
    acc / cnt as f64
}

/// Monte-Carlo MAD over `n_pairs` sampled distinct pairs (seeded).
pub fn mad_sampled(embeddings: &Mat, n_pairs: usize, seed: u64) -> f64 {
    let n = embeddings.rows();
    assert!(n >= 2, "need at least two embeddings");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0f64;
    for _ in 0..n_pairs {
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        acc += (1.0 - cosine(embeddings.row(i), embeddings.row(j))) as f64;
    }
    acc / n_pairs as f64
}

/// MAD with automatic exact/sampled selection: exact below 800 rows,
/// 50 000 sampled pairs above.
pub fn mad(embeddings: &Mat) -> f64 {
    if embeddings.rows() <= 800 {
        mad_exact(embeddings)
    } else {
        mad_sampled(embeddings, 50_000, 0x6d6164)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_embeddings_have_zero_mad() {
        let e = Mat::from_fn(10, 4, |_, c| c as f32 + 1.0);
        assert!(mad_exact(&e) < 1e-6);
    }

    #[test]
    fn orthogonal_embeddings_have_unit_mad() {
        // Rows alternate between e₁ and e₂: half the pairs are orthogonal
        // (distance 1), half identical (distance 0) → MAD ≈ pair-weighted mix.
        let e = Mat::from_fn(4, 2, |r, c| if r % 2 == c { 1.0 } else { 0.0 });
        // pairs: (0,1) orth, (0,2) same, (0,3) orth, (1,2) orth, (1,3) same, (2,3) orth
        let want = 4.0 / 6.0;
        assert!((mad_exact(&e) - want).abs() < 1e-6);
    }

    #[test]
    fn opposite_embeddings_reach_two() {
        let e = Mat::from_fn(2, 3, |r, _| if r == 0 { 1.0 } else { -1.0 });
        assert!((mad_exact(&e) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sampled_mad_approximates_exact() {
        let mut seedmat = Mat::zeros(60, 8);
        let mut state = 1234567u64;
        for v in seedmat.as_mut_slice() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v = ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
        }
        let exact = mad_exact(&seedmat);
        let approx = mad_sampled(&seedmat, 20_000, 5);
        assert!(
            (exact - approx).abs() < 0.02,
            "exact {exact} approx {approx}"
        );
    }

    #[test]
    fn collapsed_embeddings_score_lower_than_spread() {
        // "Oversmoothed": small perturbations around one direction.
        let smooth = Mat::from_fn(30, 4, |r, c| 1.0 + 0.01 * ((r * 4 + c) as f32).sin());
        // "Spread": varied directions.
        let spread = Mat::from_fn(30, 4, |r, c| ((r * 4 + c) as f32 * 1.7).sin());
        assert!(mad_exact(&smooth) < mad_exact(&spread));
    }
}
