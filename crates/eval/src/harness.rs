//! The top-K evaluation harness shared by every experiment.
//!
//! Evaluation follows the paper's protocol: for each user with held-out
//! interactions, score *all* items, mask the user's training items, rank,
//! and average Recall@K / NDCG@K over users (K ∈ {20, 40} in Table II).

use graphaug_graph::TrainTestSplit;

use crate::metrics::{ndcg_at_k, recall_at_k, topk_indices};
use crate::model::Recommender;

/// Metric values at one cutoff.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AtK {
    /// Cutoff.
    pub k: usize,
    /// Mean Recall@K over evaluated users.
    pub recall: f64,
    /// Mean NDCG@K over evaluated users.
    pub ndcg: f64,
}

/// Result of one evaluation pass.
#[derive(Clone, Debug, Default)]
pub struct EvalResult {
    /// One entry per requested cutoff, in request order.
    pub at: Vec<AtK>,
    /// How many users were evaluated.
    pub n_users: usize,
}

impl EvalResult {
    /// Recall at the given cutoff (panics if the cutoff was not evaluated).
    pub fn recall(&self, k: usize) -> f64 {
        self.at
            .iter()
            .find(|a| a.k == k)
            .expect("cutoff not evaluated")
            .recall
    }

    /// NDCG at the given cutoff (panics if the cutoff was not evaluated).
    pub fn ndcg(&self, k: usize) -> f64 {
        self.at
            .iter()
            .find(|a| a.k == k)
            .expect("cutoff not evaluated")
            .ndcg
    }
}

/// Evaluates `model` on every test user of `split` at cutoffs `ks`.
pub fn evaluate(model: &dyn Recommender, split: &TrainTestSplit, ks: &[usize]) -> EvalResult {
    evaluate_users(model, split, &split.test_users(), ks)
}

/// Evaluates `model` on a specific user population (used by the Table V
/// degree-bucket study). Users without held-out items are skipped.
pub fn evaluate_users(
    model: &dyn Recommender,
    split: &TrainTestSplit,
    users: &[u32],
    ks: &[usize],
) -> EvalResult {
    let kmax = ks.iter().copied().max().unwrap_or(0);
    let mut sums: Vec<(f64, f64)> = vec![(0.0, 0.0); ks.len()];
    let mut n_eval = 0usize;
    for &u in users {
        let relevant = split.test.items_of(u as usize);
        if relevant.is_empty() {
            continue;
        }
        let mut scores = model.score_items(u as usize);
        // Mask training items so the model is not rewarded for reproducing
        // observed interactions.
        for &v in split.train.items_of(u as usize) {
            scores[v as usize] = f32::NEG_INFINITY;
        }
        let ranked = topk_indices(&scores, kmax);
        for (i, &k) in ks.iter().enumerate() {
            sums[i].0 += recall_at_k(&ranked, relevant, k);
            sums[i].1 += ndcg_at_k(&ranked, relevant, k);
        }
        n_eval += 1;
    }
    let denom = n_eval.max(1) as f64;
    EvalResult {
        at: ks
            .iter()
            .zip(&sums)
            .map(|(&k, &(r, n))| AtK {
                k,
                recall: r / denom,
                ndcg: n / denom,
            })
            .collect(),
        n_users: n_eval,
    }
}

/// Evaluates `model` counting only held-out items inside `items` as
/// relevant — the item-side half of the Table V popularity-skew study.
/// Users with no held-out items in the group are skipped.
pub fn evaluate_item_group(
    model: &dyn Recommender,
    split: &TrainTestSplit,
    items: &[u32],
    ks: &[usize],
) -> EvalResult {
    let member: std::collections::HashSet<u32> = items.iter().copied().collect();
    let kmax = ks.iter().copied().max().unwrap_or(0);
    let mut sums: Vec<(f64, f64)> = vec![(0.0, 0.0); ks.len()];
    let mut n_eval = 0usize;
    for u in split.test_users() {
        let relevant: Vec<u32> = split
            .test
            .items_of(u as usize)
            .iter()
            .copied()
            .filter(|v| member.contains(v))
            .collect();
        if relevant.is_empty() {
            continue;
        }
        let mut scores = model.score_items(u as usize);
        for &v in split.train.items_of(u as usize) {
            scores[v as usize] = f32::NEG_INFINITY;
        }
        let ranked = topk_indices(&scores, kmax);
        for (i, &k) in ks.iter().enumerate() {
            sums[i].0 += recall_at_k(&ranked, &relevant, k);
            sums[i].1 += ndcg_at_k(&ranked, &relevant, k);
        }
        n_eval += 1;
    }
    let denom = n_eval.max(1) as f64;
    EvalResult {
        at: ks
            .iter()
            .zip(&sums)
            .map(|(&k, &(r, n))| AtK {
                k,
                recall: r / denom,
                ndcg: n / denom,
            })
            .collect(),
        n_users: n_eval,
    }
}

/// Records a per-epoch metric series (paper Fig. 4 convergence curves).
#[derive(Clone, Debug, Default)]
pub struct ConvergenceRecorder {
    points: Vec<(usize, f64)>,
}

impl ConvergenceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `(epoch, value)`.
    pub fn record(&mut self, epoch: usize, value: f64) {
        self.points.push((epoch, value));
    }

    /// The recorded series.
    pub fn points(&self) -> &[(usize, f64)] {
        &self.points
    }

    /// Best value seen so far and its epoch.
    pub fn best(&self) -> Option<(usize, f64)> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("metrics are finite"))
    }

    /// First epoch reaching `fraction` of the best value — the convergence-
    /// speed statistic used when comparing methods in Fig. 4.
    pub fn epochs_to_fraction_of_best(&self, fraction: f64) -> Option<usize> {
        let (_, best) = self.best()?;
        let threshold = best * fraction;
        self.points
            .iter()
            .find(|(_, v)| *v >= threshold)
            .map(|&(e, _)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_graph::InteractionGraph;
    use graphaug_tensor::Mat;

    /// An oracle that scores the user's held-out items highest.
    struct Oracle {
        split: TrainTestSplit,
        n_items: usize,
    }

    impl Recommender for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn embeddings(&self) -> Option<(&Mat, &Mat)> {
            None
        }
        fn score_items(&self, user: usize) -> Vec<f32> {
            let mut s = vec![0f32; self.n_items];
            for &v in self.split.test.items_of(user) {
                s[v as usize] = 10.0;
            }
            s
        }
    }

    fn toy_split() -> TrainTestSplit {
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in 0..8u32 {
                edges.push((u, (u + v) % 20));
            }
        }
        let g = InteractionGraph::new(10, 20, edges);
        TrainTestSplit::per_user(&g, 0.25, 3)
    }

    #[test]
    fn oracle_achieves_perfect_metrics() {
        let split = toy_split();
        let oracle = Oracle {
            split: split.clone(),
            n_items: 20,
        };
        let res = evaluate(&oracle, &split, &[20]);
        assert!(res.n_users > 0);
        assert!((res.recall(20) - 1.0).abs() < 1e-12);
        assert!((res.ndcg(20) - 1.0).abs() < 1e-12);
    }

    /// A scorer that ranks the user's *training* items first — masking must
    /// prevent it from earning credit.
    struct TrainEcho {
        split: TrainTestSplit,
        n_items: usize,
    }

    impl Recommender for TrainEcho {
        fn name(&self) -> &str {
            "echo"
        }
        fn embeddings(&self) -> Option<(&Mat, &Mat)> {
            None
        }
        fn score_items(&self, user: usize) -> Vec<f32> {
            let mut s = vec![0f32; self.n_items];
            for &v in self.split.train.items_of(user) {
                s[v as usize] = 10.0;
            }
            s
        }
    }

    #[test]
    fn training_items_are_masked_out() {
        let split = toy_split();
        let echo = TrainEcho {
            split: split.clone(),
            n_items: 20,
        };
        let res = evaluate(&echo, &split, &[5]);
        // With train items masked, the echo model's remaining scores are
        // uniform zero — its recall should be far below 1.
        assert!(res.recall(5) < 0.9);
    }

    #[test]
    fn evaluate_users_restricts_population() {
        let split = toy_split();
        let oracle = Oracle {
            split: split.clone(),
            n_items: 20,
        };
        let res = evaluate_users(&oracle, &split, &[0, 1], &[20]);
        assert!(res.n_users <= 2);
    }

    #[test]
    fn item_group_evaluation_counts_only_group_items() {
        let split = toy_split();
        let oracle = Oracle {
            split: split.clone(),
            n_items: 20,
        };
        // All items: perfect oracle.
        let all: Vec<u32> = (0..20).collect();
        let r = evaluate_item_group(&oracle, &split, &all, &[20]);
        assert!((r.recall(20) - 1.0).abs() < 1e-12);
        // Empty group: nothing evaluable.
        let none = evaluate_item_group(&oracle, &split, &[], &[20]);
        assert_eq!(none.n_users, 0);
    }

    #[test]
    fn recorder_tracks_best_and_convergence() {
        let mut rec = ConvergenceRecorder::new();
        for (e, v) in [(1, 0.1), (2, 0.5), (3, 0.8), (4, 0.79)] {
            rec.record(e, v);
        }
        assert_eq!(rec.best(), Some((3, 0.8)));
        assert_eq!(rec.epochs_to_fraction_of_best(0.6), Some(2));
        assert_eq!(rec.epochs_to_fraction_of_best(0.99), Some(3));
    }
}
