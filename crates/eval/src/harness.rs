//! The top-K evaluation harness shared by every experiment.
//!
//! Evaluation follows the paper's protocol: for each user with held-out
//! interactions, score *all* items, mask the user's training items, rank,
//! and average Recall@K / NDCG@K over users (K ∈ {20, 40} in Table II).
//!
//! Users are embarrassingly parallel, so the per-user scoring, masking, and
//! top-K selection fan out over `graphaug-par::parallel_spans`: the
//! eligible-user list is pre-filtered once (users without held-out items
//! never reach the model), each fixed span accumulates its own metric
//! partial sums, and the partials are reduced in ascending span order —
//! making the result bit-identical for any `GRAPHAUG_THREADS`.

use graphaug_graph::TrainTestSplit;

use crate::metrics::{ndcg_at_k, recall_at_k, topk_indices};
use crate::model::Recommender;

/// Metric values at one cutoff.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AtK {
    /// Cutoff.
    pub k: usize,
    /// Mean Recall@K over evaluated users.
    pub recall: f64,
    /// Mean NDCG@K over evaluated users.
    pub ndcg: f64,
}

/// Result of one evaluation pass.
#[derive(Clone, Debug, Default)]
pub struct EvalResult {
    /// One entry per requested cutoff, in request order.
    pub at: Vec<AtK>,
    /// How many users were evaluated.
    pub n_users: usize,
}

impl EvalResult {
    /// Recall at the given cutoff (panics if the cutoff was not evaluated).
    pub fn recall(&self, k: usize) -> f64 {
        self.at
            .iter()
            .find(|a| a.k == k)
            .expect("cutoff not evaluated")
            .recall
    }

    /// NDCG at the given cutoff (panics if the cutoff was not evaluated).
    pub fn ndcg(&self, k: usize) -> f64 {
        self.at
            .iter()
            .find(|a| a.k == k)
            .expect("cutoff not evaluated")
            .ndcg
    }

    /// Bit-exact single-line rendering: every metric is printed as the hex
    /// of its `f64` bit pattern, so two lines compare equal *iff* the
    /// underlying values are bit-identical. The kill/resume smoke harness
    /// compares these lines across process boundaries, where a decimal
    /// rendering could mask a real (sub-print-precision) divergence.
    pub fn bitline(&self) -> String {
        let mut out = format!("users={}", self.n_users);
        for a in &self.at {
            out.push_str(&format!(
                " recall@{}={:016x} ndcg@{}={:016x}",
                a.k,
                a.recall.to_bits(),
                a.k,
                a.ndcg.to_bits()
            ));
        }
        out
    }
}

/// Evaluates `model` on every test user of `split` at cutoffs `ks`.
pub fn evaluate(model: &dyn Recommender, split: &TrainTestSplit, ks: &[usize]) -> EvalResult {
    evaluate_users(model, split, &split.test_users(), ks)
}

/// Evaluates `model` on a specific user population (used by the Table V
/// degree-bucket study). Users without held-out items are filtered out
/// up front and never reach the model's `score_items`.
pub fn evaluate_users(
    model: &dyn Recommender,
    split: &TrainTestSplit,
    users: &[u32],
    ks: &[usize],
) -> EvalResult {
    let eligible: Vec<(u32, &[u32])> = users
        .iter()
        .map(|&u| (u, split.test.items_of(u as usize)))
        .filter(|(_, relevant)| !relevant.is_empty())
        .collect();
    evaluate_eligible(model, split, &eligible, ks)
}

/// Evaluates `model` counting only held-out items inside `items` as
/// relevant — the item-side half of the Table V popularity-skew study.
/// Users with no held-out items in the group are skipped (and, like in
/// [`evaluate_users`], never scored).
pub fn evaluate_item_group(
    model: &dyn Recommender,
    split: &TrainTestSplit,
    items: &[u32],
    ks: &[usize],
) -> EvalResult {
    let member: std::collections::HashSet<u32> = items.iter().copied().collect();
    let relevant_lists: Vec<(u32, Vec<u32>)> = split
        .test_users()
        .iter()
        .map(|&u| {
            (
                u,
                split
                    .test
                    .items_of(u as usize)
                    .iter()
                    .copied()
                    .filter(|v| member.contains(v))
                    .collect::<Vec<u32>>(),
            )
        })
        .filter(|(_, relevant)| !relevant.is_empty())
        .collect();
    let eligible: Vec<(u32, &[u32])> = relevant_lists
        .iter()
        .map(|(u, r)| (*u, r.as_slice()))
        .collect();
    evaluate_eligible(model, split, &eligible, ks)
}

/// Shared parallel core: scores, masks, and ranks every `(user, relevant)`
/// pair over fixed spans, each span owning one metric-partial slot, and
/// reduces the per-span partials in ascending span order. The span grid
/// ([`graphaug_par::fixed_chunks`]) and the within-span order are fixed, so
/// the sums — and therefore the reported metrics — are bit-identical for
/// any thread count.
fn evaluate_eligible(
    model: &dyn Recommender,
    split: &TrainTestSplit,
    eligible: &[(u32, &[u32])],
    ks: &[usize],
) -> EvalResult {
    let kmax = ks.iter().copied().max().unwrap_or(0);
    let (_, n_spans) = graphaug_par::fixed_chunks(eligible.len());
    let mut partials: Vec<Vec<(f64, f64)>> = vec![vec![(0.0, 0.0); ks.len()]; n_spans];
    let base = graphaug_par::SendMutPtr::new(&mut partials);
    graphaug_par::parallel_spans(eligible.len(), |span_idx, range| {
        // Safety: each span index is claimed exactly once, so each partial
        // slot has a single writer.
        let sums = &mut unsafe { base.slice_mut(span_idx, 1) }[0];
        for &(u, relevant) in &eligible[range] {
            let mut scores = model.score_items(u as usize);
            // Mask training items so the model is not rewarded for
            // reproducing observed interactions.
            for &v in split.train.items_of(u as usize) {
                scores[v as usize] = f32::NEG_INFINITY;
            }
            let ranked = topk_indices(&scores, kmax);
            for (i, &k) in ks.iter().enumerate() {
                sums[i].0 += recall_at_k(&ranked, relevant, k);
                sums[i].1 += ndcg_at_k(&ranked, relevant, k);
            }
        }
    });
    let mut sums: Vec<(f64, f64)> = vec![(0.0, 0.0); ks.len()];
    for span in &partials {
        for (acc, &(r, n)) in sums.iter_mut().zip(span) {
            acc.0 += r;
            acc.1 += n;
        }
    }
    let n_eval = eligible.len();
    let denom = n_eval.max(1) as f64;
    EvalResult {
        at: ks
            .iter()
            .zip(&sums)
            .map(|(&k, &(r, n))| AtK {
                k,
                recall: r / denom,
                ndcg: n / denom,
            })
            .collect(),
        n_users: n_eval,
    }
}

/// Records a per-epoch metric series (paper Fig. 4 convergence curves).
#[derive(Clone, Debug, Default)]
pub struct ConvergenceRecorder {
    points: Vec<(usize, f64)>,
}

impl ConvergenceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `(epoch, value)`.
    pub fn record(&mut self, epoch: usize, value: f64) {
        self.points.push((epoch, value));
    }

    /// The recorded series.
    pub fn points(&self) -> &[(usize, f64)] {
        &self.points
    }

    /// Best value seen so far and its epoch.
    pub fn best(&self) -> Option<(usize, f64)> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("metrics are finite"))
    }

    /// First epoch reaching `fraction` of the best value — the convergence-
    /// speed statistic used when comparing methods in Fig. 4.
    pub fn epochs_to_fraction_of_best(&self, fraction: f64) -> Option<usize> {
        let (_, best) = self.best()?;
        let threshold = best * fraction;
        self.points
            .iter()
            .find(|(_, v)| *v >= threshold)
            .map(|&(e, _)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_graph::InteractionGraph;
    use graphaug_tensor::Mat;

    #[test]
    fn bitline_distinguishes_sub_print_precision_differences() {
        let a = EvalResult {
            at: vec![AtK {
                k: 20,
                recall: 0.25,
                ndcg: 0.125,
            }],
            n_users: 10,
        };
        let mut b = a.clone();
        assert_eq!(a.bitline(), b.bitline());
        // One ULP apart — invisible at print precision, caught by bitline.
        b.at[0].recall = f64::from_bits(0.25f64.to_bits() + 1);
        assert_ne!(a.bitline(), b.bitline());
    }

    /// An oracle that scores the user's held-out items highest.
    struct Oracle {
        split: TrainTestSplit,
        n_items: usize,
    }

    impl Recommender for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn embeddings(&self) -> Option<(&Mat, &Mat)> {
            None
        }
        fn score_items(&self, user: usize) -> Vec<f32> {
            let mut s = vec![0f32; self.n_items];
            for &v in self.split.test.items_of(user) {
                s[v as usize] = 10.0;
            }
            s
        }
    }

    fn toy_split() -> TrainTestSplit {
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in 0..8u32 {
                edges.push((u, (u + v) % 20));
            }
        }
        let g = InteractionGraph::new(10, 20, edges);
        TrainTestSplit::per_user(&g, 0.25, 3)
    }

    #[test]
    fn oracle_achieves_perfect_metrics() {
        let split = toy_split();
        let oracle = Oracle {
            split: split.clone(),
            n_items: 20,
        };
        let res = evaluate(&oracle, &split, &[20]);
        assert!(res.n_users > 0);
        assert!((res.recall(20) - 1.0).abs() < 1e-12);
        assert!((res.ndcg(20) - 1.0).abs() < 1e-12);
    }

    /// A scorer that ranks the user's *training* items first — masking must
    /// prevent it from earning credit.
    struct TrainEcho {
        split: TrainTestSplit,
        n_items: usize,
    }

    impl Recommender for TrainEcho {
        fn name(&self) -> &str {
            "echo"
        }
        fn embeddings(&self) -> Option<(&Mat, &Mat)> {
            None
        }
        fn score_items(&self, user: usize) -> Vec<f32> {
            let mut s = vec![0f32; self.n_items];
            for &v in self.split.train.items_of(user) {
                s[v as usize] = 10.0;
            }
            s
        }
    }

    #[test]
    fn training_items_are_masked_out() {
        let split = toy_split();
        let echo = TrainEcho {
            split: split.clone(),
            n_items: 20,
        };
        let res = evaluate(&echo, &split, &[5]);
        // With train items masked, the echo model's remaining scores are
        // uniform zero — its recall should be far below 1.
        assert!(res.recall(5) < 0.9);
    }

    #[test]
    fn evaluate_users_restricts_population() {
        let split = toy_split();
        let oracle = Oracle {
            split: split.clone(),
            n_items: 20,
        };
        let res = evaluate_users(&oracle, &split, &[0, 1], &[20]);
        assert!(res.n_users <= 2);
    }

    #[test]
    fn item_group_evaluation_counts_only_group_items() {
        let split = toy_split();
        let oracle = Oracle {
            split: split.clone(),
            n_items: 20,
        };
        // All items: perfect oracle.
        let all: Vec<u32> = (0..20).collect();
        let r = evaluate_item_group(&oracle, &split, &all, &[20]);
        assert!((r.recall(20) - 1.0).abs() < 1e-12);
        // Empty group: nothing evaluable.
        let none = evaluate_item_group(&oracle, &split, &[], &[20]);
        assert_eq!(none.n_users, 0);
    }

    /// A scorer that panics when asked about a user with no held-out items
    /// — the harness must pre-filter those users away.
    struct EmptyTestTripwire {
        split: TrainTestSplit,
        n_items: usize,
    }

    impl Recommender for EmptyTestTripwire {
        fn name(&self) -> &str {
            "tripwire"
        }
        fn embeddings(&self) -> Option<(&Mat, &Mat)> {
            None
        }
        fn score_items(&self, user: usize) -> Vec<f32> {
            assert!(
                !self.split.test.items_of(user).is_empty(),
                "user {user} has no held-out items and must not be scored"
            );
            vec![0f32; self.n_items]
        }
    }

    #[test]
    fn users_without_test_items_never_reach_the_model() {
        let split = toy_split();
        let tripwire = EmptyTestTripwire {
            split: split.clone(),
            n_items: 20,
        };
        // Every user id, including ones the split holds nothing out for.
        let all_users: Vec<u32> = (0..10).collect();
        let res = evaluate_users(&tripwire, &split, &all_users, &[5, 20]);
        assert_eq!(res.n_users, split.test_users().len());
        // Same guarantee on the item-group path: an item group that leaves
        // some users without relevant held-out items must skip them too.
        let empty_group = evaluate_item_group(&tripwire, &split, &[], &[5]);
        assert_eq!(empty_group.n_users, 0);
    }

    #[test]
    fn evaluation_is_thread_count_invariant() {
        let split = toy_split();
        let oracle = Oracle {
            split: split.clone(),
            n_items: 20,
        };
        let run = |threads: usize| {
            let was = graphaug_par::thread_count();
            graphaug_par::set_thread_count(threads);
            let res = evaluate(&oracle, &split, &[5, 20]);
            graphaug_par::set_thread_count(was);
            res
        };
        let (r1, r3, r4) = (run(1), run(3), run(4));
        for (a, b) in r1.at.iter().zip(&r3.at).chain(r1.at.iter().zip(&r4.at)) {
            assert_eq!(a.recall.to_bits(), b.recall.to_bits());
            assert_eq!(a.ndcg.to_bits(), b.ndcg.to_bits());
        }
        assert_eq!(r1.n_users, r4.n_users);
    }

    #[test]
    fn recorder_tracks_best_and_convergence() {
        let mut rec = ConvergenceRecorder::new();
        for (e, v) in [(1, 0.1), (2, 0.5), (3, 0.8), (4, 0.79)] {
            rec.record(e, v);
        }
        assert_eq!(rec.best(), Some((3, 0.8)));
        assert_eq!(rec.epochs_to_fraction_of_best(0.6), Some(2));
        assert_eq!(rec.epochs_to_fraction_of_best(0.99), Some(3));
    }
}
