//! Property-based tests for the ranking metrics and oversmoothing probes.
//!
//! Runs on the in-repo property runner (`graphaug_rng::prop`) — seeded case
//! generation, shrink-by-halving, replayable failure seeds.

use graphaug_eval::{mad_exact, ndcg_at_k, recall_at_k, topk_indices, uniformity};
use graphaug_rng::prop::{check, Gen, DEFAULT_CASES};
use graphaug_rng::{prop_assert, prop_assert_eq, prop_assume};
use graphaug_tensor::Mat;

fn vec_u32(g: &mut Gen, max: u32, lo: usize, hi: usize) -> Vec<u32> {
    let n = g.len_in(lo, hi);
    g.vec_of(n, |g| g.random_range(0..max))
}

#[test]
fn topk_returns_descending_scores() {
    check("topk_returns_descending_scores", DEFAULT_CASES, |g| {
        let n = g.len_in(1, 60);
        let scores = g.vec_of(n, |g| g.random_range(-100f32..100.0));
        let k = g.random_range(1usize..20);
        let top = topk_indices(&scores, k);
        prop_assert_eq!(top.len(), k.min(scores.len()));
        for w in top.windows(2) {
            prop_assert!(scores[w[0] as usize] >= scores[w[1] as usize]);
        }
        // The last selected score is >= every unselected score.
        if let Some(&last) = top.last() {
            let selected: std::collections::HashSet<u32> = top.iter().copied().collect();
            for (i, &s) in scores.iter().enumerate() {
                if !selected.contains(&(i as u32)) {
                    prop_assert!(scores[last as usize] >= s);
                }
            }
        }
        Ok(())
    });
}

#[test]
fn topk_ties_break_toward_lower_index() {
    // Regression lock for the serving-parity tie-break contract: scores are
    // drawn from a tiny palette so almost every vector is duplicate-heavy,
    // and the bounded-heap result must equal a naive reference that sorts
    // by (score desc, index asc) — including which equal-scored candidate
    // survives the k cutoff.
    check("topk_ties_break_toward_lower_index", DEFAULT_CASES, |g| {
        let n = g.len_in(1, 80);
        let palette = [-1.5f32, 0.0, 0.25, 0.25, 3.0];
        let scores = g.vec_of(n, |g| palette[g.random_range(0..palette.len())]);
        let k = g.random_range(1usize..30);

        let mut reference: Vec<u32> = (0..n as u32).collect();
        reference.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("palette has no NaN")
                .then(a.cmp(&b))
        });
        reference.truncate(k.min(n));

        prop_assert_eq!(topk_indices(&scores, k), reference);
        Ok(())
    });
}

#[test]
fn recall_and_ndcg_are_bounded() {
    check("recall_and_ndcg_are_bounded", DEFAULT_CASES, |g| {
        let ranked_raw = vec_u32(g, 50, 1, 30);
        let relevant_raw = vec_u32(g, 50, 1, 10);
        let k = g.random_range(1usize..25);
        // A real top-K list never repeats an item.
        let mut seen = std::collections::HashSet::new();
        let ranked: Vec<u32> = ranked_raw.into_iter().filter(|v| seen.insert(*v)).collect();
        let mut relevant = relevant_raw;
        relevant.sort_unstable();
        relevant.dedup();
        let r = recall_at_k(&ranked, &relevant, k);
        let n = ndcg_at_k(&ranked, &relevant, k);
        prop_assert!((0.0..=1.0).contains(&r), "recall {}", r);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&n), "ndcg {}", n);
        Ok(())
    });
}

#[test]
fn metrics_are_monotone_in_k() {
    check("metrics_are_monotone_in_k", DEFAULT_CASES, |g| {
        let ranked_raw = vec_u32(g, 40, 5, 30);
        let relevant_raw = vec_u32(g, 40, 1, 8);
        // Deduplicate the ranking (a real top-K list has no repeats).
        let mut seen = std::collections::HashSet::new();
        let ranked: Vec<u32> = ranked_raw.into_iter().filter(|v| seen.insert(*v)).collect();
        let mut relevant = relevant_raw;
        relevant.sort_unstable();
        relevant.dedup();
        let mut last_r = 0.0;
        for k in 1..=ranked.len() {
            let r = recall_at_k(&ranked, &relevant, k);
            prop_assert!(r >= last_r - 1e-12, "recall must not decrease in k");
            last_r = r;
        }
        Ok(())
    });
}

#[test]
fn mad_is_bounded_and_scale_invariant() {
    check("mad_is_bounded_and_scale_invariant", DEFAULT_CASES, |g| {
        let data = g.vec_of(8 * 4, |g| g.random_range(0.1f32..3.0));
        let scale = g.random_range(0.5f32..4.0);
        let m = Mat::from_vec(8, 4, data);
        let mad1 = mad_exact(&m);
        prop_assert!((0.0..=2.0 + 1e-6).contains(&mad1));
        // Cosine distance is invariant to positive rescaling.
        let scaled = m.map(|x| x * scale);
        let mad2 = mad_exact(&scaled);
        prop_assert!((mad1 - mad2).abs() < 1e-4);
        Ok(())
    });
}

#[test]
fn uniformity_is_scale_invariant_after_normalization() {
    check(
        "uniformity_is_scale_invariant_after_normalization",
        DEFAULT_CASES,
        |g| {
            // uniformity() normalizes rows internally, so rescaling inputs must
            // not change it (identical pair sampling per seed).
            let data = g.vec_of(10 * 4, |g| g.random_range(-2f32..2.0));
            let scale = g.random_range(0.5f32..4.0);
            let m = Mat::from_vec(10, 4, data);
            // Skip degenerate all-tiny inputs where normalization is unstable.
            prop_assume!(m.as_slice().iter().any(|v| v.abs() > 0.1));
            let s = m.map(|x| x * scale);
            let u1 = uniformity(&m, 500, 7);
            let u2 = uniformity(&s, 500, 7);
            prop_assert!((u1 - u2).abs() < 1e-3, "{} vs {}", u1, u2);
            Ok(())
        },
    );
}
