//! The GraphAug model: GIB-regularized learnable augmentation + mixhop
//! contrastive encoding, trained jointly per Algorithm 1 / Eq. 16.

use std::sync::Arc;

use graphaug_rng::StdRng;

use graphaug_eval::Recommender;
use graphaug_graph::{InteractionGraph, TripletSampler};
use graphaug_tensor::init::{seeded_rng, xavier_uniform};
use graphaug_tensor::{
    Graph, Mat, NodeId, Optimizer, ParamId, ParamStore, ParamStoreState, RestoreError, SpPair,
};

use crate::augmentor::{edge_logits, sample_view, AugmentorNodes, AugmentorSettings, EdgeIndex};
use crate::config::{EncoderKind, GraphAugConfig};
use crate::gib::gib_kl;
use crate::mixhop::{
    encode_mixhop, encode_mixhop_ew, encode_vanilla, encode_vanilla_ew, mixing_row_shape,
};
use crate::nn::{bpr_loss, infonce_loss, weight_decay, BprBatch};

/// Per-step diagnostics reported by [`GraphAug::train_step`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// Total Eq. 16 loss.
    pub loss: f32,
    /// Main-graph BPR component.
    pub bpr: f32,
    /// GIB KL component (0 when disabled).
    pub kl: f32,
    /// Contrastive component (0 when disabled).
    pub cl: f32,
    /// Mean fraction of edges kept by the two sampled views.
    pub kept_fraction: f32,
    /// Global L2 norm over the finite gradient entries of every parameter.
    pub grad_norm: f32,
    /// Number of non-finite (NaN/±∞) gradient entries this step. When this
    /// is non-zero — or the loss itself is non-finite — the Adam update is
    /// withheld entirely instead of poisoning the parameters and moments.
    pub bad_grads: usize,
}

impl StepStats {
    /// True when the loss and every gradient entry were finite, i.e. the
    /// optimizer update for this step was actually applied.
    pub fn update_applied(&self) -> bool {
        self.loss.is_finite() && self.bad_grads == 0
    }
}

/// Supervisor knobs for a single optimization step
/// ([`GraphAug::train_step_with`]). The defaults reproduce the historical
/// [`GraphAug::train_step`] behavior (modulo the always-on finite guard).
#[derive(Clone, Copy, Debug)]
pub struct StepOptions {
    /// Clip the global gradient L2 norm to this value before the update
    /// (the `RecoveryPolicy::ClipAndContinue` path of the runtime).
    pub clip_norm: Option<f32>,
    /// Multiplier on the configured learning rate — the runtime's
    /// rollback-with-LR-backoff recovery shrinks this after repeated
    /// divergence.
    pub lr_scale: f32,
    /// Fault-injection hook: poison the first gradient entry with NaN
    /// *after* backward and *before* the guard, so recovery paths can be
    /// exercised deterministically in tests.
    pub inject_nan_grad: bool,
}

impl Default for StepOptions {
    fn default() -> Self {
        StepOptions {
            clip_norm: None,
            lr_scale: 1.0,
            inject_nan_grad: false,
        }
    }
}

/// Complete serializable training state of a [`GraphAug`] model: parameter
/// values, Adam moments and step counter, the model's own RNG stream, and
/// the step cursor driving the contrastive warm-up ramp. Together with a
/// [`graphaug_graph::SamplerState`] this is sufficient to resume training
/// with a bit-identical loss trajectory (see `graphaug-runtime`).
#[derive(Clone, Debug)]
pub struct ModelState {
    /// Parameter values plus optimizer state.
    pub params: ParamStoreState,
    /// Raw xoshiro256++ state of the model's augmentation/CL stream.
    pub rng: [u64; 4],
    /// Number of optimization steps taken (CL warm-up cursor).
    pub steps_taken: u64,
    /// Whether a full `fit` has completed.
    pub trained: bool,
}

/// The GraphAug recommender (paper Sec. III). Construct with
/// [`GraphAug::new`], train with [`GraphAug::fit`], then use the
/// [`Recommender`] interface for scoring.
pub struct GraphAug {
    cfg: GraphAugConfig,
    train_graph: InteractionGraph,
    adj: SpPair,
    edge_index: EdgeIndex,
    store: ParamStore,
    p_h0: ParamId,
    p_enc: Vec<ParamId>,
    p_mlp: [ParamId; 4],
    rng: StdRng,
    user_emb: Mat,
    item_emb: Mat,
    trained: bool,
    steps_taken: usize,
}

impl GraphAug {
    /// Initializes a model for the given training graph (parameters are
    /// Xavier-initialized from `cfg.seed`).
    pub fn new(cfg: GraphAugConfig, train: &InteractionGraph) -> Self {
        let mut model = GraphAug::construct(cfg, train);
        model.refresh_embeddings();
        model
    }

    /// Builds a model for **inference only**: the parameter store is
    /// constructed, `state` is restored into it, and the encoder forward
    /// runs exactly once to materialize the final user/item embedding
    /// tables. Unlike `GraphAug::new` followed by
    /// [`GraphAug::restore_training_state`], the throwaway
    /// Xavier-initialized parameters are never encoded, so a checkpoint
    /// load costs one forward pass instead of two — this is the path the
    /// serving engine rebuilds its tables through on every hot reload.
    pub fn for_inference(
        cfg: GraphAugConfig,
        train: &InteractionGraph,
        state: &ModelState,
    ) -> Result<Self, RestoreError> {
        let mut model = GraphAug::construct(cfg, train);
        // `restore_training_state` refreshes the embeddings on success —
        // that refresh is the single forward pass of this constructor.
        model.restore_training_state(state)?;
        Ok(model)
    }

    /// Shared constructor: registers every parameter (in the fixed order
    /// the snapshot codec relies on) but does *not* run the encoder — the
    /// cached embedding tables start zeroed until the caller refreshes or
    /// restores.
    fn construct(cfg: GraphAugConfig, train: &InteractionGraph) -> Self {
        let d = cfg.embed_dim;
        let n = train.n_nodes();
        let mut rng = seeded_rng(cfg.seed);
        let mut store = ParamStore::new();
        let p_h0 = store.register(xavier_uniform(n, d, &mut rng));
        // One mixing row per layer (the rows of the paper's mixing matrix
        // M), initialized to uniform hop averaging so training starts from
        // LightGCN-like propagation and refines the mixture. The vanilla
        // ("w/o Mixhop") ablation has no mixing parameters.
        let p_enc: Vec<ParamId> = if cfg.encoder == EncoderKind::Mixhop {
            let (r, c) = mixing_row_shape(cfg.hops.len());
            // Zero logits → uniform softmax mixture at initialization.
            (0..cfg.n_layers)
                .map(|_| store.register(Mat::zeros(r, c)))
                .collect()
        } else {
            Vec::new()
        };
        let h = (d / 2).max(4);
        let p_mlp = [
            store.register(xavier_uniform(2 * d, h, &mut rng)),
            store.register(Mat::zeros(1, h)),
            store.register(xavier_uniform(h, 1, &mut rng)),
            store.register(Mat::zeros(1, 1)),
        ];
        let adj = SpPair::symmetric(train.normalized_adjacency_plain());
        let edge_index = EdgeIndex::build(train);
        GraphAug {
            cfg,
            train_graph: train.clone(),
            adj,
            edge_index,
            store,
            p_h0,
            p_enc,
            p_mlp,
            rng,
            user_emb: Mat::zeros(train.n_users(), d),
            item_emb: Mat::zeros(train.n_items(), d),
            trained: false,
            steps_taken: 0,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &GraphAugConfig {
        &self.cfg
    }

    /// Total scalar parameter count (cost reporting, Table VI).
    pub fn n_parameters(&self) -> usize {
        self.store.scalar_count()
    }

    /// True once [`GraphAug::fit`]/[`GraphAug::fit_with`] has completed.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// The learned per-layer hop-mixing rows (rows of the mixing matrix
    /// `M`); empty for the vanilla encoder.
    pub fn mixing_rows(&self) -> Vec<Vec<f32>> {
        self.p_enc
            .iter()
            .map(|&p| self.store.value(p).as_slice().to_vec())
            .collect()
    }

    fn augmentor_settings(&self) -> AugmentorSettings {
        AugmentorSettings {
            gumbel_temperature: self.cfg.gumbel_temperature,
            edge_threshold: self.cfg.edge_threshold,
            feature_keep_prob: self.cfg.feature_keep_prob,
            feature_noise_std: self.cfg.feature_noise_std,
            leaky_slope: self.cfg.leaky_slope,
        }
    }

    fn param_nodes(
        &self,
        g: &mut Graph,
    ) -> (NodeId, Vec<NodeId>, AugmentorNodes, Vec<(ParamId, NodeId)>) {
        let h0 = self.store.node(g, self.p_h0);
        let enc: Vec<NodeId> = self.p_enc.iter().map(|&p| self.store.node(g, p)).collect();
        let mlp = AugmentorNodes {
            w1: self.store.node(g, self.p_mlp[0]),
            b1: self.store.node(g, self.p_mlp[1]),
            w2: self.store.node(g, self.p_mlp[2]),
            b2: self.store.node(g, self.p_mlp[3]),
        };
        let mut pairs = vec![(self.p_h0, h0)];
        pairs.extend(self.p_enc.iter().copied().zip(enc.iter().copied()));
        pairs.extend([
            (self.p_mlp[0], mlp.w1),
            (self.p_mlp[1], mlp.b1),
            (self.p_mlp[2], mlp.w2),
            (self.p_mlp[3], mlp.b2),
        ]);
        (h0, enc, mlp, pairs)
    }

    fn encode_main(&self, g: &mut Graph, h0: NodeId, enc: &[NodeId]) -> NodeId {
        match self.cfg.encoder {
            EncoderKind::Mixhop => encode_mixhop(g, &self.adj, h0, enc, &self.cfg.hops),
            EncoderKind::Vanilla => encode_vanilla(g, &self.adj, h0, self.cfg.n_layers),
        }
    }

    fn encode_view(&self, g: &mut Graph, weights: NodeId, h0: NodeId, enc: &[NodeId]) -> NodeId {
        let pattern = &self.edge_index.pattern;
        match self.cfg.encoder {
            EncoderKind::Mixhop => encode_mixhop_ew(g, pattern, weights, h0, enc, &self.cfg.hops),
            EncoderKind::Vanilla => encode_vanilla_ew(g, pattern, weights, h0, self.cfg.n_layers),
        }
    }

    fn sample_items(&mut self, n: usize) -> Vec<u32> {
        let n_items = self.train_graph.n_items() as u32;
        let off = self.train_graph.n_users() as u32;
        let mut pool: Vec<u32> = (0..n_items).collect();
        let n = n.min(pool.len());
        for i in 0..n {
            let j = self.rng.random_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(n);
        pool.iter_mut().for_each(|v| *v += off);
        pool
    }

    /// Runs one optimization step (one tape build/backward/Adam update)
    /// with default [`StepOptions`].
    pub fn train_step(&mut self, sampler: &mut TripletSampler<'_>) -> StepStats {
        self.train_step_with(sampler, &StepOptions::default())
    }

    /// Runs one optimization step under supervisor control. After backward,
    /// gradients are materialized and checked: any non-finite loss or
    /// gradient entry withholds the Adam update entirely (the parameters,
    /// moments, and step counter are untouched) and is reported through
    /// [`StepStats::bad_grads`] / [`StepStats::grad_norm`] so a recovery
    /// policy can decide what to do next. Finite gradients are optionally
    /// clipped to `opts.clip_norm` and applied at
    /// `learning_rate × opts.lr_scale`.
    pub fn train_step_with(
        &mut self,
        sampler: &mut TripletSampler<'_>,
        opts: &StepOptions,
    ) -> StepStats {
        let mut g = Graph::new();
        let (h0, enc, mlp, pairs) = self.param_nodes(&mut g);
        let h_main = self.encode_main(&mut g, h0, &enc);

        let (users, pos, neg) = sampler.sample_batch(self.cfg.bpr_batch);
        let batch = BprBatch::from_raw(users, pos, neg, self.train_graph.n_users());
        let bpr_main = bpr_loss(&mut g, h_main, &batch);
        let mut loss = bpr_main;
        let mut stats = StepStats {
            bpr: g.value(bpr_main).item(),
            ..Default::default()
        };

        if self.cfg.use_cl || self.cfg.use_gib {
            let settings = self.augmentor_settings();
            let logits = edge_logits(
                &mut g,
                h_main,
                &self.edge_index,
                &mlp,
                &settings,
                &mut self.rng,
            );
            let v1 = sample_view(&mut g, logits, &self.edge_index, &settings, &mut self.rng);
            let v2 = sample_view(&mut g, logits, &self.edge_index, &settings, &mut self.rng);
            stats.kept_fraction = 0.5 * (v1.kept_fraction + v2.kept_fraction);
            let z1 = self.encode_view(&mut g, v1.weights, h0, &enc);
            let z2 = self.encode_view(&mut g, v2.weights, h0, &enc);

            if self.cfg.use_gib {
                // −I(Z′;Y) lower bound: recommendation likelihood on both
                // view embeddings (Eq. 7) …
                let b1 = bpr_loss(&mut g, z1, &batch);
                let b2 = bpr_loss(&mut g, z2, &batch);
                let vb_sum = g.add(b1, b2);
                let vb = g.scale(vb_sum, 0.5 * self.cfg.view_bpr_weight);
                loss = g.add(loss, vb);
                // … plus the compression KL (Eq. 9) weighted by β₁.
                let kl = gib_kl(&mut g, h_main, z1, z2);
                stats.kl = g.value(kl).item();
                let klw = g.scale(kl, self.cfg.beta_gib);
                loss = g.add(loss, klw);
            }
            if self.cfg.use_cl {
                let user_idx = Arc::new(
                    TripletSampler::new(&self.train_graph, self.rng.random())
                        .sample_active_users(self.cfg.cl_batch),
                );
                let item_idx = Arc::new(self.sample_items(self.cfg.cl_batch));
                let cu = infonce_loss(&mut g, z1, z2, &user_idx, self.cfg.temperature);
                let ci = infonce_loss(&mut g, z1, z2, &item_idx, self.cfg.temperature);
                let c = g.add(cu, ci);
                stats.cl = g.value(c).item();
                // Linear warm-up of the contrastive weight (see config).
                let ramp = if self.cfg.cl_warmup_steps == 0 {
                    1.0
                } else {
                    ((self.steps_taken + 1) as f32 / self.cfg.cl_warmup_steps as f32).min(1.0)
                };
                let cw = g.scale(c, self.cfg.beta_cl * ramp);
                loss = g.add(loss, cw);
            }
        }

        // β₃ ‖Θ‖²_F.
        let param_nodes: Vec<NodeId> = pairs.iter().map(|&(_, n)| n).collect();
        let wd = weight_decay(&mut g, &param_nodes);
        let wdw = g.scale(wd, self.cfg.beta_reg);
        loss = g.add(loss, wdw);

        stats.loss = g.value(loss).item();
        g.backward(loss);

        let mut grads: Vec<(ParamId, Mat)> = Vec::with_capacity(pairs.len());
        for &(pid, nid) in &pairs {
            if let Some(gm) = g.grad(nid) {
                grads.push((pid, gm.clone()));
            }
        }
        if opts.inject_nan_grad {
            if let Some((_, gm)) = grads.first_mut() {
                gm.as_mut_slice()[0] = f32::NAN;
            }
        }
        // Serial fixed-order reduction: the norm is bit-identical for any
        // thread count, like everything else in the step.
        let mut sq_sum = 0f64;
        for (_, gm) in &grads {
            for &x in gm.as_slice() {
                if x.is_finite() {
                    sq_sum += (x as f64) * (x as f64);
                } else {
                    stats.bad_grads += 1;
                }
            }
        }
        stats.grad_norm = sq_sum.sqrt() as f32;

        self.steps_taken += 1;
        if !stats.update_applied() {
            return stats;
        }
        let mut scale = 1.0f32;
        if let Some(max) = opts.clip_norm {
            if stats.grad_norm > max && stats.grad_norm > 0.0 {
                scale = max / stats.grad_norm;
            }
        }
        self.store.apply_step(
            &grads,
            Optimizer::adam(self.cfg.learning_rate * opts.lr_scale),
            scale,
        );
        stats
    }

    /// Captures the model's complete training state for checkpointing.
    pub fn training_state(&self) -> ModelState {
        ModelState {
            params: self.store.snapshot(),
            rng: self.rng.state(),
            steps_taken: self.steps_taken as u64,
            trained: self.trained,
        }
    }

    /// Restores a state captured by [`GraphAug::training_state`] into a
    /// model built with the *same configuration and training graph* — shape
    /// mismatches are rejected and leave the model untouched. On success the
    /// cached embeddings are refreshed, and subsequent training continues
    /// the snapshotted run bit-identically.
    pub fn restore_training_state(&mut self, state: &ModelState) -> Result<(), RestoreError> {
        self.store.restore(&state.params)?;
        self.rng = StdRng::from_state(state.rng);
        self.steps_taken = state.steps_taken as usize;
        self.trained = state.trained;
        self.refresh_embeddings();
        Ok(())
    }

    /// Marks the model as fully trained — called by external training
    /// drivers (e.g. `graphaug-runtime`) that run the epoch loop themselves
    /// through [`GraphAug::train_step_with`] instead of [`GraphAug::fit`].
    pub fn mark_trained(&mut self) {
        self.trained = true;
    }

    /// The training graph this model was constructed over.
    pub fn train_graph(&self) -> &InteractionGraph {
        &self.train_graph
    }

    /// Trains for `cfg.epochs` epochs.
    pub fn fit(&mut self) {
        self.fit_with(|_, _, _| {});
    }

    /// Trains with a per-epoch callback receiving
    /// `(epoch, user_embeddings, item_embeddings)` — used for convergence
    /// curves (Fig. 4).
    pub fn fit_with(&mut self, mut on_epoch: impl FnMut(usize, &Mat, &Mat)) {
        let graph = self.train_graph.clone();
        let mut sampler = TripletSampler::new(&graph, self.cfg.seed.wrapping_add(101));
        for epoch in 0..self.cfg.epochs {
            for _ in 0..self.cfg.steps_per_epoch {
                self.train_step(&mut sampler);
            }
            self.refresh_embeddings();
            on_epoch(epoch, &self.user_emb, &self.item_emb);
        }
        self.trained = true;
    }

    /// Recomputes and caches the final user/item embeddings from the clean
    /// graph (the paper's forecasting phase uses `Ĥ = GE(G)`).
    pub fn refresh_embeddings(&mut self) {
        let mut g = Graph::new();
        let h0 = self.store.node(&mut g, self.p_h0);
        let enc: Vec<NodeId> = self
            .p_enc
            .iter()
            .map(|&p| self.store.node(&mut g, p))
            .collect();
        let h = self.encode_main(&mut g, h0, &enc);
        let emb = g.value(h);
        let (nu, d) = (self.train_graph.n_users(), self.cfg.embed_dim);
        let mut user_emb = Mat::zeros(nu, d);
        let mut item_emb = Mat::zeros(self.train_graph.n_items(), d);
        for u in 0..nu {
            user_emb.row_mut(u).copy_from_slice(emb.row(u));
        }
        for v in 0..self.train_graph.n_items() {
            item_emb.row_mut(v).copy_from_slice(emb.row(nu + v));
        }
        self.user_emb = user_emb;
        self.item_emb = item_emb;
    }

    /// Deterministic keep-probabilities `p((u,v)|H̄)` for every training
    /// edge under the trained augmentor (feature disturbance disabled) —
    /// the quantity visualized in the paper's case study (Fig. 6).
    pub fn edge_keep_probabilities(&mut self) -> Vec<f32> {
        let mut g = Graph::new();
        let (h0, enc, mlp, _) = self.param_nodes(&mut g);
        let h_main = self.encode_main(&mut g, h0, &enc);
        let settings = AugmentorSettings {
            feature_keep_prob: 1.0,
            feature_noise_std: 0.0,
            ..self.augmentor_settings()
        };
        let logits = edge_logits(
            &mut g,
            h_main,
            &self.edge_index,
            &mlp,
            &settings,
            &mut self.rng,
        );
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }

    /// The training edges in the order matched by
    /// [`GraphAug::edge_keep_probabilities`].
    pub fn train_edges(&self) -> &[(u32, u32)] {
        self.train_graph.edges()
    }

    /// Name reflecting the active ablation variant.
    pub fn variant_name(&self) -> &'static str {
        match (self.cfg.encoder, self.cfg.use_gib, self.cfg.use_cl) {
            (EncoderKind::Mixhop, true, true) => "GraphAug",
            (EncoderKind::Vanilla, true, true) => "GraphAug w/o Mixhop",
            (EncoderKind::Mixhop, false, true) => "GraphAug w/o GIB",
            (EncoderKind::Mixhop, true, false) => "GraphAug w/o CL",
            (EncoderKind::Vanilla, false, true) => "GraphAug w/o Mixhop+GIB",
            (EncoderKind::Vanilla, true, false) => "GraphAug w/o Mixhop+CL",
            (EncoderKind::Mixhop, false, false) => "GraphAug base",
            (EncoderKind::Vanilla, false, false) => "GraphAug base (vanilla)",
        }
    }
}

impl Recommender for GraphAug {
    fn name(&self) -> &str {
        self.variant_name()
    }

    fn embeddings(&self) -> Option<(&Mat, &Mat)> {
        Some((&self.user_emb, &self.item_emb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::evaluate;
    use graphaug_graph::TrainTestSplit;

    fn toy_train() -> InteractionGraph {
        generate(&SyntheticConfig::new(60, 50, 700).clusters(4).seed(11))
    }

    #[test]
    fn construction_initializes_embeddings() {
        let train = toy_train();
        let m = GraphAug::new(GraphAugConfig::fast_test(), &train);
        let (u, i) = m.embeddings().unwrap();
        assert_eq!(u.shape(), (60, 16));
        assert_eq!(i.shape(), (50, 16));
        assert!(u.all_finite() && i.all_finite());
    }

    #[test]
    fn train_step_reduces_loss_over_time() {
        let train = toy_train();
        let mut m = GraphAug::new(GraphAugConfig::fast_test(), &train);
        let graph = m.train_graph.clone();
        let mut sampler = TripletSampler::new(&graph, 5);
        let first = m.train_step(&mut sampler);
        let mut last = first;
        for _ in 0..30 {
            last = m.train_step(&mut sampler);
        }
        assert!(last.loss.is_finite());
        assert!(
            last.bpr < first.bpr,
            "BPR should improve: first {} last {}",
            first.bpr,
            last.bpr
        );
    }

    #[test]
    fn training_beats_untrained_ranking() {
        let full = generate(&SyntheticConfig::new(80, 60, 1200).clusters(4).seed(3));
        let split = TrainTestSplit::per_user(&full, 0.2, 9);
        let untrained = GraphAug::new(GraphAugConfig::fast_test(), &split.train);
        let before = evaluate(&untrained, &split, &[20]);
        let mut m = GraphAug::new(GraphAugConfig::fast_test().epochs(12), &split.train);
        m.fit();
        let after = evaluate(&m, &split, &[20]);
        assert!(
            after.recall(20) > before.recall(20),
            "training should help: before {} after {}",
            before.recall(20),
            after.recall(20)
        );
    }

    #[test]
    fn ablation_variants_have_distinct_names() {
        let train = toy_train();
        let names: Vec<&str> = [
            GraphAugConfig::fast_test(),
            GraphAugConfig::fast_test().encoder(EncoderKind::Vanilla),
            GraphAugConfig::fast_test().gib(false),
            GraphAugConfig::fast_test().cl(false),
        ]
        .into_iter()
        .map(|c| GraphAug::new(c, &train).variant_name())
        .collect();
        assert_eq!(names.len(), 4);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn ablations_train_without_views_when_disabled() {
        let train = toy_train();
        let mut m = GraphAug::new(
            GraphAugConfig::fast_test().gib(false).cl(false).epochs(2),
            &train,
        );
        let graph = m.train_graph.clone();
        let mut sampler = TripletSampler::new(&graph, 5);
        let stats = m.train_step(&mut sampler);
        assert_eq!(stats.kl, 0.0);
        assert_eq!(stats.cl, 0.0);
        assert_eq!(stats.kept_fraction, 0.0);
        assert!(stats.loss.is_finite());
    }

    #[test]
    fn train_step_reports_finite_grad_norm() {
        let train = toy_train();
        let mut m = GraphAug::new(GraphAugConfig::fast_test(), &train);
        let graph = m.train_graph.clone();
        let mut sampler = TripletSampler::new(&graph, 5);
        let stats = m.train_step(&mut sampler);
        assert_eq!(stats.bad_grads, 0);
        assert!(stats.update_applied());
        assert!(stats.grad_norm.is_finite() && stats.grad_norm > 0.0);
    }

    #[test]
    fn nan_injection_withholds_the_update_and_training_recovers() {
        let train = toy_train();
        let mut m = GraphAug::new(GraphAugConfig::fast_test(), &train);
        let graph = m.train_graph.clone();
        let mut sampler = TripletSampler::new(&graph, 5);
        m.train_step(&mut sampler);
        let before = m.training_state();
        let poisoned = m.train_step_with(
            &mut sampler,
            &StepOptions {
                inject_nan_grad: true,
                ..Default::default()
            },
        );
        assert!(poisoned.bad_grads > 0);
        assert!(!poisoned.update_applied());
        // Parameters and Adam state must be exactly as before the bad step.
        let after = m.training_state();
        assert_eq!(after.params.t, before.params.t, "Adam step not advanced");
        for (a, b) in after.params.slots.iter().zip(&before.params.slots) {
            assert_eq!(a.value, b.value, "poisoned update must not be applied");
            assert_eq!(a.m, b.m);
            assert_eq!(a.v, b.v);
        }
        // The next clean step applies normally.
        let clean = m.train_step(&mut sampler);
        assert!(clean.update_applied());
        assert!(m.embeddings().unwrap().0.all_finite());
    }

    #[test]
    fn clip_norm_shrinks_the_applied_update() {
        let train = toy_train();
        let mut m = GraphAug::new(GraphAugConfig::fast_test(), &train);
        let graph = m.train_graph.clone();
        let mut sampler = TripletSampler::new(&graph, 5);
        let start = m.training_state();
        let unclipped = m.train_step(&mut sampler);
        assert!(unclipped.grad_norm > 1e-3, "need a non-trivial gradient");
        let after_unclipped = m.training_state();
        // Replay the identical step with an aggressive clip.
        m.restore_training_state(&start).unwrap();
        let mut sampler = TripletSampler::new(&graph, 5);
        let clipped = m.train_step_with(
            &mut sampler,
            &StepOptions {
                clip_norm: Some(unclipped.grad_norm / 100.0),
                ..Default::default()
            },
        );
        assert_eq!(clipped.grad_norm.to_bits(), unclipped.grad_norm.to_bits());
        let after_clipped = m.training_state();
        // Both applied an update, but they differ (the clip rescaled it).
        assert_ne!(
            after_clipped.params.slots[0].value.as_slice(),
            after_unclipped.params.slots[0].value.as_slice()
        );
        assert_ne!(
            after_clipped.params.slots[0].value.as_slice(),
            start.params.slots[0].value.as_slice()
        );
    }

    #[test]
    fn training_state_round_trip_resumes_bit_identically() {
        let train = toy_train();
        let cfg = GraphAugConfig::fast_test();
        let mut m = GraphAug::new(cfg.clone(), &train);
        let graph = m.train_graph.clone();
        let mut sampler = TripletSampler::new(&graph, 5);
        for _ in 0..4 {
            m.train_step(&mut sampler);
        }
        let model_state = m.training_state();
        let sampler_state = sampler.state();
        let expect: Vec<u32> = (0..5)
            .map(|_| m.train_step(&mut sampler).loss.to_bits())
            .collect();

        let mut resumed = GraphAug::new(cfg, &train);
        resumed.restore_training_state(&model_state).unwrap();
        let mut resumed_sampler = TripletSampler::from_state(&graph, sampler_state);
        let got: Vec<u32> = (0..5)
            .map(|_| resumed.train_step_with(&mut resumed_sampler, &StepOptions::default()))
            .map(|s| s.loss.to_bits())
            .collect();
        assert_eq!(expect, got, "resumed loss trajectory must be bit-identical");
        // `embeddings()` serves a cache; recompute both from current params.
        m.refresh_embeddings();
        resumed.refresh_embeddings();
        let (u_a, i_a) = m.embeddings().unwrap();
        let (u_b, i_b) = resumed.embeddings().unwrap();
        assert_eq!(u_a, u_b);
        assert_eq!(i_a, i_b);
    }

    #[test]
    fn for_inference_matches_the_training_model_bit_exactly() {
        let train = toy_train();
        let cfg = GraphAugConfig::fast_test();
        let mut m = GraphAug::new(cfg.clone(), &train);
        let graph = m.train_graph.clone();
        let mut sampler = TripletSampler::new(&graph, 5);
        for _ in 0..6 {
            m.train_step(&mut sampler);
        }
        m.refresh_embeddings();
        let served = GraphAug::for_inference(cfg, &train, &m.training_state()).unwrap();
        let (u_a, i_a) = m.embeddings().unwrap();
        let (u_b, i_b) = served.embeddings().unwrap();
        assert_eq!(u_a, u_b, "inference-only forward must match training");
        assert_eq!(i_a, i_b);
    }

    #[test]
    fn for_inference_rejects_a_differently_shaped_state() {
        let train = toy_train();
        let m8 = GraphAug::new(GraphAugConfig::fast_test().embed_dim(8), &train);
        let err =
            GraphAug::for_inference(GraphAugConfig::fast_test(), &train, &m8.training_state());
        assert!(err.is_err());
    }

    #[test]
    fn restore_rejects_a_differently_shaped_model() {
        let train = toy_train();
        let m8 = GraphAug::new(GraphAugConfig::fast_test().embed_dim(8), &train);
        let mut m16 = GraphAug::new(GraphAugConfig::fast_test(), &train);
        assert!(m16.restore_training_state(&m8.training_state()).is_err());
    }

    #[test]
    fn edge_probabilities_cover_all_train_edges() {
        let train = toy_train();
        let mut m = GraphAug::new(GraphAugConfig::fast_test().epochs(2), &train);
        m.fit();
        let probs = m.edge_keep_probabilities();
        assert_eq!(probs.len(), m.train_edges().len());
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn fit_with_invokes_callback_every_epoch() {
        let train = toy_train();
        let mut m = GraphAug::new(GraphAugConfig::fast_test().epochs(3), &train);
        let mut seen = Vec::new();
        m.fit_with(|e, u, i| {
            assert!(u.all_finite() && i.all_finite());
            seen.push(e);
        });
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
