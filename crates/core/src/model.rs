//! The GraphAug model: GIB-regularized learnable augmentation + mixhop
//! contrastive encoding, trained jointly per Algorithm 1 / Eq. 16.

use std::sync::Arc;

use graphaug_rng::StdRng;

use graphaug_eval::Recommender;
use graphaug_graph::{InteractionGraph, TripletSampler};
use graphaug_tensor::init::{seeded_rng, xavier_uniform};
use graphaug_tensor::{Graph, Mat, NodeId, Optimizer, ParamId, ParamStore, SpPair};

use crate::augmentor::{edge_logits, sample_view, AugmentorNodes, AugmentorSettings, EdgeIndex};
use crate::config::{EncoderKind, GraphAugConfig};
use crate::gib::gib_kl;
use crate::mixhop::{
    encode_mixhop, encode_mixhop_ew, encode_vanilla, encode_vanilla_ew, mixing_row_shape,
};
use crate::nn::{bpr_loss, infonce_loss, weight_decay, BprBatch};

/// Per-step diagnostics reported by [`GraphAug::train_step`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// Total Eq. 16 loss.
    pub loss: f32,
    /// Main-graph BPR component.
    pub bpr: f32,
    /// GIB KL component (0 when disabled).
    pub kl: f32,
    /// Contrastive component (0 when disabled).
    pub cl: f32,
    /// Mean fraction of edges kept by the two sampled views.
    pub kept_fraction: f32,
}

/// The GraphAug recommender (paper Sec. III). Construct with
/// [`GraphAug::new`], train with [`GraphAug::fit`], then use the
/// [`Recommender`] interface for scoring.
pub struct GraphAug {
    cfg: GraphAugConfig,
    train_graph: InteractionGraph,
    adj: SpPair,
    edge_index: EdgeIndex,
    store: ParamStore,
    p_h0: ParamId,
    p_enc: Vec<ParamId>,
    p_mlp: [ParamId; 4],
    rng: StdRng,
    user_emb: Mat,
    item_emb: Mat,
    trained: bool,
    steps_taken: usize,
}

impl GraphAug {
    /// Initializes a model for the given training graph (parameters are
    /// Xavier-initialized from `cfg.seed`).
    pub fn new(cfg: GraphAugConfig, train: &InteractionGraph) -> Self {
        let d = cfg.embed_dim;
        let n = train.n_nodes();
        let mut rng = seeded_rng(cfg.seed);
        let mut store = ParamStore::new();
        let p_h0 = store.register(xavier_uniform(n, d, &mut rng));
        // One mixing row per layer (the rows of the paper's mixing matrix
        // M), initialized to uniform hop averaging so training starts from
        // LightGCN-like propagation and refines the mixture. The vanilla
        // ("w/o Mixhop") ablation has no mixing parameters.
        let p_enc: Vec<ParamId> = if cfg.encoder == EncoderKind::Mixhop {
            let (r, c) = mixing_row_shape(cfg.hops.len());
            // Zero logits → uniform softmax mixture at initialization.
            (0..cfg.n_layers)
                .map(|_| store.register(Mat::zeros(r, c)))
                .collect()
        } else {
            Vec::new()
        };
        let h = (d / 2).max(4);
        let p_mlp = [
            store.register(xavier_uniform(2 * d, h, &mut rng)),
            store.register(Mat::zeros(1, h)),
            store.register(xavier_uniform(h, 1, &mut rng)),
            store.register(Mat::zeros(1, 1)),
        ];
        let adj = SpPair::symmetric(train.normalized_adjacency_plain());
        let edge_index = EdgeIndex::build(train);
        let mut model = GraphAug {
            cfg,
            train_graph: train.clone(),
            adj,
            edge_index,
            store,
            p_h0,
            p_enc,
            p_mlp,
            rng,
            user_emb: Mat::zeros(train.n_users(), d),
            item_emb: Mat::zeros(train.n_items(), d),
            trained: false,
            steps_taken: 0,
        };
        model.refresh_embeddings();
        model
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &GraphAugConfig {
        &self.cfg
    }

    /// Total scalar parameter count (cost reporting, Table VI).
    pub fn n_parameters(&self) -> usize {
        self.store.scalar_count()
    }

    /// True once [`GraphAug::fit`]/[`GraphAug::fit_with`] has completed.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// The learned per-layer hop-mixing rows (rows of the mixing matrix
    /// `M`); empty for the vanilla encoder.
    pub fn mixing_rows(&self) -> Vec<Vec<f32>> {
        self.p_enc
            .iter()
            .map(|&p| self.store.value(p).as_slice().to_vec())
            .collect()
    }

    fn augmentor_settings(&self) -> AugmentorSettings {
        AugmentorSettings {
            gumbel_temperature: self.cfg.gumbel_temperature,
            edge_threshold: self.cfg.edge_threshold,
            feature_keep_prob: self.cfg.feature_keep_prob,
            feature_noise_std: self.cfg.feature_noise_std,
            leaky_slope: self.cfg.leaky_slope,
        }
    }

    fn param_nodes(
        &self,
        g: &mut Graph,
    ) -> (NodeId, Vec<NodeId>, AugmentorNodes, Vec<(ParamId, NodeId)>) {
        let h0 = self.store.node(g, self.p_h0);
        let enc: Vec<NodeId> = self.p_enc.iter().map(|&p| self.store.node(g, p)).collect();
        let mlp = AugmentorNodes {
            w1: self.store.node(g, self.p_mlp[0]),
            b1: self.store.node(g, self.p_mlp[1]),
            w2: self.store.node(g, self.p_mlp[2]),
            b2: self.store.node(g, self.p_mlp[3]),
        };
        let mut pairs = vec![(self.p_h0, h0)];
        pairs.extend(self.p_enc.iter().copied().zip(enc.iter().copied()));
        pairs.extend([
            (self.p_mlp[0], mlp.w1),
            (self.p_mlp[1], mlp.b1),
            (self.p_mlp[2], mlp.w2),
            (self.p_mlp[3], mlp.b2),
        ]);
        (h0, enc, mlp, pairs)
    }

    fn encode_main(&self, g: &mut Graph, h0: NodeId, enc: &[NodeId]) -> NodeId {
        match self.cfg.encoder {
            EncoderKind::Mixhop => encode_mixhop(g, &self.adj, h0, enc, &self.cfg.hops),
            EncoderKind::Vanilla => encode_vanilla(g, &self.adj, h0, self.cfg.n_layers),
        }
    }

    fn encode_view(&self, g: &mut Graph, weights: NodeId, h0: NodeId, enc: &[NodeId]) -> NodeId {
        let pattern = &self.edge_index.pattern;
        match self.cfg.encoder {
            EncoderKind::Mixhop => encode_mixhop_ew(g, pattern, weights, h0, enc, &self.cfg.hops),
            EncoderKind::Vanilla => encode_vanilla_ew(g, pattern, weights, h0, self.cfg.n_layers),
        }
    }

    fn sample_items(&mut self, n: usize) -> Vec<u32> {
        let n_items = self.train_graph.n_items() as u32;
        let off = self.train_graph.n_users() as u32;
        let mut pool: Vec<u32> = (0..n_items).collect();
        let n = n.min(pool.len());
        for i in 0..n {
            let j = self.rng.random_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(n);
        pool.iter_mut().for_each(|v| *v += off);
        pool
    }

    /// Runs one optimization step (one tape build/backward/Adam update).
    pub fn train_step(&mut self, sampler: &mut TripletSampler<'_>) -> StepStats {
        let mut g = Graph::new();
        let (h0, enc, mlp, pairs) = self.param_nodes(&mut g);
        let h_main = self.encode_main(&mut g, h0, &enc);

        let (users, pos, neg) = sampler.sample_batch(self.cfg.bpr_batch);
        let batch = BprBatch::from_raw(users, pos, neg, self.train_graph.n_users());
        let bpr_main = bpr_loss(&mut g, h_main, &batch);
        let mut loss = bpr_main;
        let mut stats = StepStats {
            bpr: g.value(bpr_main).item(),
            ..Default::default()
        };

        if self.cfg.use_cl || self.cfg.use_gib {
            let settings = self.augmentor_settings();
            let logits = edge_logits(
                &mut g,
                h_main,
                &self.edge_index,
                &mlp,
                &settings,
                &mut self.rng,
            );
            let v1 = sample_view(&mut g, logits, &self.edge_index, &settings, &mut self.rng);
            let v2 = sample_view(&mut g, logits, &self.edge_index, &settings, &mut self.rng);
            stats.kept_fraction = 0.5 * (v1.kept_fraction + v2.kept_fraction);
            let z1 = self.encode_view(&mut g, v1.weights, h0, &enc);
            let z2 = self.encode_view(&mut g, v2.weights, h0, &enc);

            if self.cfg.use_gib {
                // −I(Z′;Y) lower bound: recommendation likelihood on both
                // view embeddings (Eq. 7) …
                let b1 = bpr_loss(&mut g, z1, &batch);
                let b2 = bpr_loss(&mut g, z2, &batch);
                let vb_sum = g.add(b1, b2);
                let vb = g.scale(vb_sum, 0.5 * self.cfg.view_bpr_weight);
                loss = g.add(loss, vb);
                // … plus the compression KL (Eq. 9) weighted by β₁.
                let kl = gib_kl(&mut g, h_main, z1, z2);
                stats.kl = g.value(kl).item();
                let klw = g.scale(kl, self.cfg.beta_gib);
                loss = g.add(loss, klw);
            }
            if self.cfg.use_cl {
                let user_idx = Arc::new(
                    TripletSampler::new(&self.train_graph, self.rng.random())
                        .sample_active_users(self.cfg.cl_batch),
                );
                let item_idx = Arc::new(self.sample_items(self.cfg.cl_batch));
                let cu = infonce_loss(&mut g, z1, z2, &user_idx, self.cfg.temperature);
                let ci = infonce_loss(&mut g, z1, z2, &item_idx, self.cfg.temperature);
                let c = g.add(cu, ci);
                stats.cl = g.value(c).item();
                // Linear warm-up of the contrastive weight (see config).
                let ramp = if self.cfg.cl_warmup_steps == 0 {
                    1.0
                } else {
                    ((self.steps_taken + 1) as f32 / self.cfg.cl_warmup_steps as f32).min(1.0)
                };
                let cw = g.scale(c, self.cfg.beta_cl * ramp);
                loss = g.add(loss, cw);
            }
        }

        // β₃ ‖Θ‖²_F.
        let param_nodes: Vec<NodeId> = pairs.iter().map(|&(_, n)| n).collect();
        let wd = weight_decay(&mut g, &param_nodes);
        let wdw = g.scale(wd, self.cfg.beta_reg);
        loss = g.add(loss, wdw);

        stats.loss = g.value(loss).item();
        g.backward(loss);
        self.store
            .apply_grads(&g, &pairs, Optimizer::adam(self.cfg.learning_rate));
        self.steps_taken += 1;
        stats
    }

    /// Trains for `cfg.epochs` epochs.
    pub fn fit(&mut self) {
        self.fit_with(|_, _, _| {});
    }

    /// Trains with a per-epoch callback receiving
    /// `(epoch, user_embeddings, item_embeddings)` — used for convergence
    /// curves (Fig. 4).
    pub fn fit_with(&mut self, mut on_epoch: impl FnMut(usize, &Mat, &Mat)) {
        let graph = self.train_graph.clone();
        let mut sampler = TripletSampler::new(&graph, self.cfg.seed.wrapping_add(101));
        for epoch in 0..self.cfg.epochs {
            for _ in 0..self.cfg.steps_per_epoch {
                self.train_step(&mut sampler);
            }
            self.refresh_embeddings();
            on_epoch(epoch, &self.user_emb, &self.item_emb);
        }
        self.trained = true;
    }

    /// Recomputes and caches the final user/item embeddings from the clean
    /// graph (the paper's forecasting phase uses `Ĥ = GE(G)`).
    pub fn refresh_embeddings(&mut self) {
        let mut g = Graph::new();
        let h0 = self.store.node(&mut g, self.p_h0);
        let enc: Vec<NodeId> = self
            .p_enc
            .iter()
            .map(|&p| self.store.node(&mut g, p))
            .collect();
        let h = self.encode_main(&mut g, h0, &enc);
        let emb = g.value(h);
        let (nu, d) = (self.train_graph.n_users(), self.cfg.embed_dim);
        let mut user_emb = Mat::zeros(nu, d);
        let mut item_emb = Mat::zeros(self.train_graph.n_items(), d);
        for u in 0..nu {
            user_emb.row_mut(u).copy_from_slice(emb.row(u));
        }
        for v in 0..self.train_graph.n_items() {
            item_emb.row_mut(v).copy_from_slice(emb.row(nu + v));
        }
        self.user_emb = user_emb;
        self.item_emb = item_emb;
    }

    /// Deterministic keep-probabilities `p((u,v)|H̄)` for every training
    /// edge under the trained augmentor (feature disturbance disabled) —
    /// the quantity visualized in the paper's case study (Fig. 6).
    pub fn edge_keep_probabilities(&mut self) -> Vec<f32> {
        let mut g = Graph::new();
        let (h0, enc, mlp, _) = self.param_nodes(&mut g);
        let h_main = self.encode_main(&mut g, h0, &enc);
        let settings = AugmentorSettings {
            feature_keep_prob: 1.0,
            feature_noise_std: 0.0,
            ..self.augmentor_settings()
        };
        let logits = edge_logits(
            &mut g,
            h_main,
            &self.edge_index,
            &mlp,
            &settings,
            &mut self.rng,
        );
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }

    /// The training edges in the order matched by
    /// [`GraphAug::edge_keep_probabilities`].
    pub fn train_edges(&self) -> &[(u32, u32)] {
        self.train_graph.edges()
    }

    /// Name reflecting the active ablation variant.
    pub fn variant_name(&self) -> &'static str {
        match (self.cfg.encoder, self.cfg.use_gib, self.cfg.use_cl) {
            (EncoderKind::Mixhop, true, true) => "GraphAug",
            (EncoderKind::Vanilla, true, true) => "GraphAug w/o Mixhop",
            (EncoderKind::Mixhop, false, true) => "GraphAug w/o GIB",
            (EncoderKind::Mixhop, true, false) => "GraphAug w/o CL",
            (EncoderKind::Vanilla, false, true) => "GraphAug w/o Mixhop+GIB",
            (EncoderKind::Vanilla, true, false) => "GraphAug w/o Mixhop+CL",
            (EncoderKind::Mixhop, false, false) => "GraphAug base",
            (EncoderKind::Vanilla, false, false) => "GraphAug base (vanilla)",
        }
    }
}

impl Recommender for GraphAug {
    fn name(&self) -> &str {
        self.variant_name()
    }

    fn embeddings(&self) -> Option<(&Mat, &Mat)> {
        Some((&self.user_emb, &self.item_emb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::evaluate;
    use graphaug_graph::TrainTestSplit;

    fn toy_train() -> InteractionGraph {
        generate(&SyntheticConfig::new(60, 50, 700).clusters(4).seed(11))
    }

    #[test]
    fn construction_initializes_embeddings() {
        let train = toy_train();
        let m = GraphAug::new(GraphAugConfig::fast_test(), &train);
        let (u, i) = m.embeddings().unwrap();
        assert_eq!(u.shape(), (60, 16));
        assert_eq!(i.shape(), (50, 16));
        assert!(u.all_finite() && i.all_finite());
    }

    #[test]
    fn train_step_reduces_loss_over_time() {
        let train = toy_train();
        let mut m = GraphAug::new(GraphAugConfig::fast_test(), &train);
        let graph = m.train_graph.clone();
        let mut sampler = TripletSampler::new(&graph, 5);
        let first = m.train_step(&mut sampler);
        let mut last = first;
        for _ in 0..30 {
            last = m.train_step(&mut sampler);
        }
        assert!(last.loss.is_finite());
        assert!(
            last.bpr < first.bpr,
            "BPR should improve: first {} last {}",
            first.bpr,
            last.bpr
        );
    }

    #[test]
    fn training_beats_untrained_ranking() {
        let full = generate(&SyntheticConfig::new(80, 60, 1200).clusters(4).seed(3));
        let split = TrainTestSplit::per_user(&full, 0.2, 9);
        let untrained = GraphAug::new(GraphAugConfig::fast_test(), &split.train);
        let before = evaluate(&untrained, &split, &[20]);
        let mut m = GraphAug::new(GraphAugConfig::fast_test().epochs(12), &split.train);
        m.fit();
        let after = evaluate(&m, &split, &[20]);
        assert!(
            after.recall(20) > before.recall(20),
            "training should help: before {} after {}",
            before.recall(20),
            after.recall(20)
        );
    }

    #[test]
    fn ablation_variants_have_distinct_names() {
        let train = toy_train();
        let names: Vec<&str> = [
            GraphAugConfig::fast_test(),
            GraphAugConfig::fast_test().encoder(EncoderKind::Vanilla),
            GraphAugConfig::fast_test().gib(false),
            GraphAugConfig::fast_test().cl(false),
        ]
        .into_iter()
        .map(|c| GraphAug::new(c, &train).variant_name())
        .collect();
        assert_eq!(names.len(), 4);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn ablations_train_without_views_when_disabled() {
        let train = toy_train();
        let mut m = GraphAug::new(
            GraphAugConfig::fast_test().gib(false).cl(false).epochs(2),
            &train,
        );
        let graph = m.train_graph.clone();
        let mut sampler = TripletSampler::new(&graph, 5);
        let stats = m.train_step(&mut sampler);
        assert_eq!(stats.kl, 0.0);
        assert_eq!(stats.cl, 0.0);
        assert_eq!(stats.kept_fraction, 0.0);
        assert!(stats.loss.is_finite());
    }

    #[test]
    fn edge_probabilities_cover_all_train_edges() {
        let train = toy_train();
        let mut m = GraphAug::new(GraphAugConfig::fast_test().epochs(2), &train);
        m.fit();
        let probs = m.edge_keep_probabilities();
        assert_eq!(probs.len(), m.train_edges().len());
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn fit_with_invokes_callback_every_epoch() {
        let train = toy_train();
        let mut m = GraphAug::new(GraphAugConfig::fast_test().epochs(3), &train);
        let mut seen = Vec::new();
        m.fit_with(|e, u, i| {
            assert!(u.all_finite() && i.all_finite());
            seen.push(e);
        });
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
