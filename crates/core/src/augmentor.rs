//! The learnable GIB-regularized graph augmentor (paper Eq. 4–5).
//!
//! For every observed interaction `(u, v)` the augmentor scores the edge
//! with an MLP over disturbed, masked node embeddings (Eq. 4), relaxes the
//! Bernoulli keep-decision with Gumbel/concrete reparameterization (Eq. 5),
//! and thresholds at `ξ` via a straight-through constant mask. The resulting
//! per-edge weights multiply the fixed symmetric-normalization coefficients
//! of the bipartite adjacency, producing a *differentiable* sampled view —
//! gradients reach the MLP and the encoder through `spmm_ew`.

use std::sync::Arc;

use graphaug_rng::StdRng;

use graphaug_graph::InteractionGraph;
use graphaug_sparse::{sym_norm_weights, Csr};
use graphaug_tensor::{init, Graph, Mat, NodeId, PairGatherPlan};

/// Precomputed structure of the augmentable bipartite adjacency: the CSR
/// pattern, the map from stored (directed) entries back to undirected edge
/// ids, the per-entry normalization constants, and the endpoints of every
/// undirected edge.
pub struct EdgeIndex {
    /// Symmetric `(I+J) × (I+J)` bipartite pattern (values unused).
    pub pattern: Arc<Csr>,
    /// For each stored entry (CSR order): the undirected edge id in
    /// `0..n_edges`.
    pub dir_to_undir: Arc<Vec<u32>>,
    /// Per stored entry: `1/sqrt(deg(r)·deg(c))` of the clean adjacency.
    pub norm: Arc<Mat>,
    /// Per undirected edge: user endpoint (bipartite node id).
    pub edge_users: Arc<Vec<u32>>,
    /// Per undirected edge: item endpoint (bipartite node id, offset by I).
    pub edge_items: Arc<Vec<u32>>,
    /// Fused endpoint gather plan: `feat[e] = [h[u_e] | h[v_e]]` in one tape
    /// op. Precomputed here so every `edge_logits` call is a single indexed
    /// copy instead of two gathers plus a concat.
    pub feat_plan: Arc<PairGatherPlan>,
}

impl EdgeIndex {
    /// Builds the index from a training graph.
    pub fn build(train: &InteractionGraph) -> Self {
        let n_users = train.n_users();
        let n = train.n_nodes();
        let edges = train.edges();
        // Encode the undirected edge id as the COO value so the CSR sort
        // carries the mapping along.
        let mut triplets = Vec::with_capacity(edges.len() * 2);
        for (k, &(u, v)) in edges.iter().enumerate() {
            let vi = n_users as u32 + v;
            triplets.push((u, vi, k as f32));
            triplets.push((vi, u, k as f32));
        }
        let carrier = Csr::from_coo(n, n, triplets);
        let dir_to_undir: Vec<u32> = carrier.data().iter().map(|&v| v as u32).collect();
        let pattern = carrier.map_data(|_| 1.0);
        let norm_vals = sym_norm_weights(&pattern);
        let edge_users: Vec<u32> = edges.iter().map(|&(u, _)| u).collect();
        let edge_items: Vec<u32> = edges.iter().map(|&(_, v)| n_users as u32 + v).collect();
        EdgeIndex {
            norm: Arc::new(Mat::from_vec(norm_vals.len(), 1, norm_vals)),
            pattern: Arc::new(pattern),
            dir_to_undir: Arc::new(dir_to_undir),
            feat_plan: Arc::new(PairGatherPlan::build(n, &edge_users, &edge_items)),
            edge_users: Arc::new(edge_users),
            edge_items: Arc::new(edge_items),
        }
    }

    /// Number of undirected interactions.
    pub fn n_edges(&self) -> usize {
        self.edge_users.len()
    }
}

/// Tape nodes of the augmentor MLP parameters.
#[derive(Clone, Copy)]
pub struct AugmentorNodes {
    /// First layer weight `(2d × h)`.
    pub w1: NodeId,
    /// First layer bias `(1 × h)`.
    pub b1: NodeId,
    /// Output weight `(h × 1)`.
    pub w2: NodeId,
    /// Output bias `(1 × 1)`.
    pub b2: NodeId,
}

/// Hyperparameters consumed by [`sample_view`].
#[derive(Clone, Copy, Debug)]
pub struct AugmentorSettings {
    /// Gumbel/concrete temperature `τ₁`.
    pub gumbel_temperature: f32,
    /// Keep threshold `ξ`.
    pub edge_threshold: f32,
    /// Feature-mask keep probability (Eq. 4's `m`).
    pub feature_keep_prob: f32,
    /// Feature-noise std (Eq. 4's `ε`).
    pub feature_noise_std: f32,
    /// LeakyReLU slope inside the MLP.
    pub leaky_slope: f32,
}

/// Output of one sampled view.
pub struct SampledView {
    /// `(2E × 1)` tape node: per stored-entry weights of the view adjacency
    /// (soft keep probability × normalization), ready for `spmm_ew`.
    pub weights: NodeId,
    /// `(E × 1)` tape node: the underlying keep probabilities `p((u,v)|H̄)`.
    pub edge_probs: NodeId,
    /// Fraction of edges surviving the hard threshold (diagnostic).
    pub kept_fraction: f32,
}

/// Computes the per-edge logits `MLP(h̃_u ‖ h̃_v)` of Eq. 4 over disturbed,
/// masked embeddings, returning the logits node (`E × 1`).
pub fn edge_logits(
    g: &mut Graph,
    h_bar: NodeId,
    idx: &EdgeIndex,
    mlp: &AugmentorNodes,
    settings: &AugmentorSettings,
    rng: &mut StdRng,
) -> NodeId {
    let (n, d) = g.value(h_bar).shape();
    // Eq. 4: h̃ = (h̄ − ε) ⊙ m + ε with Bernoulli mask m and Gaussian ε.
    // Both constants are drawn through the parallel bulk fills (per-chunk
    // derived streams keyed off this sampler's rng), which replaces ~2·n·d
    // serial Box–Muller/uniform calls with the faster polar method and
    // scales across threads; only the two `next_u64` seed draws touch the
    // caller's stream.
    let keep = settings.feature_keep_prob;
    let mut mask_m = Mat::zeros(n, d);
    init::par_fill_bernoulli(mask_m.as_mut_slice(), keep, rng.next_u64());
    let mask = Arc::new(mask_m);
    let std = settings.feature_noise_std;
    let mut noise_m = Mat::zeros(n, d);
    init::par_fill_normal(noise_m.as_mut_slice(), std, rng.next_u64());
    let neg_noise = Arc::new(noise_m.map(|x| -x));
    let noise = Arc::new(noise_m);
    let shifted = g.add_const(h_bar, neg_noise);
    let masked = g.mul_const(shifted, mask);
    let disturbed = g.add_const(masked, noise);

    let feat = g.gather_concat_pair(disturbed, Arc::clone(&idx.feat_plan));
    let z1 = g.matmul(feat, mlp.w1);
    let z1b = g.add_row_broadcast(z1, mlp.b1);
    let hidden = g.leaky_relu(z1b, settings.leaky_slope);
    let z2 = g.matmul(hidden, mlp.w2);
    g.add_row_broadcast(z2, mlp.b2)
}

/// Draws one reparameterized view (Eq. 5) from fresh Gumbel noise.
///
/// `ā = σ((logit p + logit ε′)/τ₁)`; entries with `ā ≤ ξ` are zeroed by a
/// straight-through constant mask. The returned weights are mapped onto both
/// directed copies of each edge and scaled by the clean normalization.
pub fn sample_view(
    g: &mut Graph,
    logits: NodeId,
    idx: &EdgeIndex,
    settings: &AugmentorSettings,
    rng: &mut StdRng,
) -> SampledView {
    let e = idx.n_edges();
    assert_eq!(
        g.value(logits).shape(),
        (e, 1),
        "one logit per undirected edge"
    );
    let edge_probs = g.sigmoid(logits);

    // logit(p) + logit(ε′), ε′ ~ U(0,1): the logistic-noise (Gumbel
    // difference) form of the binary concrete distribution, drawn through
    // the parallel bulk fill (per-chunk derived streams).
    let mut gumbel_m = Mat::zeros(e, 1);
    init::par_fill_logistic(gumbel_m.as_mut_slice(), rng.next_u64());
    let gumbel = Arc::new(gumbel_m);
    let noisy = g.add_const(logits, gumbel);
    let sharpened = g.scale(noisy, 1.0 / settings.gumbel_temperature);
    let soft = g.sigmoid(sharpened);

    // Straight-through hard threshold ξ as a constant mask over the soft
    // Bernoulli weights (keeps Eq. 5's two-case form differentiable).
    let xi = settings.edge_threshold;
    let soft_vals = g.value(soft);
    let mut kept = 0usize;
    let mask = Arc::new(Mat::from_fn(e, 1, |r, _| {
        if soft_vals.get(r, 0) > xi {
            kept += 1;
            1.0
        } else {
            0.0
        }
    }));
    let hard = g.mul_const(soft, mask);

    // Broadcast undirected weights to both stored directions, then apply
    // the constant symmetric normalization.
    let directed = g.gather_rows(hard, Arc::clone(&idx.dir_to_undir));
    let weights = g.mul_const(directed, Arc::clone(&idx.norm));
    SampledView {
        weights,
        edge_probs,
        kept_fraction: kept as f32 / e.max(1) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_tensor::init::seeded_rng;

    fn toy_graph() -> InteractionGraph {
        InteractionGraph::new(3, 4, vec![(0, 0), (0, 2), (1, 1), (1, 3), (2, 0), (2, 3)])
    }

    fn settings() -> AugmentorSettings {
        AugmentorSettings {
            gumbel_temperature: 0.5,
            edge_threshold: 0.2,
            feature_keep_prob: 0.9,
            feature_noise_std: 0.1,
            leaky_slope: 0.5,
        }
    }

    fn mlp_nodes(g: &mut Graph, d: usize, h: usize) -> AugmentorNodes {
        AugmentorNodes {
            w1: g.constant(Mat::from_fn(2 * d, h, |r, c| {
                ((r + c) as f32 * 0.13).sin() * 0.4
            })),
            b1: g.constant(Mat::zeros(1, h)),
            w2: g.constant(Mat::from_fn(h, 1, |r, _| ((r as f32) * 0.21).cos() * 0.4)),
            b2: g.constant(Mat::zeros(1, 1)),
        }
    }

    #[test]
    fn edge_index_maps_both_directions() {
        let idx = EdgeIndex::build(&toy_graph());
        assert_eq!(idx.n_edges(), 6);
        assert_eq!(idx.pattern.nnz(), 12);
        assert_eq!(idx.dir_to_undir.len(), 12);
        // Every undirected edge id appears exactly twice.
        let mut counts = [0usize; 6];
        for &k in idx.dir_to_undir.iter() {
            counts[k as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 2));
        // Endpoint arrays are consistent with the original edges.
        assert_eq!(idx.edge_users[0], 0);
        assert_eq!(idx.edge_items[0], 3); // item 0 offset by 3 users
    }

    #[test]
    fn logits_have_one_row_per_edge() {
        let train = toy_graph();
        let idx = EdgeIndex::build(&train);
        let mut g = Graph::new();
        let d = 4;
        let h_bar = g.constant(Mat::from_fn(train.n_nodes(), d, |r, c| {
            ((r * d + c) as f32 * 0.3).sin()
        }));
        let mlp = mlp_nodes(&mut g, d, 3);
        let mut rng = seeded_rng(1);
        let logits = edge_logits(&mut g, h_bar, &idx, &mlp, &settings(), &mut rng);
        assert_eq!(g.value(logits).shape(), (6, 1));
    }

    #[test]
    fn sampled_views_differ_but_share_probabilities() {
        let train = toy_graph();
        let idx = EdgeIndex::build(&train);
        let mut g = Graph::new();
        let d = 4;
        let h_bar = g.constant(Mat::from_fn(train.n_nodes(), d, |r, c| {
            ((r * d + c) as f32 * 0.3).sin()
        }));
        let mlp = mlp_nodes(&mut g, d, 3);
        let mut rng = seeded_rng(2);
        let logits = edge_logits(&mut g, h_bar, &idx, &mlp, &settings(), &mut rng);
        let v1 = sample_view(&mut g, logits, &idx, &settings(), &mut rng);
        let v2 = sample_view(&mut g, logits, &idx, &settings(), &mut rng);
        assert_eq!(g.value(v1.weights).shape(), (12, 1));
        // Same underlying probabilities…
        assert_eq!(g.value(v1.edge_probs), g.value(v2.edge_probs));
        // …different Gumbel draws.
        assert_ne!(g.value(v1.weights), g.value(v2.weights));
    }

    #[test]
    fn view_weights_are_bounded_by_normalization() {
        let train = toy_graph();
        let idx = EdgeIndex::build(&train);
        let mut g = Graph::new();
        let d = 4;
        let h_bar = g.constant(Mat::filled(train.n_nodes(), d, 0.2));
        let mlp = mlp_nodes(&mut g, d, 3);
        let mut rng = seeded_rng(3);
        let logits = edge_logits(&mut g, h_bar, &idx, &mlp, &settings(), &mut rng);
        let v = sample_view(&mut g, logits, &idx, &settings(), &mut rng);
        // 0 ≤ weight ≤ norm coefficient (soft prob ∈ [0,1]).
        for (w, n) in g
            .value(v.weights)
            .as_slice()
            .iter()
            .zip(idx.norm.as_slice())
        {
            assert!(*w >= 0.0 && *w <= *n + 1e-6);
        }
    }

    #[test]
    fn high_threshold_prunes_more_edges() {
        let train = toy_graph();
        let idx = EdgeIndex::build(&train);
        let mut g = Graph::new();
        let d = 4;
        let h_bar = g.constant(Mat::from_fn(train.n_nodes(), d, |r, c| {
            ((r + c) as f32 * 0.37).sin()
        }));
        let mlp = mlp_nodes(&mut g, d, 3);
        let mut low = settings();
        low.edge_threshold = 0.0;
        let mut high = settings();
        high.edge_threshold = 0.9;
        let mut rng = seeded_rng(4);
        let logits = edge_logits(&mut g, h_bar, &idx, &mlp, &low, &mut rng);
        let mut rng_a = seeded_rng(5);
        let va = sample_view(&mut g, logits, &idx, &low, &mut rng_a);
        let mut rng_b = seeded_rng(5);
        let vb = sample_view(&mut g, logits, &idx, &high, &mut rng_b);
        assert!(va.kept_fraction >= vb.kept_fraction);
        assert!(va.kept_fraction > 0.99); // ξ=0 keeps everything
    }
}
