//! GraphAug hyperparameters (paper Sec. IV-A3) and ablation switches.

/// Encoder choice for the ablation study (Fig. 2, Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncoderKind {
    /// The paper's mixhop encoder: per layer, hop-0/1/2 propagations are
    /// combined by a learnable softmax mixing row (the rows of the paper's
    /// mixing matrix `M`, Eq. 11–13).
    Mixhop,
    /// Single-hop LightGCN-style propagation — the "w/o Mixhop" variant.
    Vanilla,
}

/// Full GraphAug configuration. Defaults follow the paper's reported
/// settings (`d = 32`, `τ = 0.9`, `ξ = 0.2`, `β₁ = 1e-5`, `β₂ = β₃`
/// rebalanced for the scaled datasets).
#[derive(Clone, Debug)]
pub struct GraphAugConfig {
    /// Embedding dimensionality `d` (paper reports with 32).
    pub embed_dim: usize,
    /// Number of message-passing layers `L`.
    pub n_layers: usize,
    /// Mixhop powers `M` (paper uses {0, 1, 2}).
    pub hops: Vec<usize>,
    /// LeakyReLU negative slope (paper fixes 0.5).
    pub leaky_slope: f32,
    /// InfoNCE temperature `τ` (paper best: 0.9).
    pub temperature: f32,
    /// Gumbel/concrete relaxation temperature `τ₁` (Eq. 5).
    pub gumbel_temperature: f32,
    /// Edge sampling threshold `ξ` (Eq. 5; paper best: 0.2).
    pub edge_threshold: f32,
    /// GIB weight `β₁` (Eq. 16; paper best: 1e-5 — rescaled here because the
    /// KL is averaged rather than summed).
    pub beta_gib: f32,
    /// Contrastive weight `β₂`.
    pub beta_cl: f32,
    /// Weight of the view-likelihood (−I(Z′;Y) bound) BPR term inside the
    /// GIB objective.
    pub view_bpr_weight: f32,
    /// Steps over which the contrastive weight ramps from 0 to `beta_cl`.
    /// Full-strength InfoNCE before the ranking loss has shaped the
    /// embedding space collapses training on denser graphs.
    pub cl_warmup_steps: usize,
    /// Weight-decay `β₃`.
    pub beta_reg: f32,
    /// Element keep-probability of the feature mask `m` (Eq. 4).
    pub feature_keep_prob: f32,
    /// Std-dev of the feature noise `ε` (Eq. 4).
    pub feature_noise_std: f32,
    /// Adam learning rate `ι`.
    pub learning_rate: f32,
    /// Training epochs `E`.
    pub epochs: usize,
    /// Optimization steps per epoch.
    pub steps_per_epoch: usize,
    /// BPR triplets per step.
    pub bpr_batch: usize,
    /// Users (and items) per contrastive batch.
    pub cl_batch: usize,
    /// RNG seed.
    pub seed: u64,
    /// Encoder ablation switch.
    pub encoder: EncoderKind,
    /// Disable the GIB regularizer ("w/o GIB").
    pub use_gib: bool,
    /// Disable contrastive augmentation ("w/o CL").
    pub use_cl: bool,
}

impl Default for GraphAugConfig {
    fn default() -> Self {
        GraphAugConfig {
            embed_dim: 32,
            n_layers: 2,
            hops: vec![0, 1, 2],
            leaky_slope: 0.5,
            temperature: 0.9,
            gumbel_temperature: 0.5,
            edge_threshold: 0.2,
            beta_gib: 1e-2,
            beta_cl: 1.0,
            view_bpr_weight: 0.1,
            cl_warmup_steps: 60,
            beta_reg: 1e-5,
            feature_keep_prob: 0.9,
            feature_noise_std: 0.1,
            learning_rate: 5e-3,
            epochs: 40,
            steps_per_epoch: 6,
            bpr_batch: 1024,
            cl_batch: 256,
            seed: 2024,
            encoder: EncoderKind::Mixhop,
            use_gib: true,
            use_cl: true,
        }
    }
}

impl GraphAugConfig {
    /// Paper-default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the embedding dimension.
    pub fn embed_dim(mut self, d: usize) -> Self {
        assert!(
            d >= 2 && d.is_multiple_of(2),
            "GIB pooling splits d in half"
        );
        self.embed_dim = d;
        self
    }

    /// Sets the number of layers.
    pub fn layers(mut self, l: usize) -> Self {
        self.n_layers = l;
        self
    }

    /// Sets the InfoNCE temperature.
    pub fn temperature(mut self, t: f32) -> Self {
        assert!(t > 0.0);
        self.temperature = t;
        self
    }

    /// Sets the edge-sampling threshold ξ.
    pub fn edge_threshold(mut self, xi: f32) -> Self {
        assert!((0.0..1.0).contains(&xi));
        self.edge_threshold = xi;
        self
    }

    /// Sets the GIB weight β₁.
    pub fn beta_gib(mut self, b: f32) -> Self {
        self.beta_gib = b;
        self
    }

    /// Sets the contrastive weight β₂.
    pub fn beta_cl(mut self, b: f32) -> Self {
        self.beta_cl = b;
        self
    }

    /// Sets training length.
    pub fn epochs(mut self, e: usize) -> Self {
        self.epochs = e;
        self
    }

    /// Sets optimization steps per epoch.
    pub fn steps_per_epoch(mut self, s: usize) -> Self {
        self.steps_per_epoch = s;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Selects the encoder ("w/o Mixhop" ablation uses
    /// [`EncoderKind::Vanilla`]).
    pub fn encoder(mut self, e: EncoderKind) -> Self {
        self.encoder = e;
        self
    }

    /// Enables/disables the GIB regularizer ("w/o GIB" ablation).
    pub fn gib(mut self, on: bool) -> Self {
        self.use_gib = on;
        self
    }

    /// Enables/disables contrastive augmentation ("w/o CL" ablation).
    pub fn cl(mut self, on: bool) -> Self {
        self.use_cl = on;
        self
    }

    /// A fast configuration for unit/integration tests. The contrastive
    /// weight is softened: at tiny step budgets the full-strength InfoNCE
    /// term dominates before the ranking loss has warmed up.
    pub fn fast_test() -> Self {
        GraphAugConfig::default()
            .embed_dim(16)
            .epochs(8)
            .steps_per_epoch(3)
            .beta_cl(0.2)
            .seed(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = GraphAugConfig::default();
        assert_eq!(c.embed_dim, 32);
        assert_eq!(c.hops, vec![0, 1, 2]);
        assert_eq!(c.temperature, 0.9);
        assert_eq!(c.edge_threshold, 0.2);
        assert_eq!(c.encoder, EncoderKind::Mixhop);
        assert!(c.use_gib && c.use_cl);
    }

    #[test]
    fn builder_chains() {
        let c = GraphAugConfig::new()
            .embed_dim(8)
            .temperature(0.5)
            .edge_threshold(0.4)
            .encoder(EncoderKind::Vanilla)
            .gib(false)
            .cl(false);
        assert_eq!(c.embed_dim, 8);
        assert_eq!(c.encoder, EncoderKind::Vanilla);
        assert!(!c.use_gib && !c.use_cl);
    }

    #[test]
    #[should_panic(expected = "splits d in half")]
    fn rejects_odd_embed_dim() {
        GraphAugConfig::new().embed_dim(7);
    }
}
