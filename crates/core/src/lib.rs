//! **GraphAug** — a from-scratch Rust implementation of *"Graph Augmentation
//! for Recommendation"* (ICDE 2024).
//!
//! GraphAug is a self-supervised graph-collaborative-filtering model built
//! from three cooperating pieces:
//!
//! 1. a **learnable augmentor** ([`augmentor`]) that scores every observed
//!    user–item edge with an MLP and draws two denoised contrastive views
//!    via Gumbel/concrete reparameterization (paper Eq. 4–5);
//! 2. a **Graph Information Bottleneck regularizer** ([`gib`]) that keeps
//!    the views predictive of interactions while compressing away structure
//!    noise (Eq. 6–10);
//! 3. a **mixhop encoder** ([`mixhop`]) that concatenates hop-0/1/2
//!    propagations per layer to counteract oversmoothing (Eq. 11–13).
//!
//! Training jointly minimizes `BPR + β₁·GIB + β₂·InfoNCE + β₃·‖Θ‖²` (Eq. 16)
//! — see [`GraphAug::fit`].
//!
//! # Quickstart
//!
//! ```
//! use graphaug_core::{GraphAug, GraphAugConfig};
//! use graphaug_data::{generate, SyntheticConfig};
//! use graphaug_eval::{evaluate, Recommender};
//! use graphaug_graph::TrainTestSplit;
//!
//! let data = generate(&SyntheticConfig::new(80, 60, 1000).seed(1));
//! let split = TrainTestSplit::per_user(&data, 0.2, 1);
//! let mut model = GraphAug::new(GraphAugConfig::fast_test(), &split.train);
//! model.fit();
//! let result = evaluate(&model, &split, &[20]);
//! assert!(result.recall(20) >= 0.0);
//! ```

pub mod augmentor;
pub mod config;
pub mod gib;
pub mod mixhop;
pub mod model;
pub mod nn;

pub use augmentor::{AugmentorSettings, EdgeIndex, SampledView};
pub use config::{EncoderKind, GraphAugConfig};
pub use model::{GraphAug, ModelState, StepOptions, StepStats};
