//! The graph mixhop encoder (paper Eq. 11–13) and its vanilla ablation.
//!
//! Per layer, the embeddings propagated over the hop powers `Ã⁰, Ã¹, Ã²` are
//! combined by a **learnable mixing row** — the `l`-th row of the paper's
//! mixing matrix `M`, which "controls the contribution of different hop
//! embeddings to the `(l+1)`-order embedding". Keeping the hop-0 (self)
//! signal in every layer is what counteracts oversmoothing (Table III
//! measures this via MAD). Powers are applied iteratively (`Ã(Ã(…H))`),
//! never materialized, as the paper's complexity analysis prescribes.
//!
//! Following the transform-free design the paper adopts for modern graph CF
//! (LightGCN / GCCF — the paper's refs 3 and 27: dense per-layer transforms degrade
//! recommendation quality), the combination is a scalar mixture rather than
//! a concatenation-projection; `benches/mixhop_forward.rs` and the Fig. 2
//! ablation quantify this choice.
//!
//! The "w/o Mixhop" ablation ([`encode_vanilla`]) degenerates to single-hop
//! propagation with a mean readout — exactly LightGCN-style message passing.

use std::sync::Arc;

use graphaug_sparse::Csr;
use graphaug_tensor::{Graph, NodeId, SpPair};

/// Shape of one layer's mixing-row parameter: `(1, n_hops)` for the mixhop
/// encoder; the vanilla ablation has no per-layer parameters.
pub fn mixing_row_shape(n_hops: usize) -> (usize, usize) {
    (1, n_hops)
}

/// Softmax-normalizes a `1 × k` mixing-row node into `k` scalar weight
/// nodes. The simplex constraint keeps the mixture scale-invariant: a free
/// row would inflate under BPR (uniformly scaling embeddings shrinks the
/// loss without changing the ranking) and saturate the objective.
fn simplex_weights(g: &mut Graph, alpha: NodeId, k: usize) -> Vec<NodeId> {
    let lse = g.logsumexp_rows(alpha);
    (0..k)
        .map(|c| {
            let x = g.slice_cols(alpha, c, c + 1);
            let d = g.sub(x, lse);
            g.exp(d)
        })
        .collect()
}

/// One mixhop layer over a constant adjacency: `Σ_m softmax(α)_m Ã^m H`
/// with the `1 × |hops|` mixing row `alpha` (hops sorted ascending).
fn mixhop_layer(g: &mut Graph, adj: &SpPair, h: NodeId, alpha: NodeId, hops: &[usize]) -> NodeId {
    let max_hop = *hops.last().expect("at least one hop");
    let weights = simplex_weights(g, alpha, hops.len());
    let mut power = h;
    let mut out: Option<NodeId> = None;
    let mut slot = 0usize;
    for m in 0..=max_hop {
        if hops.contains(&m) {
            let term = g.scale_by_scalar(power, weights[slot]);
            out = Some(match out {
                Some(acc) => g.add(acc, term),
                None => term,
            });
            slot += 1;
        }
        if m < max_hop {
            power = g.spmm(adj, power);
        }
    }
    out.expect("non-empty hops")
}

/// One mixhop layer over an edge-weighted view (sampled augmentation).
fn mixhop_layer_ew(
    g: &mut Graph,
    pattern: &Arc<Csr>,
    weights: NodeId,
    h: NodeId,
    alpha: NodeId,
    hops: &[usize],
) -> NodeId {
    let max_hop = *hops.last().expect("at least one hop");
    let mix = simplex_weights(g, alpha, hops.len());
    let mut power = h;
    let mut out: Option<NodeId> = None;
    let mut slot = 0usize;
    for m in 0..=max_hop {
        if hops.contains(&m) {
            let term = g.scale_by_scalar(power, mix[slot]);
            out = Some(match out {
                Some(acc) => g.add(acc, term),
                None => term,
            });
            slot += 1;
        }
        if m < max_hop {
            power = g.spmm_ew(Arc::clone(pattern), weights, power);
        }
    }
    out.expect("non-empty hops")
}

fn check_hops(hops: &[usize]) {
    assert!(
        !hops.is_empty() && hops.windows(2).all(|w| w[0] < w[1]),
        "hops must be sorted"
    );
}

/// Full mixhop encoding: one mixing row per layer, mean readout over the
/// layer outputs `{H¹, …, H^L}` (the hop-0 term inside every layer already
/// carries the self signal, so including `H⁰` in the readout would
/// over-weight it and wash out propagation).
pub fn encode_mixhop(
    g: &mut Graph,
    adj: &SpPair,
    h0: NodeId,
    mixing_rows: &[NodeId],
    hops: &[usize],
) -> NodeId {
    check_hops(hops);
    assert!(!mixing_rows.is_empty(), "need at least one mixhop layer");
    let mut h = h0;
    let mut acc: Option<NodeId> = None;
    for &alpha in mixing_rows {
        h = mixhop_layer(g, adj, h, alpha, hops);
        acc = Some(match acc {
            Some(a) => g.add(a, h),
            None => h,
        });
    }
    let total = acc.expect("non-empty layers");
    g.scale(total, 1.0 / mixing_rows.len() as f32)
}

/// Full mixhop encoding over an edge-weighted sampled view (same readout
/// convention as [`encode_mixhop`]).
pub fn encode_mixhop_ew(
    g: &mut Graph,
    pattern: &Arc<Csr>,
    weights: NodeId,
    h0: NodeId,
    mixing_rows: &[NodeId],
    hops: &[usize],
) -> NodeId {
    check_hops(hops);
    assert!(!mixing_rows.is_empty(), "need at least one mixhop layer");
    let mut h = h0;
    let mut acc: Option<NodeId> = None;
    for &alpha in mixing_rows {
        h = mixhop_layer_ew(g, pattern, weights, h, alpha, hops);
        acc = Some(match acc {
            Some(a) => g.add(a, h),
            None => h,
        });
    }
    let total = acc.expect("non-empty layers");
    g.scale(total, 1.0 / mixing_rows.len() as f32)
}

/// Vanilla single-hop propagation (the "w/o Mixhop" ablation): `H ← ÃH` per
/// layer with a mean readout — LightGCN-style message passing, no mixing
/// parameters.
pub fn encode_vanilla(g: &mut Graph, adj: &SpPair, h0: NodeId, layers: usize) -> NodeId {
    let mut h = h0;
    let mut acc = h0;
    for _ in 0..layers {
        h = g.spmm(adj, h);
        acc = g.add(acc, h);
    }
    g.scale(acc, 1.0 / (layers as f32 + 1.0))
}

/// Vanilla propagation over an edge-weighted view.
pub fn encode_vanilla_ew(
    g: &mut Graph,
    pattern: &Arc<Csr>,
    weights: NodeId,
    h0: NodeId,
    layers: usize,
) -> NodeId {
    let mut h = h0;
    let mut acc = h0;
    for _ in 0..layers {
        h = g.spmm_ew(Arc::clone(pattern), weights, h);
        acc = g.add(acc, h);
    }
    g.scale(acc, 1.0 / (layers as f32 + 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_tensor::Mat;

    fn path_adj() -> SpPair {
        SpPair::symmetric(Csr::from_coo(
            3,
            3,
            vec![(0, 1, 0.5), (1, 0, 0.5), (1, 2, 0.5), (2, 1, 0.5)],
        ))
    }

    #[test]
    fn mixing_row_shape_matches_hops() {
        assert_eq!(mixing_row_shape(3), (1, 3));
    }

    #[test]
    fn mixhop_shapes_are_preserved() {
        let mut g = Graph::new();
        let adj = path_adj();
        let h0 = g.constant(Mat::from_fn(3, 4, |r, c| (r + c) as f32 * 0.1));
        let a0 = g.constant(Mat::zeros(1, 3));
        let a1 = g.constant(Mat::from_vec(1, 3, vec![0.5, 0.3, 0.2]));
        let out = encode_mixhop(&mut g, &adj, h0, &[a0, a1], &[0, 1, 2]);
        assert_eq!(g.value(out).shape(), (3, 4));
        assert!(g.value(out).all_finite());
    }

    #[test]
    fn unit_hop1_mixing_is_layer_mean_of_propagations() {
        // With hops = [1] the softmax weight is 1 regardless of the logit,
        // so the two-layer readout is mean{ÃH, Ã²H}.
        let mut g = Graph::new();
        let adj = path_adj();
        let h0 = g.constant(Mat::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.2));
        let logit = g.constant(Mat::filled(1, 1, -2.5));
        let mix = encode_mixhop(&mut g, &adj, h0, &[logit, logit], &[1]);
        let p1 = g.spmm(&adj, h0);
        let p2 = g.spmm(&adj, p1);
        let s = g.add(p1, p2);
        let want = g.scale(s, 0.5);
        for (a, b) in g.value(mix).as_slice().iter().zip(g.value(want).as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn edge_weighted_matches_dense_when_weights_equal_values() {
        let csr = Csr::from_coo(
            3,
            3,
            vec![(0, 1, 0.5), (1, 0, 0.5), (1, 2, 0.5), (2, 1, 0.5)],
        );
        let pattern = Arc::new(csr.clone());
        let mut g = Graph::new();
        let adj = SpPair::symmetric(csr.clone());
        let h0 = g.constant(Mat::from_fn(3, 2, |r, c| (r + c) as f32 * 0.3));
        let alpha = g.constant(Mat::from_vec(1, 3, vec![0.2, 0.5, 0.3]));
        let dense = encode_mixhop(&mut g, &adj, h0, &[alpha], &[0, 1, 2]);
        let wn = g.constant(Mat::from_vec(4, 1, csr.data().to_vec()));
        let ew = encode_mixhop_ew(&mut g, &pattern, wn, h0, &[alpha], &[0, 1, 2]);
        for (a, b) in g.value(dense).as_slice().iter().zip(g.value(ew).as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn hop_zero_only_ignores_graph() {
        // hops = [0] with α = [1]: no propagation, so node 0's output must
        // not depend on node 2's input.
        let mut g = Graph::new();
        let adj = path_adj();
        let mk = |v: f32| Mat::from_fn(3, 2, move |r, c| if r == 2 { v } else { (r + c) as f32 });
        let one = g.constant(Mat::filled(1, 1, 1.0));
        let h0a = g.constant(mk(5.0));
        let outa = encode_mixhop(&mut g, &adj, h0a, &[one], &[0]);
        let h0b = g.constant(mk(-3.0));
        let outb = encode_mixhop(&mut g, &adj, h0b, &[one], &[0]);
        assert_eq!(g.value(outa).row(0), g.value(outb).row(0));
    }

    #[test]
    fn mixing_rows_receive_gradients() {
        let mut g = Graph::new();
        let adj = path_adj();
        let h0 = g.constant(Mat::from_fn(3, 2, |r, c| (r + c) as f32 * 0.4 + 0.1));
        let alpha = g.constant(Mat::from_vec(1, 3, vec![0.4, 0.3, 0.3]));
        let out = encode_mixhop(&mut g, &adj, h0, &[alpha], &[0, 1, 2]);
        let sq = g.square(out);
        let loss = g.sum_all(sq);
        g.backward(loss);
        let grad = g.grad(alpha).expect("mixing row must receive gradient");
        assert!(grad.max_abs() > 0.0);
    }

    #[test]
    #[should_panic(expected = "hops must be sorted")]
    fn rejects_unsorted_hops() {
        let mut g = Graph::new();
        let adj = path_adj();
        let h0 = g.constant(Mat::zeros(3, 2));
        let a = g.constant(Mat::zeros(1, 2));
        encode_mixhop(&mut g, &adj, h0, &[a], &[2, 1]);
    }
}
