//! Shared neural building blocks for GNN collaborative filtering.
//!
//! These tape-level builders are used both by GraphAug and by every baseline
//! in `graphaug-baselines`: BPR pairwise ranking (paper Eq. 15), InfoNCE
//! contrastive alignment (Eq. 14), the standard-normal KL term of the GIB
//! bound (Eq. 9), LightGCN-style propagation, and weight decay.

use std::sync::Arc;

use graphaug_tensor::{Graph, NodeId, SpPair};

/// A BPR mini-batch as tape-ready index vectors. `pos`/`neg` are *node* ids
/// in the bipartite indexing (item `v` lives at `n_users + v`).
#[derive(Clone, Debug)]
pub struct BprBatch {
    /// Anchor users (bipartite node ids — equal to raw user ids).
    pub users: Arc<Vec<u32>>,
    /// Positive items, offset by `n_users`.
    pub pos: Arc<Vec<u32>>,
    /// Negative items, offset by `n_users`.
    pub neg: Arc<Vec<u32>>,
}

impl BprBatch {
    /// Builds a batch from raw sampler output, applying the item offset.
    pub fn from_raw(users: Vec<u32>, pos: Vec<u32>, neg: Vec<u32>, n_users: usize) -> Self {
        let off = n_users as u32;
        BprBatch {
            users: Arc::new(users),
            pos: Arc::new(pos.into_iter().map(|v| v + off).collect()),
            neg: Arc::new(neg.into_iter().map(|v| v + off).collect()),
        }
    }

    /// Batch size.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

/// BPR loss `mean softplus(score_neg − score_pos)` (≡ `−log σ(pos − neg)`),
/// computed on rows of the node-embedding matrix `emb` (`(I+J) × d`).
pub fn bpr_loss(g: &mut Graph, emb: NodeId, batch: &BprBatch) -> NodeId {
    let eu = g.gather_rows(emb, Arc::clone(&batch.users));
    let ep = g.gather_rows(emb, Arc::clone(&batch.pos));
    let en = g.gather_rows(emb, Arc::clone(&batch.neg));
    let pos = g.rowwise_dot(eu, ep);
    let neg = g.rowwise_dot(eu, en);
    let margin = g.sub(neg, pos);
    let sp = g.softplus(margin);
    g.mean_all(sp)
}

/// InfoNCE alignment between two views (paper Eq. 14): cosine similarities
/// of the gathered rows, positives on the diagonal, full-batch negatives.
/// `idx` selects which rows (users or offset items) participate.
pub fn infonce_loss(
    g: &mut Graph,
    view_a: NodeId,
    view_b: NodeId,
    idx: &Arc<Vec<u32>>,
    temperature: f32,
) -> NodeId {
    debug_assert!(temperature > 0.0);
    let a = g.gather_rows(view_a, Arc::clone(idx));
    let b = g.gather_rows(view_b, Arc::clone(idx));
    let na = g.l2_normalize_rows(a);
    let nb = g.l2_normalize_rows(b);
    let sim = g.matmul_nt(na, nb);
    let scaled = g.scale(sim, 1.0 / temperature);
    let lse = g.logsumexp_rows(scaled);
    let pos = g.diag_nn(scaled);
    let diff = g.sub(lse, pos);
    g.mean_all(diff)
}

/// Mean KL divergence `KL(N(μ, diag σ²) ‖ N(0, I))` per element:
/// `0.5 (μ² + σ² − ln σ² − 1)`, where `sigma` must be strictly positive
/// (pass it through softplus first).
pub fn kl_std_normal(g: &mut Graph, mu: NodeId, sigma: NodeId) -> NodeId {
    let mu2 = g.square(mu);
    let s2 = g.square(sigma);
    let ln_s2 = g.ln(s2);
    let a = g.add(mu2, s2);
    let b = g.sub(a, ln_s2);
    let c = g.add_scalar(b, -1.0);
    let half = g.scale(c, 0.5);
    g.mean_all(half)
}

/// Sum of squared Frobenius norms of the given parameter nodes
/// (weight-decay / `‖Θ‖²_F` term of Eq. 16).
pub fn weight_decay(g: &mut Graph, params: &[NodeId]) -> NodeId {
    assert!(
        !params.is_empty(),
        "weight decay needs at least one parameter"
    );
    let mut total: Option<NodeId> = None;
    for &p in params {
        let sq = g.square(p);
        let s = g.sum_all(sq);
        total = Some(match total {
            Some(t) => g.add(t, s),
            None => s,
        });
    }
    total.expect("non-empty params")
}

/// LightGCN propagation: `L` rounds of `H ← Ã H` with a mean readout over
/// `{H⁰, …, H^L}` — no transforms, no nonlinearity.
pub fn lightgcn_propagate(g: &mut Graph, adj: &SpPair, h0: NodeId, layers: usize) -> NodeId {
    let mut h = h0;
    let mut acc = h0;
    for _ in 0..layers {
        h = g.spmm(adj, h);
        acc = g.add(acc, h);
    }
    g.scale(acc, 1.0 / (layers as f32 + 1.0))
}

/// Same propagation over an edge-weighted view (pattern + weight node),
/// used for sampled/corrupted graph views.
pub fn lightgcn_propagate_ew(
    g: &mut Graph,
    pattern: &Arc<graphaug_sparse::Csr>,
    weights: NodeId,
    h0: NodeId,
    layers: usize,
) -> NodeId {
    let mut h = h0;
    let mut acc = h0;
    for _ in 0..layers {
        h = g.spmm_ew(Arc::clone(pattern), weights, h);
        acc = g.add(acc, h);
    }
    g.scale(acc, 1.0 / (layers as f32 + 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_sparse::Csr;
    use graphaug_tensor::Mat;

    #[test]
    fn bpr_prefers_higher_positive_scores() {
        // Embeddings engineered so user 0 scores pos=1 high, neg=2 low.
        let emb_good = Mat::from_vec(3, 2, vec![1.0, 0.0, 1.0, 0.0, -1.0, 0.0]);
        let emb_bad = Mat::from_vec(3, 2, vec![1.0, 0.0, -1.0, 0.0, 1.0, 0.0]);
        let batch = BprBatch {
            users: Arc::new(vec![0]),
            pos: Arc::new(vec![1]),
            neg: Arc::new(vec![2]),
        };
        let mut g = Graph::new();
        let e1 = g.constant(emb_good);
        let l1 = bpr_loss(&mut g, e1, &batch);
        let e2 = g.constant(emb_bad);
        let l2 = bpr_loss(&mut g, e2, &batch);
        assert!(g.value(l1).item() < g.value(l2).item());
    }

    #[test]
    fn infonce_is_low_when_views_match() {
        let idx = Arc::new(vec![0u32, 1, 2]);
        let aligned = Mat::from_fn(3, 4, |r, c| ((r * 4 + c) as f32 * 1.3).sin());
        let shuffled = Mat::from_fn(3, 4, |r, c| (((2 - r) * 4 + c) as f32 * 1.3).sin());
        let mut g = Graph::new();
        let a = g.constant(aligned.clone());
        let b = g.constant(aligned.clone());
        let l_match = infonce_loss(&mut g, a, b, &idx, 0.5);
        let c = g.constant(aligned);
        let d = g.constant(shuffled);
        let l_mismatch = infonce_loss(&mut g, c, d, &idx, 0.5);
        assert!(g.value(l_match).item() < g.value(l_mismatch).item());
    }

    #[test]
    fn kl_is_zero_at_standard_normal() {
        let mut g = Graph::new();
        let mu = g.constant(Mat::zeros(4, 3));
        let sigma = g.constant(Mat::filled(4, 3, 1.0));
        let kl = kl_std_normal(&mut g, mu, sigma);
        assert!(g.value(kl).item().abs() < 1e-6);
    }

    #[test]
    fn kl_grows_with_mean_shift() {
        let mut g = Graph::new();
        let mu = g.constant(Mat::filled(2, 2, 2.0));
        let sigma = g.constant(Mat::filled(2, 2, 1.0));
        let kl = kl_std_normal(&mut g, mu, sigma);
        assert!((g.value(kl).item() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn weight_decay_sums_frobenius_norms() {
        let mut g = Graph::new();
        let a = g.constant(Mat::filled(2, 2, 1.0));
        let b = g.constant(Mat::filled(1, 3, 2.0));
        let wd = weight_decay(&mut g, &[a, b]);
        assert!((g.value(wd).item() - 16.0).abs() < 1e-5);
    }

    #[test]
    fn lightgcn_identity_adjacency_is_identity() {
        let mut g = Graph::new();
        let adj = SpPair::symmetric(Csr::identity(3));
        let h0 = g.constant(Mat::from_fn(3, 2, |r, c| (r + c) as f32));
        let out = lightgcn_propagate(&mut g, &adj, h0, 3);
        assert_eq!(g.value(out), g.value(h0));
    }

    #[test]
    fn edge_weighted_propagation_matches_constant_weights() {
        let csr = Csr::from_coo(3, 3, vec![(0, 1, 0.5), (1, 0, 0.5), (2, 2, 1.0)]);
        let pattern = Arc::new(csr.clone());
        let mut g = Graph::new();
        let adj = SpPair::symmetric(csr.clone());
        let h0 = g.constant(Mat::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.3));
        let dense_out = lightgcn_propagate(&mut g, &adj, h0, 2);
        let w = g.constant(Mat::from_vec(3, 1, csr.data().to_vec()));
        let ew_out = lightgcn_propagate_ew(&mut g, &pattern, w, h0, 2);
        for (a, b) in g
            .value(dense_out)
            .as_slice()
            .iter()
            .zip(g.value(ew_out).as_slice())
        {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
