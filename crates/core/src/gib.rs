//! The Graph-Information-Bottleneck regularizer (paper Eq. 6–10).
//!
//! The intractable GIB objective `−I(Z′;Y) + β·I(Z′;A)` is optimized through
//! its variational bounds: the `−I(Z′;Y)` side becomes the recommendation
//! likelihood on the view embeddings (BPR on `Z′`/`Z″`, assembled in the
//! trainer), and the `I(Z′;A)` side becomes a KL divergence between the
//! view-conditional embedding distribution `p(Z′|A) = N(μ(A), η(A))` and the
//! standard-normal marginal approximation `r(Z′)` (Eq. 9). Following Eq. 10,
//! `μ` and `η` are produced by mean-pooling the three views' embeddings and
//! splitting the pooled matrix column-wise in half.

use graphaug_tensor::{Graph, NodeId};

use crate::nn::kl_std_normal;

/// Builds the KL term of Eq. 9: pool `{Z, Z′, Z″}` (Eq. 10), split into
/// `(μ, η)`, positivize `η` with softplus, and take
/// `KL(N(μ, η²) ‖ N(0, I))` averaged over elements.
pub fn gib_kl(g: &mut Graph, z_main: NodeId, z_prime: NodeId, z_double: NodeId) -> NodeId {
    let d = g.value(z_main).cols();
    assert!(
        d >= 2 && d.is_multiple_of(2),
        "GIB pooling needs an even embedding dim"
    );
    assert_eq!(g.value(z_prime).shape(), g.value(z_main).shape());
    assert_eq!(g.value(z_double).shape(), g.value(z_main).shape());
    let s1 = g.add(z_main, z_prime);
    let s2 = g.add(s1, z_double);
    let pooled = g.scale(s2, 1.0 / 3.0);
    let mu = g.slice_cols(pooled, 0, d / 2);
    let eta_raw = g.slice_cols(pooled, d / 2, d);
    let sp = g.softplus(eta_raw);
    let sigma = g.add_scalar(sp, 1e-4);
    kl_std_normal(g, mu, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_tensor::Mat;

    #[test]
    fn kl_is_finite_and_nonnegative() {
        let mut g = Graph::new();
        let z = g.constant(Mat::from_fn(5, 4, |r, c| ((r * 4 + c) as f32 * 0.3).sin()));
        let z1 = g.constant(Mat::from_fn(5, 4, |r, c| ((r + c) as f32 * 0.5).cos()));
        let z2 = g.constant(Mat::from_fn(5, 4, |r, c| (r as f32 - c as f32) * 0.2));
        let kl = gib_kl(&mut g, z, z1, z2);
        let v = g.value(kl).item();
        assert!(v.is_finite());
        assert!(v >= 0.0, "KL must be non-negative, got {v}");
    }

    #[test]
    fn kl_is_minimal_near_standard_normal_pooling() {
        // Pooled μ = 0, softplus(η_raw) ≈ 1 at η_raw = ln(e−1) ≈ 0.5413.
        let eta_for_unit_sigma = (std::f32::consts::E - 1.0).ln();
        let mk = |g: &mut Graph| {
            let m = Mat::from_fn(4, 4, |_, c| if c < 2 { 0.0 } else { eta_for_unit_sigma });
            g.constant(m)
        };
        let mut g = Graph::new();
        let z = mk(&mut g);
        let z1 = mk(&mut g);
        let z2 = mk(&mut g);
        let kl = gib_kl(&mut g, z, z1, z2);
        assert!(g.value(kl).item().abs() < 1e-3);
    }

    #[test]
    fn kl_penalizes_large_means() {
        let mut g = Graph::new();
        let mk_small = |g: &mut Graph| g.constant(Mat::zeros(3, 4));
        let mk_big = |g: &mut Graph| g.constant(Mat::filled(3, 4, 5.0));
        let (a, b, c) = (mk_small(&mut g), mk_small(&mut g), mk_small(&mut g));
        let kl_small = gib_kl(&mut g, a, b, c);
        let (d, e, f) = (mk_big(&mut g), mk_big(&mut g), mk_big(&mut g));
        let kl_big = gib_kl(&mut g, d, e, f);
        assert!(g.value(kl_big).item() > g.value(kl_small).item());
    }

    #[test]
    fn gradients_flow_to_all_three_views() {
        let mut g = Graph::new();
        let z = g.constant(Mat::from_fn(3, 4, |r, c| (r + c) as f32 * 0.2));
        let z1 = g.constant(Mat::from_fn(3, 4, |r, c| (r * c) as f32 * 0.1));
        let z2 = g.constant(Mat::from_fn(3, 4, |r, c| (r as f32 - c as f32) * 0.3));
        let kl = gib_kl(&mut g, z, z1, z2);
        g.backward(kl);
        for id in [z, z1, z2] {
            let grad = g.grad(id).expect("view must receive gradient");
            assert!(grad.max_abs() > 0.0);
        }
    }
}
