//! Applying logged interactions to an [`InteractionGraph`].
//!
//! The graph type is immutable by design (every downstream structure —
//! CSR, adjacency, degree buckets — derives from its sorted edge list), so
//! a delta batch produces a *new* graph. [`apply_deltas`] bounds-checks
//! every id, counts interactions already present as duplicates instead of
//! re-adding them, and re-runs the full invariant check on the result so
//! nothing downstream ever trains on a malformed graph.

use std::collections::HashSet;

use graphaug_graph::InteractionGraph;

use crate::error::IngestError;

/// The result of one delta application.
#[derive(Debug)]
pub struct DeltaReport {
    /// The rebuilt graph (base edges plus the new interactions).
    pub graph: InteractionGraph,
    /// Interactions that were new edges.
    pub applied: usize,
    /// Interactions already present in the base graph (or repeated within
    /// the batch) — logged, but structurally a no-op.
    pub duplicates: usize,
}

/// Applies `deltas` (in log order) to `base`, returning the grown graph
/// plus applied/duplicate counts. Ids beyond the base graph's bounds are
/// a typed [`IngestError::EdgeOutOfRange`] — the user/item universe is
/// fixed at training time because embedding-table shapes depend on it.
pub fn apply_deltas(
    base: &InteractionGraph,
    deltas: &[(u32, u32)],
) -> Result<DeltaReport, IngestError> {
    let (n_users, n_items) = (base.n_users(), base.n_items());
    let mut seen: HashSet<(u32, u32)> = base.edges().iter().copied().collect();
    let mut applied = 0usize;
    let mut duplicates = 0usize;
    for &(user, item) in deltas {
        if user as usize >= n_users || item as usize >= n_items {
            return Err(IngestError::EdgeOutOfRange {
                user,
                item,
                n_users,
                n_items,
            });
        }
        if seen.insert((user, item)) {
            applied += 1;
        } else {
            duplicates += 1;
        }
    }
    let graph = base.with_extra_edges(deltas);
    graph.validate()?;
    debug_assert_eq!(graph.n_interactions(), base.n_interactions() + applied);
    Ok(DeltaReport {
        graph,
        applied,
        duplicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> InteractionGraph {
        InteractionGraph::new(3, 4, vec![(0, 0), (0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn applies_new_edges_and_counts_duplicates() {
        let g = base();
        let report = apply_deltas(&g, &[(0, 2), (0, 1), (2, 0), (0, 2)]).unwrap();
        assert_eq!(report.applied, 2); // (0,2) and (2,0)
        assert_eq!(report.duplicates, 2); // (0,1) existed; (0,2) repeated
        assert_eq!(report.graph.n_interactions(), 6);
        assert!(report.graph.has_edge(0, 2));
        assert!(report.graph.has_edge(2, 0));
        report.graph.validate().unwrap();
        // The base graph is untouched.
        assert_eq!(g.n_interactions(), 4);
    }

    #[test]
    fn out_of_range_ids_are_typed_not_panics() {
        let g = base();
        assert_eq!(
            apply_deltas(&g, &[(0, 0), (3, 1)]).unwrap_err(),
            IngestError::EdgeOutOfRange {
                user: 3,
                item: 1,
                n_users: 3,
                n_items: 4
            }
        );
        assert_eq!(
            apply_deltas(&g, &[(1, 4)]).unwrap_err(),
            IngestError::EdgeOutOfRange {
                user: 1,
                item: 4,
                n_users: 3,
                n_items: 4
            }
        );
    }

    #[test]
    fn empty_delta_is_an_identity() {
        let g = base();
        let report = apply_deltas(&g, &[]).unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.graph.edges(), g.edges());
    }

    #[test]
    fn application_order_does_not_change_the_graph() {
        // The edge list is kept sorted, so any permutation of the same
        // delta set yields the same graph — the property that makes
        // windowed live application and one-shot replay agree.
        let g = base();
        let a = apply_deltas(&g, &[(0, 3), (1, 0), (2, 1)]).unwrap().graph;
        let b = apply_deltas(&g, &[(2, 1), (0, 3), (1, 0)]).unwrap().graph;
        assert_eq!(a.edges(), b.edges());
    }
}
