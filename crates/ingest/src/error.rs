//! The crate-wide typed error.

use graphaug_graph::GraphInvariantError;

/// Why an ingest operation was refused. Every failure mode the log,
/// delta, and server layers can hit is enumerated here so callers match
/// on categories instead of string-scraping messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// An underlying filesystem or socket operation failed.
    Io(String),
    /// A segment file does not start with the `GAUGILOG` magic.
    BadMagic {
        /// The offending file.
        path: String,
    },
    /// A segment carries a format version this build cannot read.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// A segment file is shorter than its fixed-size header.
    TruncatedHeader {
        /// The offending file.
        path: String,
    },
    /// A segment's header `start_offset` disagrees with the record count
    /// of the segments before it — the log directory is missing a
    /// segment or holds segments from two different logs.
    SegmentGap {
        /// Offset the chain so far implies.
        expected: u64,
        /// Offset the segment header claims.
        found: u64,
    },
    /// A record failed its FNV-1a-64 checksum (mid-log corruption; a
    /// torn *tail* is silently truncated by [`crate::LogWriter::open`]
    /// instead).
    CorruptRecord {
        /// Global offset of the bad record.
        offset: u64,
    },
    /// A read asked for offsets the log does not (yet) contain.
    RangeUnavailable {
        /// Requested start offset (inclusive).
        start: u64,
        /// Requested end offset (exclusive).
        end: u64,
        /// Records actually in the log.
        len: u64,
    },
    /// A logged interaction references ids outside the graph's bounds.
    EdgeOutOfRange {
        /// The interaction's user id.
        user: u32,
        /// The interaction's item id.
        item: u32,
        /// The graph's user count.
        n_users: usize,
        /// The graph's item count.
        n_items: usize,
    },
    /// The graph rebuilt from a delta batch failed its own invariant
    /// check — nothing downstream should train on it.
    Invariant(GraphInvariantError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "io error: {e}"),
            IngestError::BadMagic { path } => write!(f, "bad segment magic in {path}"),
            IngestError::BadVersion { found, supported } => {
                write!(
                    f,
                    "log format version {found} unsupported (expect {supported})"
                )
            }
            IngestError::TruncatedHeader { path } => {
                write!(f, "segment {path} shorter than its header")
            }
            IngestError::SegmentGap { expected, found } => {
                write!(
                    f,
                    "segment chain gap: expected start {expected}, found {found}"
                )
            }
            IngestError::CorruptRecord { offset } => {
                write!(f, "corrupt record at offset {offset}")
            }
            IngestError::RangeUnavailable { start, end, len } => {
                write!(f, "range [{start}, {end}) beyond log length {len}")
            }
            IngestError::EdgeOutOfRange {
                user,
                item,
                n_users,
                n_items,
            } => write!(
                f,
                "interaction ({user}, {item}) out of bounds for {n_users} users x {n_items} items"
            ),
            IngestError::Invariant(e) => write!(f, "delta-applied graph invalid: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<GraphInvariantError> for IngestError {
    fn from(e: GraphInvariantError) -> Self {
        IngestError::Invariant(e)
    }
}
