//! Streaming ingestion for the online-learning loop.
//!
//! Three layers, each one step closer to the trainer:
//!
//! * [`log`] — an append-only, checksummed interaction log on disk:
//!   fsync'd segment files framed like the checkpoint format (`GAUGILOG`
//!   magic, FNV-1a-64 per record), with torn-tail truncation on recovery.
//!   Offsets are global record indices, so "the graph at offset `w`" is a
//!   complete, replayable description of an evolving interaction set.
//! * [`delta`] — applies a slice of logged interactions to an
//!   [`graphaug_graph::InteractionGraph`]: ids are bounds-checked, edges
//!   already present are counted as duplicates rather than re-added, and
//!   the rebuilt graph is re-`validate()`d before anyone trains on it.
//! * [`server`] — a line-oriented TCP listener accepting `PUT user item`
//!   with `parse_numeric_edge_list`-grade strictness; every accepted
//!   interaction is durably appended before `OK off=<offset>` goes out.
//!
//! The contract that makes online learning reproducible: a log prefix
//! `[0, w)` plus the training seed determines the graph, the sampler
//! streams, and therefore the checkpoint bytes — replaying the same log
//! yields byte-identical generations at any `GRAPHAUG_THREADS`.

pub mod delta;
pub mod error;
pub mod log;
pub mod server;

pub use delta::{apply_deltas, DeltaReport};
pub use error::IngestError;
pub use log::{
    list_segments, log_len, read_range, segment_path, LogWriter, LOG_MAGIC, LOG_VERSION,
    RECORD_BYTES, SEGMENT_HEADER_BYTES,
};
pub use server::{parse_put, start_ingest, IngestHandle, IngestStats, PutRefusal};
