//! The TCP ingestion listener.
//!
//! Line-oriented, same shape as the serving tier's server: one accept
//! loop, one thread per connection. Verbs:
//!
//! ```text
//! PUT <user> <item>   → OK off=<offset>      (durably logged before OK)
//! STATS               → STATS ingested=<n> log_offset=<len>
//! PING                → PONG
//! QUIT                → BYE                   (closes the connection)
//! ```
//!
//! `PUT` parsing is strict in the `parse_numeric_edge_list` sense: exactly
//! two fields after the verb, both integers below the declared bounds —
//! anything else is a typed refusal rendered as `ERR ...`, and nothing
//! reaches the log. The log writer is shared behind a mutex with the
//! fine-tuning loop, which polls [`crate::log_len`] for fresh windows.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::IngestError;
use crate::log::LogWriter;

/// Why a `PUT` line was refused (nothing was logged).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PutRefusal {
    /// Wrong field count (wants exactly `PUT <user> <item>`).
    Malformed,
    /// A field is not an unsigned integer.
    NotAnInteger {
        /// The offending token.
        token: String,
    },
    /// An id is outside the declared user/item universe.
    OutOfRange {
        /// The offending token.
        token: String,
        /// The exclusive bound it violated.
        bound: u64,
    },
}

impl std::fmt::Display for PutRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PutRefusal::Malformed => write!(f, "usage: PUT <user> <item>"),
            PutRefusal::NotAnInteger { token } => write!(f, "not an integer: {token:?}"),
            PutRefusal::OutOfRange { token, bound } => {
                write!(f, "id {token} out of range (bound {bound})")
            }
        }
    }
}

/// Strictly parses the arguments of a `PUT` line (everything after the
/// verb): exactly two whitespace-separated integer ids below the bounds.
pub fn parse_put(rest: &str, n_users: usize, n_items: usize) -> Result<(u32, u32), PutRefusal> {
    let mut it = rest.split_whitespace();
    let (Some(u_tok), Some(v_tok), None) = (it.next(), it.next(), it.next()) else {
        return Err(PutRefusal::Malformed);
    };
    let bounded = |token: &str, bound: u64| -> Result<u32, PutRefusal> {
        let id: u64 = token.parse().map_err(|_| PutRefusal::NotAnInteger {
            token: token.to_string(),
        })?;
        if id >= bound {
            return Err(PutRefusal::OutOfRange {
                token: token.to_string(),
                bound,
            });
        }
        Ok(id as u32)
    };
    Ok((
        bounded(u_tok, n_users as u64)?,
        bounded(v_tok, n_items as u64)?,
    ))
}

/// A point-in-time snapshot of the ingestion counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestStats {
    /// Records appended through this process's writer.
    pub ingested: u64,
    /// Total records in the log (the next offset to be assigned).
    pub log_offset: u64,
}

/// Snapshot of the shared writer's counters.
pub fn stats(log: &Mutex<LogWriter>) -> IngestStats {
    let log = log.lock().expect("ingest log lock");
    IngestStats {
        ingested: log.appended(),
        log_offset: log.len(),
    }
}

/// A running ingestion listener; dropping (or [`IngestHandle::stop`])
/// shuts the accept loop down.
pub struct IngestHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl IngestHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for IngestHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves `PUT`s into `log`. Ids are validated against
/// `n_users`/`n_items` — the universe the downstream model was sized for.
pub fn start_ingest(
    log: Arc<Mutex<LogWriter>>,
    n_users: usize,
    n_items: usize,
    addr: &str,
) -> Result<IngestHandle, IngestError> {
    let listener = TcpListener::bind(addr).map_err(|e| IngestError::Io(e.to_string()))?;
    let local = listener
        .local_addr()
        .map_err(|e| IngestError::Io(e.to_string()))?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let accept_thread = std::thread::Builder::new()
        .name("graphaug-ingest-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let log = log.clone();
                let _ = std::thread::Builder::new()
                    .name("graphaug-ingest-conn".into())
                    .spawn(move || handle_connection(&log, n_users, n_items, stream));
            }
        })
        .map_err(|e| IngestError::Io(e.to_string()))?;
    Ok(IngestHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(log: &Mutex<LogWriter>, n_users: usize, n_items: usize, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let done = respond(log, n_users, n_items, &line, &mut writer).is_err();
        if writer.flush().is_err() || done {
            break;
        }
    }
}

/// Writes the response for one request; `Err(())` closes the connection.
fn respond(
    log: &Mutex<LogWriter>,
    n_users: usize,
    n_items: usize,
    line: &str,
    w: &mut impl Write,
) -> Result<(), ()> {
    let put = |w: &mut dyn Write, s: &str| -> Result<(), ()> { writeln!(w, "{s}").map_err(|_| ()) };
    let line = line.trim();
    let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    match verb {
        "PUT" => match parse_put(rest, n_users, n_items) {
            Ok((user, item)) => {
                let appended = log.lock().expect("ingest log lock").append(user, item);
                match appended {
                    Ok(offset) => put(w, &format!("OK off={offset}")),
                    Err(e) => put(w, &format!("ERR log append: {e}")),
                }
            }
            Err(refusal) => put(w, &format!("ERR {refusal}")),
        },
        "STATS" => {
            let s = stats(log);
            put(
                w,
                &format!("STATS ingested={} log_offset={}", s.ingested, s.log_offset),
            )
        }
        "PING" => put(w, "PONG"),
        "QUIT" => {
            put(w, "BYE")?;
            Err(())
        }
        _ => put(w, &format!("ERR unknown verb {verb:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    #[test]
    fn put_parsing_is_strict() {
        assert_eq!(parse_put("3 4", 10, 10), Ok((3, 4)));
        assert_eq!(parse_put("  3   4  ", 10, 10), Ok((3, 4)));
        assert_eq!(parse_put("3", 10, 10), Err(PutRefusal::Malformed));
        assert_eq!(parse_put("3 4 5", 10, 10), Err(PutRefusal::Malformed));
        assert_eq!(parse_put("", 10, 10), Err(PutRefusal::Malformed));
        assert_eq!(
            parse_put("alice 4", 10, 10),
            Err(PutRefusal::NotAnInteger {
                token: "alice".into()
            })
        );
        assert_eq!(
            parse_put("-1 4", 10, 10),
            Err(PutRefusal::NotAnInteger { token: "-1".into() })
        );
        assert_eq!(
            parse_put("10 4", 10, 10),
            Err(PutRefusal::OutOfRange {
                token: "10".into(),
                bound: 10
            })
        );
        assert_eq!(
            parse_put("3 12", 10, 10),
            Err(PutRefusal::OutOfRange {
                token: "12".into(),
                bound: 10
            })
        );
    }

    #[test]
    fn end_to_end_put_over_tcp() {
        let dir = std::env::temp_dir().join(format!("graphaug_ingest_tcp_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let log = Arc::new(Mutex::new(LogWriter::open(&dir, 64).unwrap()));
        let handle = start_ingest(log.clone(), 8, 8, "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut send = |line: &str| {
            let mut s = stream.try_clone().unwrap();
            writeln!(s, "{line}").unwrap();
            let mut out = String::new();
            reader.read_line(&mut out).unwrap();
            out.trim_end().to_string()
        };
        assert_eq!(send("PING"), "PONG");
        assert_eq!(send("PUT 1 2"), "OK off=0");
        assert_eq!(send("PUT 3 4"), "OK off=1");
        assert_eq!(send("PUT 9 0"), "ERR id 9 out of range (bound 8)");
        assert_eq!(send("PUT a b"), "ERR not an integer: \"a\"");
        assert_eq!(send("PUT 1"), "ERR usage: PUT <user> <item>");
        assert_eq!(send("STATS"), "STATS ingested=2 log_offset=2");
        assert_eq!(send("QUIT"), "BYE");
        handle.stop();
        assert_eq!(
            crate::log::read_range(&dir, 0, 2).unwrap(),
            vec![(1, 2), (3, 4)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
