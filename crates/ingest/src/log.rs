//! The append-only interaction log.
//!
//! A log is a directory of segment files named `seg-<start:016>.log`,
//! where `<start>` is the global offset (record index) of the segment's
//! first record. Each segment is:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "GAUGILOG"
//! 8       4     format version (u32 LE)
//! 12      8     start offset   (u64 LE)
//! 20      16*k  records
//! ```
//!
//! and each record is:
//!
//! ```text
//! offset  size  field
//! 0       4     user id (u32 LE)
//! 4       4     item id (u32 LE)
//! 8       8     FNV-1a-64 over user‖item‖global-offset (u64 LE)
//! ```
//!
//! Folding the record's *global offset* into the checksum means a record
//! sliced out of one position and replayed at another fails verification —
//! the same idea as the checkpoint frame's checksum, applied per record.
//!
//! Durability: [`LogWriter::append`] writes the record and fsyncs before
//! returning, so once the ingestion server has answered `OK off=N` the
//! interaction survives a crash. On reopen, a torn tail (a partial or
//! checksum-failing suffix of the *last* segment — the only segment a
//! crash can tear) is truncated away; corruption anywhere else is a typed
//! [`IngestError::CorruptRecord`], never silently skipped.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::IngestError;

/// First 8 bytes of every segment file.
pub const LOG_MAGIC: &[u8; 8] = b"GAUGILOG";
/// Segment format version this build writes and reads.
pub const LOG_VERSION: u32 = 1;
/// Fixed segment header size: magic + version + start offset.
pub const SEGMENT_HEADER_BYTES: u64 = 20;
/// Fixed record size: user + item + checksum.
pub const RECORD_BYTES: u64 = 16;

/// FNV-1a-64 (same parameters as the checkpoint frame in
/// `graphaug-runtime::snapshot`, re-stated here so the log layer stays
/// dependency-free).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn io_err<E: std::fmt::Display>(e: E) -> IngestError {
    IngestError::Io(e.to_string())
}

/// The on-disk path of the segment whose first record is `start`.
pub fn segment_path(dir: &Path, start: u64) -> PathBuf {
    dir.join(format!("seg-{start:016}.log"))
}

/// Segments in `dir`, sorted by start offset. Files that do not match the
/// `seg-<16 digits>.log` pattern are ignored (editors, tempfiles).
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, IngestError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err(e)),
    };
    for entry in entries {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(start) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".log"))
            .filter(|digits| digits.len() == 16 && digits.bytes().all(|b| b.is_ascii_digit()))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((start, entry.path()));
    }
    out.sort_unstable();
    Ok(out)
}

fn encode_record(user: u32, item: u32, offset: u64) -> [u8; RECORD_BYTES as usize] {
    let mut rec = [0u8; RECORD_BYTES as usize];
    rec[0..4].copy_from_slice(&user.to_le_bytes());
    rec[4..8].copy_from_slice(&item.to_le_bytes());
    let mut keyed = [0u8; 16];
    keyed[0..8].copy_from_slice(&rec[0..8]);
    keyed[8..16].copy_from_slice(&offset.to_le_bytes());
    rec[8..16].copy_from_slice(&fnv1a64(&keyed).to_le_bytes());
    rec
}

fn decode_record(rec: &[u8], offset: u64) -> Result<(u32, u32), IngestError> {
    let mut keyed = [0u8; 16];
    keyed[0..8].copy_from_slice(&rec[0..8]);
    keyed[8..16].copy_from_slice(&offset.to_le_bytes());
    let want = u64::from_le_bytes(rec[8..16].try_into().unwrap());
    if fnv1a64(&keyed) != want {
        return Err(IngestError::CorruptRecord { offset });
    }
    let user = u32::from_le_bytes(rec[0..4].try_into().unwrap());
    let item = u32::from_le_bytes(rec[4..8].try_into().unwrap());
    Ok((user, item))
}

/// Reads and verifies a segment header, returning its start offset.
fn read_header(file: &mut File, path: &Path) -> Result<u64, IngestError> {
    let mut header = [0u8; SEGMENT_HEADER_BYTES as usize];
    file.read_exact(&mut header)
        .map_err(|_| IngestError::TruncatedHeader {
            path: path.display().to_string(),
        })?;
    if &header[0..8] != LOG_MAGIC {
        return Err(IngestError::BadMagic {
            path: path.display().to_string(),
        });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != LOG_VERSION {
        return Err(IngestError::BadVersion {
            found: version,
            supported: LOG_VERSION,
        });
    }
    Ok(u64::from_le_bytes(header[12..20].try_into().unwrap()))
}

/// Verifies the segment chain (headers valid, start offsets contiguous)
/// and returns `(start, path, record_capacity_by_size)` per segment.
/// Record counts are derived from file sizes (floor), so a torn tail on
/// the last segment is *counted generously* here — the writer truncates
/// it on open, and readers fail typed on the bad record.
fn chain(dir: &Path) -> Result<Vec<(u64, PathBuf, u64)>, IngestError> {
    let mut out = Vec::new();
    let mut expected = 0u64;
    for (start, path) in list_segments(dir)? {
        let mut file = File::open(&path).map_err(io_err)?;
        let header_start = read_header(&mut file, &path)?;
        if header_start != start || start != expected {
            return Err(IngestError::SegmentGap {
                expected,
                found: header_start,
            });
        }
        let size = file.metadata().map_err(io_err)?.len();
        let records = size.saturating_sub(SEGMENT_HEADER_BYTES) / RECORD_BYTES;
        expected = start + records;
        out.push((start, path, records));
    }
    Ok(out)
}

/// Records currently in the log (`0` for a missing or empty directory).
/// Read-only: never truncates; a torn final record is still counted until
/// the writer next recovers the directory.
pub fn log_len(dir: &Path) -> Result<u64, IngestError> {
    Ok(chain(dir)?.last().map_or(0, |(start, _, n)| start + n))
}

/// Reads records `[start, end)` with per-record checksum verification.
pub fn read_range(dir: &Path, start: u64, end: u64) -> Result<Vec<(u32, u32)>, IngestError> {
    let segments = chain(dir)?;
    let len = segments.last().map_or(0, |(s, _, n)| s + n);
    if start > end || end > len {
        return Err(IngestError::RangeUnavailable { start, end, len });
    }
    let mut out = Vec::with_capacity((end - start) as usize);
    let mut rec = [0u8; RECORD_BYTES as usize];
    for (seg_start, path, records) in segments {
        let seg_end = seg_start + records;
        if seg_end <= start || seg_start >= end {
            continue;
        }
        let from = start.max(seg_start);
        let to = end.min(seg_end);
        let mut file = File::open(&path).map_err(io_err)?;
        file.seek(SeekFrom::Start(
            SEGMENT_HEADER_BYTES + (from - seg_start) * RECORD_BYTES,
        ))
        .map_err(io_err)?;
        for offset in from..to {
            file.read_exact(&mut rec)
                .map_err(|_| IngestError::CorruptRecord { offset })?;
            out.push(decode_record(&rec, offset)?);
        }
    }
    Ok(out)
}

/// The append side of the log. Exactly one writer owns a log directory at
/// a time (the ingestion daemon); readers use the free functions above.
pub struct LogWriter {
    dir: PathBuf,
    segment_records: u64,
    file: File,
    seg_start: u64,
    len: u64,
    appended: u64,
}

impl LogWriter {
    /// Opens (or creates) the log in `dir`, recovering from a torn tail:
    /// the last segment is scanned record-by-record and truncated at the
    /// first partial or checksum-failing record. Segments rotate after
    /// `segment_records` records (must be ≥ 1).
    pub fn open(dir: &Path, segment_records: u64) -> Result<LogWriter, IngestError> {
        assert!(segment_records >= 1, "segment_records must be >= 1");
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let segments = chain(dir)?;
        let Some(&(seg_start, ref path, _)) = segments.last() else {
            let file = Self::new_segment(dir, 0)?;
            return Ok(LogWriter {
                dir: dir.to_path_buf(),
                segment_records,
                file,
                seg_start: 0,
                len: 0,
                appended: 0,
            });
        };
        // Scan-verify the last segment and truncate the torn tail.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io_err)?;
        read_header(&mut file, path)?;
        let size = file.metadata().map_err(io_err)?.len();
        let capacity = size.saturating_sub(SEGMENT_HEADER_BYTES) / RECORD_BYTES;
        let mut good = 0u64;
        let mut rec = [0u8; RECORD_BYTES as usize];
        while good < capacity {
            if file.read_exact(&mut rec).is_err() || decode_record(&rec, seg_start + good).is_err()
            {
                break;
            }
            good += 1;
        }
        let end = SEGMENT_HEADER_BYTES + good * RECORD_BYTES;
        if end != size {
            file.set_len(end).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
        }
        file.seek(SeekFrom::Start(end)).map_err(io_err)?;
        Ok(LogWriter {
            dir: dir.to_path_buf(),
            segment_records,
            file,
            seg_start,
            len: seg_start + good,
            appended: 0,
        })
    }

    fn new_segment(dir: &Path, start: u64) -> Result<File, IngestError> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(segment_path(dir, start))
            .map_err(io_err)?;
        let mut header = [0u8; SEGMENT_HEADER_BYTES as usize];
        header[0..8].copy_from_slice(LOG_MAGIC);
        header[8..12].copy_from_slice(&LOG_VERSION.to_le_bytes());
        header[12..20].copy_from_slice(&start.to_le_bytes());
        file.write_all(&header).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
        Ok(file)
    }

    /// Durably appends one interaction and returns its global offset: the
    /// record is written *and fsync'd* before this returns, so an `OK`
    /// answered off the back of it survives a crash.
    pub fn append(&mut self, user: u32, item: u32) -> Result<u64, IngestError> {
        if self.len - self.seg_start >= self.segment_records {
            self.file.sync_all().map_err(io_err)?;
            self.file = Self::new_segment(&self.dir, self.len)?;
            self.seg_start = self.len;
        }
        let offset = self.len;
        self.file
            .write_all(&encode_record(user, item, offset))
            .map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        self.len += 1;
        self.appended += 1;
        Ok(offset)
    }

    /// Records in the log (next offset to be assigned).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records appended through *this* writer (excludes recovered ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("graphaug_ingest_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_across_segments() {
        let dir = tmp("roundtrip");
        let mut w = LogWriter::open(&dir, 4).unwrap();
        let pairs: Vec<(u32, u32)> = (0..10).map(|i| (i, 2 * i + 1)).collect();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(w.append(u, v).unwrap(), i as u64);
        }
        assert_eq!(w.len(), 10);
        // 10 records at 4/segment → segments start at 0, 4, 8.
        let starts: Vec<u64> = list_segments(&dir).unwrap().iter().map(|s| s.0).collect();
        assert_eq!(starts, vec![0, 4, 8]);
        assert_eq!(log_len(&dir).unwrap(), 10);
        assert_eq!(read_range(&dir, 0, 10).unwrap(), pairs);
        assert_eq!(read_range(&dir, 3, 7).unwrap(), pairs[3..7].to_vec());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_resumes_at_the_same_offset() {
        let dir = tmp("reopen");
        let mut w = LogWriter::open(&dir, 4).unwrap();
        for i in 0..6u32 {
            w.append(i, i).unwrap();
        }
        drop(w);
        let mut w = LogWriter::open(&dir, 4).unwrap();
        assert_eq!(w.len(), 6);
        assert_eq!(w.appended(), 0);
        assert_eq!(w.append(9, 9).unwrap(), 6);
        assert_eq!(read_range(&dir, 5, 7).unwrap(), vec![(5, 5), (9, 9)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp("torn");
        let mut w = LogWriter::open(&dir, 100).unwrap();
        for i in 0..5u32 {
            w.append(i, i).unwrap();
        }
        drop(w);
        // Tear the last record in half.
        let path = segment_path(&dir, 0);
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - RECORD_BYTES / 2).unwrap();
        drop(file);
        let mut w = LogWriter::open(&dir, 100).unwrap();
        assert_eq!(w.len(), 4);
        assert_eq!(w.append(7, 7).unwrap(), 4);
        assert_eq!(
            read_range(&dir, 0, 5).unwrap(),
            vec![(0, 0), (1, 1), (2, 2), (3, 3), (7, 7)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_tail_of_full_length_is_truncated_too() {
        let dir = tmp("garbage");
        let mut w = LogWriter::open(&dir, 100).unwrap();
        for i in 0..3u32 {
            w.append(i, i).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, 0);
        // A crash can leave a full-length record of garbage: flip a byte
        // in the last record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 12] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let w = LogWriter::open(&dir, 100).unwrap();
        assert_eq!(w.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_a_typed_read_error() {
        let dir = tmp("midcorrupt");
        let mut w = LogWriter::open(&dir, 100).unwrap();
        for i in 0..4u32 {
            w.append(i, i).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt record 1 (not the tail).
        let at = (SEGMENT_HEADER_BYTES + RECORD_BYTES) as usize;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_range(&dir, 0, 4).unwrap_err(),
            IngestError::CorruptRecord { offset: 1 }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_checksum_binds_the_offset() {
        // The same (user, item) payload at two offsets must produce two
        // different checksums, or splicing records between positions
        // would go unnoticed.
        assert_ne!(encode_record(3, 4, 0), encode_record(3, 4, 1));
    }

    #[test]
    fn reads_beyond_the_log_are_typed() {
        let dir = tmp("beyond");
        let mut w = LogWriter::open(&dir, 8).unwrap();
        w.append(0, 0).unwrap();
        assert_eq!(
            read_range(&dir, 0, 2).unwrap_err(),
            IngestError::RangeUnavailable {
                start: 0,
                end: 2,
                len: 1
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_is_a_chain_gap() {
        let dir = tmp("gap");
        let mut w = LogWriter::open(&dir, 2).unwrap();
        for i in 0..6u32 {
            w.append(i, i).unwrap();
        }
        drop(w);
        std::fs::remove_file(segment_path(&dir, 2)).unwrap();
        assert_eq!(
            log_len(&dir).unwrap_err(),
            IngestError::SegmentGap {
                expected: 2,
                found: 4
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_dir_is_length_zero() {
        let dir = tmp("absent");
        assert_eq!(log_len(&dir).unwrap(), 0);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(log_len(&dir).unwrap(), 0);
        assert_eq!(read_range(&dir, 0, 0).unwrap(), Vec::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_magic_and_versions_are_rejected() {
        let dir = tmp("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(segment_path(&dir, 0), b"NOTALOGX____________").unwrap();
        assert!(matches!(
            log_len(&dir).unwrap_err(),
            IngestError::BadMagic { .. }
        ));
        let mut header = [0u8; SEGMENT_HEADER_BYTES as usize];
        header[0..8].copy_from_slice(LOG_MAGIC);
        header[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(segment_path(&dir, 0), header).unwrap();
        assert_eq!(
            log_len(&dir).unwrap_err(),
            IngestError::BadVersion {
                found: 99,
                supported: LOG_VERSION
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
