//! Shard router + HA layer for multi-replica GraphAug serving.
//!
//! One `graphaug-serve` engine is one model replica: one checkpoint
//! directory, one box's worth of tables and threads. This crate scales the
//! serving tier *past* one replica — and keeps it answering through
//! process death — with the smallest possible moving parts:
//!
//! 1. **Deterministic sharding** ([`hash::shard_of`]): each user hashes to
//!    its owning shard with a process-independent hash — the same function
//!    the chaos load generator and the tests link, so "who owns user `u`"
//!    has exactly one answer everywhere.
//! 2. **Byte-for-byte relay** ([`router`]): the router speaks the existing
//!    `REC`/`STATS`/`PING`/`QUIT` protocol on both sides and relays
//!    replica response lines verbatim, so routed responses are
//!    bit-identical to direct ones.
//! 3. **Replica sets with in-request failover** ([`health`], [`router`]):
//!    each shard is an ordered set of replicas (primary first) serving the
//!    same checkpoint generation; when the primary dies or hangs, the
//!    router fails over to a secondary *within the same request* — and
//!    because the replicas serve the same bits, the client cannot tell. A
//!    background `STATS` prober tracks per-replica health and checkpoint
//!    generation; a secondary whose generation lags its set is marked
//!    degraded and skipped rather than served stale.
//! 4. **Deadline budgets** ([`deadline`]): every request carries one
//!    [`deadline::Deadline`]; connect timeouts, socket I/O, and backoff
//!    sleeps all clamp to its remaining budget across retry and failover,
//!    so a request can never burn more than `request_budget` of wall
//!    clock. Exhaustion answers a typed `ERR deadline …`, distinct from
//!    `ERR down …`.
//! 5. **A loopback-only admin surface**: `REPLACE <shard> [<replica>]
//!    <addr>` re-points a replica that respawned on a new port — accepted
//!    only on the separate admin listener; the public port answers a typed
//!    `ERR admin …`.
//! 6. **A supervisor** ([`supervise`]): owns the replica child processes —
//!    spawn, liveness-watch (exit + `PING`), respawn with seeded
//!    exponential backoff + jitter under a restart budget, and automatic
//!    `REPLACE` when the respawn lands on a new ephemeral port. The
//!    `supervisord` binary is the one-command HA deployment: it spawns
//!    `shards × replication` replicas, boots the router in-process, and
//!    babysits everything.
//!
//! The binaries: `router_main` (a standalone router in front of
//! already-running replicas), `supervisord` (replicas + router + respawn
//! loop in one process), `chaos_loadgen` (a seeded scenario driver —
//! zipfian skew, hot-key storms, scripted kill/rejoin timelines — that
//! asserts zero errors outside the allowed window and hex-exact
//! routed-vs-direct parity), and `mock_replica` (a protocol-faithful
//! stand-in engine for supervisor tests and benches).

pub mod deadline;
pub mod hash;
pub mod health;
pub mod router;
pub mod supervise;

pub use deadline::{Deadline, MIN_IO_TIMEOUT};
pub use hash::{parse_replica_sets, shard_of, SHARD_HASH_SALT};
pub use health::{failover_order, probe_once, spawn_prober, HealthBoard, Prober, ReplicaHealth};
pub use router::{start, start_with_admin, Router, RouterConfig, RouterHandle};
pub use supervise::{
    backoff_with_jitter, spawn_ready, ChildGuard, Supervisor, SupervisorConfig, SupervisorStats,
};
