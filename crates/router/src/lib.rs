//! Shard router for multi-replica GraphAug serving.
//!
//! One `graphaug-serve` engine is one model replica: one checkpoint
//! directory, one box's worth of tables and threads. This crate scales the
//! serving tier *past* one replica with the smallest possible moving part:
//! a dependency-free TCP router process that
//!
//! 1. hashes each user to its owning replica with a deterministic,
//!    process-independent hash ([`hash::shard_of`] — the same function the
//!    chaos load generator and the tests link, so "who owns user `u`" has
//!    exactly one answer everywhere);
//! 2. speaks the existing `REC`/`STATS`/`PING`/`QUIT` protocol on both
//!    sides, relaying replica response lines **byte-for-byte** (routed
//!    responses are therefore bit-identical to direct ones);
//! 3. tracks per-replica health ([`health::HealthBoard`] + a background
//!    `PING` prober) with bounded retry-with-backoff on the data path, so
//!    a killed replica degrades only the users it owns and a returning
//!    replica rejoins without a router restart (`REPLACE <shard> <addr>`
//!    re-points a shard whose replica came back on a new port).
//!
//! The binaries: `router_main` (the router process `ci.sh` boots in front
//! of three replicas) and `chaos_loadgen` (a seeded scenario driver —
//! zipfian skew, hot-key storms, a scripted kill/rejoin timeline in the
//! `FaultPlan` spirit — that asserts zero errors outside the failover
//! window and hex-exact routed-vs-direct parity).

pub mod hash;
pub mod health;
pub mod router;

pub use hash::{shard_of, SHARD_HASH_SALT};
pub use health::{probe_once, spawn_prober, HealthBoard, Prober};
pub use router::{start, Router, RouterConfig, RouterHandle};
