//! Per-replica health state and the background prober.
//!
//! The [`HealthBoard`] is the router's shared, lock-light view of which
//! replicas are currently answering. Two sources feed it:
//!
//! * the **data path** reports connect/IO failures and successes as they
//!   happen (so a dead replica is usually noticed by the first request
//!   that hits it), and
//! * the background **prober** opens a fresh connection and `PING`s every
//!   replica each period — which is what notices a replica *coming back*,
//!   since the data path fast-fails down shards without touching the
//!   network.
//!
//! A replica is marked down after `down_after` consecutive failures and up
//! again after a single successful probe. Addresses are mutable via
//! [`HealthBoard::replace`], the rejoin path for a replica that restarts
//! on a new port (`REPLACE` on the router's admin surface): the swap
//! resets the failure counter and leaves the shard down until the prober
//! confirms the new address actually answers.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use graphaug_serve::ServeClient;

struct Replica {
    addr: Mutex<String>,
    /// Bumped on every address replacement; lets a connection cache detect
    /// that its socket points at a stale address without comparing strings.
    epoch: AtomicU64,
    up: AtomicBool,
    consecutive_failures: AtomicU32,
    probes: AtomicU64,
    transitions: AtomicU64,
}

/// Shared health state for all shards.
pub struct HealthBoard {
    replicas: Vec<Replica>,
    down_after: u32,
}

impl HealthBoard {
    /// A board over `addrs`, optimistically all-up (the first failures
    /// flip a shard down; starting down would reject traffic before the
    /// first probe cycle completes).
    pub fn new(addrs: &[String], down_after: u32) -> HealthBoard {
        assert!(!addrs.is_empty(), "router needs at least one replica");
        HealthBoard {
            replicas: addrs
                .iter()
                .map(|a| Replica {
                    addr: Mutex::new(a.clone()),
                    epoch: AtomicU64::new(0),
                    up: AtomicBool::new(true),
                    consecutive_failures: AtomicU32::new(0),
                    probes: AtomicU64::new(0),
                    transitions: AtomicU64::new(0),
                })
                .collect(),
            down_after: down_after.max(1),
        }
    }

    /// Number of shards on the board.
    pub fn n_shards(&self) -> usize {
        self.replicas.len()
    }

    /// The current address of `shard`, plus the address epoch it belongs
    /// to (see [`HealthBoard::replace`]).
    pub fn addr(&self, shard: usize) -> (String, u64) {
        let r = &self.replicas[shard];
        let addr = r.addr.lock().expect("addr lock").clone();
        (addr, r.epoch.load(Ordering::Acquire))
    }

    /// Points `shard` at a new address (a restarted replica). The shard
    /// stays down until the prober confirms the replacement answers.
    pub fn replace(&self, shard: usize, addr: &str) {
        let r = &self.replicas[shard];
        *r.addr.lock().expect("addr lock") = addr.to_string();
        r.epoch.fetch_add(1, Ordering::AcqRel);
        r.consecutive_failures.store(0, Ordering::Relaxed);
        if r.up.swap(false, Ordering::Relaxed) {
            r.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Is `shard` currently believed to be answering?
    pub fn is_up(&self, shard: usize) -> bool {
        self.replicas[shard].up.load(Ordering::Relaxed)
    }

    /// Number of shards currently up.
    pub fn up_count(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.up.load(Ordering::Relaxed))
            .count()
    }

    /// Per-shard up/down snapshot.
    pub fn states(&self) -> Vec<bool> {
        self.replicas
            .iter()
            .map(|r| r.up.load(Ordering::Relaxed))
            .collect()
    }

    /// Records a successful interaction with `shard` (data path or probe):
    /// resets the failure streak and marks the shard up.
    pub fn report_ok(&self, shard: usize) {
        let r = &self.replicas[shard];
        r.consecutive_failures.store(0, Ordering::Relaxed);
        if !r.up.swap(true, Ordering::Relaxed) {
            r.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a failed interaction with `shard`; marks it down once the
    /// streak reaches `down_after`.
    pub fn report_failure(&self, shard: usize) {
        let r = &self.replicas[shard];
        let streak = r.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.down_after && r.up.swap(false, Ordering::Relaxed) {
            r.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Forces `shard` down immediately (tests and benches; the data path
    /// then fast-fails it without network traffic).
    pub fn force_down(&self, shard: usize) {
        let r = &self.replicas[shard];
        r.consecutive_failures
            .store(self.down_after, Ordering::Relaxed);
        if r.up.swap(false, Ordering::Relaxed) {
            r.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total up/down transitions observed for `shard` (flap telemetry).
    pub fn transitions(&self, shard: usize) -> u64 {
        self.replicas[shard].transitions.load(Ordering::Relaxed)
    }

    /// Total probe attempts against `shard`.
    pub fn probes(&self, shard: usize) -> u64 {
        self.replicas[shard].probes.load(Ordering::Relaxed)
    }

    fn record_probe(&self, shard: usize) {
        self.replicas[shard].probes.fetch_add(1, Ordering::Relaxed);
    }
}

/// Opens a fresh connection to `shard`'s current address and `PING`s it
/// once. Returns whether the replica answered.
pub fn probe_once(board: &HealthBoard, shard: usize, timeout: Duration) -> bool {
    board.record_probe(shard);
    let (addr, _) = board.addr(shard);
    let ok = ServeClient::connect_with_timeouts(&addr, timeout, Some(timeout))
        .and_then(|mut c| c.ping())
        .unwrap_or(false);
    if ok {
        board.report_ok(shard);
    } else {
        board.report_failure(shard);
    }
    ok
}

/// Handle of the background prober thread; stops (and joins) on
/// [`Prober::stop`] or drop.
pub struct Prober {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Prober {
    /// Signals the prober thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Prober {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns a thread that probes every shard each `period` (connect + PING
/// with `timeout`). This is the rejoin path: a down shard that starts
/// answering again is marked up within one probe period, with no router
/// restart.
pub fn spawn_prober(board: Arc<HealthBoard>, period: Duration, timeout: Duration) -> Prober {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::Builder::new()
        .name("graphaug-router-prober".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                for shard in 0..board.n_shards() {
                    if stop_flag.load(Ordering::Relaxed) {
                        return;
                    }
                    probe_once(&board, shard, timeout);
                }
                std::thread::sleep(period);
            }
        })
        .expect("spawn health prober");
    Prober {
        stop,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> HealthBoard {
        HealthBoard::new(&["127.0.0.1:1".into(), "127.0.0.1:2".into()], 2)
    }

    #[test]
    fn down_needs_a_streak_up_needs_one_success() {
        let b = board();
        assert!(b.is_up(0));
        b.report_failure(0);
        assert!(b.is_up(0), "one failure below the threshold keeps it up");
        b.report_failure(0);
        assert!(!b.is_up(0), "threshold reached");
        assert_eq!(b.up_count(), 1);
        b.report_ok(0);
        assert!(b.is_up(0), "one success rejoins");
        assert_eq!(b.transitions(0), 2);
    }

    #[test]
    fn successes_reset_the_streak() {
        let b = board();
        b.report_failure(1);
        b.report_ok(1);
        b.report_failure(1);
        assert!(b.is_up(1), "streak was reset in between");
    }

    #[test]
    fn replace_swaps_the_address_and_bumps_the_epoch() {
        let b = board();
        let (addr0, epoch0) = b.addr(0);
        assert_eq!(addr0, "127.0.0.1:1");
        b.replace(0, "127.0.0.1:9");
        let (addr1, epoch1) = b.addr(0);
        assert_eq!(addr1, "127.0.0.1:9");
        assert!(epoch1 > epoch0);
        assert!(!b.is_up(0), "replacement waits for probe confirmation");
        b.report_ok(0);
        assert!(b.is_up(0));
    }

    #[test]
    fn probe_against_a_dead_port_marks_down() {
        // Port 1 on loopback refuses instantly.
        let b = HealthBoard::new(&["127.0.0.1:1".into()], 1);
        assert!(!probe_once(&b, 0, Duration::from_millis(200)));
        assert!(!b.is_up(0));
        assert_eq!(b.probes(0), 1);
    }
}
