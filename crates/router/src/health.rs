//! Per-replica health state for replicated shards, and the background
//! prober.
//!
//! The [`HealthBoard`] is the router's shared, lock-light view of every
//! replica in every shard's replica set. Two sources feed it:
//!
//! * the **data path** reports connect/IO failures and successes as they
//!   happen (so a dead replica is usually noticed by the first request
//!   that hits it), and
//! * the background **prober** opens a fresh connection each period and
//!   asks every replica for `STATS` — which is what notices a replica
//!   *coming back* (the data path never touches replicas it believes are
//!   down), and what feeds each replica's **checkpoint generation** into
//!   the board for skew detection.
//!
//! # Replica sets and the failover order
//!
//! Each shard is backed by an ordered replica set: index 0 is the
//! *primary*, higher indices are *secondaries*. All replicas of a set
//! serve the same checkpoint directory, so a failover answers with the
//! **same bits** — which is the whole reason failover can be transparent.
//! The serving choice is deterministic: the lowest-index replica that is
//! up and not degraded ([`failover_order`] is the pure decision function;
//! property tests drive it directly). No randomness, no load feedback —
//! two routers watching the same board pick the same replica.
//!
//! # Generation skew and the `degraded` state
//!
//! "Same bits" holds only while the set serves the same checkpoint
//! generation. Hot reload makes generations advance per-replica (each
//! replica's watcher picks the new checkpoint up independently), so there
//! is a window where a secondary lags the primary. A replica whose last
//! probed generation is **behind the newest generation seen among its
//! set's up replicas** is marked *degraded*: still alive, still probed,
//! but skipped by the failover order — a stale answer served during
//! failover would silently break bit-parity, which is worse than a typed
//! error. The moment its watcher catches up (next probe reports the new
//! generation), the flag clears.
//!
//! A replica is marked down after `down_after` consecutive failures and up
//! again after a single success. Addresses are mutable via
//! [`HealthBoard::replace`], the rejoin path for a replica that restarts
//! on a new port (`REPLACE` on the router's admin listener): the swap
//! resets the failure counter and leaves the replica down until the
//! prober confirms the new address actually answers.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use graphaug_serve::{stats_field, ServeClient};

/// One replica's health snapshot, as the failover decision sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Answering and serving the set's newest known generation.
    Up,
    /// Not answering (or not yet confirmed after a `REPLACE`).
    Down,
    /// Answering, but its checkpoint generation lags the set — skipped by
    /// failover so a stale replica can never break bit-parity.
    Degraded,
}

impl ReplicaHealth {
    /// The `STATS` token for this state.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReplicaHealth::Up => "up",
            ReplicaHealth::Down => "down",
            ReplicaHealth::Degraded => "degraded",
        }
    }
}

/// The deterministic failover decision: the indices of serving-eligible
/// replicas (up and not degraded), in replica-set order. The first entry
/// is the replica a request is sent to; the rest are tried in order when
/// it fails mid-request. Pure function of the snapshot — property tests
/// drive it directly against a reference model.
pub fn failover_order(states: &[ReplicaHealth]) -> Vec<usize> {
    states
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == ReplicaHealth::Up)
        .map(|(i, _)| i)
        .collect()
}

struct Replica {
    addr: Mutex<String>,
    /// Bumped on every address replacement; lets a connection cache detect
    /// that its socket points at a stale address without comparing strings.
    epoch: AtomicU64,
    up: AtomicBool,
    /// Up but serving an older generation than the set's newest (skew).
    degraded: AtomicBool,
    /// Last checkpoint generation a probe reported; 0 = not yet known.
    generation: AtomicU64,
    consecutive_failures: AtomicU32,
    probes: AtomicU64,
    transitions: AtomicU64,
}

impl Replica {
    fn new(addr: &str) -> Replica {
        Replica {
            addr: Mutex::new(addr.to_string()),
            epoch: AtomicU64::new(0),
            up: AtomicBool::new(true),
            degraded: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            consecutive_failures: AtomicU32::new(0),
            probes: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
        }
    }

    fn health(&self) -> ReplicaHealth {
        if !self.up.load(Ordering::Relaxed) {
            ReplicaHealth::Down
        } else if self.degraded.load(Ordering::Relaxed) {
            ReplicaHealth::Degraded
        } else {
            ReplicaHealth::Up
        }
    }
}

/// Shared health state for every replica of every shard.
pub struct HealthBoard {
    shards: Vec<Vec<Replica>>,
    down_after: u32,
}

impl HealthBoard {
    /// A board over per-shard replica sets, optimistically all-up (the
    /// first failures flip a replica down; starting down would reject
    /// traffic before the first probe cycle completes).
    pub fn new(sets: &[Vec<String>], down_after: u32) -> HealthBoard {
        assert!(!sets.is_empty(), "router needs at least one shard");
        HealthBoard {
            shards: sets
                .iter()
                .map(|set| {
                    assert!(!set.is_empty(), "every shard needs at least one replica");
                    set.iter().map(|a| Replica::new(a)).collect()
                })
                .collect(),
            down_after: down_after.max(1),
        }
    }

    /// Number of shards on the board.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of replicas backing `shard`.
    pub fn n_replicas(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// The current address of `(shard, replica)`, plus the address epoch
    /// it belongs to (see [`HealthBoard::replace`]).
    pub fn addr(&self, shard: usize, replica: usize) -> (String, u64) {
        let r = &self.shards[shard][replica];
        let addr = r.addr.lock().expect("addr lock").clone();
        (addr, r.epoch.load(Ordering::Acquire))
    }

    /// Points `(shard, replica)` at a new address (a restarted process).
    /// The replica stays down until the prober confirms the replacement
    /// answers, and its generation resets to unknown — the new process
    /// may still be loading a checkpoint.
    pub fn replace(&self, shard: usize, replica: usize, addr: &str) {
        let r = &self.shards[shard][replica];
        *r.addr.lock().expect("addr lock") = addr.to_string();
        r.epoch.fetch_add(1, Ordering::AcqRel);
        r.consecutive_failures.store(0, Ordering::Relaxed);
        r.generation.store(0, Ordering::Relaxed);
        r.degraded.store(false, Ordering::Relaxed);
        if r.up.swap(false, Ordering::Relaxed) {
            r.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Is `(shard, replica)` currently believed to be answering?
    pub fn is_up(&self, shard: usize, replica: usize) -> bool {
        self.shards[shard][replica].up.load(Ordering::Relaxed)
    }

    /// Is `(shard, replica)` up but generation-skewed?
    pub fn is_degraded(&self, shard: usize, replica: usize) -> bool {
        self.shards[shard][replica].health() == ReplicaHealth::Degraded
    }

    /// The last checkpoint generation a probe reported for
    /// `(shard, replica)` (0 until the first successful probe).
    pub fn generation(&self, shard: usize, replica: usize) -> u64 {
        self.shards[shard][replica]
            .generation
            .load(Ordering::Relaxed)
    }

    /// Per-replica health snapshot for `shard`, in replica-set order.
    pub fn shard_states(&self, shard: usize) -> Vec<ReplicaHealth> {
        self.shards[shard].iter().map(|r| r.health()).collect()
    }

    /// The serving-eligible replicas of `shard` in deterministic failover
    /// order (see [`failover_order`]). Empty means the shard is down.
    pub fn serving_order(&self, shard: usize) -> Vec<usize> {
        failover_order(&self.shard_states(shard))
    }

    /// The replica a fresh request for `shard` is sent to, if any.
    pub fn serving_replica(&self, shard: usize) -> Option<usize> {
        self.serving_order(shard).first().copied()
    }

    /// Does `shard` have any serving-eligible replica?
    pub fn shard_up(&self, shard: usize) -> bool {
        self.serving_replica(shard).is_some()
    }

    /// Number of shards with at least one serving-eligible replica.
    pub fn shards_up(&self) -> usize {
        (0..self.n_shards()).filter(|&s| self.shard_up(s)).count()
    }

    /// Total replicas currently up (degraded counts as up: it answers).
    pub fn up_count(&self) -> usize {
        self.shards
            .iter()
            .flatten()
            .filter(|r| r.up.load(Ordering::Relaxed))
            .count()
    }

    /// Records a successful interaction with `(shard, replica)` (data
    /// path or probe): resets the failure streak and marks it up.
    pub fn report_ok(&self, shard: usize, replica: usize) {
        let r = &self.shards[shard][replica];
        r.consecutive_failures.store(0, Ordering::Relaxed);
        if !r.up.swap(true, Ordering::Relaxed) {
            r.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a failed interaction with `(shard, replica)`; marks it
    /// down once the streak reaches `down_after`.
    pub fn report_failure(&self, shard: usize, replica: usize) {
        let r = &self.shards[shard][replica];
        let streak = r.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.down_after && r.up.swap(false, Ordering::Relaxed) {
            r.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the checkpoint generation a probe observed on
    /// `(shard, replica)` and recomputes the set's skew flags: every up
    /// replica with a known generation behind the set's newest known
    /// generation is degraded; everyone at the front (or not yet probed)
    /// is not.
    pub fn report_generation(&self, shard: usize, replica: usize, generation: u64) {
        self.shards[shard][replica]
            .generation
            .store(generation, Ordering::Relaxed);
        let set = &self.shards[shard];
        let newest = set
            .iter()
            .filter(|r| r.up.load(Ordering::Relaxed))
            .map(|r| r.generation.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        for r in set {
            let gen = r.generation.load(Ordering::Relaxed);
            // Unknown (0) generations are exempt: a replica that has not
            // been probed yet is not evidence of skew.
            r.degraded
                .store(gen != 0 && gen < newest, Ordering::Relaxed);
        }
    }

    /// Forces `(shard, replica)` down immediately (tests and benches; the
    /// data path then skips it without network traffic).
    pub fn force_down(&self, shard: usize, replica: usize) {
        let r = &self.shards[shard][replica];
        r.consecutive_failures
            .store(self.down_after, Ordering::Relaxed);
        if r.up.swap(false, Ordering::Relaxed) {
            r.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total up/down transitions observed for `(shard, replica)` (flap
    /// telemetry).
    pub fn transitions(&self, shard: usize, replica: usize) -> u64 {
        self.shards[shard][replica]
            .transitions
            .load(Ordering::Relaxed)
    }

    /// Total probe attempts against `(shard, replica)`.
    pub fn probes(&self, shard: usize, replica: usize) -> u64 {
        self.shards[shard][replica].probes.load(Ordering::Relaxed)
    }

    fn record_probe(&self, shard: usize, replica: usize) {
        self.shards[shard][replica]
            .probes
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Opens a fresh connection to `(shard, replica)`'s current address and
/// asks it for `STATS` once. A well-formed answer marks the replica up
/// and feeds its checkpoint generation into the board (skew detection);
/// any failure feeds the down streak. Returns whether the replica
/// answered.
pub fn probe_once(board: &HealthBoard, shard: usize, replica: usize, timeout: Duration) -> bool {
    board.record_probe(shard, replica);
    let (addr, _) = board.addr(shard, replica);
    let line = ServeClient::connect_with_timeouts(&addr, timeout, Some(timeout))
        .and_then(|mut c| c.stats_line())
        .ok()
        .filter(|l| l.starts_with("STATS "));
    match line {
        Some(line) => {
            board.report_ok(shard, replica);
            if let Some(gen) = stats_field(&line, "gen=").and_then(|v| v.parse::<u64>().ok()) {
                board.report_generation(shard, replica, gen);
            }
            true
        }
        None => {
            board.report_failure(shard, replica);
            false
        }
    }
}

/// Handle of the background prober thread; stops (and joins) on
/// [`Prober::stop`] or drop.
pub struct Prober {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Prober {
    /// Signals the prober thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Prober {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns a thread that probes every replica of every shard each `period`
/// (connect + `STATS` with `timeout`). This is the rejoin path — a down
/// replica that starts answering again is marked up within one probe
/// period, with no router restart — and the skew detector's sensor: each
/// sweep refreshes every replica's known checkpoint generation.
pub fn spawn_prober(board: Arc<HealthBoard>, period: Duration, timeout: Duration) -> Prober {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::Builder::new()
        .name("graphaug-router-prober".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                for shard in 0..board.n_shards() {
                    for replica in 0..board.n_replicas(shard) {
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                        probe_once(&board, shard, replica, timeout);
                    }
                }
                // Sliced sleep so stop() never has to wait out a long
                // probe period before it can join the thread.
                let slice = Duration::from_millis(20);
                let mut slept = Duration::ZERO;
                while slept < period && !stop_flag.load(Ordering::Relaxed) {
                    let step = slice.min(period - slept);
                    std::thread::sleep(step);
                    slept += step;
                }
            }
        })
        .expect("spawn health prober");
    Prober {
        stop,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> HealthBoard {
        HealthBoard::new(
            &[
                vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
                vec!["127.0.0.1:3".into()],
            ],
            2,
        )
    }

    #[test]
    fn down_needs_a_streak_up_needs_one_success() {
        let b = board();
        assert!(b.is_up(0, 0));
        b.report_failure(0, 0);
        assert!(b.is_up(0, 0), "one failure below the threshold keeps it up");
        b.report_failure(0, 0);
        assert!(!b.is_up(0, 0), "threshold reached");
        assert!(b.shard_up(0), "the secondary still serves the shard");
        assert_eq!(b.serving_replica(0), Some(1));
        b.report_ok(0, 0);
        assert!(b.is_up(0, 0), "one success rejoins");
        assert_eq!(b.serving_replica(0), Some(0), "primary preferred again");
        assert_eq!(b.transitions(0, 0), 2);
    }

    #[test]
    fn successes_reset_the_streak() {
        let b = board();
        b.report_failure(1, 0);
        b.report_ok(1, 0);
        b.report_failure(1, 0);
        assert!(b.is_up(1, 0), "streak was reset in between");
    }

    #[test]
    fn shard_is_down_only_when_every_replica_is() {
        let b = board();
        b.force_down(0, 0);
        assert!(b.shard_up(0));
        b.force_down(0, 1);
        assert!(!b.shard_up(0));
        assert_eq!(b.serving_order(0), Vec::<usize>::new());
        assert_eq!(b.shards_up(), 1);
    }

    #[test]
    fn replace_swaps_the_address_and_bumps_the_epoch() {
        let b = board();
        let (addr0, epoch0) = b.addr(0, 1);
        assert_eq!(addr0, "127.0.0.1:2");
        b.replace(0, 1, "127.0.0.1:9");
        let (addr1, epoch1) = b.addr(0, 1);
        assert_eq!(addr1, "127.0.0.1:9");
        assert!(epoch1 > epoch0);
        assert!(!b.is_up(0, 1), "replacement waits for probe confirmation");
        assert_eq!(b.generation(0, 1), 0, "generation resets to unknown");
        b.report_ok(0, 1);
        assert!(b.is_up(0, 1));
    }

    #[test]
    fn generation_skew_degrades_the_lagging_replica() {
        let b = board();
        b.report_generation(0, 0, 5);
        b.report_generation(0, 1, 5);
        assert_eq!(b.serving_order(0), vec![0, 1], "no skew, both eligible");

        // Primary reloads to gen 6; the secondary is now stale.
        b.report_generation(0, 0, 6);
        assert!(b.is_degraded(0, 1));
        assert_eq!(
            b.serving_order(0),
            vec![0],
            "a degraded secondary must not be a failover target"
        );
        assert_eq!(b.shard_states(0)[1], ReplicaHealth::Degraded);

        // The secondary's watcher catches up: skew clears.
        b.report_generation(0, 1, 6);
        assert!(!b.is_degraded(0, 1));
        assert_eq!(b.serving_order(0), vec![0, 1]);
    }

    #[test]
    fn unknown_generation_is_not_skew() {
        let b = board();
        b.report_generation(0, 0, 7);
        assert!(
            !b.is_degraded(0, 1),
            "an unprobed replica (gen 0) is exempt from skew"
        );
        assert_eq!(b.serving_order(0), vec![0, 1]);
    }

    #[test]
    fn skewed_primary_hands_serving_to_the_secondary() {
        let b = board();
        b.report_generation(0, 0, 3);
        b.report_generation(0, 1, 4);
        assert!(b.is_degraded(0, 0));
        assert_eq!(
            b.serving_replica(0),
            Some(1),
            "the newest-generation replica serves, whichever index it is"
        );
    }

    #[test]
    fn failover_order_is_the_up_indices_in_order() {
        use ReplicaHealth::*;
        assert_eq!(failover_order(&[Up, Up, Up]), vec![0, 1, 2]);
        assert_eq!(failover_order(&[Down, Up, Up]), vec![1, 2]);
        assert_eq!(failover_order(&[Up, Degraded, Up]), vec![0, 2]);
        assert_eq!(failover_order(&[Down, Degraded, Down]), Vec::<usize>::new());
        assert_eq!(failover_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn probe_against_a_dead_port_marks_down() {
        // Port 1 on loopback refuses instantly.
        let b = HealthBoard::new(&[vec!["127.0.0.1:1".into()]], 1);
        assert!(!probe_once(&b, 0, 0, Duration::from_millis(200)));
        assert!(!b.is_up(0, 0));
        assert_eq!(b.probes(0, 0), 1);
    }
}
