//! Per-request time budgets, carried through retry and failover.
//!
//! Before this module the router's timeouts were piecemeal: a connect
//! timeout here, a socket read timeout there, a retry backoff in between —
//! each individually bounded, but their *sum* was not. A request that hit
//! a slow replica, backed off, retried, failed over and hit another slow
//! replica could legally burn `replicas × (retries+1) × io_timeout` of
//! wall clock. A [`Deadline`] makes the budget a property of the request:
//! it is created once when the request line is accepted, and every
//! blocking step along the way — connect, socket I/O, backoff sleep —
//! clamps itself to whatever is left. When the budget runs out the router
//! answers with a typed `ERR deadline …`, distinct from `ERR down …`
//! (which means "no serving-eligible replica", not "ran out of time").

use std::time::{Duration, Instant};

/// The floor for clamped socket timeouts: `TcpStream::set_read_timeout`
/// rejects a zero duration, and a sub-millisecond timeout is
/// indistinguishable from one on loopback anyway.
pub const MIN_IO_TIMEOUT: Duration = Duration::from_millis(1);

/// A monotonic per-request time budget.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// Starts the clock now with `budget` of wall time.
    pub fn new(budget: Duration) -> Deadline {
        Deadline {
            start: Instant::now(),
            budget,
        }
    }

    /// The full budget this deadline was created with.
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// Wall time consumed so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Budget remaining (zero once expired, never negative).
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.start.elapsed())
    }

    /// Has the budget run out?
    pub fn expired(&self) -> bool {
        self.remaining().is_zero()
    }

    /// Clamps a configured timeout to the remaining budget, floored at
    /// [`MIN_IO_TIMEOUT`] so the result is always a valid socket timeout.
    /// Callers must check [`Deadline::expired`] first — clamping an
    /// expired deadline still yields the floor, by design: the caller is
    /// about to make one last bounded attempt, not an unbounded one.
    pub fn clamp(&self, configured: Duration) -> Duration {
        configured.min(self.remaining()).max(MIN_IO_TIMEOUT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_has_its_whole_budget() {
        let d = Deadline::new(Duration::from_secs(5));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(4));
        assert_eq!(d.budget(), Duration::from_secs(5));
    }

    #[test]
    fn zero_budget_is_immediately_expired() {
        let d = Deadline::new(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn elapsed_budget_expires() {
        let d = Deadline::new(Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(20));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        assert!(d.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn clamp_takes_the_minimum_but_never_zero() {
        let d = Deadline::new(Duration::from_millis(50));
        // Configured timeout larger than the budget: clamped down.
        assert!(d.clamp(Duration::from_secs(10)) <= Duration::from_millis(50));
        // Configured timeout smaller than the budget: kept.
        assert_eq!(d.clamp(Duration::from_millis(2)), Duration::from_millis(2));
        // Expired deadline: floored, never zero (a valid socket timeout).
        let gone = Deadline::new(Duration::ZERO);
        assert_eq!(gone.clamp(Duration::from_secs(1)), MIN_IO_TIMEOUT);
    }
}
