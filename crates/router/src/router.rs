//! The router core: a TCP proxy that speaks the serving protocol on both
//! sides and owns nothing but a hash, a health board, and counters.
//!
//! # Routing
//!
//! Every user in a `REC` batch is owned by exactly one shard
//! ([`crate::hash::shard_of`]); the router groups the batch per shard,
//! forwards one sub-`REC` per owning shard, and reassembles the
//! responses **in request order**, relaying each replica's response line
//! *byte-for-byte*. No reparse/rerender step touches the payload, which is
//! why a routed response is bit-identical to asking the owning replica
//! directly — the parity property the chaos load generator asserts
//! hex-exactly.
//!
//! # Replica sets and failover
//!
//! Each shard is backed by an ordered replica set (primary first). All
//! replicas of a set serve the same checkpoint directory, so any of them
//! answers with the **same bits** — failover is therefore invisible to the
//! client. A sub-request walks the shard's serving-eligible replicas in
//! the deterministic [`crate::health::failover_order`]: the primary gets
//! bounded retries for transient errors, a replica that *times out* is
//! abandoned immediately (a hung process is not a transient error), and
//! the next replica in order takes over **within the same request**.
//! Replicas whose probed checkpoint generation lags the set are marked
//! degraded and skipped — a stale answer would silently break bit-parity,
//! which is strictly worse than trying the next replica.
//!
//! # Deadline budgets
//!
//! Every request line gets one [`Deadline`] when it is accepted; connect
//! timeouts, socket I/O timeouts, and backoff sleeps all clamp themselves
//! to its remaining budget, across every retry and every failover hop. A
//! request can therefore never burn more than `request_budget` of wall
//! clock, no matter how many replicas misbehave; when the budget runs out
//! the router answers `ERR deadline …` — typed, and distinct from
//! `ERR down …` (no serving-eligible replica at all).
//!
//! # Failure semantics
//!
//! Failures feed the [`HealthBoard`]; once every replica of a shard is
//! down the router *fast-fails* that shard's users with `ERR down` — no
//! network, no backoff — so a dead shard degrades only its own users and
//! cannot drag the tail latency of the others. The background prober
//! keeps asking down replicas for `STATS`; the moment one answers (same
//! address, or a replacement installed via `REPLACE` on the **admin
//! listener**), it rejoins the failover order — no router restart, no
//! connection churn for the surviving shards.
//!
//! # The admin surface
//!
//! `REPLACE <shard> [<replica>] <addr>` re-points a replica at a new
//! address (the rejoin path for a process respawned on a new ephemeral
//! port). It is accepted **only** on the admin listener — a separate,
//! loopback-bound port — because any client that can repoint a shard owns
//! the serving tier. On the public port the verb answers a typed
//! `ERR admin …` and touches nothing.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use graphaug_serve::proto::{parse_request, Request};
use graphaug_serve::{stats_field, ServeClient};

use crate::deadline::Deadline;
use crate::hash::shard_of;
use crate::health::{spawn_prober, HealthBoard, Prober};

/// Tunables for one router instance.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Per-shard replica sets, primary first, in shard order.
    pub replica_sets: Vec<Vec<String>>,
    /// Health probe cadence.
    pub probe_period: Duration,
    /// Connect timeout for downstream connections and probes.
    pub connect_timeout: Duration,
    /// Per-read/write timeout on downstream sockets (a hung replica must
    /// not wedge a routed connection).
    pub io_timeout: Duration,
    /// Extra attempts per replica after the first failure (total attempts
    /// per replica = retries+1). Timeouts skip the remaining retries and
    /// fail over instead.
    pub retries: u32,
    /// First retry delay; doubles per attempt.
    pub backoff: Duration,
    /// Consecutive failures before a replica is marked down.
    pub down_after: u32,
    /// Wall-clock budget for one request line, across every retry and
    /// failover hop. Exhaustion answers a typed `ERR deadline …`.
    pub request_budget: Duration,
}

impl RouterConfig {
    /// Defaults tuned for loopback CI: fast probes, tight timeouts. Each
    /// entry is one shard's replica set in the shared addressing syntax
    /// (`"primary|secondary"`; a plain address is a set of one).
    pub fn new(replicas: Vec<String>) -> RouterConfig {
        Self::from_sets(
            replicas
                .iter()
                .map(|spec| spec.split('|').map(str::to_string).collect())
                .collect(),
        )
    }

    /// Builds a config from explicit per-shard replica sets.
    pub fn from_sets(replica_sets: Vec<Vec<String>>) -> RouterConfig {
        RouterConfig {
            replica_sets,
            probe_period: Duration::from_millis(25),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(2),
            retries: 2,
            backoff: Duration::from_millis(10),
            down_after: 2,
            request_budget: Duration::from_secs(5),
        }
    }

    /// Sets the probe cadence.
    pub fn probe_period(mut self, period: Duration) -> RouterConfig {
        self.probe_period = period;
        self
    }

    /// Sets the per-request deadline budget.
    pub fn request_budget(mut self, budget: Duration) -> RouterConfig {
        self.request_budget = budget;
        self
    }
}

/// Shared router state: config, health, counters.
pub struct Router {
    cfg: RouterConfig,
    health: Arc<HealthBoard>,
    /// User-lines accepted for routing (one `REC a,b,c k` counts 3).
    requests: AtomicU64,
    /// User-lines offered to each shard (including ones that later failed).
    shard_requests: Vec<AtomicU64>,
    /// `ERR` lines the router itself generated (shard down / deadline /
    /// exhausted retries) — replica-produced `ERR` lines are relayed, not
    /// counted.
    router_errors: AtomicU64,
    /// Sub-requests answered by a non-primary replica — the live count of
    /// "a secondary covered for the primary".
    failovers: AtomicU64,
    /// Router-generated `ERR deadline` user-lines (also counted in
    /// `router_errors`).
    deadline_errors: AtomicU64,
}

impl Router {
    /// Builds the shared state for `cfg`.
    pub fn new(cfg: RouterConfig) -> Arc<Router> {
        let health = Arc::new(HealthBoard::new(&cfg.replica_sets, cfg.down_after));
        let shard_requests = (0..cfg.replica_sets.len())
            .map(|_| AtomicU64::new(0))
            .collect();
        Arc::new(Router {
            health,
            shard_requests,
            requests: AtomicU64::new(0),
            router_errors: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            deadline_errors: AtomicU64::new(0),
            cfg,
        })
    }

    /// Number of shards routed across (the hash modulus — never the total
    /// replica count).
    pub fn n_shards(&self) -> usize {
        self.cfg.replica_sets.len()
    }

    /// The shared health board (tests, benches, and the prober).
    pub fn health(&self) -> &Arc<HealthBoard> {
        &self.health
    }

    /// Per-shard routed user-line counts.
    pub fn shard_request_counts(&self) -> Vec<u64> {
        self.shard_requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Sub-requests answered by a non-primary replica so far.
    pub fn failover_count(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Router-generated `ERR deadline` user-lines so far.
    pub fn deadline_error_count(&self) -> u64 {
        self.deadline_errors.load(Ordering::Relaxed)
    }
}

/// A typed routing failure — the error the *router* generates when it
/// cannot get an answer out of a shard's replica set. Replica-produced
/// `ERR` lines are relayed verbatim and never take this form.
#[derive(Debug)]
enum ShardError {
    /// No serving-eligible replica (all down, or down/degraded).
    Down { shard: usize },
    /// The request's deadline budget ran out across retry/failover.
    Deadline {
        shard: usize,
        budget_ms: u64,
        elapsed_ms: u64,
    },
    /// Every serving-eligible replica failed its bounded attempts.
    Exhausted {
        shard: usize,
        attempts: u32,
        last: String,
    },
}

impl ShardError {
    /// The machine-readable kind token (`graphaug_serve::err_kind` parses
    /// it back out client-side). Exhausted retries render as `down`: from
    /// the client's perspective the shard is unreachable either way, and
    /// `deadline` is reserved for "ran out of *time*", not "ran out of
    /// replicas".
    fn kind(&self) -> &'static str {
        match self {
            ShardError::Down { .. } | ShardError::Exhausted { .. } => "down",
            ShardError::Deadline { .. } => "deadline",
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Down { shard } => write!(f, "shard {shard} down"),
            ShardError::Deadline {
                shard,
                budget_ms,
                elapsed_ms,
            } => write!(
                f,
                "budget {budget_ms}ms exhausted at shard {shard} after {elapsed_ms}ms"
            ),
            ShardError::Exhausted {
                shard,
                attempts,
                last,
            } => write!(
                f,
                "shard {shard} unavailable after {attempts} attempts: {last}"
            ),
        }
    }
}

/// One router connection's cache of downstream connections, keyed by the
/// address epoch so a `REPLACE`d replica reconnects to the new address
/// instead of writing into a dead socket.
struct Downstream {
    conns: Vec<Vec<Option<(u64, ServeClient)>>>,
}

impl Downstream {
    fn new(cfg: &RouterConfig) -> Downstream {
        Downstream {
            conns: cfg
                .replica_sets
                .iter()
                .map(|set| set.iter().map(|_| None).collect())
                .collect(),
        }
    }

    fn drop_conn(&mut self, shard: usize, replica: usize) {
        self.conns[shard][replica] = None;
    }

    /// A live connection to `(shard, replica)`'s current address, reusing
    /// the cached one when its address epoch still matches. Socket
    /// timeouts — fresh or cached — are clamped to the request deadline's
    /// remaining budget.
    fn conn(
        &mut self,
        shard: usize,
        replica: usize,
        router: &Router,
        deadline: &Deadline,
    ) -> io::Result<&mut ServeClient> {
        let (addr, epoch) = router.health.addr(shard, replica);
        let io_timeout = deadline.clamp(router.cfg.io_timeout);
        let reusable = matches!(&self.conns[shard][replica], Some((e, _)) if *e == epoch);
        if reusable {
            self.conns[shard][replica]
                .as_ref()
                .expect("checked reusable")
                .1
                .set_io_timeout(Some(io_timeout))?;
        } else {
            let client = ServeClient::connect_with_timeouts(
                &addr,
                deadline.clamp(router.cfg.connect_timeout),
                Some(io_timeout),
            )?;
            self.conns[shard][replica] = Some((epoch, client));
        }
        Ok(&mut self.conns[shard][replica].as_mut().expect("just ensured").1)
    }
}

/// Is this I/O error a timeout (as opposed to a refused/reset/EOF class
/// transient)? Timeouts abandon the replica immediately — a hung process
/// does not get retried, it gets failed over.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Forwards one already-grouped sub-request to `shard` under `deadline`:
/// walks the deterministic failover order, giving each serving-eligible
/// replica bounded retry-with-backoff (timeouts skip straight to the next
/// replica). Success relays the replica's raw lines; failure returns the
/// typed shard error.
fn forward_to_shard(
    router: &Router,
    down: &mut Downstream,
    shard: usize,
    line: &str,
    n_lines: usize,
    deadline: &Deadline,
) -> Result<Vec<String>, ShardError> {
    let deadline_err = || ShardError::Deadline {
        shard,
        budget_ms: deadline.budget().as_millis() as u64,
        elapsed_ms: deadline.elapsed().as_millis() as u64,
    };
    let candidates = router.health.serving_order(shard);
    if candidates.is_empty() {
        return Err(ShardError::Down { shard });
    }
    let mut attempts = 0u32;
    let mut last = String::new();
    for &replica in &candidates {
        let mut delay = router.cfg.backoff;
        for attempt in 0..=router.cfg.retries {
            if deadline.expired() {
                return Err(deadline_err());
            }
            if attempt > 0 {
                std::thread::sleep(delay.min(deadline.remaining()));
                delay *= 2;
                if deadline.expired() {
                    return Err(deadline_err());
                }
                if !router.health.is_up(shard, replica) {
                    // Marked down while we were backing off — stop burning
                    // retries on a replica the prober has already given up
                    // on and fail over to the next candidate.
                    break;
                }
            }
            attempts += 1;
            match down
                .conn(shard, replica, router, deadline)
                .and_then(|c| c.request_lines(line, n_lines))
            {
                Ok(lines) => {
                    router.health.report_ok(shard, replica);
                    if replica != 0 {
                        router.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(lines);
                }
                Err(e) => {
                    down.drop_conn(shard, replica);
                    router.health.report_failure(shard, replica);
                    let timed_out = is_timeout(&e);
                    last = e.to_string();
                    if timed_out {
                        // A hung replica already cost us its clamped I/O
                        // timeout; retrying it would burn the rest of the
                        // budget for nothing. Fail over now.
                        break;
                    }
                }
            }
        }
    }
    if deadline.expired() {
        return Err(deadline_err());
    }
    Err(ShardError::Exhausted {
        shard,
        attempts,
        last,
    })
}

/// Routes one `REC`/`RECX` batch: group by owning shard, forward with the
/// client's verb intact (an exact-oracle request must stay exact on the
/// replica), reassemble in request order. Always returns exactly one line
/// per requested user. The whole batch shares one deadline budget.
fn route_rec(
    router: &Router,
    down: &mut Downstream,
    users: &[u32],
    k: usize,
    exact: bool,
) -> Vec<String> {
    let n = router.n_shards();
    let deadline = Deadline::new(router.cfg.request_budget);
    router
        .requests
        .fetch_add(users.len() as u64, Ordering::Relaxed);
    let mut groups: Vec<Vec<(usize, u32)>> = (0..n).map(|_| Vec::new()).collect();
    for (slot, &user) in users.iter().enumerate() {
        groups[shard_of(user, n)].push((slot, user));
    }
    let mut lines: Vec<Option<String>> = (0..users.len()).map(|_| None).collect();
    for (shard, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        router.shard_requests[shard].fetch_add(group.len() as u64, Ordering::Relaxed);
        let list = group
            .iter()
            .map(|&(_, u)| u.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let verb = if exact { "RECX" } else { "REC" };
        match forward_to_shard(
            router,
            down,
            shard,
            &format!("{verb} {list} {k}"),
            group.len(),
            &deadline,
        ) {
            Ok(replies) => {
                for (&(slot, _), reply) in group.iter().zip(replies) {
                    lines[slot] = Some(reply);
                }
            }
            Err(e) => {
                router
                    .router_errors
                    .fetch_add(group.len() as u64, Ordering::Relaxed);
                if matches!(e, ShardError::Deadline { .. }) {
                    router
                        .deadline_errors
                        .fetch_add(group.len() as u64, Ordering::Relaxed);
                }
                for &(slot, user) in group {
                    lines[slot] = Some(format!("ERR {} user {user}: {e}", e.kind()));
                }
            }
        }
    }
    lines
        .into_iter()
        .map(|l| l.expect("every slot is grouped exactly once"))
        .collect()
}

/// Routes `STATS`: queries each up shard's serving replica (failover
/// included), merges table shape and resident `table_bytes` (max — the
/// replicas serve the same model), and appends router-level counters plus
/// the per-shard serving/health/generation breakdown.
fn route_stats(router: &Router, down: &mut Downstream) -> String {
    let n = router.n_shards();
    let (mut gen, mut users, mut items, mut table_bytes) = (0u64, 0u64, 0u64, 0u64);
    let (mut ingested, mut log_offset, mut finetunes) = (0u64, 0u64, 0u64);
    let mut states: Vec<&'static str> = Vec::with_capacity(n);
    for shard in 0..n {
        let deadline = Deadline::new(router.cfg.request_budget);
        let line = if router.health.shard_up(shard) {
            forward_to_shard(router, down, shard, "STATS", 1, &deadline)
                .ok()
                .and_then(|mut v| v.pop())
        } else {
            None
        };
        match line {
            Some(line) => {
                let field = |key| {
                    stats_field(&line, key)
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0)
                };
                gen = gen.max(field("gen="));
                users = users.max(field("users="));
                items = items.max(field("items="));
                table_bytes = table_bytes.max(field("table_bytes="));
                // Online-learning progress: every shard serves the same
                // model, so max-merge mirrors the gen= convention (the
                // most-advanced replica's view).
                ingested = ingested.max(field("ingested="));
                log_offset = log_offset.max(field("log_offset="));
                finetunes = finetunes.max(field("finetunes="));
                states.push("up");
            }
            None => states.push("down"),
        }
    }
    let health = router.health();
    let serving = (0..n)
        .map(|s| {
            health
                .serving_replica(s)
                .map_or_else(|| "-".to_string(), |r| r.to_string())
        })
        .collect::<Vec<_>>()
        .join(",");
    let replica_states = (0..n)
        .map(|s| {
            health
                .shard_states(s)
                .iter()
                .map(|st| st.as_str())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect::<Vec<_>>()
        .join(",");
    let replica_gens = (0..n)
        .map(|s| {
            (0..health.n_replicas(s))
                .map(|r| health.generation(s, r).to_string())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect::<Vec<_>>()
        .join(",");
    let shard_requests = router
        .shard_request_counts()
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "STATS gen={gen} users={users} items={items} table_bytes={table_bytes} \
         ingested={ingested} log_offset={log_offset} finetunes={finetunes} shards={n} up={} \
         requests={} errors={} deadline_errors={} failovers={} serving={serving} replicas={} \
         replica_states={replica_states} replica_gens={replica_gens} \
         shard_requests={shard_requests}",
        states.iter().filter(|s| **s == "up").count(),
        router.requests.load(Ordering::Relaxed),
        router.router_errors.load(Ordering::Relaxed),
        router.deadline_errors.load(Ordering::Relaxed),
        router.failovers.load(Ordering::Relaxed),
        states.join(","),
    )
}

/// Handles the admin-only `REPLACE <shard> [<replica>] <addr>` verb (the
/// two-argument form re-points the primary, replica 0). Returns the
/// response line.
fn handle_replace(router: &Router, rest: &str) -> String {
    let parts: Vec<&str> = rest.split_ascii_whitespace().collect();
    let (shard_s, replica_s, addr) = match parts.as_slice() {
        [shard, addr] => (*shard, "0", *addr),
        [shard, replica, addr] => (*shard, *replica, *addr),
        _ => return "ERR REPLACE needs <shard> [<replica>] <addr>".to_string(),
    };
    let Ok(shard) = shard_s.parse::<usize>() else {
        return format!("ERR bad shard {shard_s:?}");
    };
    let Ok(replica) = replica_s.parse::<usize>() else {
        return format!("ERR bad replica {replica_s:?}");
    };
    if shard >= router.n_shards() {
        return format!(
            "ERR unknown shard {shard} (router has {})",
            router.n_shards()
        );
    }
    if replica >= router.health.n_replicas(shard) {
        return format!(
            "ERR unknown replica {replica} (shard {shard} has {})",
            router.health.n_replicas(shard)
        );
    }
    match graphaug_serve::resolve_addr(addr) {
        Ok(_) => {
            router.health.replace(shard, replica, addr);
            format!("OK shard={shard} replica={replica} addr={addr}")
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// Writes the response line(s) for one request. `Err(())` means the
/// connection should close (QUIT or a write failure). `admin` selects the
/// surface: `REPLACE` is honored only on the admin listener and answers a
/// typed `ERR admin …` on the public port.
fn respond(
    router: &Router,
    down: &mut Downstream,
    line: &str,
    w: &mut impl Write,
    admin: bool,
) -> Result<(), ()> {
    let put = |w: &mut dyn Write, s: &str| -> Result<(), ()> { writeln!(w, "{s}").map_err(|_| ()) };
    if let Some(rest) = line.strip_prefix("REPLACE") {
        if !admin {
            return put(
                w,
                "ERR admin REPLACE is admin-only (connect to the admin listener)",
            );
        }
        return put(w, &handle_replace(router, rest));
    }
    match parse_request(line) {
        Ok(Request::Rec { users, k, exact }) => {
            for reply in route_rec(router, down, &users, k, exact) {
                put(w, &reply)?;
            }
            Ok(())
        }
        Ok(Request::Stats) => put(w, &route_stats(router, down)),
        Ok(Request::Ping) => put(w, "PONG"),
        Ok(Request::Quit) => {
            put(w, "BYE")?;
            Err(())
        }
        Err(msg) => put(w, &format!("ERR {msg}")),
    }
}

fn handle_connection(router: &Router, stream: TcpStream, admin: bool) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut down = Downstream::new(&router.cfg);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let done = respond(router, &mut down, &line, &mut writer, admin).is_err();
        if writer.flush().is_err() || done {
            break;
        }
    }
}

/// A running router; dropping (or calling [`RouterHandle::stop`]) shuts
/// both accept loops and the prober down. Open connections finish on
/// their own threads.
pub struct RouterHandle {
    addr: SocketAddr,
    admin_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    admin_thread: Option<std::thread::JoinHandle<()>>,
    prober: Option<Prober>,
}

impl RouterHandle {
    /// The bound public (serving) address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound admin address — loopback, `REPLACE` lives here.
    pub fn admin_addr(&self) -> SocketAddr {
        self.admin_addr
    }

    /// Stops accepting, joins both accept loops, and stops the prober.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        let _ = TcpStream::connect(self.admin_addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.admin_thread.take() {
            let _ = h.join();
        }
        if let Some(p) = self.prober.take() {
            p.stop();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_accept_loop(
    router: Arc<Router>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    admin: bool,
) -> io::Result<std::thread::JoinHandle<()>> {
    let name = if admin {
        "graphaug-router-admin"
    } else {
        "graphaug-router-accept"
    };
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let router = router.clone();
                let _ = std::thread::Builder::new()
                    .name("graphaug-router-conn".into())
                    .spawn(move || handle_connection(&router, stream, admin));
            }
        })
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves `router` until the handle
/// is stopped, with the admin surface on an ephemeral loopback port (see
/// [`start_with_admin`] to pin it).
pub fn start(router: Arc<Router>, addr: &str) -> io::Result<RouterHandle> {
    start_with_admin(router, addr, "127.0.0.1:0")
}

/// Binds the public listener on `addr` and the admin listener on
/// `admin_addr` — which **must** resolve to a loopback interface: the
/// admin surface can re-point shards, so exposing it beyond the box that
/// runs the router is refused outright rather than merely discouraged.
/// One accept loop per listener, one thread per connection, plus the
/// background health prober.
pub fn start_with_admin(
    router: Arc<Router>,
    addr: &str,
    admin_addr: &str,
) -> io::Result<RouterHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let admin_listener = TcpListener::bind(admin_addr)?;
    let admin_local = admin_listener.local_addr()?;
    if !admin_local.ip().is_loopback() {
        return Err(io::Error::other(format!(
            "admin listener must bind a loopback address, got {admin_local}"
        )));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let prober = spawn_prober(
        router.health.clone(),
        router.cfg.probe_period,
        router.cfg.connect_timeout,
    );
    let accept_thread = spawn_accept_loop(router.clone(), listener, stop.clone(), false)?;
    let admin_thread = spawn_accept_loop(router, admin_listener, stop.clone(), true)?;
    Ok(RouterHandle {
        addr: local,
        admin_addr: admin_local,
        stop,
        accept_thread: Some(accept_thread),
        admin_thread: Some(admin_thread),
        prober: Some(prober),
    })
}
