//! The router core: a TCP proxy that speaks the serving protocol on both
//! sides and owns nothing but a hash, a health board, and counters.
//!
//! # Routing
//!
//! Every user in a `REC` batch is owned by exactly one shard
//! ([`crate::hash::shard_of`]); the router groups the batch per shard,
//! forwards one sub-`REC` per owning replica, and reassembles the
//! responses **in request order**, relaying each replica's response line
//! *byte-for-byte*. No reparse/rerender step touches the payload, which is
//! why a routed response is bit-identical to asking the owning replica
//! directly — the parity property the chaos load generator asserts
//! hex-exactly.
//!
//! # Failure semantics
//!
//! A connect or I/O failure against a replica is retried with bounded
//! exponential backoff (`retries` × starting at `backoff`); failures feed
//! the [`HealthBoard`], and once a shard is marked down the router
//! *fast-fails* its users with a typed `ERR` — no network, no backoff — so
//! a dead replica degrades only its own users' requests and cannot drag
//! the tail latency of the others. The background prober keeps `PING`ing
//! down shards; the moment one answers (same address, or a replacement
//! address installed via `REPLACE <shard> <addr>`), it is marked up and
//! traffic resumes — no router restart, no connection churn for the
//! surviving shards.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use graphaug_serve::proto::{parse_request, Request};
use graphaug_serve::{stats_field, ServeClient};

use crate::hash::shard_of;
use crate::health::{spawn_prober, HealthBoard, Prober};

/// Tunables for one router instance.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Replica addresses, one per shard, in shard order.
    pub replicas: Vec<String>,
    /// Health probe cadence.
    pub probe_period: Duration,
    /// Connect timeout for downstream connections and probes.
    pub connect_timeout: Duration,
    /// Per-read/write timeout on downstream sockets (a hung replica must
    /// not wedge a routed connection).
    pub io_timeout: Duration,
    /// Extra attempts after the first failure (total attempts = retries+1).
    pub retries: u32,
    /// First retry delay; doubles per attempt.
    pub backoff: Duration,
    /// Consecutive failures before a shard is marked down.
    pub down_after: u32,
}

impl RouterConfig {
    /// Defaults tuned for loopback CI: fast probes, tight timeouts.
    pub fn new(replicas: Vec<String>) -> RouterConfig {
        RouterConfig {
            replicas,
            probe_period: Duration::from_millis(25),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(2),
            retries: 2,
            backoff: Duration::from_millis(10),
            down_after: 2,
        }
    }

    /// Sets the probe cadence.
    pub fn probe_period(mut self, period: Duration) -> RouterConfig {
        self.probe_period = period;
        self
    }
}

/// Shared router state: config, health, counters.
pub struct Router {
    cfg: RouterConfig,
    health: Arc<HealthBoard>,
    /// User-lines accepted for routing (one `REC a,b,c k` counts 3).
    requests: AtomicU64,
    /// User-lines offered to each shard (including ones that later failed).
    shard_requests: Vec<AtomicU64>,
    /// `ERR` lines the router itself generated (shard down / exhausted
    /// retries) — replica-produced `ERR` lines are relayed, not counted.
    router_errors: AtomicU64,
}

impl Router {
    /// Builds the shared state for `cfg`.
    pub fn new(cfg: RouterConfig) -> Arc<Router> {
        let health = Arc::new(HealthBoard::new(&cfg.replicas, cfg.down_after));
        let shard_requests = (0..cfg.replicas.len()).map(|_| AtomicU64::new(0)).collect();
        Arc::new(Router {
            health,
            shard_requests,
            requests: AtomicU64::new(0),
            router_errors: AtomicU64::new(0),
            cfg,
        })
    }

    /// Number of shards routed across.
    pub fn n_shards(&self) -> usize {
        self.cfg.replicas.len()
    }

    /// The shared health board (tests, benches, and the prober).
    pub fn health(&self) -> &Arc<HealthBoard> {
        &self.health
    }

    /// Per-shard routed user-line counts.
    pub fn shard_request_counts(&self) -> Vec<u64> {
        self.shard_requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// One router connection's cache of downstream connections, keyed by the
/// address epoch so a `REPLACE`d shard reconnects to the new address
/// instead of writing into a dead socket.
struct Downstream {
    conns: Vec<Option<(u64, ServeClient)>>,
}

impl Downstream {
    fn new(n_shards: usize) -> Downstream {
        Downstream {
            conns: (0..n_shards).map(|_| None).collect(),
        }
    }

    fn drop_conn(&mut self, shard: usize) {
        self.conns[shard] = None;
    }

    /// A live connection to `shard`'s current address, reusing the cached
    /// one when its address epoch still matches.
    fn conn(&mut self, shard: usize, router: &Router) -> io::Result<&mut ServeClient> {
        let (addr, epoch) = router.health.addr(shard);
        let reusable = matches!(&self.conns[shard], Some((e, _)) if *e == epoch);
        if !reusable {
            let client = ServeClient::connect_with_timeouts(
                &addr,
                router.cfg.connect_timeout,
                Some(router.cfg.io_timeout),
            )?;
            self.conns[shard] = Some((epoch, client));
        }
        Ok(&mut self.conns[shard].as_mut().expect("just ensured").1)
    }
}

/// Forwards one already-grouped sub-request to `shard` with bounded
/// retry-with-backoff. Success relays the replica's raw lines; failure
/// returns the last error message.
fn forward_to_shard(
    router: &Router,
    down: &mut Downstream,
    shard: usize,
    line: &str,
    n_lines: usize,
) -> Result<Vec<String>, String> {
    if !router.health.is_up(shard) {
        return Err(format!("shard {shard} down"));
    }
    let mut delay = router.cfg.backoff;
    let mut last = String::new();
    for attempt in 0..=router.cfg.retries {
        if attempt > 0 {
            std::thread::sleep(delay);
            delay *= 2;
            if !router.health.is_up(shard) {
                // Marked down while we were backing off — stop burning
                // retries on a shard the prober has already given up on.
                return Err(format!("shard {shard} down"));
            }
        }
        match down
            .conn(shard, router)
            .and_then(|c| c.request_lines(line, n_lines))
        {
            Ok(lines) => {
                router.health.report_ok(shard);
                return Ok(lines);
            }
            Err(e) => {
                down.drop_conn(shard);
                router.health.report_failure(shard);
                last = e.to_string();
            }
        }
    }
    Err(format!(
        "shard {shard} unavailable after {} attempts: {last}",
        router.cfg.retries + 1
    ))
}

/// Routes one `REC`/`RECX` batch: group by owning shard, forward with the
/// client's verb intact (an exact-oracle request must stay exact on the
/// replica), reassemble in request order. Always returns exactly one line
/// per requested user.
fn route_rec(
    router: &Router,
    down: &mut Downstream,
    users: &[u32],
    k: usize,
    exact: bool,
) -> Vec<String> {
    let n = router.n_shards();
    router
        .requests
        .fetch_add(users.len() as u64, Ordering::Relaxed);
    let mut groups: Vec<Vec<(usize, u32)>> = (0..n).map(|_| Vec::new()).collect();
    for (slot, &user) in users.iter().enumerate() {
        groups[shard_of(user, n)].push((slot, user));
    }
    let mut lines: Vec<Option<String>> = (0..users.len()).map(|_| None).collect();
    for (shard, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        router.shard_requests[shard].fetch_add(group.len() as u64, Ordering::Relaxed);
        let list = group
            .iter()
            .map(|&(_, u)| u.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let verb = if exact { "RECX" } else { "REC" };
        match forward_to_shard(
            router,
            down,
            shard,
            &format!("{verb} {list} {k}"),
            group.len(),
        ) {
            Ok(replies) => {
                for (&(slot, _), reply) in group.iter().zip(replies) {
                    lines[slot] = Some(reply);
                }
            }
            Err(e) => {
                router
                    .router_errors
                    .fetch_add(group.len() as u64, Ordering::Relaxed);
                for &(slot, user) in group {
                    lines[slot] = Some(format!("ERR user {user}: {e}"));
                }
            }
        }
    }
    lines
        .into_iter()
        .map(|l| l.expect("every slot is grouped exactly once"))
        .collect()
}

/// Routes `STATS`: queries every up replica, merges table shape and
/// resident `table_bytes` (max — the replicas serve the same model), and
/// appends router-level counters plus the per-shard state/request
/// breakdown.
fn route_stats(router: &Router, down: &mut Downstream) -> String {
    let n = router.n_shards();
    let (mut gen, mut users, mut items, mut table_bytes) = (0u64, 0u64, 0u64, 0u64);
    let mut states: Vec<&'static str> = Vec::with_capacity(n);
    for shard in 0..n {
        let line = if router.health.is_up(shard) {
            forward_to_shard(router, down, shard, "STATS", 1)
                .ok()
                .and_then(|mut v| v.pop())
        } else {
            None
        };
        match line {
            Some(line) => {
                let field = |key| {
                    stats_field(&line, key)
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0)
                };
                gen = gen.max(field("gen="));
                users = users.max(field("users="));
                items = items.max(field("items="));
                table_bytes = table_bytes.max(field("table_bytes="));
                states.push("up");
            }
            None => states.push("down"),
        }
    }
    let shard_requests = router
        .shard_request_counts()
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "STATS gen={gen} users={users} items={items} table_bytes={table_bytes} shards={n} up={} \
         requests={} errors={} replicas={} shard_requests={shard_requests}",
        states.iter().filter(|s| **s == "up").count(),
        router.requests.load(Ordering::Relaxed),
        router.router_errors.load(Ordering::Relaxed),
        states.join(","),
    )
}

/// Handles the router-only `REPLACE <shard> <addr>` admin verb. Returns
/// the response line.
fn handle_replace(router: &Router, rest: &str) -> String {
    let mut parts = rest.split_ascii_whitespace();
    let shard = parts.next().and_then(|s| s.parse::<usize>().ok());
    let addr = parts.next();
    match (shard, addr, parts.next()) {
        (Some(shard), Some(addr), None) if shard < router.n_shards() => {
            match graphaug_serve::resolve_addr(addr) {
                Ok(_) => {
                    router.health.replace(shard, addr);
                    format!("OK shard={shard} addr={addr}")
                }
                Err(e) => format!("ERR {e}"),
            }
        }
        (Some(shard), Some(_), None) => {
            format!(
                "ERR unknown shard {shard} (router has {})",
                router.n_shards()
            )
        }
        _ => "ERR REPLACE needs <shard> <addr>".to_string(),
    }
}

/// Writes the response line(s) for one request. `Err(())` means the
/// connection should close (QUIT or a write failure).
fn respond(
    router: &Router,
    down: &mut Downstream,
    line: &str,
    w: &mut impl Write,
) -> Result<(), ()> {
    let put = |w: &mut dyn Write, s: &str| -> Result<(), ()> { writeln!(w, "{s}").map_err(|_| ()) };
    if let Some(rest) = line.strip_prefix("REPLACE") {
        return put(w, &handle_replace(router, rest));
    }
    match parse_request(line) {
        Ok(Request::Rec { users, k, exact }) => {
            for reply in route_rec(router, down, &users, k, exact) {
                put(w, &reply)?;
            }
            Ok(())
        }
        Ok(Request::Stats) => put(w, &route_stats(router, down)),
        Ok(Request::Ping) => put(w, "PONG"),
        Ok(Request::Quit) => {
            put(w, "BYE")?;
            Err(())
        }
        Err(msg) => put(w, &format!("ERR {msg}")),
    }
}

fn handle_connection(router: &Router, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut down = Downstream::new(router.n_shards());
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let done = respond(router, &mut down, &line, &mut writer).is_err();
        if writer.flush().is_err() || done {
            break;
        }
    }
}

/// A running router; dropping (or calling [`RouterHandle::stop`]) shuts
/// the accept loop and the prober down. Open connections finish on their
/// own threads.
pub struct RouterHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    prober: Option<Prober>,
}

impl RouterHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, joins the accept loop, and stops the prober.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(p) = self.prober.take() {
            p.stop();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves `router` until the handle
/// is stopped: one accept loop, one thread per connection, plus the
/// background health prober.
pub fn start(router: Arc<Router>, addr: &str) -> io::Result<RouterHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let prober = spawn_prober(
        router.health.clone(),
        router.cfg.probe_period,
        router.cfg.connect_timeout,
    );
    let accept_router = router.clone();
    let accept_thread = std::thread::Builder::new()
        .name("graphaug-router-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let router = accept_router.clone();
                let _ = std::thread::Builder::new()
                    .name("graphaug-router-conn".into())
                    .spawn(move || handle_connection(&router, stream));
            }
        })?;
    Ok(RouterHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        prober: Some(prober),
    })
}
