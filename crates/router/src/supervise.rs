//! The replica supervisor: child-process lifecycle for an HA serving tier.
//!
//! The router (see [`crate::router`]) decides *where requests go* when a
//! replica dies; this module is the other half of availability — making
//! sure dead replicas *come back* without an operator. A [`Supervisor`]
//! owns every replica child process of a deployment:
//!
//! * **Spawn**: replicas are started sequentially and each must print its
//!   `READY addr=…` line before the next starts — the first replica of a
//!   checkpoint directory trains/validates the checkpoint, the rest reuse
//!   it, and serializing the boot means they never race on the directory.
//! * **Watch**: each sweep checks every child twice over — has the
//!   process exited (`try_wait`), and does it still answer `PING` within
//!   a timeout (a *hung* process is as dead as an exited one; it is
//!   killed after `down_after` consecutive ping failures).
//! * **Respawn**: a dead replica is restarted under an exponential
//!   backoff with **seeded jitter** ([`backoff_with_jitter`] is a pure
//!   function of `(seed, shard, replica, attempt)`, so tests replay the
//!   exact schedule) and a per-replica **restart budget** — a replica
//!   that keeps dying is eventually abandoned and logged, rather than
//!   respawned in a hot loop forever while its secondary serves.
//! * **Re-point**: a respawn almost always lands on a new ephemeral
//!   port, so the supervisor automatically issues
//!   `REPLACE <shard> <replica> <addr>` on the router's loopback admin
//!   listener. From the client's point of view nothing happened: the
//!   secondary covered the gap bit-identically, and the respawned
//!   primary rejoins as soon as the router's prober confirms it.
//!
//! The `supervisord` binary wires this to a router in one process; the
//! chaos smoke in `ci.sh` SIGKILLs a primary under load and asserts zero
//! user-visible errors plus an automatic respawn + `REPLACE`.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use graphaug_rng::StdRng;
use graphaug_serve::{stats_field, ServeClient};

/// RNG stream tag for backoff jitter (see `graphaug-rng`'s stream-derivation
/// convention: distinct tags give independent streams from one seed).
const JITTER_STREAM_TAG: u64 = 0xBAC0_0FF5;

/// Deterministic exponential backoff with seeded jitter.
///
/// `attempt` 0 is the first *re*spawn: `base << attempt`, capped at `cap`,
/// plus a jitter draw in `[0, delay/2]` from the RNG stream keyed on
/// `(seed, shard, replica, attempt)`. Pure — the same inputs give the same
/// delay on every box, which is what lets a test assert the exact schedule
/// while production still gets de-synchronized restarts (different
/// replicas draw from different streams).
pub fn backoff_with_jitter(
    base: Duration,
    cap: Duration,
    attempt: u32,
    seed: u64,
    shard: usize,
    replica: usize,
) -> Duration {
    let shift = attempt.min(20);
    let exp = base.saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
    let delay = exp.min(cap);
    let key =
        JITTER_STREAM_TAG ^ ((shard as u64) << 40) ^ ((replica as u64) << 24) ^ attempt as u64;
    let mut rng = StdRng::stream(seed, key);
    let half_ns = (delay.as_nanos() / 2) as u64;
    let jitter = if half_ns == 0 {
        Duration::ZERO
    } else {
        Duration::from_nanos(rng.bounded_u64(half_ns + 1))
    };
    delay + jitter
}

/// A child process killed (SIGKILL) and reaped on drop, so a failed
/// supervisor run — or a test that panics — cannot leak replicas.
#[derive(Debug)]
pub struct ChildGuard(pub Child);

impl ChildGuard {
    /// The child's OS pid.
    pub fn pid(&self) -> u32 {
        self.0.id()
    }

    /// Has the child exited? (Non-blocking.)
    pub fn exited(&mut self) -> bool {
        matches!(self.0.try_wait(), Ok(Some(_)))
    }

    /// Kills and reaps the child now.
    pub fn kill(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Spawns `argv` and waits (up to `ready_timeout`) for it to print a
/// `READY … addr=<addr> …` line on stdout, returning the guard and the
/// announced address. The stdout scan runs on a helper thread that keeps
/// draining after READY so the pipe never fills and blocks the child.
pub fn spawn_ready(
    argv: &[String],
    ready_timeout: Duration,
) -> Result<(ChildGuard, String), String> {
    let (bin, rest) = argv.split_first().ok_or("spawn command is empty")?;
    let mut child = Command::new(bin)
        .args(rest)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {bin}: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut guard = ChildGuard(child);

    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let reader = BufReader::new(stdout);
        let mut announced = false;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if !announced {
                if let Some(addr) = stats_field(&line, "addr=") {
                    if line.starts_with("READY ") {
                        let _ = tx.send(addr.to_string());
                        announced = true;
                    }
                }
            }
        }
    });
    match rx.recv_timeout(ready_timeout) {
        Ok(addr) => Ok((guard, addr)),
        Err(_) => {
            let status = guard.0.try_wait().ok().flatten();
            Err(format!(
                "child {bin} never printed READY within {ready_timeout:?} (status: {status:?})"
            ))
        }
    }
}

/// Tunables for one supervisor.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Number of shards.
    pub shards: usize,
    /// Replicas per shard (primary + secondaries).
    pub replication: usize,
    /// The argv used to spawn *every* replica (all replicas of a
    /// deployment serve the same checkpoint; the shard hash partitions
    /// capacity, not data). The command must print `READY addr=…`.
    pub spawn_cmd: Vec<String>,
    /// Liveness sweep cadence.
    pub probe_period: Duration,
    /// How long a freshly spawned replica gets to print READY (the first
    /// one may be training a checkpoint from scratch).
    pub ready_timeout: Duration,
    /// First respawn delay; doubles per consecutive restart.
    pub backoff_base: Duration,
    /// Ceiling for the exponential backoff (before jitter).
    pub backoff_cap: Duration,
    /// Respawns allowed per replica before it is abandoned.
    pub restart_budget: u32,
    /// Consecutive PING failures before a live-but-hung child is killed.
    pub down_after: u32,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl SupervisorConfig {
    /// Defaults tuned for loopback CI: fast sweeps, short backoff, a
    /// generous READY timeout (first boot may train).
    pub fn new(shards: usize, replication: usize, spawn_cmd: Vec<String>) -> SupervisorConfig {
        SupervisorConfig {
            shards,
            replication,
            spawn_cmd,
            probe_period: Duration::from_millis(100),
            ready_timeout: Duration::from_secs(120),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(5),
            restart_budget: 5,
            down_after: 3,
            seed: 1,
        }
    }
}

/// Shared supervisor counters (readable from another thread while the
/// supervision loop runs).
#[derive(Default)]
pub struct SupervisorStats {
    /// Successful respawns (child exited or hung, replacement is READY).
    pub respawns: AtomicU64,
    /// `REPLACE` commands issued to the router admin listener.
    pub replaces: AtomicU64,
    /// Replicas abandoned after exhausting their restart budget.
    pub abandoned: AtomicU64,
    /// Children killed for failing PING while still running.
    pub hung_kills: AtomicU64,
}

struct Slot {
    child: Option<ChildGuard>,
    addr: String,
    restarts: u32,
    ping_failures: u32,
    abandoned: bool,
}

/// Owns `shards × replication` replica child processes and keeps them
/// alive. See the module docs for the lifecycle.
pub struct Supervisor {
    cfg: SupervisorConfig,
    slots: Vec<Vec<Slot>>,
    stats: Arc<SupervisorStats>,
}

impl Supervisor {
    /// A supervisor with no children yet; call [`Supervisor::spawn_all`].
    pub fn new(cfg: SupervisorConfig) -> Supervisor {
        assert!(cfg.shards > 0 && cfg.replication > 0);
        let slots = (0..cfg.shards)
            .map(|_| {
                (0..cfg.replication)
                    .map(|_| Slot {
                        child: None,
                        addr: String::new(),
                        restarts: 0,
                        ping_failures: 0,
                        abandoned: false,
                    })
                    .collect()
            })
            .collect();
        Supervisor {
            cfg,
            slots,
            stats: Arc::new(SupervisorStats::default()),
        }
    }

    /// Shared counters.
    pub fn stats(&self) -> Arc<SupervisorStats> {
        self.stats.clone()
    }

    /// The current per-shard replica addresses (primary first) — the
    /// shape `RouterConfig::from_sets` takes.
    pub fn replica_sets(&self) -> Vec<Vec<String>> {
        self.slots
            .iter()
            .map(|set| set.iter().map(|s| s.addr.clone()).collect())
            .collect()
    }

    /// The pid of `(shard, replica)`'s current child, if it has one.
    pub fn pid(&self, shard: usize, replica: usize) -> Option<u32> {
        self.slots[shard][replica].child.as_ref().map(|c| c.pid())
    }

    /// Spawns every replica sequentially (each must reach READY before
    /// the next starts) and returns the replica sets. Logs one
    /// `SPAWNED shard=… replica=… pid=… addr=…` line per child.
    pub fn spawn_all(&mut self, log: &mut dyn FnMut(&str)) -> Result<Vec<Vec<String>>, String> {
        for shard in 0..self.cfg.shards {
            for replica in 0..self.cfg.replication {
                let (child, addr) = spawn_ready(&self.cfg.spawn_cmd, self.cfg.ready_timeout)
                    .map_err(|e| format!("shard {shard} replica {replica}: {e}"))?;
                log(&format!(
                    "SPAWNED shard={shard} replica={replica} pid={} addr={addr}",
                    child.pid()
                ));
                let slot = &mut self.slots[shard][replica];
                slot.child = Some(child);
                slot.addr = addr;
            }
        }
        Ok(self.replica_sets())
    }

    /// Kills every child now (shutdown path; also what `Drop` does via
    /// the guards).
    pub fn kill_all(&mut self) {
        for set in &mut self.slots {
            for slot in set {
                if let Some(mut child) = slot.child.take() {
                    child.kill();
                }
            }
        }
    }

    /// One liveness sweep over every slot: reap exited children, kill
    /// hung ones (PING), respawn with backoff, and `REPLACE` through
    /// `admin` when a respawn lands on a new address. Returns how many
    /// respawns happened this sweep.
    pub fn sweep(&mut self, admin: &str, stop: &AtomicBool, log: &mut dyn FnMut(&str)) -> usize {
        let mut respawned = 0usize;
        for shard in 0..self.cfg.shards {
            for replica in 0..self.cfg.replication {
                if stop.load(Ordering::Relaxed) {
                    return respawned;
                }
                let slot = &mut self.slots[shard][replica];
                if slot.abandoned {
                    continue;
                }
                let dead = match slot.child.as_mut() {
                    None => true,
                    Some(child) => {
                        if child.exited() {
                            log(&format!(
                                "EXITED shard={shard} replica={replica} pid={}",
                                child.pid()
                            ));
                            true
                        } else if ping_ok(&slot.addr, self.cfg.probe_period) {
                            slot.ping_failures = 0;
                            false
                        } else {
                            slot.ping_failures += 1;
                            if slot.ping_failures >= self.cfg.down_after {
                                log(&format!(
                                    "HUNG shard={shard} replica={replica} pid={} \
                                     ({} ping failures) — killing",
                                    child.pid(),
                                    slot.ping_failures
                                ));
                                child.kill();
                                self.stats.hung_kills.fetch_add(1, Ordering::Relaxed);
                                true
                            } else {
                                false
                            }
                        }
                    }
                };
                if dead && self.respawn(shard, replica, admin, stop, log) {
                    respawned += 1;
                }
            }
        }
        respawned
    }

    /// The supervision loop: sweep, sleep, repeat until `stop`.
    pub fn run(&mut self, admin: &str, stop: &AtomicBool, log: &mut dyn FnMut(&str)) {
        while !stop.load(Ordering::Relaxed) {
            self.sweep(admin, stop, log);
            interruptible_sleep(self.cfg.probe_period, stop);
        }
        self.kill_all();
    }

    /// Respawns `(shard, replica)` under the backoff/budget policy.
    /// Returns whether a replacement child is up.
    fn respawn(
        &mut self,
        shard: usize,
        replica: usize,
        admin: &str,
        stop: &AtomicBool,
        log: &mut dyn FnMut(&str),
    ) -> bool {
        {
            let slot = &mut self.slots[shard][replica];
            slot.child = None;
            slot.ping_failures = 0;
            if slot.restarts >= self.cfg.restart_budget {
                slot.abandoned = true;
                self.stats.abandoned.fetch_add(1, Ordering::Relaxed);
                log(&format!(
                    "ABANDONED shard={shard} replica={replica} after {} restarts \
                     (budget {})",
                    slot.restarts, self.cfg.restart_budget
                ));
                return false;
            }
        }
        let attempt = self.slots[shard][replica].restarts;
        let delay = backoff_with_jitter(
            self.cfg.backoff_base,
            self.cfg.backoff_cap,
            attempt,
            self.cfg.seed,
            shard,
            replica,
        );
        log(&format!(
            "RESPAWN shard={shard} replica={replica} attempt={attempt} \
             backoff_ms={}",
            delay.as_millis()
        ));
        interruptible_sleep(delay, stop);
        if stop.load(Ordering::Relaxed) {
            return false;
        }
        match spawn_ready(&self.cfg.spawn_cmd, self.cfg.ready_timeout) {
            Ok((child, addr)) => {
                let pid = child.pid();
                let old_addr = std::mem::take(&mut self.slots[shard][replica].addr);
                {
                    let slot = &mut self.slots[shard][replica];
                    slot.child = Some(child);
                    slot.addr = addr.clone();
                    slot.restarts += 1;
                }
                self.stats.respawns.fetch_add(1, Ordering::Relaxed);
                log(&format!(
                    "RESPAWNED shard={shard} replica={replica} pid={pid} addr={addr}"
                ));
                if addr != old_addr {
                    match replace_on_router(admin, shard, replica, &addr) {
                        Ok(()) => {
                            self.stats.replaces.fetch_add(1, Ordering::Relaxed);
                            log(&format!(
                                "REPLACED shard={shard} replica={replica} addr={addr}"
                            ));
                        }
                        Err(e) => log(&format!(
                            "REPLACE-FAILED shard={shard} replica={replica}: {e}"
                        )),
                    }
                }
                true
            }
            Err(e) => {
                // Failed spawn burns a restart: a command that can never
                // reach READY must hit the budget, not loop forever.
                self.slots[shard][replica].restarts += 1;
                log(&format!(
                    "RESPAWN-FAILED shard={shard} replica={replica}: {e}"
                ));
                false
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.kill_all();
    }
}

/// One `PING` with connect+I/O timeout against `addr`.
fn ping_ok(addr: &str, timeout: Duration) -> bool {
    let timeout = timeout.max(Duration::from_millis(50));
    ServeClient::connect_with_timeouts(addr, timeout, Some(timeout))
        .and_then(|mut c| c.ping())
        .unwrap_or(false)
}

/// Issues `REPLACE <shard> <replica> <addr>` on the router admin listener.
fn replace_on_router(admin: &str, shard: usize, replica: usize, addr: &str) -> Result<(), String> {
    let t = Duration::from_secs(2);
    let mut client =
        ServeClient::connect_with_timeouts(admin, t, Some(t)).map_err(|e| e.to_string())?;
    let reply = client
        .request_lines(&format!("REPLACE {shard} {replica} {addr}"), 1)
        .map_err(|e| e.to_string())?
        .remove(0);
    client.quit();
    if reply.starts_with("OK ") {
        Ok(())
    } else {
        Err(format!("REPLACE rejected: {reply}"))
    }
}

/// Sleeps `total` in small slices, returning early when `stop` flips.
fn interruptible_sleep(total: Duration, stop: &AtomicBool) {
    let slice = Duration::from_millis(20);
    let mut slept = Duration::ZERO;
    while slept < total && !stop.load(Ordering::Relaxed) {
        let step = slice.min(total - slept);
        std::thread::sleep(step);
        slept += step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_grows_to_the_cap() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let mut prev = Duration::ZERO;
        for attempt in 0..8 {
            let a = backoff_with_jitter(base, cap, attempt, 7, 0, 1);
            let b = backoff_with_jitter(base, cap, attempt, 7, 0, 1);
            assert_eq!(a, b, "pure function of (seed, shard, replica, attempt)");
            // delay ∈ [exp, 1.5·exp] with exp capped: monotone up to the
            // cap region, and never more than 1.5× the cap.
            assert!(a >= base.min(cap));
            assert!(a <= cap + cap / 2);
            if attempt >= 1 {
                assert!(
                    a + cap / 2 >= prev,
                    "attempt {attempt}: {a:?} collapsed vs {prev:?}"
                );
            }
            prev = a;
        }
    }

    #[test]
    fn jitter_streams_differ_across_replicas_and_seeds() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(10);
        let d00 = backoff_with_jitter(base, cap, 3, 7, 0, 0);
        let d01 = backoff_with_jitter(base, cap, 3, 7, 0, 1);
        let d_seed = backoff_with_jitter(base, cap, 3, 8, 0, 0);
        // Equality would not be *wrong*, but with a 400ms jitter range a
        // collision across these particular streams would be a 1-in-1e8
        // fluke — treat it as a broken stream derivation.
        assert!(d00 != d01 || d00 != d_seed);
    }

    #[test]
    fn spawn_ready_rejects_empty_and_unspawnable_commands() {
        assert!(spawn_ready(&[], Duration::from_secs(1)).is_err());
        let missing = vec!["/nonexistent/definitely-not-a-binary".to_string()];
        assert!(spawn_ready(&missing, Duration::from_secs(1)).is_err());
    }

    #[test]
    fn spawn_ready_times_out_on_a_silent_child() {
        // `sleep` never prints READY; the scan must give up at the
        // timeout and the guard must kill the child on drop.
        let argv = vec!["sleep".to_string(), "30".to_string()];
        let err = spawn_ready(&argv, Duration::from_millis(200)).unwrap_err();
        assert!(err.contains("never printed READY"), "{err}");
    }
}
