//! The user→shard hash contract.
//!
//! Routing must be a *pure function* of `(user, shard count)` — no
//! process-local state, no `RandomState`, nothing that differs between the
//! router, the chaos load generator, and a test asserting parity. All
//! three link this function, so "which replica owns user `u`" has exactly
//! one answer everywhere.
//!
//! The mix is the workspace's SplitMix64 finalizer (`splitmix64_mix`, the
//! same bijective avalanche used to derive RNG streams), salted so shard
//! assignment is not correlated with anything else keyed on raw user ids.
//! The modulo reduction means assignments reshuffle when the shard count
//! changes — acceptable here because replicas are full model replicas
//! (any of them can answer any user); the hash decides *capacity
//! partitioning*, not data placement.

use graphaug_rng::splitmix64_mix;

/// Salt folded into the user id before mixing ("graugrt!" in ASCII — an
/// arbitrary but stable constant; changing it reshuffles every user).
pub const SHARD_HASH_SALT: u64 = 0x6772_6175_6772_7421;

/// The shard (replica index) that owns `user` among `n_shards` replicas.
///
/// Deterministic across processes, platforms, and time; balanced to well
/// within 2× of uniform for any practical user population (asserted by
/// property test across shard counts {2, 3, 5}).
pub fn shard_of(user: u32, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard_of needs at least one shard");
    (splitmix64_mix(user as u64 ^ SHARD_HASH_SALT) % n_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_range_and_is_stable() {
        for n in 1..=8usize {
            for user in 0..1000u32 {
                let s = shard_of(user, n);
                assert!(s < n);
                assert_eq!(s, shard_of(user, n), "pure function of (user, n)");
            }
        }
    }

    #[test]
    fn pinned_assignments_never_change() {
        // The wire contract: these exact values are what a router built
        // from this source routes, forever. A change here is a breaking
        // protocol change, not a refactor.
        assert_eq!(shard_of(0, 3), 2);
        assert_eq!(shard_of(1, 3), 0);
        assert_eq!(shard_of(2, 3), 0);
        assert_eq!(shard_of(3, 3), 1);
        assert_eq!(shard_of(0, 5), 0);
        assert_eq!(shard_of(1, 5), 3);
        assert_eq!(shard_of(2, 5), 1);
        assert_eq!(shard_of(3, 5), 1);
        assert_eq!(shard_of(1_000_000, 5), shard_of(1_000_000, 5));
    }
}
