//! The user→shard hash contract.
//!
//! Routing must be a *pure function* of `(user, shard count)` — no
//! process-local state, no `RandomState`, nothing that differs between the
//! router, the chaos load generator, and a test asserting parity. All
//! three link this function, so "which replica owns user `u`" has exactly
//! one answer everywhere.
//!
//! The mix is the workspace's SplitMix64 finalizer (`splitmix64_mix`, the
//! same bijective avalanche used to derive RNG streams), salted so shard
//! assignment is not correlated with anything else keyed on raw user ids.
//! The modulo reduction means assignments reshuffle when the shard count
//! changes — acceptable here because replicas are full model replicas
//! (any of them can answer any user); the hash decides *capacity
//! partitioning*, not data placement.

use graphaug_rng::splitmix64_mix;

/// Salt folded into the user id before mixing ("graugrt!" in ASCII — an
/// arbitrary but stable constant; changing it reshuffles every user).
pub const SHARD_HASH_SALT: u64 = 0x6772_6175_6772_7421;

/// The shard (replica index) that owns `user` among `n_shards` replicas.
///
/// Deterministic across processes, platforms, and time; balanced to well
/// within 2× of uniform for any practical user population (asserted by
/// property test across shard counts {2, 3, 5}).
pub fn shard_of(user: u32, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard_of needs at least one shard");
    (splitmix64_mix(user as u64 ^ SHARD_HASH_SALT) % n_shards as u64) as usize
}

/// Parses the replica-set addressing syntax shared by `router_main`,
/// `supervisord`, and `chaos_loadgen`: shards separated by commas,
/// replicas within a shard separated by `|`, primary first.
///
/// ```text
/// "p0|s0,p1|s1,p2|s2"   three shards, replication factor 2
/// "a,b,c"               three shards, no replication (factor 1)
/// ```
///
/// The shard *count* — the thing [`shard_of`] reduces by — is the number
/// of comma-separated sets, never the total replica count: adding a
/// secondary must not reshuffle user ownership, or failover would stop
/// being invisible. Addresses are validated for shape only (resolvable),
/// not liveness.
pub fn parse_replica_sets(spec: &str) -> Result<Vec<Vec<String>>, String> {
    let mut sets = Vec::new();
    for (shard, set_spec) in spec.split(',').enumerate() {
        let mut set = Vec::new();
        for addr in set_spec.split('|') {
            let addr = addr.trim();
            if addr.is_empty() {
                return Err(format!("shard {shard}: empty replica address in {spec:?}"));
            }
            graphaug_serve::resolve_addr(addr)?;
            set.push(addr.to_string());
        }
        sets.push(set);
    }
    if sets.is_empty() {
        return Err("no replica sets given".into());
    }
    Ok(sets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_range_and_is_stable() {
        for n in 1..=8usize {
            for user in 0..1000u32 {
                let s = shard_of(user, n);
                assert!(s < n);
                assert_eq!(s, shard_of(user, n), "pure function of (user, n)");
            }
        }
    }

    #[test]
    fn replica_set_specs_parse_and_validate() {
        assert_eq!(
            parse_replica_sets("127.0.0.1:1|127.0.0.1:2,127.0.0.1:3").unwrap(),
            vec![
                vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
                vec!["127.0.0.1:3".to_string()],
            ]
        );
        // Flat lists are replication factor 1.
        assert_eq!(
            parse_replica_sets("127.0.0.1:1,127.0.0.1:2").unwrap().len(),
            2
        );
        assert!(parse_replica_sets("").is_err());
        assert!(parse_replica_sets("127.0.0.1:1|").is_err(), "empty replica");
        assert!(parse_replica_sets("|127.0.0.1:1").is_err());
        assert!(parse_replica_sets("not-an-addr").is_err());
        assert!(parse_replica_sets("127.0.0.1:1|nope").is_err());
    }

    #[test]
    fn pinned_assignments_never_change() {
        // The wire contract: these exact values are what a router built
        // from this source routes, forever. A change here is a breaking
        // protocol change, not a refactor.
        assert_eq!(shard_of(0, 3), 2);
        assert_eq!(shard_of(1, 3), 0);
        assert_eq!(shard_of(2, 3), 0);
        assert_eq!(shard_of(3, 3), 1);
        assert_eq!(shard_of(0, 5), 0);
        assert_eq!(shard_of(1, 5), 3);
        assert_eq!(shard_of(2, 5), 1);
        assert_eq!(shard_of(3, 5), 1);
        assert_eq!(shard_of(1_000_000, 5), shard_of(1_000_000, 5));
    }
}
