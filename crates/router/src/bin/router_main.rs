//! The shard-router process: hashes users across N replica engines.
//!
//! ```text
//! router_main --replicas ADDR[,ADDR...] [--addr HOST:PORT] [--probe-ms N]
//! ```
//!
//! Speaks the serving protocol on both sides (plus the admin verb
//! `REPLACE <shard> <addr>` to re-point a shard at a restarted replica)
//! and prints `READY addr=<bound> shards=<n> up=<k>` once listening —
//! replicas that are down at boot do not block startup; the prober marks
//! them up when they appear.

use std::process::ExitCode;
use std::time::Duration;

use graphaug_router::{probe_once, start, Router, RouterConfig};
use graphaug_serve::resolve_addr;

struct Args {
    replicas: Vec<String>,
    addr: String,
    probe_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        replicas: Vec::new(),
        addr: "127.0.0.1:0".into(),
        probe_ms: 25,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--replicas" => {
                out.replicas = value("--replicas")?
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--addr" => out.addr = value("--addr")?,
            "--probe-ms" => {
                out.probe_ms = value("--probe-ms")?
                    .parse()
                    .map_err(|_| "bad --probe-ms".to_string())?;
                if out.probe_ms == 0 {
                    return Err("--probe-ms must be at least 1".into());
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.replicas.is_empty() {
        return Err("missing --replicas ADDR[,ADDR...]".into());
    }
    for addr in &out.replicas {
        resolve_addr(addr)?;
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("router_main: {e}");
            eprintln!(
                "usage: router_main --replicas ADDR[,ADDR...] [--addr HOST:PORT] [--probe-ms N]"
            );
            return ExitCode::from(2);
        }
    };

    let cfg = RouterConfig::new(args.replicas).probe_period(Duration::from_millis(args.probe_ms));
    let router = Router::new(cfg);

    // Two synchronous probe sweeps so the READY line reports real state: a
    // replica that is down at boot needs `down_after` (2) consecutive
    // failures to be marked down.
    for _ in 0..2 {
        for shard in 0..router.n_shards() {
            probe_once(router.health(), shard, Duration::from_millis(500));
        }
    }

    let handle = match start(router.clone(), &args.addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("router_main: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "READY addr={} shards={} up={}",
        handle.addr(),
        router.n_shards(),
        router.health().up_count()
    );

    // Route until killed (the accept loop runs on its own thread).
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
