//! The shard-router process: hashes users across N replica sets.
//!
//! ```text
//! router_main --replicas SET[,SET...] [--addr HOST:PORT]
//!     [--admin-addr LOOPBACK:PORT] [--probe-ms N] [--budget-ms N]
//! ```
//!
//! Each `SET` is one shard's replica addresses, primary first, separated
//! by `|` (a plain address is a set of one): `p0|s0,p1|s1` is two shards
//! at replication factor 2. Speaks the serving protocol on the public
//! port; the admin verb `REPLACE <shard> [<replica>] <addr>` (re-point a
//! replica at a restarted process) is accepted only on the separate
//! loopback admin listener. Prints
//! `READY addr=<bound> admin=<bound> shards=<n> up=<k>` once listening —
//! replicas that are down at boot do not block startup; the prober marks
//! them up when they appear.

use std::process::ExitCode;
use std::time::Duration;

use graphaug_router::{parse_replica_sets, probe_once, start_with_admin, Router, RouterConfig};

struct Args {
    replica_sets: Vec<Vec<String>>,
    addr: String,
    admin_addr: String,
    probe_ms: u64,
    budget_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        replica_sets: Vec::new(),
        addr: "127.0.0.1:0".into(),
        admin_addr: "127.0.0.1:0".into(),
        probe_ms: 25,
        budget_ms: 5000,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--replicas" => {
                out.replica_sets = parse_replica_sets(&value("--replicas")?)?;
            }
            "--addr" => out.addr = value("--addr")?,
            "--admin-addr" => out.admin_addr = value("--admin-addr")?,
            "--probe-ms" => {
                out.probe_ms = value("--probe-ms")?
                    .parse()
                    .map_err(|_| "bad --probe-ms".to_string())?;
                if out.probe_ms == 0 {
                    return Err("--probe-ms must be at least 1".into());
                }
            }
            "--budget-ms" => {
                out.budget_ms = value("--budget-ms")?
                    .parse()
                    .map_err(|_| "bad --budget-ms".to_string())?;
                if out.budget_ms == 0 {
                    return Err("--budget-ms must be at least 1".into());
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.replica_sets.is_empty() {
        return Err("missing --replicas SET[,SET...]".into());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("router_main: {e}");
            eprintln!(
                "usage: router_main --replicas SET[,SET...] [--addr HOST:PORT] \
                 [--admin-addr LOOPBACK:PORT] [--probe-ms N] [--budget-ms N]"
            );
            return ExitCode::from(2);
        }
    };

    let cfg = RouterConfig::from_sets(args.replica_sets)
        .probe_period(Duration::from_millis(args.probe_ms))
        .request_budget(Duration::from_millis(args.budget_ms));
    let router = Router::new(cfg);

    // Two synchronous probe sweeps so the READY line reports real state: a
    // replica that is down at boot needs `down_after` (2) consecutive
    // failures to be marked down.
    for _ in 0..2 {
        for shard in 0..router.n_shards() {
            for replica in 0..router.health().n_replicas(shard) {
                probe_once(router.health(), shard, replica, Duration::from_millis(500));
            }
        }
    }

    let handle = match start_with_admin(router.clone(), &args.addr, &args.admin_addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!(
                "router_main: cannot bind {} / admin {}: {e}",
                args.addr, args.admin_addr
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "READY addr={} admin={} shards={} up={}",
        handle.addr(),
        handle.admin_addr(),
        router.n_shards(),
        router.health().up_count()
    );

    // Route until killed (the accept loops run on their own threads).
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
