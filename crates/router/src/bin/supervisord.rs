//! The one-command HA deployment: replicas + router + respawn loop.
//!
//! ```text
//! supervisord --shards N --replication R --cmd "serve_main --dir CKPT ..."
//!     [--addr HOST:PORT] [--admin-addr LOOPBACK:PORT]
//!     [--probe-ms N] [--budget-ms N] [--ready-timeout-ms N]
//!     [--backoff-ms N] [--backoff-cap-ms N] [--restart-budget N] [--seed S]
//! ```
//!
//! Spawns `shards × replication` replica child processes (sequentially —
//! the first one trains/validates the checkpoint, the rest reuse it),
//! boots the shard router in-process over the resulting replica sets,
//! then supervises forever: a replica that exits or hangs is respawned
//! under seeded exponential backoff with a restart budget, and its new
//! ephemeral address is installed into the router via `REPLACE` on the
//! loopback admin listener — no operator, no router restart, and (with
//! replication ≥ 2) no user-visible errors while the respawn is in
//! flight, because the surviving replica serves the same bits.
//!
//! Output is line-oriented and scrapable: one `SPAWNED shard= replica=
//! pid= addr=` line per child, then `READY addr=<public> admin=<admin>
//! shards=N replication=R`, then lifecycle events
//! (`EXITED`/`HUNG`/`RESPAWN`/`RESPAWNED`/`REPLACED`/`ABANDONED`) as they
//! happen. `ci.sh` parses the pids for cleanup and asserts the
//! `RESPAWNED`+`REPLACED` pair appears after SIGKILLing a primary.

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

use graphaug_router::{
    probe_once, start_with_admin, Router, RouterConfig, Supervisor, SupervisorConfig,
};

struct Args {
    shards: usize,
    replication: usize,
    cmd: Vec<String>,
    addr: String,
    admin_addr: String,
    probe_ms: u64,
    budget_ms: u64,
    ready_timeout_ms: u64,
    backoff_ms: u64,
    backoff_cap_ms: u64,
    restart_budget: u32,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        shards: 0,
        replication: 2,
        cmd: Vec::new(),
        addr: "127.0.0.1:0".into(),
        admin_addr: "127.0.0.1:0".into(),
        probe_ms: 100,
        budget_ms: 5000,
        ready_timeout_ms: 120_000,
        backoff_ms: 50,
        backoff_cap_ms: 5000,
        restart_budget: 5,
        seed: 1,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        let int = |name: &str, v: Result<String, String>| {
            v.and_then(|v| v.parse::<u64>().map_err(|_| format!("bad {name} value")))
        };
        match flag.as_str() {
            "--shards" => out.shards = int("--shards", value("--shards"))? as usize,
            "--replication" => {
                out.replication = int("--replication", value("--replication"))? as usize
            }
            "--cmd" => {
                out.cmd = value("--cmd")?
                    .split_whitespace()
                    .map(str::to_string)
                    .collect();
            }
            "--addr" => out.addr = value("--addr")?,
            "--admin-addr" => out.admin_addr = value("--admin-addr")?,
            "--probe-ms" => out.probe_ms = int("--probe-ms", value("--probe-ms"))?,
            "--budget-ms" => out.budget_ms = int("--budget-ms", value("--budget-ms"))?,
            "--ready-timeout-ms" => {
                out.ready_timeout_ms = int("--ready-timeout-ms", value("--ready-timeout-ms"))?
            }
            "--backoff-ms" => out.backoff_ms = int("--backoff-ms", value("--backoff-ms"))?,
            "--backoff-cap-ms" => {
                out.backoff_cap_ms = int("--backoff-cap-ms", value("--backoff-cap-ms"))?
            }
            "--restart-budget" => {
                out.restart_budget = int("--restart-budget", value("--restart-budget"))? as u32
            }
            "--seed" => out.seed = int("--seed", value("--seed"))?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.shards == 0 {
        return Err("missing/zero --shards N".into());
    }
    if out.replication == 0 {
        return Err("--replication must be at least 1".into());
    }
    if out.cmd.is_empty() {
        return Err("missing --cmd \"BIN ARGS...\" (must print READY addr=...)".into());
    }
    if out.probe_ms == 0 || out.budget_ms == 0 || out.ready_timeout_ms == 0 {
        return Err("--probe-ms, --budget-ms and --ready-timeout-ms must be at least 1".into());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("supervisord: {e}");
            eprintln!(
                "usage: supervisord --shards N --replication R --cmd \"BIN ARGS...\" \
                 [--addr HOST:PORT] [--admin-addr LOOPBACK:PORT] [--probe-ms N] \
                 [--budget-ms N] [--ready-timeout-ms N] [--backoff-ms N] \
                 [--backoff-cap-ms N] [--restart-budget N] [--seed S]"
            );
            return ExitCode::from(2);
        }
    };

    let mut sup_cfg = SupervisorConfig::new(args.shards, args.replication, args.cmd.clone());
    sup_cfg.probe_period = Duration::from_millis(args.probe_ms);
    sup_cfg.ready_timeout = Duration::from_millis(args.ready_timeout_ms);
    sup_cfg.backoff_base = Duration::from_millis(args.backoff_ms);
    sup_cfg.backoff_cap = Duration::from_millis(args.backoff_cap_ms);
    sup_cfg.restart_budget = args.restart_budget;
    sup_cfg.seed = args.seed;

    let mut log = |line: &str| println!("{line}");
    let mut supervisor = Supervisor::new(sup_cfg);
    let sets = match supervisor.spawn_all(&mut log) {
        Ok(sets) => sets,
        Err(e) => {
            eprintln!("supervisord: spawn failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let router_cfg = RouterConfig::from_sets(sets)
        .probe_period(Duration::from_millis(args.probe_ms.min(50)))
        .request_budget(Duration::from_millis(args.budget_ms));
    let router = Router::new(router_cfg);
    // One synchronous probe sweep so the READY line reports real state
    // (every replica just printed READY, so one success each suffices).
    for shard in 0..router.n_shards() {
        for replica in 0..router.health().n_replicas(shard) {
            probe_once(router.health(), shard, replica, Duration::from_millis(500));
        }
    }
    let handle = match start_with_admin(router.clone(), &args.addr, &args.admin_addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!(
                "supervisord: cannot bind {} / admin {}: {e}",
                args.addr, args.admin_addr
            );
            return ExitCode::FAILURE;
        }
    };
    let admin = handle.admin_addr().to_string();
    println!(
        "READY addr={} admin={admin} shards={} replication={}",
        handle.addr(),
        args.shards,
        args.replication
    );

    // Supervise until killed. The router's accept loops and prober run on
    // their own threads; this thread owns the children.
    let stop = AtomicBool::new(false);
    supervisor.run(&admin, &stop, &mut log);
    ExitCode::SUCCESS
}
