//! The chaos scenario driver: proves the router's tail behavior under
//! replica failure, end to end, against real processes.
//!
//! ```text
//! chaos_loadgen <router-addr> --replicas A0,A1,A2
//!     [--victim S --victim-pid PID --victim-respawn "CMD ARGS..."]
//!     [--requests-per-phase N] [--conns N] [--seed S] [--kmax K]
//!     [--parity-users N]
//! ```
//!
//! Runs a scripted timeline of load phases (the `FaultPlan` idiom from
//! `graphaug-runtime`: the schedule is data, keyed on phase index, so a
//! run replays exactly from its seed):
//!
//! 1. `uniform`   — uniform user traffic, zero errors tolerated;
//! 2. `zipf`      — zipfian skew (s = 1.1), zero errors tolerated;
//! 3. `hotstorm`  — 90% of traffic on 4 hot users, zero errors tolerated;
//! 4. *kill*      — SIGKILLs the victim replica, then `failover`: uniform
//!    traffic where `ERR`s are allowed **only** for users the hash assigns
//!    to the victim shard (the documented failover window — the router
//!    must degrade exactly the dead shard's users, nobody else);
//! 5. *rejoin*    — respawns the victim (same checkpoint dir, new
//!    ephemeral port), installs the new address via `REPLACE`, waits for
//!    the router's prober to mark it up, then `rejoined`: uniform traffic,
//!    zero errors tolerated again;
//! 6. *parity*    — for a sampled user set, asserts the routed response
//!    line equals the owning replica's direct response **byte-for-byte**
//!    at several cutoffs.
//!
//! Per-phase output: `phase <name>: requests=N errors=N degraded=N
//! p50_us=… p95_us=… p99_us=… qps=…`. Any disallowed error, parity
//! mismatch, or timeline step failure exits non-zero.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use graphaug_rng::StdRng;
use graphaug_router::shard_of;
use graphaug_serve::client::{resolve_addr, stats_field, LatencySummary, ServeClient};
use graphaug_serve::{parse_ok_line, UserSampler};

const USAGE: &str = "usage: chaos_loadgen <router-addr> --replicas A0,A1,A2 \
     [--victim S --victim-pid PID --victim-respawn \"CMD...\"] \
     [--requests-per-phase N] [--conns N] [--seed S] [--kmax K] [--parity-users N]";

struct Args {
    router: String,
    replicas: Vec<String>,
    victim: Option<usize>,
    victim_pid: Option<u32>,
    victim_respawn: Option<String>,
    requests_per_phase: usize,
    conns: usize,
    seed: u64,
    kmax: usize,
    parity_users: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let router = args.next().ok_or("missing <router-addr>")?;
    if router.starts_with('-') {
        return Err(format!("expected <router-addr>, got flag {router:?}"));
    }
    resolve_addr(&router)?;
    let mut out = Args {
        router,
        replicas: Vec::new(),
        victim: None,
        victim_pid: None,
        victim_respawn: None,
        requests_per_phase: 400,
        conns: 4,
        seed: 1,
        kmax: 20,
        parity_users: 16,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        let int = |name: &str, v: Result<String, String>| {
            v.and_then(|v| v.parse::<u64>().map_err(|_| format!("bad {name} value")))
        };
        match flag.as_str() {
            "--replicas" => {
                out.replicas = value("--replicas")?
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--victim" => out.victim = Some(int("--victim", value("--victim"))? as usize),
            "--victim-pid" => {
                out.victim_pid = Some(int("--victim-pid", value("--victim-pid"))? as u32)
            }
            "--victim-respawn" => out.victim_respawn = Some(value("--victim-respawn")?),
            "--requests-per-phase" => {
                out.requests_per_phase =
                    int("--requests-per-phase", value("--requests-per-phase"))? as usize
            }
            "--conns" => out.conns = int("--conns", value("--conns"))? as usize,
            "--seed" => out.seed = int("--seed", value("--seed"))?,
            "--kmax" => out.kmax = int("--kmax", value("--kmax"))? as usize,
            "--parity-users" => {
                out.parity_users = int("--parity-users", value("--parity-users"))? as usize
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.replicas.is_empty() {
        return Err("missing --replicas A0[,A1...]".into());
    }
    for addr in &out.replicas {
        resolve_addr(addr)?;
    }
    if out.requests_per_phase == 0 || out.conns == 0 || out.kmax == 0 {
        return Err("--requests-per-phase, --conns and --kmax must be at least 1".into());
    }
    if let Some(v) = out.victim {
        if v >= out.replicas.len() {
            return Err(format!(
                "--victim {v} out of range (have {} replicas)",
                out.replicas.len()
            ));
        }
        if out.victim_pid.is_none() || out.victim_respawn.is_none() {
            return Err("--victim needs --victim-pid and --victim-respawn".into());
        }
    }
    Ok(out)
}

/// One step of the scripted timeline (the `FaultPlan` idiom: schedule as
/// data, keyed on step index, fully replayable from the seed).
enum Step {
    /// Drive load shaped by the sampler; `expect_down` lists the only
    /// shard whose users may see `ERR`s.
    Load {
        name: &'static str,
        sampler_for: fn(u32) -> UserSampler,
        expect_down: bool,
    },
    /// SIGKILL the victim replica.
    Kill,
    /// Respawn the victim, `REPLACE` its address, wait for rejoin.
    Rejoin,
}

fn scenario(with_chaos: bool) -> Vec<Step> {
    let mut steps = vec![
        Step::Load {
            name: "uniform",
            sampler_for: UserSampler::uniform,
            expect_down: false,
        },
        Step::Load {
            name: "zipf",
            sampler_for: |n| UserSampler::zipf(n, 1.1),
            expect_down: false,
        },
        Step::Load {
            name: "hotstorm",
            sampler_for: |n| UserSampler::hot(n, 4, 0.9),
            expect_down: false,
        },
    ];
    if with_chaos {
        steps.push(Step::Kill);
        steps.push(Step::Load {
            name: "failover",
            sampler_for: UserSampler::uniform,
            expect_down: true,
        });
        steps.push(Step::Rejoin);
        steps.push(Step::Load {
            name: "rejoined",
            sampler_for: UserSampler::uniform,
            expect_down: false,
        });
    }
    steps
}

#[derive(Default)]
struct ConnTally {
    latencies_us: Vec<u64>,
    /// Disallowed errors (wrong shard, or any error in a clean phase).
    errors: usize,
    /// Allowed errors: the expected-down shard's users during failover.
    degraded: usize,
}

#[allow(clippy::too_many_arguments)]
fn drive_phase_conn(
    router: &str,
    requests: usize,
    sampler: &UserSampler,
    kmax: usize,
    n_shards: usize,
    expect_down: Option<usize>,
    mut rng: StdRng,
) -> Result<ConnTally, String> {
    let mut client = ServeClient::connect(router).map_err(|e| format!("connect {router}: {e}"))?;
    let mut tally = ConnTally::default();
    for _ in 0..requests {
        let user = sampler.draw(&mut rng);
        let k = 1 + rng.bounded_u64(kmax as u64) as usize;
        let start = Instant::now();
        let line = client.rec_one(user, k).map_err(|e| e.to_string())?;
        tally.latencies_us.push(start.elapsed().as_micros() as u64);
        let ok = matches!(
            parse_ok_line(&line),
            Some(ok) if ok.user == user && ok.k == k && ok.items.len() <= k
        );
        if ok {
            continue;
        }
        if line.starts_with("ERR ") && expect_down == Some(shard_of(user, n_shards)) {
            tally.degraded += 1;
        } else {
            tally.errors += 1;
            eprintln!("chaos_loadgen: disallowed response for REC {user} {k}: {line}");
        }
    }
    client.quit();
    Ok(tally)
}

struct PhaseReport {
    errors: usize,
    degraded: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    args: &Args,
    phase_idx: usize,
    name: &str,
    sampler: &UserSampler,
    expect_down: Option<usize>,
) -> PhaseReport {
    let start = Instant::now();
    let mut handles = Vec::new();
    let per_conn = args.requests_per_phase.div_ceil(args.conns);
    for conn in 0..args.conns {
        let router = args.router.clone();
        let sampler = sampler.clone();
        let kmax = args.kmax;
        let n_shards = args.replicas.len();
        let rng = StdRng::stream(args.seed, (phase_idx as u64) << 32 | conn as u64);
        handles.push(std::thread::spawn(move || {
            drive_phase_conn(
                &router,
                per_conn,
                &sampler,
                kmax,
                n_shards,
                expect_down,
                rng,
            )
        }));
    }
    let mut latencies = Vec::new();
    let (mut errors, mut degraded) = (0usize, 0usize);
    for handle in handles {
        match handle.join() {
            Ok(Ok(t)) => {
                latencies.extend(t.latencies_us);
                errors += t.errors;
                degraded += t.degraded;
            }
            Ok(Err(e)) => {
                eprintln!("chaos_loadgen: phase {name} connection failed: {e}");
                errors += 1;
            }
            Err(_) => {
                eprintln!("chaos_loadgen: phase {name} worker panicked");
                errors += 1;
            }
        }
    }
    let s = LatencySummary::from_samples(latencies, start.elapsed());
    println!(
        "phase {name}: requests={} errors={errors} degraded={degraded} \
         p50_us={} p95_us={} p99_us={} qps={:.1}",
        s.count, s.p50_us, s.p95_us, s.p99_us, s.qps
    );
    PhaseReport { errors, degraded }
}

/// Kills the respawned victim on drop so a failed run cannot leak it.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Respawns the victim replica and returns (guard, READY address).
fn respawn_victim(cmdline: &str) -> Result<(ChildGuard, String), String> {
    let mut parts = cmdline.split_whitespace();
    let bin = parts.next().ok_or("--victim-respawn command is empty")?;
    let mut child = Command::new(bin)
        .args(parts)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("respawn {bin}: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut guard = ChildGuard(child);

    // Scan the child's stdout for its READY line on a helper thread so a
    // wedged child cannot block us past the timeout; the thread keeps
    // draining afterwards so the pipe never fills.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let reader = BufReader::new(stdout);
        let mut announced = false;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if !announced {
                if let Some(addr) = stats_field(&line, "addr=") {
                    if line.starts_with("READY ") {
                        let _ = tx.send(addr.to_string());
                        announced = true;
                    }
                }
            }
        }
    });
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(addr) => Ok((guard, addr)),
        Err(_) => {
            let status = guard.0.try_wait().ok().flatten();
            Err(format!(
                "respawned victim never printed READY (status: {status:?})"
            ))
        }
    }
}

/// Waits until the router reports `shard` up (after a REPLACE).
fn wait_for_rejoin(router: &str, shard: usize, timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    let mut client = ServeClient::connect(router).map_err(|e| format!("connect {router}: {e}"))?;
    let result = loop {
        let line = client.stats_line().map_err(|e| format!("STATS: {e}"))?;
        let up = stats_field(&line, "replicas=")
            .and_then(|v| v.split(',').nth(shard).map(|s| s == "up"))
            .unwrap_or(false);
        if up {
            break Ok(());
        }
        if Instant::now() >= deadline {
            break Err(format!("shard {shard} never rejoined: {line}"));
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    client.quit();
    result
}

/// Hex-exact routed-vs-direct parity over a sampled user set: the routed
/// line must equal the owning replica's direct line byte-for-byte.
fn parity_sweep(args: &Args, replicas: &[String], n_users: u32) -> Result<usize, String> {
    let mut routed = ServeClient::connect(&args.router).map_err(|e| e.to_string())?;
    let mut direct: Vec<ServeClient> = Vec::with_capacity(replicas.len());
    for addr in replicas {
        direct.push(ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?);
    }
    let mut rng = StdRng::stream(args.seed, 0xFAC7);
    let mut compared = 0usize;
    for _ in 0..args.parity_users {
        let user = rng.bounded_u64(n_users as u64) as u32;
        let shard = shard_of(user, replicas.len());
        for k in [1usize, 5, 20] {
            let via_router = routed.rec_one(user, k).map_err(|e| e.to_string())?;
            let via_replica = direct[shard].rec_one(user, k).map_err(|e| e.to_string())?;
            if via_router != via_replica {
                return Err(format!(
                    "parity mismatch for user {user} k {k} (shard {shard}):\n  routed: {via_router}\n  direct: {via_replica}"
                ));
            }
            if !via_router.starts_with("OK ") {
                return Err(format!(
                    "parity request failed for user {user}: {via_router}"
                ));
            }
            compared += 1;
        }
    }
    Ok(compared)
}

fn fetch_user_count(addr: &str) -> Result<u32, String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let line = client.stats_line().map_err(|e| format!("STATS: {e}"))?;
    stats_field(&line, "users=")
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("router reports no users: {line}"))
}

fn run(args: &Args) -> Result<(), String> {
    let n_users = fetch_user_count(&args.router)?;
    let n_shards = args.replicas.len();
    println!(
        "chaos_loadgen: routing {} users over {n_shards} shards via {}",
        n_users, args.router
    );

    // The replica address list, updated when the victim respawns — parity
    // must ask the replica that is *currently* serving the shard.
    let mut replicas = args.replicas.clone();
    let mut respawned: Option<ChildGuard> = None;
    let mut failures = 0usize;

    for (idx, step) in scenario(args.victim.is_some()).iter().enumerate() {
        match step {
            Step::Load {
                name,
                sampler_for,
                expect_down,
            } => {
                let sampler = sampler_for(n_users);
                let expect = if *expect_down { args.victim } else { None };
                let report = run_phase(args, idx, name, &sampler, expect);
                if report.errors > 0 {
                    eprintln!(
                        "chaos_loadgen: phase {name}: {} disallowed errors",
                        report.errors
                    );
                    failures += report.errors;
                }
                if !*expect_down && report.degraded > 0 {
                    // Cannot happen (degraded is only counted when a shard
                    // is expected down), but keep the invariant loud.
                    failures += report.degraded;
                }
            }
            Step::Kill => {
                let pid = args.victim_pid.expect("validated with --victim");
                let status = Command::new("kill")
                    .args(["-9", &pid.to_string()])
                    .status()
                    .map_err(|e| format!("kill -9 {pid}: {e}"))?;
                if !status.success() {
                    return Err(format!("kill -9 {pid} failed: {status}"));
                }
                println!("killed replica {} (pid {pid})", args.victim.expect("set"));
            }
            Step::Rejoin => {
                let victim = args.victim.expect("validated");
                let cmdline = args.victim_respawn.as_deref().expect("validated");
                let (guard, new_addr) = respawn_victim(cmdline)?;
                println!("respawned replica {victim} at {new_addr}");
                let mut admin = ServeClient::connect(&args.router).map_err(|e| e.to_string())?;
                let reply = admin
                    .request_lines(&format!("REPLACE {victim} {new_addr}"), 1)
                    .map_err(|e| format!("REPLACE: {e}"))?
                    .remove(0);
                admin.quit();
                if !reply.starts_with("OK ") {
                    return Err(format!("REPLACE rejected: {reply}"));
                }
                wait_for_rejoin(&args.router, victim, Duration::from_secs(30))?;
                println!("replica {victim} rejoined without router restart");
                replicas[victim] = new_addr;
                respawned = Some(guard);
            }
        }
    }

    let compared = parity_sweep(args, &replicas, n_users)?;
    println!(
        "PARITY ok routed-vs-direct lists={compared} users={} shards={n_shards}",
        args.parity_users
    );
    drop(respawned);

    if failures > 0 {
        Err(format!("{failures} disallowed errors across phases"))
    } else {
        Ok(())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos_loadgen: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => {
            println!("chaos_loadgen: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaos_loadgen: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
