//! The chaos scenario driver: proves the router's tail behavior under
//! replica failure, end to end, against real processes.
//!
//! ```text
//! chaos_loadgen <router-addr> --replicas SET[,SET...] [--admin ADDR]
//!     [--victim S --victim-pid PID (--victim-respawn "CMD..." | --supervised)]
//!     [--requests-per-phase N] [--conns N] [--seed S] [--kmax K]
//!     [--parity-users N]
//! ```
//!
//! Each `SET` is one shard's replica addresses (primary first, `|`
//! separated — the syntax shared with `router_main`). Runs a scripted
//! timeline of load phases (the `FaultPlan` idiom from
//! `graphaug-runtime`: the schedule is data, keyed on phase index, so a
//! run replays exactly from its seed):
//!
//! 1. `uniform`   — uniform user traffic, zero errors tolerated;
//! 2. `zipf`      — zipfian skew (s = 1.1), zero errors tolerated;
//! 3. `hotstorm`  — 90% of traffic on 4 hot users, zero errors tolerated;
//! 4. *kill*      — SIGKILLs the victim shard's **primary**, then
//!    `failover`. In **manual** mode (replication 1, `--victim-respawn`)
//!    `ERR`s are allowed only for users the hash assigns to the victim
//!    shard — the documented failover window. In **supervised** mode
//!    (replication ≥ 2 under `supervisord`) the bar is the tentpole
//!    guarantee: **zero** user-visible errors — the secondary must cover
//!    the gap bit-identically while the supervisor respawns the primary;
//! 5. *recover*   — manual mode respawns the victim itself and installs
//!    the new address via `REPLACE` on the **admin** listener; supervised
//!    mode just waits for the supervisor's respawn+`REPLACE` to bring
//!    every replica back up (and asserts the router actually failed over
//!    in the meantime). Then `rejoined`: uniform, zero errors;
//! 6. *parity*    — for a sampled user set, asserts the routed response
//!    line equals a direct replica response **byte-for-byte** at several
//!    cutoffs. With replication ≥ 2 a pre-kill `SETPARITY` sweep also
//!    asserts every replica of a set answers byte-identically (the
//!    primary-vs-secondary hex parity that makes failover invisible).
//!
//! Per-phase output: `phase <name>: requests=N errors=N degraded=N
//! p50_us=… p95_us=… p99_us=… qps=…`. Any disallowed error, parity
//! mismatch, or timeline step failure exits non-zero.

use std::process::{Command, ExitCode};
use std::time::{Duration, Instant};

use graphaug_rng::StdRng;
use graphaug_router::{parse_replica_sets, shard_of, spawn_ready, ChildGuard};
use graphaug_serve::client::{resolve_addr, stats_field, LatencySummary, ServeClient};
use graphaug_serve::{parse_ok_line, UserSampler};

const USAGE: &str = "usage: chaos_loadgen <router-addr> --replicas SET[,SET...] [--admin ADDR] \
     [--victim S --victim-pid PID (--victim-respawn \"CMD...\" | --supervised)] \
     [--requests-per-phase N] [--conns N] [--seed S] [--kmax K] [--parity-users N]";

struct Args {
    router: String,
    replica_sets: Vec<Vec<String>>,
    admin: Option<String>,
    victim: Option<usize>,
    victim_pid: Option<u32>,
    victim_respawn: Option<String>,
    supervised: bool,
    requests_per_phase: usize,
    conns: usize,
    seed: u64,
    kmax: usize,
    parity_users: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let router = args.next().ok_or("missing <router-addr>")?;
    if router.starts_with('-') {
        return Err(format!("expected <router-addr>, got flag {router:?}"));
    }
    resolve_addr(&router)?;
    let mut out = Args {
        router,
        replica_sets: Vec::new(),
        admin: None,
        victim: None,
        victim_pid: None,
        victim_respawn: None,
        supervised: false,
        requests_per_phase: 400,
        conns: 4,
        seed: 1,
        kmax: 20,
        parity_users: 16,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        let int = |name: &str, v: Result<String, String>| {
            v.and_then(|v| v.parse::<u64>().map_err(|_| format!("bad {name} value")))
        };
        match flag.as_str() {
            "--replicas" => out.replica_sets = parse_replica_sets(&value("--replicas")?)?,
            "--admin" => out.admin = Some(value("--admin")?),
            "--victim" => out.victim = Some(int("--victim", value("--victim"))? as usize),
            "--victim-pid" => {
                out.victim_pid = Some(int("--victim-pid", value("--victim-pid"))? as u32)
            }
            "--victim-respawn" => out.victim_respawn = Some(value("--victim-respawn")?),
            "--supervised" => out.supervised = true,
            "--requests-per-phase" => {
                out.requests_per_phase =
                    int("--requests-per-phase", value("--requests-per-phase"))? as usize
            }
            "--conns" => out.conns = int("--conns", value("--conns"))? as usize,
            "--seed" => out.seed = int("--seed", value("--seed"))?,
            "--kmax" => out.kmax = int("--kmax", value("--kmax"))? as usize,
            "--parity-users" => {
                out.parity_users = int("--parity-users", value("--parity-users"))? as usize
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.replica_sets.is_empty() {
        return Err("missing --replicas SET[,SET...]".into());
    }
    if let Some(admin) = &out.admin {
        resolve_addr(admin)?;
    }
    if out.requests_per_phase == 0 || out.conns == 0 || out.kmax == 0 {
        return Err("--requests-per-phase, --conns and --kmax must be at least 1".into());
    }
    if let Some(v) = out.victim {
        if v >= out.replica_sets.len() {
            return Err(format!(
                "--victim {v} out of range (have {} shards)",
                out.replica_sets.len()
            ));
        }
        if out.victim_pid.is_none() {
            return Err("--victim needs --victim-pid".into());
        }
        match (out.supervised, &out.victim_respawn) {
            (false, None) => return Err("--victim needs --victim-respawn (or --supervised)".into()),
            (true, Some(_)) => {
                return Err("--supervised and --victim-respawn are mutually exclusive".into())
            }
            _ => {}
        }
        if !out.supervised && out.admin.is_none() {
            return Err("manual rejoin needs --admin (REPLACE is admin-only)".into());
        }
    }
    Ok(out)
}

/// One step of the scripted timeline (the `FaultPlan` idiom: schedule as
/// data, keyed on step index, fully replayable from the seed).
enum Step {
    /// Drive load shaped by the sampler; `expect_down` marks the manual
    /// failover window (ignored in supervised mode, where the bar is
    /// zero errors throughout).
    Load {
        name: &'static str,
        sampler_for: fn(u32) -> UserSampler,
        expect_down: bool,
    },
    /// SIGKILL the victim shard's primary.
    Kill,
    /// Manual mode: respawn the victim, `REPLACE` its address on the
    /// admin listener, wait for rejoin.
    Rejoin,
    /// Supervised mode: wait for the supervisor's respawn+`REPLACE` to
    /// bring every replica back up, and assert failovers happened.
    WaitRecover,
}

fn scenario(with_chaos: bool, supervised: bool) -> Vec<Step> {
    let mut steps = vec![
        Step::Load {
            name: "uniform",
            sampler_for: UserSampler::uniform,
            expect_down: false,
        },
        Step::Load {
            name: "zipf",
            sampler_for: |n| UserSampler::zipf(n, 1.1),
            expect_down: false,
        },
        Step::Load {
            name: "hotstorm",
            sampler_for: |n| UserSampler::hot(n, 4, 0.9),
            expect_down: false,
        },
    ];
    if with_chaos {
        steps.push(Step::Kill);
        steps.push(Step::Load {
            name: "failover",
            sampler_for: UserSampler::uniform,
            expect_down: true,
        });
        steps.push(if supervised {
            Step::WaitRecover
        } else {
            Step::Rejoin
        });
        steps.push(Step::Load {
            name: "rejoined",
            sampler_for: UserSampler::uniform,
            expect_down: false,
        });
    }
    steps
}

#[derive(Default)]
struct ConnTally {
    latencies_us: Vec<u64>,
    /// Disallowed errors (wrong shard, or any error in a clean phase).
    errors: usize,
    /// Allowed errors: the expected-down shard's users during failover.
    degraded: usize,
}

#[allow(clippy::too_many_arguments)]
fn drive_phase_conn(
    router: &str,
    requests: usize,
    sampler: &UserSampler,
    kmax: usize,
    n_shards: usize,
    expect_down: Option<usize>,
    mut rng: StdRng,
) -> Result<ConnTally, String> {
    let mut client = ServeClient::connect(router).map_err(|e| format!("connect {router}: {e}"))?;
    let mut tally = ConnTally::default();
    for _ in 0..requests {
        let user = sampler.draw(&mut rng);
        let k = 1 + rng.bounded_u64(kmax as u64) as usize;
        let start = Instant::now();
        let line = client.rec_one(user, k).map_err(|e| e.to_string())?;
        tally.latencies_us.push(start.elapsed().as_micros() as u64);
        let ok = matches!(
            parse_ok_line(&line),
            Some(ok) if ok.user == user && ok.k == k && ok.items.len() <= k
        );
        if ok {
            continue;
        }
        if line.starts_with("ERR ") && expect_down == Some(shard_of(user, n_shards)) {
            tally.degraded += 1;
        } else {
            tally.errors += 1;
            eprintln!("chaos_loadgen: disallowed response for REC {user} {k}: {line}");
        }
    }
    client.quit();
    Ok(tally)
}

struct PhaseReport {
    errors: usize,
    degraded: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    args: &Args,
    phase_idx: usize,
    name: &str,
    sampler: &UserSampler,
    expect_down: Option<usize>,
) -> PhaseReport {
    let start = Instant::now();
    let mut handles = Vec::new();
    let per_conn = args.requests_per_phase.div_ceil(args.conns);
    for conn in 0..args.conns {
        let router = args.router.clone();
        let sampler = sampler.clone();
        let kmax = args.kmax;
        let n_shards = args.replica_sets.len();
        let rng = StdRng::stream(args.seed, (phase_idx as u64) << 32 | conn as u64);
        handles.push(std::thread::spawn(move || {
            drive_phase_conn(
                &router,
                per_conn,
                &sampler,
                kmax,
                n_shards,
                expect_down,
                rng,
            )
        }));
    }
    let mut latencies = Vec::new();
    let (mut errors, mut degraded) = (0usize, 0usize);
    for handle in handles {
        match handle.join() {
            Ok(Ok(t)) => {
                latencies.extend(t.latencies_us);
                errors += t.errors;
                degraded += t.degraded;
            }
            Ok(Err(e)) => {
                eprintln!("chaos_loadgen: phase {name} connection failed: {e}");
                errors += 1;
            }
            Err(_) => {
                eprintln!("chaos_loadgen: phase {name} worker panicked");
                errors += 1;
            }
        }
    }
    let s = LatencySummary::from_samples(latencies, start.elapsed());
    println!(
        "phase {name}: requests={} errors={errors} degraded={degraded} \
         p50_us={} p95_us={} p99_us={} qps={:.1}",
        s.count, s.p50_us, s.p95_us, s.p99_us, s.qps
    );
    PhaseReport { errors, degraded }
}

/// Waits until the router reports `shard` up (after a REPLACE).
fn wait_for_rejoin(router: &str, shard: usize, timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    let mut client = ServeClient::connect(router).map_err(|e| format!("connect {router}: {e}"))?;
    let result = loop {
        let line = client.stats_line().map_err(|e| format!("STATS: {e}"))?;
        let up = stats_field(&line, "replicas=")
            .and_then(|v| v.split(',').nth(shard).map(|s| s == "up"))
            .unwrap_or(false);
        if up {
            break Ok(());
        }
        if Instant::now() >= deadline {
            break Err(format!("shard {shard} never rejoined: {line}"));
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    client.quit();
    result
}

/// Supervised recovery: waits until the router's `replica_states=` shows
/// every replica of every shard up again (the supervisor respawned and
/// `REPLACE`d the victim), and returns the router's failover counter.
fn wait_for_full_recovery(router: &str, timeout: Duration) -> Result<u64, String> {
    let deadline = Instant::now() + timeout;
    let mut client = ServeClient::connect(router).map_err(|e| format!("connect {router}: {e}"))?;
    let result = loop {
        let line = client.stats_line().map_err(|e| format!("STATS: {e}"))?;
        let all_up = stats_field(&line, "replica_states=")
            .map(|v| {
                !v.is_empty()
                    && v.split(',')
                        .flat_map(|set| set.split('|'))
                        .all(|s| s == "up")
            })
            .unwrap_or(false);
        if all_up {
            let failovers = stats_field(&line, "failovers=")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            break Ok(failovers);
        }
        if Instant::now() >= deadline {
            break Err(format!("replicas never fully recovered: {line}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    client.quit();
    result
}

/// Hex-exact routed-vs-direct parity over a sampled user set: the routed
/// line must equal a live replica's direct line byte-for-byte. `direct`
/// holds one address per shard (a replica known to be alive).
fn parity_sweep(args: &Args, direct_addrs: &[String], n_users: u32) -> Result<usize, String> {
    let mut routed = ServeClient::connect(&args.router).map_err(|e| e.to_string())?;
    let mut direct: Vec<ServeClient> = Vec::with_capacity(direct_addrs.len());
    for addr in direct_addrs {
        direct.push(ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?);
    }
    let mut rng = StdRng::stream(args.seed, 0xFAC7);
    let mut compared = 0usize;
    for _ in 0..args.parity_users {
        let user = rng.bounded_u64(n_users as u64) as u32;
        let shard = shard_of(user, direct_addrs.len());
        for k in [1usize, 5, 20] {
            let via_router = routed.rec_one(user, k).map_err(|e| e.to_string())?;
            let via_replica = direct[shard].rec_one(user, k).map_err(|e| e.to_string())?;
            if via_router != via_replica {
                return Err(format!(
                    "parity mismatch for user {user} k {k} (shard {shard}):\n  routed: {via_router}\n  direct: {via_replica}"
                ));
            }
            if !via_router.starts_with("OK ") {
                return Err(format!(
                    "parity request failed for user {user}: {via_router}"
                ));
            }
            compared += 1;
        }
    }
    Ok(compared)
}

/// Primary-vs-secondary hex parity: every replica of a set must answer
/// byte-identically (same checkpoint, same bits), which is the property
/// that makes failover invisible. Run before any kill, while every
/// replica is alive. Returns the number of lines compared.
fn set_parity_sweep(args: &Args, n_users: u32) -> Result<usize, String> {
    let mut rng = StdRng::stream(args.seed, 0x5E7B);
    let mut compared = 0usize;
    for (shard, set) in args.replica_sets.iter().enumerate() {
        if set.len() < 2 {
            continue;
        }
        let mut conns: Vec<ServeClient> = Vec::with_capacity(set.len());
        for addr in set {
            conns.push(ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?);
        }
        for _ in 0..args.parity_users.max(1) {
            // Only users this shard owns — a replica would answer others
            // too, but the property we care about is the served path.
            let user = loop {
                let u = rng.bounded_u64(n_users as u64) as u32;
                if shard_of(u, args.replica_sets.len()) == shard {
                    break u;
                }
            };
            for k in [1usize, 5, 20] {
                let primary = conns[0].rec_one(user, k).map_err(|e| e.to_string())?;
                if !primary.starts_with("OK ") {
                    return Err(format!("set-parity request failed: {primary}"));
                }
                for (r, conn) in conns.iter_mut().enumerate().skip(1) {
                    let secondary = conn.rec_one(user, k).map_err(|e| e.to_string())?;
                    if primary != secondary {
                        return Err(format!(
                            "set-parity mismatch shard {shard} user {user} k {k}:\n  \
                             replica 0: {primary}\n  replica {r}: {secondary}"
                        ));
                    }
                    compared += 1;
                }
            }
        }
        for conn in conns {
            conn.quit();
        }
    }
    Ok(compared)
}

fn fetch_user_count(addr: &str) -> Result<u32, String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let line = client.stats_line().map_err(|e| format!("STATS: {e}"))?;
    stats_field(&line, "users=")
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("router reports no users: {line}"))
}

fn run(args: &Args) -> Result<(), String> {
    let n_users = fetch_user_count(&args.router)?;
    let n_shards = args.replica_sets.len();
    let replication = args.replica_sets.iter().map(Vec::len).max().unwrap_or(1);
    println!(
        "chaos_loadgen: routing {} users over {n_shards} shards (replication {replication}) via {}",
        n_users, args.router
    );

    // Primary-vs-secondary bit parity, while everything is still alive.
    if replication > 1 {
        let pairs = set_parity_sweep(args, n_users)?;
        println!("SETPARITY ok lines={pairs} (replicas of a set answer byte-identically)");
    }

    // One known-alive direct address per shard for the final parity sweep:
    // the set's *last* replica — never a kill victim (victims are
    // primaries) — or the rejoined primary in manual replication-1 mode.
    let mut direct_addrs: Vec<String> = args
        .replica_sets
        .iter()
        .map(|set| set.last().expect("non-empty set").clone())
        .collect();
    let mut respawned: Option<ChildGuard> = None;
    let mut failures = 0usize;

    for (idx, step) in scenario(args.victim.is_some(), args.supervised)
        .iter()
        .enumerate()
    {
        match step {
            Step::Load {
                name,
                sampler_for,
                expect_down,
            } => {
                let sampler = sampler_for(n_users);
                // Supervised mode tolerates no errors anywhere: the
                // secondary must cover the killed primary bit-identically.
                let expect = if *expect_down && !args.supervised {
                    args.victim
                } else {
                    None
                };
                let report = run_phase(args, idx, name, &sampler, expect);
                if report.errors > 0 {
                    eprintln!(
                        "chaos_loadgen: phase {name}: {} disallowed errors",
                        report.errors
                    );
                    failures += report.errors;
                }
                if expect.is_none() && report.degraded > 0 {
                    // Cannot happen (degraded is only counted when a shard
                    // is expected down), but keep the invariant loud.
                    failures += report.degraded;
                }
            }
            Step::Kill => {
                let pid = args.victim_pid.expect("validated with --victim");
                let status = Command::new("kill")
                    .args(["-9", &pid.to_string()])
                    .status()
                    .map_err(|e| format!("kill -9 {pid}: {e}"))?;
                if !status.success() {
                    return Err(format!("kill -9 {pid} failed: {status}"));
                }
                println!(
                    "killed shard {} primary (pid {pid})",
                    args.victim.expect("set")
                );
            }
            Step::Rejoin => {
                let victim = args.victim.expect("validated");
                let cmdline = args.victim_respawn.as_deref().expect("validated");
                let argv: Vec<String> = cmdline.split_whitespace().map(str::to_string).collect();
                let (guard, new_addr) = spawn_ready(&argv, Duration::from_secs(120))?;
                println!("respawned shard {victim} primary at {new_addr}");
                let admin_addr = args.admin.as_deref().expect("validated");
                let mut admin = ServeClient::connect(admin_addr).map_err(|e| e.to_string())?;
                let reply = admin
                    .request_lines(&format!("REPLACE {victim} 0 {new_addr}"), 1)
                    .map_err(|e| format!("REPLACE: {e}"))?
                    .remove(0);
                admin.quit();
                if !reply.starts_with("OK ") {
                    return Err(format!("REPLACE rejected: {reply}"));
                }
                wait_for_rejoin(&args.router, victim, Duration::from_secs(30))?;
                println!("shard {victim} rejoined without router restart");
                if args.replica_sets[victim].len() == 1 {
                    direct_addrs[victim] = new_addr;
                }
                respawned = Some(guard);
            }
            Step::WaitRecover => {
                let failovers = wait_for_full_recovery(&args.router, Duration::from_secs(60))?;
                if failovers == 0 {
                    return Err(
                        "supervised recovery finished but the router never failed over \
                         (failovers=0 — was the victim really a serving primary?)"
                            .into(),
                    );
                }
                println!(
                    "supervisor recovered all replicas (router failovers={failovers}), \
                     no operator input"
                );
            }
        }
    }

    let compared = parity_sweep(args, &direct_addrs, n_users)?;
    println!(
        "PARITY ok routed-vs-direct lists={compared} users={} shards={n_shards}",
        args.parity_users
    );
    drop(respawned);

    if failures > 0 {
        Err(format!("{failures} disallowed errors across phases"))
    } else {
        Ok(())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos_loadgen: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => {
            println!("chaos_loadgen: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaos_loadgen: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
