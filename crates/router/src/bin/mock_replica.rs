//! A protocol-faithful stand-in replica for supervisor tests and benches.
//!
//! ```text
//! mock_replica [--gen N] [--users N] [--die-ms N]
//! ```
//!
//! Binds an ephemeral loopback port, prints `READY addr=<bound>` (the
//! contract [`graphaug_router::spawn_ready`] scans for), and answers the
//! serving protocol with *deterministic synthetic* content: a `REC` line
//! for user `u` is a pure function of `(gen, u, k)`, so two mock replicas
//! started with the same `--gen` answer byte-identically — the same
//! replica-set parity property a real checkpoint-sharing set has, at zero
//! training cost. `--die-ms` makes the process exit non-zero after a
//! delay, which is how supervisor tests get a replica that reliably
//! "crashes" without reaching for `kill`.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use graphaug_serve::proto::{parse_request, Request};

struct Args {
    gen: u64,
    users: u32,
    die_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        gen: 1,
        users: 100,
        die_ms: None,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or(format!("{name} needs a value"))
                .and_then(|v| v.parse::<u64>().map_err(|_| format!("bad {name} value")))
        };
        match flag.as_str() {
            "--gen" => out.gen = value("--gen")?,
            "--users" => out.users = value("--users")? as u32,
            "--die-ms" => out.die_ms = Some(value("--die-ms")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.users == 0 {
        return Err("--users must be at least 1".into());
    }
    Ok(out)
}

/// The deterministic `OK` line for `(gen, user, k)`: items walk up from
/// the user id, score bits come from a multiplicative hash — stable
/// across processes, so same-`--gen` mocks are byte-identical.
fn rec_line(gen: u64, user: u32, k: usize) -> String {
    let mut items = String::new();
    let mut bits = String::new();
    for i in 0..k {
        if i > 0 {
            items.push(',');
            bits.push(',');
        }
        items.push_str(&((user as usize + i) % 100_000).to_string());
        let b = (user ^ gen as u32)
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(i as u32);
        bits.push_str(&format!("{b:08x}"));
    }
    format!("OK gen={gen} user={user} k={k} items={items} bits={bits}")
}

fn handle(stream: TcpStream, gen: u64, users: u32, requests: &AtomicU64) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut w = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let done = match parse_request(&line) {
            Ok(Request::Rec { users: us, k, .. }) => {
                requests.fetch_add(us.len() as u64, Ordering::Relaxed);
                for u in us {
                    let _ = writeln!(w, "{}", rec_line(gen, u, k));
                }
                false
            }
            Ok(Request::Stats) => {
                let _ = writeln!(
                    w,
                    "STATS gen={gen} users={users} items=100000 table_bytes=0 requests={}",
                    requests.load(Ordering::Relaxed)
                );
                false
            }
            Ok(Request::Ping) => {
                let _ = writeln!(w, "PONG");
                false
            }
            Ok(Request::Quit) => {
                let _ = writeln!(w, "BYE");
                true
            }
            Err(msg) => {
                let _ = writeln!(w, "ERR {msg}");
                false
            }
        };
        if w.flush().is_err() || done {
            break;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mock_replica: {e}");
            eprintln!("usage: mock_replica [--gen N] [--users N] [--die-ms N]");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mock_replica: bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = listener.local_addr().expect("bound");
    println!("READY addr={addr} gen={}", args.gen);

    if let Some(ms) = args.die_ms {
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(ms));
            // A deliberate crash, distinguishable from a clean exit.
            std::process::exit(3);
        });
    }

    let requests = Arc::new(AtomicU64::new(0));
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let requests = requests.clone();
        let (gen, users) = (args.gen, args.users);
        std::thread::spawn(move || handle(stream, gen, users, &requests));
    }
    ExitCode::SUCCESS
}
