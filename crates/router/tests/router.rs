//! Router integration tests against in-process replicas: three serving
//! engines over one trained checkpoint, a real router in front, and the
//! full failure lifecycle — parity, victim death, degraded window, rejoin
//! on a new port via `REPLACE` — all without leaving the test process.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphaug_core::GraphAugConfig;
use graphaug_data::{generate, SyntheticConfig};
use graphaug_graph::InteractionGraph;
use graphaug_router::{shard_of, start, Router, RouterConfig};
use graphaug_runtime::{Runtime, RuntimeConfig};
use graphaug_serve::{err_kind, serve, Engine, IvfParams, ModelSource, ServeClient};

/// A unique, self-cleaning directory per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("graphaug-router-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn toy_graph() -> InteractionGraph {
    generate(&SyntheticConfig::new(60, 45, 700).clusters(4).seed(21))
}

fn toy_model() -> GraphAugConfig {
    GraphAugConfig::fast_test()
        .seed(5)
        .epochs(4)
        .steps_per_epoch(3)
}

/// Trains the toy model to completion, leaving checkpoints under `dir`.
fn train_into(dir: &Path, graph: &InteractionGraph) {
    let mut rt = Runtime::new(RuntimeConfig::new(toy_model()).checkpoint_dir(dir), graph).unwrap();
    rt.run().unwrap();
}

/// Opens one replica engine over the shared checkpoint dir and serves it
/// on an ephemeral loopback port.
fn boot_replica(graph: &InteractionGraph, dir: &Path) -> graphaug_serve::ServerHandle {
    let engine = Arc::new(Engine::open(ModelSource::new(toy_model(), graph.clone(), dir)).unwrap());
    serve(engine, "127.0.0.1:0").unwrap()
}

/// Same, but with the IVF ANN fast path enabled on the replica.
fn boot_ann_replica(
    graph: &InteractionGraph,
    dir: &Path,
    params: IvfParams,
) -> graphaug_serve::ServerHandle {
    let source = ModelSource::new(toy_model(), graph.clone(), dir).ann(params);
    let engine = Arc::new(Engine::open(source).unwrap());
    assert!(
        engine.tables().ann().expect("index built").enabled(),
        "test replica's ANN gate must pass"
    );
    serve(engine, "127.0.0.1:0").unwrap()
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The full lifecycle in one scripted scenario (mirrors what `ci.sh` runs
/// against real processes): parity, batch ordering, STATS merge, victim
/// death, degraded window scoped to the victim's users, rejoin on a new
/// port via REPLACE, and parity again.
#[test]
fn routed_responses_survive_kill_and_rejoin_bit_identically() {
    let graph = toy_graph();
    let n_users = graph.n_users() as u32;
    let dir = TempDir::new("lifecycle");
    train_into(dir.path(), &graph);

    // Three replicas over the same trained checkpoint directory.
    let mut replicas: Vec<_> = (0..3).map(|_| boot_replica(&graph, dir.path())).collect();
    let addrs: Vec<String> = replicas.iter().map(|h| h.addr().to_string()).collect();

    let router =
        Router::new(RouterConfig::new(addrs.clone()).probe_period(Duration::from_millis(10)));
    let handle = start(router.clone(), "127.0.0.1:0").unwrap();
    let router_addr = handle.addr().to_string();

    // Every shard must own at least one user or the failover assertions
    // below are vacuous (the balance property test guarantees this for
    // real populations; pin it for this toy one).
    let mut owned: Vec<Vec<u32>> = vec![Vec::new(); 3];
    for user in 0..n_users {
        owned[shard_of(user, 3)].push(user);
    }
    for (shard, users) in owned.iter().enumerate() {
        assert!(!users.is_empty(), "shard {shard} owns no toy users");
    }

    let mut via_router = ServeClient::connect(&router_addr).unwrap();
    let mut direct: Vec<ServeClient> = addrs
        .iter()
        .map(|a| ServeClient::connect(a).unwrap())
        .collect();

    // --- Parity: routed line == owning replica's line, byte for byte. ---
    for user in 0..n_users {
        let shard = shard_of(user, 3);
        for k in [1usize, 5, 20] {
            let routed = via_router.rec_one(user, k).unwrap();
            let expect = direct[shard].rec_one(user, k).unwrap();
            assert!(routed.starts_with("OK "), "user {user} k {k}: {routed}");
            assert_eq!(
                routed, expect,
                "user {user} k {k}: routed response must be bit-identical \
                 to shard {shard}'s direct response"
            );
        }
    }

    // --- Cross-shard batch: one REC spanning all shards answers in
    // request order. ---
    let batch: Vec<u32> = (0..n_users).rev().collect();
    let list = batch
        .iter()
        .map(|u| u.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let lines = via_router
        .request_lines(&format!("REC {list} 7"), batch.len())
        .unwrap();
    for (&user, line) in batch.iter().zip(&lines) {
        let expect = direct[shard_of(user, 3)].rec_one(user, 7).unwrap();
        assert_eq!(line, &expect, "batch slot for user {user} out of order");
    }

    // --- STATS merges replica shape with router counters. ---
    let stats = via_router.stats_line().unwrap();
    for needle in [
        &format!("users={n_users}") as &str,
        "shards=3",
        "up=3",
        "replicas=up,up,up",
    ] {
        assert!(stats.contains(needle), "missing {needle:?} in {stats:?}");
    }
    // The merged line carries the replicas' resident table footprint (f32
    // tables here — no quantization — so it must still be present and
    // nonzero).
    let table_bytes: u64 = graphaug_serve::stats_field(&stats, "table_bytes=")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("missing table_bytes in {stats:?}"));
    assert!(table_bytes > 0, "table_bytes must be nonzero in {stats:?}");
    let shard_counts = router.shard_request_counts();
    let routed_lines = 3 * n_users as u64 + batch.len() as u64;
    assert_eq!(
        shard_counts.iter().sum::<u64>(),
        routed_lines,
        "per-shard counters must account for every routed user-line"
    );
    for (shard, &c) in shard_counts.iter().enumerate() {
        assert!(c > 0, "shard {shard} routed nothing");
    }

    // --- Kill the victim: only its users degrade. ---
    let victim = 1usize;
    replicas.remove(victim).stop();
    wait_until(
        "prober to mark the victim down",
        Duration::from_secs(10),
        || !router.health().is_up(victim, 0),
    );

    let victim_user = owned[victim][0];
    let survivor_user = owned[(victim + 1) % 3][0];
    let dead = via_router.rec_one(victim_user, 5).unwrap();
    assert!(
        dead.starts_with("ERR ") && dead.contains("down"),
        "victim-owned user must get a typed ERR, got {dead:?}"
    );
    let alive = via_router.rec_one(survivor_user, 5).unwrap();
    assert!(
        alive.starts_with("OK "),
        "surviving shards must be unaffected, got {alive:?}"
    );

    // A batch spanning dead and live shards still answers every slot, in
    // order, with ERRs confined to the victim's users.
    let mixed = [victim_user, survivor_user, owned[(victim + 2) % 3][0]];
    let list = mixed
        .iter()
        .map(|u| u.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let lines = via_router
        .request_lines(&format!("REC {list} 3"), 3)
        .unwrap();
    assert!(lines[0].starts_with("ERR "));
    assert!(lines[1].starts_with("OK "));
    assert!(lines[2].starts_with("OK "));
    let stats = via_router.stats_line().unwrap();
    assert!(stats.contains("up=2"), "got {stats:?}");
    assert!(stats.contains("replicas=up,down,up"), "got {stats:?}");

    // --- Rejoin on a NEW port (the TIME_WAIT-realistic path): boot a
    // fresh replica over the same checkpoints, REPLACE, wait for up. ---
    let reborn = boot_replica(&graph, dir.path());
    let new_addr = reborn.addr().to_string();
    assert_ne!(new_addr, addrs[victim], "ephemeral rebind lands elsewhere");
    // REPLACE on the public port is refused with a typed ERR (the admin
    // surface can re-point shards; it lives on the loopback admin
    // listener only).
    let denied = via_router
        .request_lines(&format!("REPLACE {victim} {new_addr}"), 1)
        .unwrap()
        .remove(0);
    assert_eq!(err_kind(&denied), Some("admin"), "got {denied:?}");
    let mut admin = ServeClient::connect(&handle.admin_addr().to_string()).unwrap();
    let reply = admin
        .request_lines(&format!("REPLACE {victim} {new_addr}"), 1)
        .unwrap()
        .remove(0);
    assert_eq!(
        reply,
        format!("OK shard={victim} replica=0 addr={new_addr}")
    );
    admin.quit();
    wait_until(
        "replaced replica to rejoin",
        Duration::from_secs(10),
        || router.health().is_up(victim, 0),
    );

    // Same connection, no router restart: the victim's users are served
    // again, bit-identical to the reborn replica's direct answers.
    let mut direct_reborn = ServeClient::connect(&new_addr).unwrap();
    for &user in owned[victim].iter().take(8) {
        let routed = via_router.rec_one(user, 9).unwrap();
        let expect = direct_reborn.rec_one(user, 9).unwrap();
        assert!(routed.starts_with("OK "), "after rejoin: {routed}");
        assert_eq!(routed, expect, "post-rejoin parity for user {user}");
    }
    let stats = via_router.stats_line().unwrap();
    assert!(stats.contains("up=3"), "got {stats:?}");

    for d in direct {
        d.quit();
    }
    via_router.quit();
    handle.stop();
}

/// Routed-vs-direct parity across the scorer modes: with ANN-enabled
/// replicas behind the router, a routed `REC` must relay the replica's
/// fast-path line byte-for-byte, a routed `RECX` must relay the replica's
/// exact-oracle line (the router forwards the verb, it never downgrades
/// `RECX` to `REC`), and the `RECX` lines must match an index-free
/// replica's exact answers bit-for-bit.
#[test]
fn routed_verbs_preserve_ann_and_exact_paths_bit_identically() {
    let graph = toy_graph();
    let n_users = graph.n_users() as u32;
    let dir = TempDir::new("ann-parity");
    train_into(dir.path(), &graph);

    // Narrow probe so REC and RECX genuinely take different scorers; no
    // floor because this test pins routing, not index quality.
    let params = || IvfParams::new().nlists(9).nprobe(3).recall_floor(0.0);
    let replicas: Vec<_> = (0..2)
        .map(|_| boot_ann_replica(&graph, dir.path(), params()))
        .collect();
    let addrs: Vec<String> = replicas.iter().map(|h| h.addr().to_string()).collect();
    // An index-free engine is the exact-ranking oracle for RECX lines.
    let oracle = Engine::open(ModelSource::new(toy_model(), graph.clone(), dir.path())).unwrap();

    let router =
        Router::new(RouterConfig::new(addrs.clone()).probe_period(Duration::from_millis(10)));
    let handle = start(router, "127.0.0.1:0").unwrap();
    let mut via_router = ServeClient::connect(&handle.addr().to_string()).unwrap();
    let mut direct: Vec<ServeClient> = addrs
        .iter()
        .map(|a| ServeClient::connect(a).unwrap())
        .collect();

    for user in (0..n_users).step_by(5) {
        let shard = shard_of(user, 2);
        for k in [1usize, 7, 20] {
            for exact in [false, true] {
                let routed = via_router.rec_one_mode(user, k, exact).unwrap();
                let expect = direct[shard].rec_one_mode(user, k, exact).unwrap();
                assert!(routed.starts_with("OK "), "user {user} k {k}: {routed}");
                assert_eq!(
                    routed, expect,
                    "user {user} k {k} exact={exact}: routed response must \
                     be bit-identical to shard {shard}'s direct response"
                );
            }
            // The routed RECX line carries the exact ranking.
            let routed_exact = via_router.rec_one_mode(user, k, true).unwrap();
            let oracle_rec = oracle.recommend(user, k).unwrap();
            let oracle_hex = oracle_rec
                .items
                .iter()
                .map(|s| format!("{}:{:08x}", s.item, s.score.to_bits()))
                .collect::<Vec<_>>()
                .join(" ");
            let parsed = graphaug_serve::parse_ok_line(&routed_exact).expect("OK line");
            let routed_hex = parsed
                .items
                .iter()
                .map(|s| format!("{}:{:08x}", s.item, s.score.to_bits()))
                .collect::<Vec<_>>()
                .join(" ");
            assert_eq!(
                routed_hex, oracle_hex,
                "user {user} k {k}: routed RECX must carry the exact ranking"
            );
        }
    }

    // The replicas actually served through the index for REC traffic.
    for d in &mut direct {
        let stats = d.stats_line().unwrap();
        assert!(stats.contains(" ann=on "), "{stats}");
    }

    for d in direct {
        d.quit();
    }
    via_router.quit();
    handle.stop();
    for r in replicas {
        r.stop();
    }
}

#[test]
fn router_protocol_surface_is_typed_and_never_panics() {
    let graph = toy_graph();
    let dir = TempDir::new("surface");
    train_into(dir.path(), &graph);
    let replica = boot_replica(&graph, dir.path());

    let router = Router::new(
        RouterConfig::new(vec![replica.addr().to_string()]).probe_period(Duration::from_millis(10)),
    );
    let handle = start(router, "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();

    assert!(client.ping().unwrap(), "router answers PING locally");
    for (req, want_prefix) in [
        ("BOGUS", "ERR "),
        ("REC", "ERR "),
        ("REC notanumber 5", "ERR "),
        ("REC 1 notanumber", "ERR "),
    ] {
        let line = client.request_lines(req, 1).unwrap().remove(0);
        assert!(
            line.starts_with(want_prefix),
            "{req:?} should answer {want_prefix:?}.., got {line:?}"
        );
    }

    // Every REPLACE form — even a malformed one — answers the typed
    // `ERR admin` on the public port: the admin surface does not leak
    // argument validation to unprivileged clients.
    for req in [
        "REPLACE",
        "REPLACE 0 127.0.0.1:1",
        "REPLACE 7 127.0.0.1:1",
        "REPLACE 0 not-an-addr",
    ] {
        let line = client.request_lines(req, 1).unwrap().remove(0);
        assert_eq!(err_kind(&line), Some("admin"), "{req:?} got {line:?}");
    }

    // Out-of-range user: the replica's own typed ERR is relayed verbatim
    // (and carries no router kind token). Checked before the REPLACE
    // below re-points the only shard.
    let line = client.rec_one(999_999, 5).unwrap();
    assert!(line.starts_with("ERR "), "got {line:?}");
    assert_eq!(err_kind(&line), None, "relayed replica ERR, got {line:?}");

    // On the admin listener the verb is honored — with typed argument
    // validation (no kind token: these are ordinary protocol ERRs, not
    // routing failures).
    let mut admin = ServeClient::connect(&handle.admin_addr().to_string()).unwrap();
    assert!(admin.ping().unwrap(), "admin listener answers PING");
    for (req, want_ok) in [
        ("REPLACE", false),
        ("REPLACE 7 127.0.0.1:1", false),
        ("REPLACE 0 not-an-addr", false),
        ("REPLACE 0 9 127.0.0.1:1", false),
        ("REPLACE 0 127.0.0.1:1 too many args", false),
        ("REPLACE 0 127.0.0.1:1", true),
    ] {
        let line = admin.request_lines(req, 1).unwrap().remove(0);
        if want_ok {
            assert!(line.starts_with("OK "), "{req:?} got {line:?}");
        } else {
            assert!(line.starts_with("ERR "), "{req:?} got {line:?}");
            assert_eq!(err_kind(&line), None, "{req:?} got {line:?}");
        }
    }
    admin.quit();

    client.quit();
    handle.stop();
    replica.stop();
}

/// The tentpole guarantee, end to end: two shards at replication factor 2
/// over one checkpoint; the primary of shard 0 dies; **zero** user-visible
/// errors — the secondary answers bit-identically *within the request*
/// (no waiting for the prober), the failover counter moves, and a
/// `REPLACE`d fresh engine takes the primary slot back.
#[test]
fn failover_serves_the_secondary_bit_identically_with_zero_errors() {
    let graph = toy_graph();
    let n_users = graph.n_users() as u32;
    let dir = TempDir::new("failover");
    train_into(dir.path(), &graph);

    // Four replicas over the same checkpoint: sets [[p0,s0],[p1,s1]].
    let mut replicas: Vec<_> = (0..4).map(|_| boot_replica(&graph, dir.path())).collect();
    let addrs: Vec<String> = replicas.iter().map(|h| h.addr().to_string()).collect();
    let sets = vec![
        vec![addrs[0].clone(), addrs[1].clone()],
        vec![addrs[2].clone(), addrs[3].clone()],
    ];
    let router = Router::new(RouterConfig::from_sets(sets).probe_period(Duration::from_millis(10)));
    let handle = start(router.clone(), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
    let mut direct: Vec<ServeClient> = addrs
        .iter()
        .map(|a| ServeClient::connect(a).unwrap())
        .collect();

    // Primary-vs-secondary hex parity while everything is up: replicas of
    // a set answer byte-identically — the property that makes failover
    // invisible to the client.
    for user in (0..n_users).step_by(3) {
        let shard = shard_of(user, 2);
        let p = direct[2 * shard].rec_one(user, 9).unwrap();
        let s = direct[2 * shard + 1].rec_one(user, 9).unwrap();
        assert!(p.starts_with("OK "), "user {user}: {p}");
        assert_eq!(p, s, "replica-set parity for user {user}");
    }

    // Kill shard 0's primary. Deliberately NO wait for the prober: the
    // router must fail over within the first request that hits it.
    replicas.remove(0).stop();
    let shard0_user = (0..n_users)
        .find(|&u| shard_of(u, 2) == 0)
        .expect("some user maps to shard 0");
    let before = router.failover_count();
    for i in 0..5u32 {
        let line = client.rec_one(shard0_user, 9).unwrap();
        assert!(
            line.starts_with("OK "),
            "request {i}: zero user-visible errors during failover, got {line:?}"
        );
        let expect = direct[1].rec_one(shard0_user, 9).unwrap();
        assert_eq!(
            line, expect,
            "request {i}: failover answer must be bit-identical to the secondary"
        );
    }
    assert!(
        router.failover_count() > before,
        "the failover counter must account for secondary-served requests"
    );

    // Once the prober confirms, STATS shows shard 0 served by replica 1.
    wait_until(
        "prober to mark the dead primary down",
        Duration::from_secs(10),
        || !router.health().is_up(0, 0),
    );
    let stats = client.stats_line().unwrap();
    assert!(stats.contains("serving=1,0"), "got {stats:?}");
    assert!(
        graphaug_serve::stats_field(&stats, "failovers=")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
            > 0,
        "got {stats:?}"
    );
    assert!(
        stats.contains("replica_states=down|up,up|up"),
        "got {stats:?}"
    );

    // A fresh engine takes the primary slot back via the admin listener.
    let reborn = boot_replica(&graph, dir.path());
    let new_addr = reborn.addr().to_string();
    let mut admin = ServeClient::connect(&handle.admin_addr().to_string()).unwrap();
    let reply = admin
        .request_lines(&format!("REPLACE 0 0 {new_addr}"), 1)
        .unwrap()
        .remove(0);
    assert_eq!(reply, format!("OK shard=0 replica=0 addr={new_addr}"));
    admin.quit();
    wait_until("reborn primary to rejoin", Duration::from_secs(10), || {
        router.health().is_up(0, 0)
    });
    let mut direct_reborn = ServeClient::connect(&new_addr).unwrap();
    let line = client.rec_one(shard0_user, 9).unwrap();
    let expect = direct_reborn.rec_one(shard0_user, 9).unwrap();
    assert_eq!(
        line, expect,
        "the reborn primary serves again, bit-identically"
    );

    for d in direct {
        d.quit();
    }
    direct_reborn.quit();
    client.quit();
    handle.stop();
    reborn.stop();
    for r in replicas {
        r.stop();
    }
}

/// Deadline budgets: a hung replica (connection accepted, never answered)
/// costs at most the request budget and yields a typed `ERR deadline`;
/// once the replica is marked down the same request answers a typed
/// `ERR down` with no budget burned at all. The two error kinds are the
/// wire-visible difference between "ran out of time" and "nothing to try".
#[test]
fn deadline_budget_is_enforced_with_typed_errors() {
    // A listener whose backlog accepts connections nobody ever reads:
    // connect succeeds, every read blocks until its socket timeout.
    let hung = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = hung.local_addr().unwrap().to_string();

    let mut cfg = RouterConfig::new(vec![addr])
        .probe_period(Duration::from_secs(3600))
        .request_budget(Duration::from_millis(120));
    // Keep the hung replica "up" for the whole test: the deadline path is
    // under test here, not the down-marking streak.
    cfg.down_after = 1000;
    let router = Router::new(cfg);
    let handle = start(router.clone(), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();

    for attempt in 0..2u32 {
        let t0 = Instant::now();
        let line = client.rec_one(attempt, 5).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(
            graphaug_serve::err_kind(&line),
            Some("deadline"),
            "attempt {attempt}: got {line:?}"
        );
        assert!(
            elapsed >= Duration::from_millis(100),
            "attempt {attempt}: the budget was actually spent waiting ({elapsed:?})"
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "attempt {attempt}: a request must never burn more than its \
             budget (+slack), took {elapsed:?}"
        );
    }
    assert_eq!(router.deadline_error_count(), 2);

    // Down shard: typed `ERR down`, answered with no network wait.
    router.health().force_down(0, 0);
    let t0 = Instant::now();
    let line = client.rec_one(7, 5).unwrap();
    assert_eq!(
        graphaug_serve::err_kind(&line),
        Some("down"),
        "got {line:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "fast-fail must not consult the deadline budget"
    );

    client.quit();
    handle.stop();
    drop(hung);
}

/// A replica dying mid-response must never surface a truncated line to
/// the client: the router treats the partial read as a transport error
/// and fails over to the secondary within the same request.
#[test]
fn mid_response_death_fails_over_instead_of_relaying_truncation() {
    let graph = toy_graph();
    let dir = TempDir::new("midresponse");
    train_into(dir.path(), &graph);
    let real = boot_replica(&graph, dir.path());
    let real_addr = real.addr().to_string();

    // The real replica's generation, so the fake primary can report the
    // same one (a lagging generation would get it marked degraded and
    // skipped — which would dodge the truncation path under test).
    let gen: u64 = {
        let mut c = ServeClient::connect(&real_addr).unwrap();
        let stats = c.stats_line().unwrap();
        c.quit();
        graphaug_serve::stats_field(&stats, "gen=")
            .and_then(|v| v.parse().ok())
            .expect("replica reports gen")
    };

    // A fake primary that keeps the prober happy (PING/STATS) but answers
    // every REC with a deliberately truncated OK line — no terminating
    // newline — and then slams the connection.
    let fake = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let fake_addr = fake.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        use std::io::{BufRead, BufReader, Write};
        for conn in fake.incoming() {
            let Ok(mut stream) = conn else { break };
            let stats = format!("STATS gen={gen} users=60 items=45 table_bytes=1\n");
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                    if line.starts_with("PING") {
                        let _ = stream.write_all(b"PONG\n");
                    } else if line.starts_with("STATS") {
                        let _ = stream.write_all(stats.as_bytes());
                    } else {
                        // Half an OK line, then die mid-response.
                        let _ = stream.write_all(b"OK gen=1 user=0 k=5 items=1,2");
                        let _ = stream.flush();
                        break;
                    }
                    line.clear();
                }
            });
        }
    });

    let sets = vec![vec![fake_addr, real_addr.clone()]];
    let router = Router::new(RouterConfig::from_sets(sets).probe_period(Duration::from_millis(10)));
    let handle = start(router.clone(), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
    let mut direct = ServeClient::connect(&real_addr).unwrap();

    for user in 0..6u32 {
        let line = client.rec_one(user, 5).unwrap();
        assert!(
            line.starts_with("OK ") && line.contains("bits="),
            "user {user}: truncated replica output must never reach the \
             client, got {line:?}"
        );
        let expect = direct.rec_one(user, 5).unwrap();
        assert_eq!(
            line, expect,
            "user {user}: the answer must be the secondary's, bit-identical"
        );
    }
    assert!(
        router.failover_count() > 0,
        "every one of those answers came from the secondary"
    );

    direct.quit();
    client.quit();
    handle.stop();
    real.stop();
}
