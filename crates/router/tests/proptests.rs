//! Property tests for the user→shard hash contract: determinism across
//! "processes" (fresh computation orders), range safety, and balance
//! within 2× of uniform for the shard counts the CI topology uses.

use graphaug_rng::{prop, prop_assert, prop_assert_eq};
use graphaug_router::{shard_of, SHARD_HASH_SALT};

#[test]
fn shard_assignment_is_deterministic_and_in_range() {
    prop::check("shard_deterministic", 128, |g| {
        let n_shards = *[2usize, 3, 5].get(g.bounded_u64(3) as usize).unwrap();
        let n_draws = g.len_in(1, 200);
        for _ in 0..n_draws {
            let user = g.next_u64() as u32;
            let s = shard_of(user, n_shards);
            prop_assert!(s < n_shards, "shard {s} out of range for {n_shards}");
            // Recompute in a different evaluation context — the hash is a
            // pure function of (user, n_shards) only.
            prop_assert_eq!(s, shard_of(user, n_shards));
        }
        Ok(())
    });
}

#[test]
fn shard_assignment_ignores_draw_order_and_duplicates() {
    prop::check("shard_order_independent", 64, |g| {
        let n_shards = *[2usize, 3, 5].get(g.bounded_u64(3) as usize).unwrap();
        let len = g.len_in(2, 100);
        let users = g.vec_of(len, |g| g.next_u64() as u32);
        let forward: Vec<usize> = users.iter().map(|&u| shard_of(u, n_shards)).collect();
        let backward: Vec<usize> = users.iter().rev().map(|&u| shard_of(u, n_shards)).collect();
        let mut backward = backward;
        backward.reverse();
        prop_assert_eq!(forward, backward);
        Ok(())
    });
}

#[test]
fn shard_load_is_balanced_within_2x_of_uniform() {
    // Contiguous user-id populations (what the synthetic datasets and the
    // serving demo actually route) of varying size and offset: no shard
    // may carry more than 2× its uniform share, and none may starve.
    prop::check("shard_balance_2x", 48, |g| {
        for &n_shards in &[2usize, 3, 5] {
            let population = g.len_in(200, 5000).max(200);
            let offset = g.bounded_u64(1 << 20) as u32;
            let mut counts = vec![0usize; n_shards];
            for u in offset..offset + population as u32 {
                counts[shard_of(u, n_shards)] += 1;
            }
            let uniform = population as f64 / n_shards as f64;
            for (shard, &c) in counts.iter().enumerate() {
                prop_assert!(
                    (c as f64) < 2.0 * uniform,
                    "shard {shard}/{n_shards} got {c} of {population} users \
                     (uniform share {uniform:.1}): worse than 2x"
                );
                prop_assert!(
                    c > 0,
                    "shard {shard}/{n_shards} starved over {population} users"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn salt_is_pinned() {
    // The salt is part of the wire contract (see hash.rs): a router and a
    // chaos driver built from different trees must still agree on owners.
    assert_eq!(SHARD_HASH_SALT, 0x6772_6175_6772_7421);
}

// ---------------------------------------------------------------------------
// HealthBoard + failover decision properties
// ---------------------------------------------------------------------------

use graphaug_router::{failover_order, HealthBoard, ReplicaHealth};

/// Plain-struct reference model of one replica's health, updated with the
/// documented transition rules; the real `HealthBoard` (atomics, locks)
/// must agree with it after every operation.
#[derive(Clone)]
struct RefReplica {
    up: bool,
    streak: u32,
    gen: u64,
    degraded: bool,
}

impl RefReplica {
    fn fresh() -> RefReplica {
        RefReplica {
            up: true,
            streak: 0,
            gen: 0,
            degraded: false,
        }
    }

    fn health(&self) -> ReplicaHealth {
        if !self.up {
            ReplicaHealth::Down
        } else if self.degraded {
            ReplicaHealth::Degraded
        } else {
            ReplicaHealth::Up
        }
    }
}

#[test]
fn health_board_matches_a_reference_model_under_random_op_sequences() {
    // Random interleavings of every operation the prober, the data path,
    // and the admin REPLACE verb can apply — including flap sequences
    // (ok/failure alternations) and generation skew — checked against the
    // reference model after every single step.
    prop::check("health_board_model", 96, |g| {
        let n_shards = 1 + g.bounded_u64(3) as usize;
        let replication = 1 + g.bounded_u64(3) as usize;
        let down_after = 1 + g.bounded_u64(3) as u32;
        let sets: Vec<Vec<String>> = (0..n_shards)
            .map(|s| {
                (0..replication)
                    .map(|r| format!("127.0.0.1:{}", 1000 + 10 * s + r))
                    .collect()
            })
            .collect();
        let board = HealthBoard::new(&sets, down_after);
        let mut model: Vec<Vec<RefReplica>> =
            vec![vec![RefReplica::fresh(); replication]; n_shards];

        let ops = g.len_in(1, 250);
        for _ in 0..ops {
            let s = g.bounded_u64(n_shards as u64) as usize;
            let r = g.bounded_u64(replication as u64) as usize;
            match g.bounded_u64(5) {
                0 => {
                    board.report_ok(s, r);
                    model[s][r].up = true;
                    model[s][r].streak = 0;
                }
                1 => {
                    board.report_failure(s, r);
                    model[s][r].streak += 1;
                    if model[s][r].streak >= down_after {
                        model[s][r].up = false;
                    }
                }
                2 => {
                    board.force_down(s, r);
                    model[s][r].streak = down_after;
                    model[s][r].up = false;
                }
                3 => {
                    let addr = format!("127.0.0.1:{}", 2000 + g.bounded_u64(1000));
                    board.replace(s, r, &addr);
                    // A replacement starts down-until-probed with its
                    // generation unknown and no skew verdict.
                    model[s][r] = RefReplica::fresh();
                    model[s][r].up = false;
                }
                _ => {
                    // Small generation range so skew actually occurs.
                    let gen = g.bounded_u64(4);
                    board.report_generation(s, r, gen);
                    model[s][r].gen = gen;
                    let newest = model[s]
                        .iter()
                        .filter(|m| m.up)
                        .map(|m| m.gen)
                        .max()
                        .unwrap_or(0);
                    for m in &mut model[s] {
                        m.degraded = m.gen != 0 && m.gen < newest;
                    }
                }
            }

            // The touched shard must agree with the model on every surface
            // the router consults.
            let states: Vec<ReplicaHealth> = model[s].iter().map(|m| m.health()).collect();
            prop_assert_eq!(board.shard_states(s), states.clone());
            prop_assert_eq!(board.serving_order(s), failover_order(&states));
            for (idx, m) in model[s].iter().enumerate() {
                prop_assert_eq!(board.is_up(s, idx), m.up);
                prop_assert_eq!(board.generation(s, idx), m.gen);
            }
        }

        // Global aggregates at the end of the run.
        let want_up: usize = model.iter().flatten().filter(|m| m.up).count();
        prop_assert_eq!(board.up_count(), want_up);
        let want_shards_up = model
            .iter()
            .filter(|set| set.iter().any(|m| m.up && !m.degraded))
            .count();
        prop_assert_eq!(board.shards_up(), want_shards_up);
        Ok(())
    });
}

#[test]
fn flaps_shorter_than_the_down_threshold_never_mark_a_replica_down() {
    // Hysteresis: any interleaving of sub-threshold failure bursts, each
    // cleared by a success before the streak reaches `down_after`, must
    // leave the replica up the whole time — flappy-but-recovering
    // replicas are not ejected.
    prop::check("health_flap_hysteresis", 64, |g| {
        let down_after = 2 + g.bounded_u64(4) as u32;
        let board = HealthBoard::new(&[vec!["127.0.0.1:9".to_string()]], down_after);
        let bursts = g.len_in(1, 60);
        for _ in 0..bursts {
            let burst = g.bounded_u64(down_after as u64 - 1) as u32; // < down_after
            for _ in 0..burst {
                board.report_failure(0, 0);
                prop_assert!(
                    board.is_up(0, 0),
                    "{burst} failures < down_after {down_after} must not down it"
                );
            }
            board.report_ok(0, 0);
            prop_assert!(board.is_up(0, 0));
        }
        prop_assert_eq!(board.transitions(0, 0), 0);
        Ok(())
    });
}

#[test]
fn failover_order_is_exactly_the_up_replicas_in_set_order() {
    prop::check("failover_order_reference", 64, |g| {
        let len = g.len_in(1, 12);
        let states = g.vec_of(len, |g| match g.bounded_u64(3) {
            0 => ReplicaHealth::Up,
            1 => ReplicaHealth::Down,
            _ => ReplicaHealth::Degraded,
        });
        let order = failover_order(&states);
        // Exactly the Up indices…
        let want: Vec<usize> = (0..len)
            .filter(|&i| states[i] == ReplicaHealth::Up)
            .collect();
        prop_assert_eq!(order.clone(), want);
        // …strictly increasing (deterministic preference order), and a
        // degraded replica is never serving-eligible.
        prop_assert!(order.windows(2).all(|w| w[0] < w[1]));
        for &i in &order {
            prop_assert!(states[i] != ReplicaHealth::Degraded);
        }
        Ok(())
    });
}
