//! Property tests for the user→shard hash contract: determinism across
//! "processes" (fresh computation orders), range safety, and balance
//! within 2× of uniform for the shard counts the CI topology uses.

use graphaug_rng::{prop, prop_assert, prop_assert_eq};
use graphaug_router::{shard_of, SHARD_HASH_SALT};

#[test]
fn shard_assignment_is_deterministic_and_in_range() {
    prop::check("shard_deterministic", 128, |g| {
        let n_shards = *[2usize, 3, 5].get(g.bounded_u64(3) as usize).unwrap();
        let n_draws = g.len_in(1, 200);
        for _ in 0..n_draws {
            let user = g.next_u64() as u32;
            let s = shard_of(user, n_shards);
            prop_assert!(s < n_shards, "shard {s} out of range for {n_shards}");
            // Recompute in a different evaluation context — the hash is a
            // pure function of (user, n_shards) only.
            prop_assert_eq!(s, shard_of(user, n_shards));
        }
        Ok(())
    });
}

#[test]
fn shard_assignment_ignores_draw_order_and_duplicates() {
    prop::check("shard_order_independent", 64, |g| {
        let n_shards = *[2usize, 3, 5].get(g.bounded_u64(3) as usize).unwrap();
        let len = g.len_in(2, 100);
        let users = g.vec_of(len, |g| g.next_u64() as u32);
        let forward: Vec<usize> = users.iter().map(|&u| shard_of(u, n_shards)).collect();
        let backward: Vec<usize> = users.iter().rev().map(|&u| shard_of(u, n_shards)).collect();
        let mut backward = backward;
        backward.reverse();
        prop_assert_eq!(forward, backward);
        Ok(())
    });
}

#[test]
fn shard_load_is_balanced_within_2x_of_uniform() {
    // Contiguous user-id populations (what the synthetic datasets and the
    // serving demo actually route) of varying size and offset: no shard
    // may carry more than 2× its uniform share, and none may starve.
    prop::check("shard_balance_2x", 48, |g| {
        for &n_shards in &[2usize, 3, 5] {
            let population = g.len_in(200, 5000).max(200);
            let offset = g.bounded_u64(1 << 20) as u32;
            let mut counts = vec![0usize; n_shards];
            for u in offset..offset + population as u32 {
                counts[shard_of(u, n_shards)] += 1;
            }
            let uniform = population as f64 / n_shards as f64;
            for (shard, &c) in counts.iter().enumerate() {
                prop_assert!(
                    (c as f64) < 2.0 * uniform,
                    "shard {shard}/{n_shards} got {c} of {population} users \
                     (uniform share {uniform:.1}): worse than 2x"
                );
                prop_assert!(
                    c > 0,
                    "shard {shard}/{n_shards} starved over {population} users"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn salt_is_pinned() {
    // The salt is part of the wire contract (see hash.rs): a router and a
    // chaos driver built from different trees must still agree on owners.
    assert_eq!(SHARD_HASH_SALT, 0x6772_6175_6772_7421);
}
