//! Supervisor integration tests against real child processes — the
//! protocol-faithful `mock_replica` binary (Cargo builds it for us and
//! hands over the path via `CARGO_BIN_EXE_mock_replica`). These cover the
//! full auto-heal loop the ci.sh chaos smoke runs with real engines:
//! SIGKILL a primary, the secondary covers bit-identically with zero
//! user-visible errors, the supervisor respawns the child on a new port
//! and `REPLACE`s it into the router — all without an operator.

use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphaug_router::{start, Router, RouterConfig, Supervisor, SupervisorConfig};
use graphaug_serve::ServeClient;

fn mock_cmd(extra: &[&str]) -> Vec<String> {
    let mut argv = vec![env!("CARGO_BIN_EXE_mock_replica").to_string()];
    argv.extend(extra.iter().map(|s| s.to_string()));
    argv
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The headline chaos scenario, in-process: 2 shards × 2 replicas of the
/// mock engine, SIGKILL shard 0's primary while traffic flows, and assert
/// (a) zero user-visible errors — the secondary answers every request,
/// (b) the supervisor respawns the child and `REPLACE`s its new address,
/// (c) the reborn primary rejoins the router's health board.
#[test]
fn supervisor_respawns_a_killed_primary_and_replaces_it() {
    let mut cfg = SupervisorConfig::new(2, 2, mock_cmd(&["--gen", "3"]));
    cfg.probe_period = Duration::from_millis(50);
    cfg.backoff_base = Duration::from_millis(10);
    cfg.backoff_cap = Duration::from_millis(100);
    cfg.ready_timeout = Duration::from_secs(30);
    let mut sup = Supervisor::new(cfg);
    let stats = sup.stats();
    let mut boot_log = Vec::new();
    let sets = sup
        .spawn_all(&mut |line: &str| boot_log.push(line.to_string()))
        .unwrap();
    assert_eq!(sets.len(), 2);
    assert!(sets.iter().all(|s| s.len() == 2), "{sets:?}");
    assert_eq!(
        boot_log
            .iter()
            .filter(|l| l.starts_with("SPAWNED "))
            .count(),
        4,
        "{boot_log:?}"
    );

    let router = Router::new(RouterConfig::from_sets(sets).probe_period(Duration::from_millis(10)));
    let handle = start(router.clone(), "127.0.0.1:0").unwrap();
    let admin = handle.admin_addr().to_string();
    let victim_pid = sup.pid(0, 0).expect("shard 0 primary has a pid");

    // Supervision loop on its own thread, like `supervisord` runs it.
    let stop = Arc::new(AtomicBool::new(false));
    let loop_stop = stop.clone();
    let loop_admin = admin.clone();
    let sup_thread = std::thread::spawn(move || {
        let mut log = |line: &str| println!("[supervisor] {line}");
        sup.run(&loop_admin, &loop_stop, &mut log);
        sup
    });

    // SIGKILL the primary out from under everything — exactly what the
    // ci.sh chaos smoke does from the outside.
    let killed = Command::new("kill")
        .args(["-9", &victim_pid.to_string()])
        .status()
        .expect("spawn kill");
    assert!(killed.success(), "kill -9 {victim_pid} failed");

    // Traffic must stay error-free for the entire recovery window: the
    // secondary serves (mock replicas of the same gen are byte-identical)
    // until the respawned primary is REPLACEd back in.
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut served = 0u64;
    while Instant::now() < deadline && stats.replaces.load(Ordering::Relaxed) == 0 {
        for user in 0..8u32 {
            let line = client.rec_one(user, 5).unwrap();
            assert!(
                line.starts_with("OK "),
                "zero user-visible errors during respawn, got {line:?}"
            );
            served += 1;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        stats.respawns.load(Ordering::Relaxed) >= 1,
        "supervisor must respawn the killed child"
    );
    assert!(
        stats.replaces.load(Ordering::Relaxed) >= 1,
        "supervisor must REPLACE the respawned address into the router"
    );
    assert!(served > 0, "the recovery window saw no traffic at all");
    assert!(
        router.failover_count() > 0,
        "the secondary must have served while the primary was dead"
    );

    // The replaced replica rejoins the router's board on its own (prober).
    wait_until(
        "replaced primary to rejoin the health board",
        Duration::from_secs(30),
        || router.health().is_up(0, 0),
    );
    let line = client.rec_one(0, 5).unwrap();
    assert!(line.starts_with("OK "), "after rejoin: {line:?}");

    stop.store(true, Ordering::Relaxed);
    let sup = sup_thread.join().unwrap();
    drop(sup);
    client.quit();
    handle.stop();
}

/// The restart budget: a replica that dies moments after every boot gets
/// exactly `restart_budget` respawns, then is abandoned (logged and
/// counted) instead of being restarted in a hot loop forever.
#[test]
fn restart_budget_abandons_a_crash_looping_replica() {
    let mut cfg = SupervisorConfig::new(1, 1, mock_cmd(&["--die-ms", "40"]));
    cfg.probe_period = Duration::from_millis(25);
    cfg.backoff_base = Duration::from_millis(5);
    cfg.backoff_cap = Duration::from_millis(20);
    cfg.ready_timeout = Duration::from_secs(30);
    cfg.restart_budget = 2;
    let mut sup = Supervisor::new(cfg);
    let stats = sup.stats();
    let mut log = Vec::new();
    let mut push = |line: &str| log.push(line.to_string());
    sup.spawn_all(&mut push).unwrap();

    // No router behind this admin address: REPLACE attempts fail fast and
    // are logged, which is fine — the budget math is what's under test.
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(30);
    while stats.abandoned.load(Ordering::Relaxed) == 0 {
        assert!(
            Instant::now() < deadline,
            "supervisor never abandoned the crash-looper"
        );
        sup.sweep("127.0.0.1:1", &stop, &mut push);
        std::thread::sleep(Duration::from_millis(25));
    }

    // Abandoned slots stay abandoned: a further sweep is a no-op.
    sup.sweep("127.0.0.1:1", &stop, &mut push);
    assert_eq!(stats.abandoned.load(Ordering::Relaxed), 1);
    assert_eq!(
        stats.respawns.load(Ordering::Relaxed),
        2,
        "exactly the restart budget of respawns; log: {log:?}"
    );
    assert!(
        log.iter()
            .any(|l| l.starts_with("ABANDONED shard=0 replica=0")),
        "{log:?}"
    );
}

/// Deterministic backoff schedule: the RESPAWN log lines of a replayed
/// crash-loop carry exactly the delays `backoff_with_jitter` predicts for
/// the configured seed — the property that makes chaos runs replayable.
#[test]
fn respawn_backoff_follows_the_seeded_schedule() {
    let mut cfg = SupervisorConfig::new(1, 1, mock_cmd(&["--die-ms", "30"]));
    cfg.probe_period = Duration::from_millis(25);
    cfg.backoff_base = Duration::from_millis(8);
    cfg.backoff_cap = Duration::from_millis(64);
    cfg.ready_timeout = Duration::from_secs(30);
    cfg.restart_budget = 3;
    cfg.seed = 42;
    let expected: Vec<u128> = (0..3)
        .map(|attempt| {
            graphaug_router::backoff_with_jitter(
                cfg.backoff_base,
                cfg.backoff_cap,
                attempt,
                cfg.seed,
                0,
                0,
            )
            .as_millis()
        })
        .collect();

    let mut sup = Supervisor::new(cfg);
    let stats = sup.stats();
    let mut log = Vec::new();
    let mut push = |line: &str| log.push(line.to_string());
    sup.spawn_all(&mut push).unwrap();
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(30);
    while stats.abandoned.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "crash-looper never abandoned");
        sup.sweep("127.0.0.1:1", &stop, &mut push);
        std::thread::sleep(Duration::from_millis(25));
    }

    let logged: Vec<u128> = log
        .iter()
        .filter(|l| l.starts_with("RESPAWN shard=0"))
        .filter_map(|l| graphaug_serve::stats_field(l, "backoff_ms=").and_then(|v| v.parse().ok()))
        .collect();
    assert_eq!(
        logged, expected,
        "logged backoff schedule must replay the seeded one; log: {log:?}"
    );
}
