//! A hermetic parallel compute runtime for the GraphAug workspace.
//!
//! Every hot kernel in the reproduction (dense matmul, CSR SpMM and their
//! backward passes) fans work out through this crate. It is built on
//! `std::thread` only — no external dependencies — and is designed around a
//! **determinism contract**:
//!
//! 1. Work is split into **fixed chunks** whose boundaries depend only on
//!    the problem size ([`fixed_chunks`]), never on the thread count.
//! 2. Each chunk owns a **disjoint** slice of the output, so no atomics or
//!    locks touch the data path.
//! 3. Reductions (kernels that must combine across chunks) merge per-chunk
//!    partials **in ascending chunk order**.
//!
//! Under this contract the floating-point result of every kernel is
//! bit-identical for any `GRAPHAUG_THREADS` value — the thread count only
//! decides which worker executes a chunk, never what a chunk computes. The
//! seeded experiment pipeline therefore produces byte-for-byte identical
//! artifacts on a laptop and a 16-core server.
//!
//! # Pool model
//!
//! A process-wide pool of persistent workers is spawned lazily on the first
//! parallel call and parked on a condvar between jobs. The submitting thread
//! participates in chunk execution (so `GRAPHAUG_THREADS=2` means one worker
//! plus the caller), claims are handed out through an atomic cursor, and the
//! caller blocks until every chunk has finished — which is what makes the
//! lifetime-erased borrow of the job closure sound.
//!
//! # Configuration
//!
//! * `GRAPHAUG_THREADS` — thread budget (default: `available_parallelism`,
//!   clamped to [`MAX_THREADS`]). Read once at first use.
//! * [`set_thread_count`] — runtime override, used by the determinism suite
//!   to compare thread counts within one process.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub mod simd;

pub use simd::{
    dot8, dot8_i8, l2sq8, set_simd_enabled, simd_available, simd_enabled, F32x8, I8x32,
};

/// Hard cap on the worker budget (also the maximum chunk fan-out produced by
/// [`fixed_chunks`], so more threads than this could never be fed anyway).
pub const MAX_THREADS: usize = 16;

/// Minimum rows/items per chunk: below this the per-chunk dispatch overhead
/// outweighs any parallel win, so small problems stay single-chunk (and thus
/// run inline on the calling thread).
const MIN_CHUNK: usize = 64;

static TARGET: AtomicUsize = AtomicUsize::new(0); // 0 = not yet initialized

fn init_target() -> usize {
    let n = std::env::var("GRAPHAUG_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    n.clamp(1, MAX_THREADS)
}

/// The current thread budget (`GRAPHAUG_THREADS`, clamped to
/// `1..=MAX_THREADS`). Purely a performance knob: results never depend on it.
pub fn thread_count() -> usize {
    match TARGET.load(Ordering::Relaxed) {
        0 => {
            let n = init_target();
            TARGET.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the thread budget at runtime (clamped to `1..=MAX_THREADS`).
/// The determinism test suite uses this to compare thread counts in-process.
pub fn set_thread_count(n: usize) {
    TARGET.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Splits `n` items into chunks whose size depends **only on `n`** — never
/// on the thread count — returning `(chunk_len, n_chunks)`. This is the
/// fixed chunking behind the determinism contract (module docs): kernels
/// that merge per-chunk partials stay bit-stable because the partial
/// boundaries cannot move when the pool grows or shrinks.
pub fn fixed_chunks(n: usize) -> (usize, usize) {
    if n == 0 {
        return (1, 0);
    }
    let chunk = n.div_ceil(MAX_THREADS).max(MIN_CHUNK);
    (chunk, n.div_ceil(chunk))
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// One in-flight parallel job: a lifetime-erased closure plus claim/finish
/// cursors. Safety: the pointee outlives the job because [`run`] does not
/// return until `done == n_chunks`, and workers never dereference `task`
/// except while executing a successfully claimed chunk.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    n_chunks: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    panicked: AtomicBool,
}

unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct PoolState {
    job: Option<Arc<Job>>,
    epoch: u64,
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            job: None,
            epoch: 0,
            workers: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

fn worker_loop(pool: &'static Pool) {
    let mut my_epoch = 0u64;
    loop {
        let job = {
            let mut st = pool.state.lock().expect("pool lock");
            loop {
                if st.epoch != my_epoch {
                    my_epoch = st.epoch;
                    if let Some(j) = st.job.clone() {
                        break j;
                    }
                }
                st = pool.work_cv.wait(st).expect("pool wait");
            }
        };
        execute_chunks(pool, &job);
    }
}

/// Claims and runs chunks until the cursor is exhausted. Shared by workers
/// and the submitting thread.
fn execute_chunks(pool: &Pool, job: &Job) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_chunks {
            return;
        }
        // Safety: `task` is alive — see the invariant on `Job`.
        let task = unsafe { &*job.task };
        if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }
        let finished = job.done.fetch_add(1, Ordering::Release) + 1;
        if finished == job.n_chunks {
            // Take the lock so a submitter between its check and its wait
            // cannot miss the wakeup.
            let _guard = pool.state.lock().expect("pool lock");
            pool.done_cv.notify_all();
        }
    }
}

fn ensure_workers(pool: &'static Pool, st: &mut PoolState, wanted: usize) {
    while st.workers < wanted.min(MAX_THREADS - 1) {
        std::thread::Builder::new()
            .name(format!("graphaug-par-{}", st.workers))
            .spawn(move || worker_loop(pool))
            .expect("spawn pool worker");
        st.workers += 1;
    }
}

/// Executes `f(0), f(1), …, f(n_chunks - 1)` exactly once each, possibly in
/// parallel. Blocks until every chunk has completed; panics (after all
/// chunks finish) if any chunk panicked.
///
/// Chunk *assignment* to threads is nondeterministic; callers get
/// deterministic results by making every chunk own disjoint output (see the
/// module-level contract).
pub fn run(n_chunks: usize, f: impl Fn(usize) + Sync) {
    if n_chunks == 0 {
        return;
    }
    let threads = thread_count().min(n_chunks);
    if threads <= 1 {
        // Serial path: identical chunk set, ascending order.
        for i in 0..n_chunks {
            f(i);
        }
        return;
    }

    let pool = pool();
    // Erase the closure's lifetime; sound because this function blocks until
    // `done == n_chunks` and no worker touches `task` afterwards.
    let task: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(&f)
    };
    let job = Arc::new(Job {
        task,
        n_chunks,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
    });
    {
        let mut st = pool.state.lock().expect("pool lock");
        ensure_workers(pool, &mut st, threads - 1);
        st.epoch += 1;
        st.job = Some(Arc::clone(&job));
        pool.work_cv.notify_all();
    }
    execute_chunks(pool, &job);
    {
        let mut st = pool.state.lock().expect("pool lock");
        while job.done.load(Ordering::Acquire) < n_chunks {
            st = pool.done_cv.wait(st).expect("pool wait");
        }
        st.job = None;
    }
    if job.panicked.load(Ordering::Relaxed) {
        panic!("graphaug-par: a parallel chunk panicked");
    }
}

// ---------------------------------------------------------------------------
// Disjoint-output helpers
// ---------------------------------------------------------------------------

/// A `Send + Sync` raw-pointer wrapper for handing disjoint sub-slices of one
/// `&mut [T]` to concurrent chunks. The kernel crates use this for outputs
/// whose chunk boundaries are irregular (e.g. CSR value ranges).
#[derive(Clone, Copy)]
pub struct SendMutPtr<T>(*mut T);

unsafe impl<T: Send> Send for SendMutPtr<T> {}
unsafe impl<T: Send> Sync for SendMutPtr<T> {}

impl<T> SendMutPtr<T> {
    /// Captures the base pointer of `data`.
    pub fn new(data: &mut [T]) -> Self {
        SendMutPtr(data.as_mut_ptr())
    }

    /// Reborrows `data[start..start + len]`.
    ///
    /// # Safety
    /// The range must be in bounds of the original slice and must not
    /// overlap any range concurrently handed to another chunk.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(start), len)
    }
}

/// Runs `f(chunk_idx, item_range)` over the [`fixed_chunks`] partition of
/// `0..n`. The ranges tile `0..n` in order and never overlap.
pub fn parallel_spans(n: usize, f: impl Fn(usize, Range<usize>) + Sync) {
    let (chunk, k) = fixed_chunks(n);
    run(k, |i| {
        let start = i * chunk;
        f(i, start..(start + chunk).min(n));
    });
}

/// Splits a row-major `out` buffer of `width`-wide rows into fixed row
/// chunks and runs `f(first_row, rows_slice)` on each with exclusive access.
pub fn parallel_rows<T: Send>(out: &mut [T], width: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    assert!(width > 0, "parallel_rows requires a positive row width");
    assert_eq!(out.len() % width, 0, "output is not a whole number of rows");
    let rows = out.len() / width;
    let base = SendMutPtr::new(out);
    parallel_spans(rows, |_, r| {
        // Safety: spans tile `0..rows` disjointly, so the row ranges (and
        // hence the element ranges) handed out never overlap.
        let slice = unsafe { base.slice_mut(r.start * width, (r.end - r.start) * width) };
        f(r.start, slice);
    });
}

/// Splits `data` into caller-sized chunks (`chunk_len` elements, last chunk
/// short) and runs `f(chunk_idx, chunk_slice)` on each with exclusive
/// access. `chunk_len` must not depend on the thread count if the caller
/// needs deterministic cross-chunk reductions.
pub fn parallel_chunks<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(
        chunk_len > 0,
        "parallel_chunks requires a positive chunk_len"
    );
    let n = data.len();
    let k = n.div_ceil(chunk_len);
    let base = SendMutPtr::new(data);
    run(k, |i| {
        let start = i * chunk_len;
        let len = chunk_len.min(n - start);
        // Safety: chunk index ranges tile `0..n` disjointly.
        let slice = unsafe { base.slice_mut(start, len) };
        f(i, slice);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn fixed_chunks_are_thread_count_independent() {
        for n in [0usize, 1, 63, 64, 65, 1000, 100_000] {
            let a = fixed_chunks(n);
            set_thread_count(1);
            let b = fixed_chunks(n);
            set_thread_count(4);
            let c = fixed_chunks(n);
            assert_eq!(a, b);
            assert_eq!(a, c);
            let (chunk, k) = a;
            assert!(k <= MAX_THREADS);
            if n > 0 {
                assert!(chunk * k >= n && chunk * (k.saturating_sub(1)) < n);
            }
        }
    }

    #[test]
    fn run_executes_every_chunk_exactly_once() {
        for threads in [1usize, 2, 4] {
            set_thread_count(threads);
            let counts: Vec<AtomicU32> = (0..37).map(|_| AtomicU32::new(0)).collect();
            run(counts.len(), |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_rows_partitions_disjointly() {
        set_thread_count(4);
        let mut out = vec![0u32; 300 * 3];
        parallel_rows(&mut out, 3, |row0, rows| {
            for (i, chunk) in rows.chunks_exact_mut(3).enumerate() {
                for v in chunk.iter_mut() {
                    *v += (row0 + i) as u32;
                }
            }
        });
        for (r, chunk) in out.chunks_exact(3).enumerate() {
            assert!(chunk.iter().all(|&v| v == r as u32), "row {r}");
        }
    }

    #[test]
    fn parallel_chunks_honors_explicit_chunk_len() {
        set_thread_count(4);
        let mut data = vec![0usize; 130];
        parallel_chunks(&mut data, 32, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 32 + 1);
        }
    }

    #[test]
    fn parallel_spans_tile_the_range_in_order() {
        set_thread_count(2);
        let seen = Mutex::new(Vec::new());
        parallel_spans(1000, |ci, r| {
            seen.lock().unwrap().push((ci, r));
        });
        let mut spans = seen.into_inner().unwrap();
        spans.sort_by_key(|(ci, _)| *ci);
        let mut cursor = 0usize;
        for (_, r) in &spans {
            assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        assert_eq!(cursor, 1000);
    }

    #[test]
    fn chunk_panic_propagates_after_all_chunks_finish() {
        set_thread_count(4);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn serial_and_parallel_runs_agree() {
        let compute = |threads: usize| {
            set_thread_count(threads);
            let mut out = vec![0f32; 500];
            parallel_rows(&mut out, 1, |row0, rows| {
                for (i, v) in rows.iter_mut().enumerate() {
                    let x = (row0 + i) as f32;
                    *v = (x * 0.37).sin() + x.sqrt();
                }
            });
            out
        };
        let a = compute(1);
        let b = compute(4);
        assert_eq!(a, b);
    }
}
