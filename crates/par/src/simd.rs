//! Explicit 8-lane `f32` SIMD support for the kernel crates.
//!
//! [`F32x8`] is a plain `[f32; 8]` wrapper whose per-lane operations are
//! written as fixed-order scalar Rust. That makes the semantics *identical*
//! in every build: inside an `#[target_feature(enable = "avx2")]` context
//! the compiler lowers each op to one 256-bit instruction, elsewhere to
//! SSE2/scalar code — and because per-lane IEEE arithmetic and the
//! [`F32x8::hsum`] reduction tree are fixed in source (no fused
//! multiply-add, no reassociation), the results are bit-identical between
//! the lane path and the scalar fallback. The kernel crates exploit this by
//! compiling each span kernel twice (once under AVX2, once under the
//! baseline target) from one `#[inline(always)]` body and dispatching at
//! runtime — see [`simd_dispatch!`](crate::simd_dispatch).
//!
//! # Configuration
//!
//! * `GRAPHAUG_SIMD=0` — force the scalar builds even when AVX2 is
//!   available (escape hatch / determinism-audit knob). Read once at first
//!   use.
//! * [`set_simd_enabled`] — runtime override, used by the determinism suite
//!   to compare the lane and scalar builds within one process.
//!
//! On non-x86_64 targets everything compiles to the portable scalar path
//! and [`simd_enabled`] is always `false`.

use std::sync::atomic::{AtomicU8, Ordering};

/// Lane width of [`F32x8`].
pub const LANES: usize = 8;

/// Eight `f32` lanes with fixed per-lane semantics (no FMA contraction, no
/// reassociation), aligned so the AVX2 builds can use aligned spills.
#[derive(Clone, Copy, Debug)]
#[repr(align(32))]
pub struct F32x8(pub [f32; 8]);

// `add`/`mul` shadow the `std::ops` trait names on purpose: kernels call
// them as explicit named lane ops (`acc.mul_acc(a, b)`, `x.add(y)`), and
// keeping them inherent (not trait impls) guarantees they inline into
// `#[target_feature]` clones without a trait-dispatch layer in MIR.
#[allow(clippy::should_implement_trait)]
impl F32x8 {
    /// All-zero lanes.
    #[inline(always)]
    pub fn zero() -> Self {
        F32x8([0.0; 8])
    }

    /// Broadcasts one value to every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        F32x8([v; 8])
    }

    /// Loads the first 8 elements of `s`.
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        let mut out = [0f32; 8];
        out.copy_from_slice(&s[..8]);
        F32x8(out)
    }

    /// Stores the lanes into the first 8 elements of `out`.
    #[inline(always)]
    pub fn store(self, out: &mut [f32]) {
        out[..8].copy_from_slice(&self.0);
    }

    /// Lane-wise sum.
    #[inline(always)]
    pub fn add(self, o: Self) -> Self {
        let (a, b) = (self.0, o.0);
        F32x8([
            a[0] + b[0],
            a[1] + b[1],
            a[2] + b[2],
            a[3] + b[3],
            a[4] + b[4],
            a[5] + b[5],
            a[6] + b[6],
            a[7] + b[7],
        ])
    }

    /// Lane-wise difference.
    #[inline(always)]
    pub fn sub(self, o: Self) -> Self {
        let (a, b) = (self.0, o.0);
        F32x8([
            a[0] - b[0],
            a[1] - b[1],
            a[2] - b[2],
            a[3] - b[3],
            a[4] - b[4],
            a[5] - b[5],
            a[6] - b[6],
            a[7] - b[7],
        ])
    }

    /// Lane-wise product.
    #[inline(always)]
    pub fn mul(self, o: Self) -> Self {
        let (a, b) = (self.0, o.0);
        F32x8([
            a[0] * b[0],
            a[1] * b[1],
            a[2] * b[2],
            a[3] * b[3],
            a[4] * b[4],
            a[5] * b[5],
            a[6] * b[6],
            a[7] * b[7],
        ])
    }

    /// `self + a ⊙ b` lane-wise, as separate multiply and add (never fused,
    /// so lane and scalar builds agree bitwise).
    #[inline(always)]
    pub fn mul_acc(self, a: Self, b: Self) -> Self {
        self.add(a.mul(b))
    }

    /// Horizontal sum with a fixed reduction tree:
    /// `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`.
    ///
    /// Every kernel that collapses lanes to a scalar uses this order, which
    /// is what makes dot-product results identical between the AVX2 and
    /// scalar builds.
    #[inline(always)]
    pub fn hsum(self) -> f32 {
        let l = self.0;
        ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
    }
}

/// Dot product over 8-wide lanes with two independent accumulator vectors
/// (even/odd 16-blocks) merged in a fixed order, then the [`F32x8::hsum`]
/// tree, then an ascending scalar tail. This is the single reduction order
/// shared by `matmul_nt` and the `spmm_ew` weight gradient — deterministic
/// for any thread count and identical between lane and scalar builds.
#[inline(always)]
pub fn dot8(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc0 = F32x8::zero();
    let mut acc1 = F32x8::zero();
    let mut i = 0usize;
    while i + 16 <= n {
        acc0 = acc0.mul_acc(F32x8::load(&a[i..]), F32x8::load(&b[i..]));
        acc1 = acc1.mul_acc(F32x8::load(&a[i + 8..]), F32x8::load(&b[i + 8..]));
        i += 16;
    }
    if i + 8 <= n {
        acc0 = acc0.mul_acc(F32x8::load(&a[i..]), F32x8::load(&b[i..]));
        i += 8;
    }
    let mut tail = 0f32;
    while i < n {
        tail += a[i] * b[i];
        i += 1;
    }
    acc0.add(acc1).hsum() + tail
}

/// Squared Euclidean distance `Σ (a[i] − b[i])²` with the same fixed
/// reduction shape as [`dot8`]: two independent 8-wide accumulators over
/// even/odd 16-blocks, one 8-wide block, the [`F32x8::hsum`] tree, then an
/// ascending scalar tail. The IVF coarse quantizer (`graphaug-serve`) runs
/// its k-means assignment through this, so index builds are bit-identical
/// between the lane and scalar builds and for any thread count.
#[inline(always)]
pub fn l2sq8(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc0 = F32x8::zero();
    let mut acc1 = F32x8::zero();
    let mut i = 0usize;
    while i + 16 <= n {
        let d0 = F32x8::load(&a[i..]).sub(F32x8::load(&b[i..]));
        let d1 = F32x8::load(&a[i + 8..]).sub(F32x8::load(&b[i + 8..]));
        acc0 = acc0.mul_acc(d0, d0);
        acc1 = acc1.mul_acc(d1, d1);
        i += 16;
    }
    if i + 8 <= n {
        let d = F32x8::load(&a[i..]).sub(F32x8::load(&b[i..]));
        acc0 = acc0.mul_acc(d, d);
        i += 8;
    }
    let mut tail = 0f32;
    while i < n {
        let d = a[i] - b[i];
        tail += d * d;
        i += 1;
    }
    acc0.add(acc1).hsum() + tail
}

/// Lane width of [`I8x32`].
pub const I8_LANES: usize = 32;

/// Thirty-two `i8` lanes for the quantized scoring kernels. One [`I8x32`]
/// block is the int8 analogue of four [`F32x8`] blocks: a single 256-bit
/// register holds 32 weights instead of 8, which is where the ~4× memory-
/// bandwidth win of int8 tables comes from.
///
/// Unlike the f32 lanes, the widening dot product accumulates in `i32`,
/// which is *exact*: integer addition is associative, so lane/scalar and
/// thread-count invariance hold for any evaluation order. The reduction
/// order below is still fixed in source (8 sublane accumulators, then the
/// same `((s0+s1)+(s2+s3))+((s4+s5)+(s6+s7))` tree as [`F32x8::hsum`]) so
/// the kernel reads like its f32 siblings and the contract never rests on
/// an associativity argument alone.
#[derive(Clone, Copy, Debug)]
#[repr(align(32))]
pub struct I8x32(pub [i8; 32]);

impl I8x32 {
    /// All-zero lanes.
    #[inline(always)]
    pub fn zero() -> Self {
        I8x32([0; 32])
    }

    /// Loads the first 32 elements of `s`.
    #[inline(always)]
    pub fn load(s: &[i8]) -> Self {
        let mut out = [0i8; 32];
        out.copy_from_slice(&s[..32]);
        I8x32(out)
    }

    /// Widening dot product of all 32 lane pairs: each `i8×i8` product is
    /// computed in `i32` (max magnitude 127² = 16129, so 8 sublane
    /// accumulators never overflow below ~2¹⁷ blocks) and collapsed with
    /// the fixed [`F32x8::hsum`]-shaped tree.
    #[inline(always)]
    pub fn dot(self, o: Self) -> i32 {
        let (a, b) = (self.0, o.0);
        let mut s = [0i32; 8];
        let mut j = 0usize;
        while j < 32 {
            s[0] += a[j] as i32 * b[j] as i32;
            s[1] += a[j + 1] as i32 * b[j + 1] as i32;
            s[2] += a[j + 2] as i32 * b[j + 2] as i32;
            s[3] += a[j + 3] as i32 * b[j + 3] as i32;
            s[4] += a[j + 4] as i32 * b[j + 4] as i32;
            s[5] += a[j + 5] as i32 * b[j + 5] as i32;
            s[6] += a[j + 6] as i32 * b[j + 6] as i32;
            s[7] += a[j + 7] as i32 * b[j + 7] as i32;
            j += 8;
        }
        ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]))
    }
}

/// Int8 dot product over 32-wide blocks with an exact `i32` accumulator and
/// an ascending scalar tail. This is the quantized-table scoring kernel:
/// `score = dot8_i8(q_user, q_item) as f32 * (scale_user * scale_item)`.
///
/// Because every intermediate is an integer, the result is bit-identical
/// between the lane and scalar builds and for any thread count *by
/// construction* — the drift a quantized ranking can show against the f32
/// oracle comes only from the quantization itself, never from evaluation
/// order. Callers must keep `min(a.len, b.len) · 16129 < i32::MAX`
/// (any embedding dimension below ~133k), which the serving stack's
/// `dim ≤ 4096`-scale tables satisfy by orders of magnitude.
#[inline(always)]
pub fn dot8_i8(a: &[i8], b: &[i8]) -> i32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = 0i32;
    let mut i = 0usize;
    while i + 32 <= n {
        acc += I8x32::load(&a[i..]).dot(I8x32::load(&b[i..]));
        i += 32;
    }
    while i < n {
        acc += a[i] as i32 * b[i] as i32;
        i += 1;
    }
    acc
}

// ---------------------------------------------------------------------------
// Runtime dispatch control
// ---------------------------------------------------------------------------

/// 0 = uninitialized, 1 = lane builds active, 2 = scalar builds forced.
static SIMD: AtomicU8 = AtomicU8::new(0);

/// True when the running CPU supports the AVX2 lane builds.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn init_simd() -> bool {
    let env_on = std::env::var("GRAPHAUG_SIMD")
        .map(|v| v.trim() != "0")
        .unwrap_or(true);
    env_on && simd_available()
}

/// True when kernels should take their AVX2 lane build. Purely a
/// performance knob: the determinism contract guarantees results never
/// depend on it (the scalar builds execute the same fixed-order source).
pub fn simd_enabled() -> bool {
    match SIMD.load(Ordering::Relaxed) {
        0 => {
            let on = init_simd();
            SIMD.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
        1 => true,
        _ => false,
    }
}

/// Overrides the lane/scalar choice at runtime (clamped to hardware
/// availability). Returns the effective setting. The determinism suite uses
/// this to compare the two builds in-process.
pub fn set_simd_enabled(on: bool) -> bool {
    let effective = on && simd_available();
    SIMD.store(if effective { 1 } else { 2 }, Ordering::Relaxed);
    effective
}

/// Compiles a span kernel twice — once under `#[target_feature(enable =
/// "avx2")]` and once under the crate's baseline target — from a single
/// `#[inline(always)]` body, and dispatches on [`simd_enabled`] at runtime.
///
/// Because the body is ordinary fixed-order Rust (typically built on
/// [`F32x8`]/[`dot8`]), the two builds are bit-identical; the AVX2 one is
/// just faster. Use on the *span*-level entry points the parallel runtime
/// calls, so the dispatch branch is paid once per chunk, not per row.
#[macro_export]
macro_rules! simd_dispatch {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $ty:ty),* $(,)?) $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) {
            #[inline(always)]
            fn body($($arg: $ty),*) $body
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2")]
                unsafe fn lanes($($arg: $ty),*) {
                    body($($arg),*)
                }
                if $crate::simd::simd_enabled() {
                    // Safety: `simd_enabled` is true only when AVX2 was
                    // detected on the running CPU.
                    return unsafe { lanes($($arg),*) };
                }
            }
            body($($arg),*)
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsum_uses_the_documented_tree() {
        let v = F32x8([1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]);
        assert_eq!(v.hsum(), 255.0);
        // The tree order is part of the contract: spell it out.
        let l = v.0;
        let want = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
        assert_eq!(v.hsum().to_bits(), want.to_bits());
    }

    #[test]
    fn dot8_matches_reference_on_all_tail_lengths() {
        for n in 0..40usize {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).cos()).collect();
            let got = dot8(&a, &b);
            let want: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
            assert!((got as f64 - want).abs() < 1e-4, "n={n}");
        }
    }

    #[test]
    fn l2sq8_matches_reference_on_all_tail_lengths() {
        for n in 0..40usize {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).cos()).collect();
            let got = l2sq8(&a, &b);
            let want: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x as f64 - y as f64) * (x as f64 - y as f64))
                .sum();
            assert!((got as f64 - want).abs() < 1e-4, "n={n}");
        }
    }

    #[test]
    fn l2sq8_is_identical_between_lane_and_scalar_builds() {
        let a: Vec<f32> = (0..137).map(|i| (i as f32 * 0.13).sin() * 1.3).collect();
        let b: Vec<f32> = (0..137).map(|i| (i as f32 * 0.31).cos() * 0.7).collect();
        let mut out = [0f32; 2];
        crate::simd_dispatch! {
            fn probe_l2(a: &[f32], b: &[f32], out: &mut [f32]) {
                out[0] = l2sq8(a, b);
            }
        }
        let was = simd_enabled();
        set_simd_enabled(true);
        probe_l2(&a, &b, std::slice::from_mut(&mut out[0]));
        set_simd_enabled(false);
        probe_l2(&a, &b, std::slice::from_mut(&mut out[1]));
        set_simd_enabled(was);
        assert_eq!(out[0].to_bits(), out[1].to_bits());
    }

    #[test]
    fn dot8_i8_matches_wide_reference_on_all_tail_lengths() {
        for n in 0..70usize {
            let a: Vec<i8> = (0..n).map(|i| ((i * 37 + 11) % 255) as i8).collect();
            let b: Vec<i8> = (0..n).map(|i| ((i * 71 + 5) % 255) as i8).collect();
            let got = dot8_i8(&a, &b) as i64;
            let want: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn dot8_i8_saturates_nowhere_at_extremes() {
        // 4096 pairs of ±127 is the worst realistic case; the i32
        // accumulator must hold it exactly.
        let a = vec![127i8; 4096];
        let b = vec![-127i8; 4096];
        assert_eq!(dot8_i8(&a, &b) as i64, -(127i64 * 127 * 4096));
    }

    #[test]
    fn dot8_i8_is_identical_between_lane_and_scalar_builds() {
        let a: Vec<i8> = (0..137).map(|i| ((i * 91 + 3) % 255) as i8).collect();
        let b: Vec<i8> = (0..137).map(|i| ((i * 57 + 29) % 255) as i8).collect();
        let mut out = [0i32; 2];
        crate::simd_dispatch! {
            fn probe_i8(a: &[i8], b: &[i8], out: &mut [i32]) {
                out[0] = dot8_i8(a, b);
            }
        }
        let was = simd_enabled();
        set_simd_enabled(true);
        probe_i8(&a, &b, std::slice::from_mut(&mut out[0]));
        set_simd_enabled(false);
        probe_i8(&a, &b, std::slice::from_mut(&mut out[1]));
        set_simd_enabled(was);
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn set_simd_enabled_round_trips() {
        let was = simd_enabled();
        assert!(!set_simd_enabled(false));
        assert!(!simd_enabled());
        let on = set_simd_enabled(true);
        assert_eq!(on, simd_available());
        assert_eq!(simd_enabled(), on);
        set_simd_enabled(was);
    }

    #[test]
    fn dot8_is_identical_between_lane_and_scalar_builds() {
        let a: Vec<f32> = (0..137).map(|i| (i as f32 * 0.11).sin() * 1.7).collect();
        let b: Vec<f32> = (0..137).map(|i| (i as f32 * 0.23).cos() * 0.9).collect();
        let mut out = [0f32; 2];
        crate::simd_dispatch! {
            fn probe(a: &[f32], b: &[f32], out: &mut [f32]) {
                out[0] = dot8(a, b);
            }
        }
        let was = simd_enabled();
        set_simd_enabled(true);
        probe(&a, &b, std::slice::from_mut(&mut out[0]));
        set_simd_enabled(false);
        probe(&a, &b, std::slice::from_mut(&mut out[1]));
        set_simd_enabled(was);
        assert_eq!(out[0].to_bits(), out[1].to_bits());
    }
}
