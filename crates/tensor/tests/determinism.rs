//! Thread-count and SIMD determinism suite.
//!
//! The parallel runtime's contract is that results are **bit-identical**
//! under any `GRAPHAUG_THREADS` *and* under either kernel build: chunking is
//! a function of the problem shape only, every output element is owned by
//! one chunk, and reduction orders are fixed inside the kernels — the AVX2
//! lane build and the scalar fallback execute the same fixed-order
//! arithmetic (explicit `F32x8` ops, no FMA). These tests run each rewritten
//! kernel — and a full forward + backward pass over the tape — at 1, 3, and
//! 4 workers and with SIMD force-disabled, comparing outputs and gradients
//! with exact equality.

use std::sync::Arc;
use std::sync::{Mutex, MutexGuard};

use graphaug_sparse::Csr;
use graphaug_tensor::{Graph, Mat, PairGatherPlan, SpPair};

/// `set_thread_count`/`set_simd_enabled` are process-global; serialize the
/// tests that flip them. (The determinism contract makes concurrent flips
/// harmless for results, but serializing keeps each assertion about a
/// specific configuration honest.)
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn assert_same(name: &str, what: &str, base: &[Vec<f32>], got: &[Vec<f32>]) {
    assert_eq!(base.len(), got.len());
    for (i, (s, p)) in base.iter().zip(got).enumerate() {
        let same = s.len() == p.len() && s.iter().zip(p).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "{name}: buffer {i} differs {what}");
    }
}

/// Runs `f` at 1, 3, and 4 workers and with the SIMD build force-disabled,
/// asserting every returned buffer is bitwise identical to the 1-worker
/// baseline in all configurations.
fn assert_config_invariant(name: &str, f: impl Fn() -> Vec<Vec<f32>>) {
    graphaug_par::set_thread_count(1);
    let baseline = f();
    for threads in [3usize, 4] {
        graphaug_par::set_thread_count(threads);
        assert_same(
            name,
            &format!("between 1 and {threads} threads"),
            &baseline,
            &f(),
        );
    }
    // Scalar fallback (SIMD off) at both serial and parallel thread counts.
    let was_on = graphaug_par::simd_enabled();
    graphaug_par::set_simd_enabled(false);
    assert_same(name, "between SIMD and scalar (4 threads)", &baseline, &f());
    graphaug_par::set_thread_count(1);
    assert_same(name, "between SIMD and scalar (1 thread)", &baseline, &f());
    graphaug_par::set_simd_enabled(was_on);
}

/// Deterministic pseudo-random fill (no RNG dependency needed).
fn fill(n: usize, scale: f32) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.7311 + 0.137).sin() * scale)
        .collect()
}

/// A moderately irregular sparse pattern: ~6 entries per row.
fn test_csr(n_rows: usize, n_cols: usize) -> Csr {
    let mut triplets = Vec::new();
    for r in 0..n_rows as u32 {
        for k in 0..6u32 {
            let c = (r * 7 + k * 13 + (r % 5)) % n_cols as u32;
            triplets.push((r, c, ((r + k) as f32 * 0.31).cos()));
        }
    }
    Csr::from_coo(n_rows, n_cols, triplets)
}

/// Every output width class of the dense kernels: the dot8 column (m = 1),
/// each lane-specialized width (8/16/32/64), and the generic fallback (61).
/// `k = 300 > 256` additionally exercises `matmul_tn`'s kk-blocking.
#[test]
fn matmul_family_is_config_invariant() {
    let _g = lock();
    let k = 300usize;
    let n = 193usize;
    let a = Mat::from_vec(n, k, fill(n * k, 1.3));
    let tall = Mat::from_vec(k, n, fill(k * n, 0.7));
    for m in [1usize, 8, 16, 32, 64, 61] {
        let b = Mat::from_vec(k, m, fill(k * m, 0.9));
        let bt = Mat::from_vec(m, k, fill(m * k, 1.1));
        assert_config_invariant(&format!("matmul m={m}"), || vec![a.matmul(&b).into_vec()]);
        assert_config_invariant(&format!("matmul_nt m={m}"), || {
            vec![a.matmul_nt(&bt).into_vec()]
        });
        assert_config_invariant(&format!("matmul_tn m={m}"), || {
            vec![tall.matmul_tn(&b).into_vec()]
        });
    }
}

#[test]
fn spmm_kernels_are_config_invariant() {
    let _g = lock();
    let m = test_csr(517, 301);
    // d = 8/16/32/64 exercise the width-specialized kernels, d = 7 the
    // generic one.
    for d in [8usize, 16, 32, 64, 7] {
        let dense = fill(301 * d, 1.7);
        let w = fill(m.nnz(), 0.8);
        let dy = fill(517 * d, 1.2);
        assert_config_invariant(&format!("spmm_into d={d}"), || {
            let mut out = vec![0f32; 517 * d];
            m.spmm_into(&dense, d, &mut out);
            let mut acc = out.clone();
            m.spmm_acc_into(&dense, d, &mut acc);
            vec![out, acc]
        });
        assert_config_invariant(&format!("spmm_ew_into d={d}"), || {
            let mut out = vec![0f32; 517 * d];
            m.spmm_ew_into(&w, &dense, d, &mut out);
            vec![out]
        });
        assert_config_invariant(&format!("spmm_ew_grads d={d}"), || {
            let mut dw = vec![0f32; m.nnz()];
            m.spmm_ew_dw_into(&dense, &dy, d, &mut dw);
            let mut dh = vec![0f32; 301 * d];
            m.spmm_ew_dh_acc_into(&w, &dy, d, &mut dh);
            vec![dw, dh]
        });
    }
}

#[test]
fn pair_gather_is_config_invariant() {
    let _g = lock();
    let n_src = 400usize;
    let left: Vec<u32> = (0..900u32).map(|e| (e * 17) % n_src as u32).collect();
    let right: Vec<u32> = (0..900u32).map(|e| (e * 29 + 3) % n_src as u32).collect();
    let plan = PairGatherPlan::build(n_src, &left, &right);
    // d = 16 exercises the lane row copies, d = 10 the memcpy fallback.
    for d in [16usize, 10] {
        let src = fill(n_src * d, 1.0);
        let dy = fill(900 * 2 * d, 0.6);
        assert_config_invariant(&format!("pair_gather d={d}"), || {
            let mut out = vec![0f32; 900 * 2 * d];
            plan.gather_into(&src, d, &mut out);
            let mut dsrc = vec![0f32; n_src * d];
            plan.scatter_acc_into(&dy, d, &mut dsrc);
            vec![out, dsrc]
        });
    }
}

/// End-to-end: a tape mixing dense matmuls, constant and edge-weighted SpMM,
/// and the fused pair gather must produce bit-identical forward values *and*
/// gradients under every thread count and kernel build.
#[test]
fn tape_forward_and_backward_are_config_invariant() {
    let _g = lock();
    let n = 180usize;
    let d = 32usize;
    let m = test_csr(n, n);
    let sp = SpPair::new(m.clone());
    let pattern = Arc::new(m);
    let left: Vec<u32> = (0..300u32).map(|e| (e * 7) % n as u32).collect();
    let right: Vec<u32> = (0..300u32).map(|e| (e * 11 + 5) % n as u32).collect();
    let plan = Arc::new(PairGatherPlan::build(n, &left, &right));

    let run = || {
        let mut g = Graph::new();
        let h = g.constant(Mat::from_vec(n, d, fill(n * d, 1.0)));
        let w_mlp = g.constant(Mat::from_vec(d, d, fill(d * d, 0.4)));
        let ew = g.constant(Mat::from_vec(pattern.nnz(), 1, fill(pattern.nnz(), 0.5)));

        let prop = g.spmm(&sp, h);
        let mixed = g.spmm_ew(Arc::clone(&pattern), ew, prop);
        let dense = g.matmul(mixed, w_mlp);
        let feat = g.gather_concat_pair(dense, Arc::clone(&plan));
        let sq = g.square(feat);
        let loss = g.mean_all(sq);
        g.backward(loss);

        vec![
            g.value(dense).as_slice().to_vec(),
            g.value(feat).as_slice().to_vec(),
            g.grad(h).expect("h grad").as_slice().to_vec(),
            g.grad(ew).expect("ew grad").as_slice().to_vec(),
            g.grad(w_mlp).expect("w grad").as_slice().to_vec(),
        ]
    };
    assert_config_invariant("tape_end_to_end", run);
}

/// The tape can be rewound and re-recorded: the suffix after `truncate` is
/// dropped and recording the same ops again reproduces identical values.
#[test]
fn tape_truncate_rewinds_cleanly() {
    let mut g = Graph::new();
    let a = g.constant(Mat::from_vec(5, 8, fill(40, 1.0)));
    let w = g.constant(Mat::from_vec(8, 8, fill(64, 0.5)));
    let base_len = g.len();

    let y1 = g.matmul(a, w);
    let first = g.value(y1).clone();
    g.truncate(base_len);
    assert_eq!(g.len(), base_len);

    let y2 = g.matmul(a, w);
    assert_eq!(&first, g.value(y2));
}
