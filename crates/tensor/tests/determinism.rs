//! Thread-count determinism suite.
//!
//! The parallel runtime's contract is that results are **bit-identical**
//! under any `GRAPHAUG_THREADS`: chunking is a function of the problem shape
//! only, every output element is owned by one chunk, and reduction orders
//! are fixed inside the kernels. These tests run each kernel — and a full
//! forward + backward pass over the tape — with the pool forced to 1 and to
//! 4 workers and compare outputs and gradients with exact equality.

use std::rc::Rc;
use std::sync::{Mutex, MutexGuard};

use graphaug_sparse::Csr;
use graphaug_tensor::{Graph, Mat, PairGatherPlan, SpPair};

/// `set_thread_count` is process-global; serialize the tests that flip it.
/// (The determinism contract makes concurrent flips harmless for results,
/// but serializing keeps each assertion about a specific count honest.)
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with the pool at 1 worker and at 4 workers and asserts the
/// returned buffers are bitwise identical.
fn assert_thread_invariant(name: &str, f: impl Fn() -> Vec<Vec<f32>>) {
    graphaug_par::set_thread_count(1);
    let serial = f();
    graphaug_par::set_thread_count(4);
    let parallel = f();
    graphaug_par::set_thread_count(1);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let same = s.len() == p.len() && s.iter().zip(p).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "{name}: buffer {i} differs between 1 and 4 threads");
    }
}

/// Deterministic pseudo-random fill (no RNG dependency needed).
fn fill(n: usize, scale: f32) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.7311 + 0.137).sin() * scale)
        .collect()
}

/// A moderately irregular sparse pattern: ~6 entries per row.
fn test_csr(n_rows: usize, n_cols: usize) -> Csr {
    let mut triplets = Vec::new();
    for r in 0..n_rows as u32 {
        for k in 0..6u32 {
            let c = (r * 7 + k * 13 + (r % 5)) % n_cols as u32;
            triplets.push((r, c, ((r + k) as f32 * 0.31).cos()));
        }
    }
    Csr::from_coo(n_rows, n_cols, triplets)
}

#[test]
fn matmul_family_is_thread_invariant() {
    let _g = lock();
    let a = Mat::from_vec(193, 47, fill(193 * 47, 1.3));
    let b = Mat::from_vec(47, 61, fill(47 * 61, 0.9));
    let c = Mat::from_vec(193, 61, fill(193 * 61, 1.1));
    assert_thread_invariant("matmul", || vec![a.matmul(&b).into_vec()]);
    assert_thread_invariant("matmul_nt", || vec![c.matmul_nt(&b).into_vec()]);
    assert_thread_invariant("matmul_tn", || vec![a.matmul_tn(&c).into_vec()]);
}

#[test]
fn spmm_kernels_are_thread_invariant() {
    let _g = lock();
    let m = test_csr(517, 301);
    // d = 32 exercises the width-specialized kernel, d = 7 the generic one.
    for d in [32usize, 7] {
        let dense = fill(301 * d, 1.7);
        let w = fill(m.nnz(), 0.8);
        let dy = fill(517 * d, 1.2);
        assert_thread_invariant("spmm_into", || {
            let mut out = vec![0f32; 517 * d];
            m.spmm_into(&dense, d, &mut out);
            let mut acc = out.clone();
            m.spmm_acc_into(&dense, d, &mut acc);
            vec![out, acc]
        });
        assert_thread_invariant("spmm_ew_into", || {
            let mut out = vec![0f32; 517 * d];
            m.spmm_ew_into(&w, &dense, d, &mut out);
            vec![out]
        });
        assert_thread_invariant("spmm_ew_grads", || {
            let mut dw = vec![0f32; m.nnz()];
            m.spmm_ew_dw_into(&dense, &dy, d, &mut dw);
            let mut dh = vec![0f32; 301 * d];
            m.spmm_ew_dh_acc_into(&w, &dy, d, &mut dh);
            vec![dw, dh]
        });
    }
}

#[test]
fn pair_gather_is_thread_invariant() {
    let _g = lock();
    let n_src = 400usize;
    let left: Vec<u32> = (0..900u32).map(|e| (e * 17) % n_src as u32).collect();
    let right: Vec<u32> = (0..900u32).map(|e| (e * 29 + 3) % n_src as u32).collect();
    let plan = PairGatherPlan::build(n_src, &left, &right);
    let d = 16usize;
    let src = fill(n_src * d, 1.0);
    let dy = fill(900 * 2 * d, 0.6);
    assert_thread_invariant("pair_gather", || {
        let mut out = vec![0f32; 900 * 2 * d];
        plan.gather_into(&src, d, &mut out);
        let mut dsrc = vec![0f32; n_src * d];
        plan.scatter_acc_into(&dy, d, &mut dsrc);
        vec![out, dsrc]
    });
}

/// End-to-end: a tape mixing dense matmuls, constant and edge-weighted SpMM,
/// and the fused pair gather must produce bit-identical forward values *and*
/// gradients under both thread counts.
#[test]
fn tape_forward_and_backward_are_thread_invariant() {
    let _g = lock();
    let n = 180usize;
    let d = 32usize;
    let m = test_csr(n, n);
    let sp = SpPair::new(m.clone());
    let pattern = Rc::new(m);
    let left: Vec<u32> = (0..300u32).map(|e| (e * 7) % n as u32).collect();
    let right: Vec<u32> = (0..300u32).map(|e| (e * 11 + 5) % n as u32).collect();
    let plan = Rc::new(PairGatherPlan::build(n, &left, &right));

    let run = || {
        let mut g = Graph::new();
        let h = g.constant(Mat::from_vec(n, d, fill(n * d, 1.0)));
        let w_mlp = g.constant(Mat::from_vec(d, d, fill(d * d, 0.4)));
        let ew = g.constant(Mat::from_vec(pattern.nnz(), 1, fill(pattern.nnz(), 0.5)));

        let prop = g.spmm(&sp, h);
        let mixed = g.spmm_ew(Rc::clone(&pattern), ew, prop);
        let dense = g.matmul(mixed, w_mlp);
        let feat = g.gather_concat_pair(dense, Rc::clone(&plan));
        let sq = g.square(feat);
        let loss = g.mean_all(sq);
        g.backward(loss);

        vec![
            g.value(dense).as_slice().to_vec(),
            g.value(feat).as_slice().to_vec(),
            g.grad(h).expect("h grad").as_slice().to_vec(),
            g.grad(ew).expect("ew grad").as_slice().to_vec(),
            g.grad(w_mlp).expect("w grad").as_slice().to_vec(),
        ]
    };
    assert_thread_invariant("tape_end_to_end", run);
}
