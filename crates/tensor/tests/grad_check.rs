//! Finite-difference gradient checks for every tape operation.
//!
//! Each test builds a scalar loss from one or more input matrices, runs the
//! analytic backward pass, and compares against central differences computed
//! by re-running the forward pass with perturbed inputs. f32 arithmetic
//! limits precision, so inputs are kept well-scaled and the tolerance is
//! `abs 2e-2 + rel 5%`.

use std::sync::Arc;

use graphaug_sparse::Csr;
use graphaug_tensor::{Graph, Mat, NodeId, SpPair};

type LossFn = dyn Fn(&mut Graph, &[NodeId]) -> NodeId;

fn run_loss(inputs: &[Mat], f: &LossFn) -> f32 {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = inputs.iter().map(|m| g.constant(m.clone())).collect();
    let loss = f(&mut g, &ids);
    g.value(loss).item()
}

fn grad_check(inputs: &[Mat], f: &LossFn) {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = inputs.iter().map(|m| g.constant(m.clone())).collect();
    let loss = f(&mut g, &ids);
    g.backward(loss);
    let analytic: Vec<Mat> = ids
        .iter()
        .zip(inputs)
        .map(|(&id, m)| {
            g.grad(id)
                .cloned()
                .unwrap_or_else(|| Mat::zeros(m.rows(), m.cols()))
        })
        .collect();

    let eps = 1e-2f32;
    for (i, input) in inputs.iter().enumerate() {
        for j in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[i].as_mut_slice()[j] += eps;
            let mut minus = inputs.to_vec();
            minus[i].as_mut_slice()[j] -= eps;
            let num = (run_loss(&plus, f) - run_loss(&minus, f)) / (2.0 * eps);
            let ana = analytic[i].as_slice()[j];
            let tol = 2e-2 + 0.05 * num.abs().max(ana.abs());
            assert!(
                (num - ana).abs() <= tol,
                "input {i} elem {j}: numeric {num} vs analytic {ana}"
            );
        }
    }
}

fn mat_a() -> Mat {
    Mat::from_fn(3, 4, |r, c| ((r * 4 + c) as f32) * 0.17 - 0.9)
}

fn mat_b() -> Mat {
    Mat::from_fn(3, 4, |r, c| ((r as f32) - (c as f32)) * 0.23 + 0.4)
}

#[test]
fn grad_add_sub_mul() {
    let f: Box<LossFn> = Box::new(|g, ids| {
        let s = g.add(ids[0], ids[1]);
        let d = g.sub(s, ids[1]);
        let m = g.mul(d, ids[1]);
        g.sum_all(m)
    });
    grad_check(&[mat_a(), mat_b()], &f);
}

#[test]
fn grad_scale_and_add_scalar() {
    let f: Box<LossFn> = Box::new(|g, ids| {
        let s = g.scale(ids[0], -1.7);
        let t = g.add_scalar(s, 0.3);
        let sq = g.square(t);
        g.mean_all(sq)
    });
    grad_check(&[mat_a()], &f);
}

#[test]
fn grad_mul_add_const() {
    let mask = Arc::new(Mat::from_fn(3, 4, |r, c| ((r + c) % 2) as f32));
    let shift = Arc::new(Mat::filled(3, 4, 0.25));
    let f: Box<LossFn> = Box::new(move |g, ids| {
        let m = g.mul_const(ids[0], Arc::clone(&mask));
        let a = g.add_const(m, Arc::clone(&shift));
        let sq = g.square(a);
        g.sum_all(sq)
    });
    grad_check(&[mat_a()], &f);
}

#[test]
fn grad_matmul() {
    let a = Mat::from_fn(3, 2, |r, c| (r as f32 + 1.0) * 0.3 - c as f32 * 0.2);
    let b = Mat::from_fn(2, 4, |r, c| (c as f32 - r as f32) * 0.25);
    let f: Box<LossFn> = Box::new(|g, ids| {
        let y = g.matmul(ids[0], ids[1]);
        let sq = g.square(y);
        g.sum_all(sq)
    });
    grad_check(&[a, b], &f);
}

#[test]
fn grad_matmul_nt() {
    let a = Mat::from_fn(3, 4, |r, c| r as f32 * 0.2 - c as f32 * 0.15);
    let b = Mat::from_fn(5, 4, |r, c| ((r + c) as f32 * 0.1) - 0.3);
    let f: Box<LossFn> = Box::new(|g, ids| {
        let y = g.matmul_nt(ids[0], ids[1]);
        let t = g.tanh(y);
        g.mean_all(t)
    });
    grad_check(&[a, b], &f);
}

#[test]
fn grad_add_row_broadcast() {
    let x = mat_a();
    let bias = Mat::from_fn(1, 4, |_, c| c as f32 * 0.2 - 0.3);
    let f: Box<LossFn> = Box::new(|g, ids| {
        let y = g.add_row_broadcast(ids[0], ids[1]);
        let s = g.sigmoid(y);
        g.sum_all(s)
    });
    grad_check(&[x, bias], &f);
}

#[test]
fn grad_spmm() {
    let csr = Csr::from_coo(
        4,
        3,
        vec![
            (0, 0, 0.5),
            (0, 2, -1.0),
            (1, 1, 2.0),
            (3, 0, 1.5),
            (3, 2, 0.25),
        ],
    );
    let sp = SpPair::new(csr);
    let h = Mat::from_fn(3, 2, |r, c| (r as f32 - c as f32) * 0.4 + 0.1);
    let f: Box<LossFn> = Box::new(move |g, ids| {
        let y = g.spmm(&sp, ids[0]);
        let sq = g.square(y);
        g.sum_all(sq)
    });
    grad_check(&[h], &f);
}

#[test]
fn grad_spmm_ew_both_operands() {
    let pattern = Arc::new(Csr::from_coo(
        4,
        3,
        vec![
            (0, 0, 1.0),
            (0, 2, 1.0),
            (1, 1, 1.0),
            (2, 0, 1.0),
            (3, 2, 1.0),
        ],
    ));
    let w = Mat::from_fn(5, 1, |r, _| 0.2 + r as f32 * 0.1);
    let h = Mat::from_fn(3, 2, |r, c| (r as f32 * 0.3) - (c as f32 * 0.2) + 0.1);
    let p = Arc::clone(&pattern);
    let f: Box<LossFn> = Box::new(move |g, ids| {
        let y = g.spmm_ew(Arc::clone(&p), ids[0], ids[1]);
        let t = g.tanh(y);
        let sq = g.square(t);
        g.sum_all(sq)
    });
    grad_check(&[w, h], &f);
}

#[test]
fn grad_gather_rows() {
    let idx = Arc::new(vec![2u32, 0, 2, 1]);
    let src = mat_a();
    let f: Box<LossFn> = Box::new(move |g, ids| {
        let y = g.gather_rows(ids[0], Arc::clone(&idx));
        let sq = g.square(y);
        g.sum_all(sq)
    });
    grad_check(&[src], &f);
}

#[test]
fn grad_concat_and_slice() {
    let a = Mat::from_fn(3, 2, |r, c| (r + c) as f32 * 0.2);
    let b = Mat::from_fn(3, 3, |r, c| (r as f32 - c as f32) * 0.3);
    let f: Box<LossFn> = Box::new(|g, ids| {
        let cat = g.concat_cols(ids[0], ids[1]);
        let sl = g.slice_cols(cat, 1, 4);
        let sq = g.square(sl);
        g.sum_all(sq)
    });
    grad_check(&[a, b], &f);
}

#[test]
fn grad_unary_activations() {
    for which in 0..6 {
        let x = Mat::from_fn(2, 3, |r, c| (r as f32 * 0.7 - c as f32 * 0.5) + 0.2);
        let f: Box<LossFn> = Box::new(move |g, ids| {
            let y = match which {
                0 => g.sigmoid(ids[0]),
                1 => g.leaky_relu(ids[0], 0.5),
                2 => g.tanh(ids[0]),
                3 => g.exp(ids[0]),
                4 => g.square(ids[0]),
                _ => g.softplus(ids[0]),
            };
            g.sum_all(y)
        });
        grad_check(&[x], &f);
    }
}

#[test]
fn grad_ln_positive_domain() {
    let x = Mat::from_fn(2, 3, |r, c| 0.5 + (r * 3 + c) as f32 * 0.3);
    let f: Box<LossFn> = Box::new(|g, ids| {
        let y = g.ln(ids[0]);
        g.sum_all(y)
    });
    grad_check(&[x], &f);
}

#[test]
fn grad_l2_normalize_rows() {
    let x = Mat::from_fn(3, 4, |r, c| (r as f32 + 1.0) * 0.4 - c as f32 * 0.3 + 0.2);
    let w = Mat::from_fn(3, 4, |r, c| ((r * c) as f32).cos());
    let f: Box<LossFn> = Box::new(|g, ids| {
        let y = g.l2_normalize_rows(ids[0]);
        let m = g.mul(y, ids[1]);
        g.sum_all(m)
    });
    grad_check(&[x, w], &f);
}

#[test]
fn grad_rowwise_dot() {
    let f: Box<LossFn> = Box::new(|g, ids| {
        let d = g.rowwise_dot(ids[0], ids[1]);
        let s = g.sigmoid(d);
        g.sum_all(s)
    });
    grad_check(&[mat_a(), mat_b()], &f);
}

#[test]
fn grad_logsumexp_rows() {
    let x = Mat::from_fn(3, 5, |r, c| (r as f32 - c as f32) * 0.6);
    let f: Box<LossFn> = Box::new(|g, ids| {
        let y = g.logsumexp_rows(ids[0]);
        g.sum_all(y)
    });
    grad_check(&[x], &f);
}

#[test]
fn grad_diag_nn() {
    let x = Mat::from_fn(4, 4, |r, c| (r as f32 * 0.3) - (c as f32 * 0.2));
    let f: Box<LossFn> = Box::new(|g, ids| {
        let d = g.diag_nn(ids[0]);
        let sq = g.square(d);
        g.sum_all(sq)
    });
    grad_check(&[x], &f);
}

/// InfoNCE-shaped composite: normalized embeddings from two views, similarity
/// matrix, logsumexp minus diagonal — the exact loss structure of Eq. 14.
#[test]
fn grad_infonce_composite() {
    let a = Mat::from_fn(4, 3, |r, c| ((r * 3 + c) as f32 * 0.21).sin());
    let b = Mat::from_fn(4, 3, |r, c| ((r as f32) - (c as f32) * 0.7).cos() * 0.5);
    let f: Box<LossFn> = Box::new(|g, ids| {
        let na = g.l2_normalize_rows(ids[0]);
        let nb = g.l2_normalize_rows(ids[1]);
        let sim = g.matmul_nt(na, nb);
        let scaled = g.scale(sim, 1.0 / 0.7);
        let lse = g.logsumexp_rows(scaled);
        let pos = g.diag_nn(scaled);
        let diff = g.sub(lse, pos);
        g.mean_all(diff)
    });
    grad_check(&[a, b], &f);
}

/// BPR-shaped composite: -log σ(pos - neg) via softplus(neg - pos).
#[test]
fn grad_bpr_composite() {
    let u = Mat::from_fn(5, 3, |r, c| (r as f32 * 0.2 - c as f32 * 0.1) + 0.05);
    let p = Mat::from_fn(5, 3, |r, c| ((r + c) as f32 * 0.15) - 0.2);
    let n = Mat::from_fn(5, 3, |r, c| ((r * c) as f32 * 0.1) - 0.1);
    let f: Box<LossFn> = Box::new(|g, ids| {
        let pos = g.rowwise_dot(ids[0], ids[1]);
        let neg = g.rowwise_dot(ids[0], ids[2]);
        let margin = g.sub(neg, pos);
        let sp = g.softplus(margin);
        g.mean_all(sp)
    });
    grad_check(&[u, p, n], &f);
}

/// Gradient accumulation: a node consumed twice receives the sum of both
/// path gradients.
#[test]
fn grad_accumulates_over_fanout() {
    let x = Mat::scalar(0.8);
    let f: Box<LossFn> = Box::new(|g, ids| {
        let sq = g.square(ids[0]);
        let s = g.add(sq, ids[0]);
        g.sum_all(s)
    });
    // d(x² + x)/dx = 2x + 1 = 2.6 — grad_check validates it numerically.
    grad_check(&[x], &f);
}

#[test]
fn grad_scale_by_scalar() {
    let x = mat_a();
    let s = Mat::scalar(0.7);
    let f: Box<LossFn> = Box::new(|g, ids| {
        let y = g.scale_by_scalar(ids[0], ids[1]);
        let sq = g.square(y);
        g.sum_all(sq)
    });
    grad_check(&[x, s], &f);
}
