//! Property-based tests for the tensor engine: algebraic identities of the
//! dense kernels and randomized gradient checks over composed op chains.
//!
//! Runs on the in-repo property runner (`graphaug_rng::prop`) — seeded case
//! generation, shrink-by-halving, replayable failure seeds — instead of the
//! external `proptest` crate, so the suite works fully offline.

use graphaug_rng::prop::{check, Gen, DEFAULT_CASES};
use graphaug_rng::prop_assert;
use graphaug_tensor::{Graph, Mat, NodeId};

/// Generator: a `rows × cols` matrix with entries in `(-2, 2)`.
fn small_mat(g: &mut Gen, rows: usize, cols: usize) -> Mat {
    let v = g.vec_of(rows * cols, |g| g.random_range(-2.0f32..2.0));
    Mat::from_vec(rows, cols, v)
}

#[test]
fn matmul_is_associative() {
    check("matmul_is_associative", DEFAULT_CASES, |g| {
        let a = small_mat(g, 3, 4);
        let b = small_mat(g, 4, 2);
        let c = small_mat(g, 2, 5);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        Ok(())
    });
}

#[test]
fn matmul_distributes_over_addition() {
    check("matmul_distributes_over_addition", DEFAULT_CASES, |g| {
        let a = small_mat(g, 3, 4);
        let b = small_mat(g, 4, 2);
        let c = small_mat(g, 4, 2);
        let sum = b.zip_map(&c, |x, y| x + y);
        let lhs = a.matmul(&sum);
        let ab = a.matmul(&b);
        let ac = a.matmul(&c);
        for i in 0..lhs.len() {
            prop_assert!((lhs.as_slice()[i] - (ab.as_slice()[i] + ac.as_slice()[i])).abs() < 1e-3);
        }
        Ok(())
    });
}

#[test]
fn transpose_respects_matmul() {
    check("transpose_respects_matmul", DEFAULT_CASES, |g| {
        // (AB)ᵀ = BᵀAᵀ
        let a = small_mat(g, 3, 4);
        let b = small_mat(g, 4, 2);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        Ok(())
    });
}

#[test]
fn l2_normalized_rows_are_unit_or_zero() {
    check(
        "l2_normalized_rows_are_unit_or_zero",
        DEFAULT_CASES,
        |gen| {
            let a = small_mat(gen, 5, 3);
            let mut g = Graph::new();
            let x = g.constant(a);
            let y = g.l2_normalize_rows(x);
            for r in 0..5 {
                let n: f32 = g.value(y).row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
                prop_assert!(n < 1.0 + 1e-4);
                prop_assert!(
                    !(1e-3..=0.99).contains(&n),
                    "row norm {} neither unit nor zero",
                    n
                );
            }
            Ok(())
        },
    );
}

#[test]
fn logsumexp_bounds_hold() {
    check("logsumexp_bounds_hold", DEFAULT_CASES, |gen| {
        // max(x) <= lse(x) <= max(x) + ln(n)
        let a = small_mat(gen, 4, 6);
        let mut g = Graph::new();
        let x = g.constant(a.clone());
        let y = g.logsumexp_rows(x);
        for r in 0..4 {
            let m = a
                .row(r)
                .iter()
                .fold(f32::NEG_INFINITY, |acc, &v| acc.max(v));
            let lse = g.value(y).get(r, 0);
            prop_assert!(lse >= m - 1e-5);
            prop_assert!(lse <= m + (6f32).ln() + 1e-5);
        }
        Ok(())
    });
}

/// Randomized gradient check over a composed chain: sigmoid ∘ matmul ∘
/// tanh ∘ (x + y). Verifies accumulation and chaining beyond the per-op
/// unit checks.
#[test]
fn random_chain_gradients_match_finite_differences() {
    fn forward(g: &mut Graph, x: Mat, y: Mat, w: Mat) -> (NodeId, NodeId, NodeId, NodeId) {
        let xn = g.constant(x);
        let yn = g.constant(y);
        let wn = g.constant(w);
        let s = g.add(xn, yn);
        let t = g.tanh(s);
        let m = g.matmul(t, wn);
        let sg = g.sigmoid(m);
        let loss = g.mean_all(sg);
        (loss, xn, yn, wn)
    }
    check(
        "random_chain_gradients_match_finite_differences",
        32,
        |gen| {
            let x = small_mat(gen, 3, 3);
            let y = small_mat(gen, 3, 3);
            let w = small_mat(gen, 3, 2);
            let mut g = Graph::new();
            let (loss, xn, _, wn) = forward(&mut g, x.clone(), y.clone(), w.clone());
            g.backward(loss);
            let gx = g.grad(xn).unwrap().clone();
            let gw = g.grad(wn).unwrap().clone();

            let eps = 1e-2f32;
            // Spot-check a few coordinates of each gradient.
            for &i in &[0usize, 4, 8] {
                let mut xp = x.clone();
                xp.as_mut_slice()[i] += eps;
                let mut xm = x.clone();
                xm.as_mut_slice()[i] -= eps;
                let mut g1 = Graph::new();
                let (l1, ..) = forward(&mut g1, xp, y.clone(), w.clone());
                let mut g2 = Graph::new();
                let (l2, ..) = forward(&mut g2, xm, y.clone(), w.clone());
                let num = (g1.value(l1).item() - g2.value(l2).item()) / (2.0 * eps);
                let ana = gx.as_slice()[i];
                prop_assert!(
                    (num - ana).abs() < 2e-2 + 0.1 * num.abs().max(ana.abs()),
                    "x[{}]: numeric {} analytic {}",
                    i,
                    num,
                    ana
                );
            }
            for &i in &[0usize, 3, 5] {
                let mut wp = w.clone();
                wp.as_mut_slice()[i] += eps;
                let mut wm = w.clone();
                wm.as_mut_slice()[i] -= eps;
                let mut g1 = Graph::new();
                let (l1, ..) = forward(&mut g1, x.clone(), y.clone(), wp);
                let mut g2 = Graph::new();
                let (l2, ..) = forward(&mut g2, x.clone(), y.clone(), wm);
                let num = (g1.value(l1).item() - g2.value(l2).item()) / (2.0 * eps);
                let ana = gw.as_slice()[i];
                prop_assert!(
                    (num - ana).abs() < 2e-2 + 0.1 * num.abs().max(ana.abs()),
                    "w[{}]: numeric {} analytic {}",
                    i,
                    num,
                    ana
                );
            }
            Ok(())
        },
    );
}

#[test]
fn backward_leaves_untouched_inputs_without_gradients() {
    check(
        "backward_leaves_untouched_inputs_without_gradients",
        DEFAULT_CASES,
        |gen| {
            let a = small_mat(gen, 2, 2);
            let b = small_mat(gen, 2, 2);
            let mut g = Graph::new();
            let xa = g.constant(a);
            let xb = g.constant(b); // never consumed
            let sq = g.square(xa);
            let loss = g.sum_all(sq);
            g.backward(loss);
            prop_assert!(g.grad(xa).is_some());
            prop_assert!(g.grad(xb).is_none());
            Ok(())
        },
    );
}

/// Serial triple-loop reference for the parallel matmul family.
fn naive_matmul(a: &Mat, b: &Mat) -> Vec<f32> {
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0f32; n * m];
    for i in 0..n {
        for j in 0..m {
            let mut acc = 0f64;
            for kk in 0..k {
                acc += a.get(i, kk) as f64 * b.get(kk, j) as f64;
            }
            out[i * m + j] = acc as f32;
        }
    }
    out
}

#[test]
fn matmul_family_matches_serial_reference() {
    check(
        "matmul_family_matches_serial_reference",
        DEFAULT_CASES,
        |g| {
            let n = g.len_in(1, 9);
            let k = g.len_in(1, 11);
            let m = g.len_in(1, 8);
            let a = small_mat(g, n, k);
            let b = small_mat(g, k, m);
            let want = naive_matmul(&a, &b);
            for (x, y) in a.matmul(&b).as_slice().iter().zip(&want) {
                prop_assert!((x - y).abs() < 1e-3);
            }
            // a × (bᵀ)ᵀ = a × b, via the nt kernel.
            for (x, y) in a.matmul_nt(&b.transpose()).as_slice().iter().zip(&want) {
                prop_assert!((x - y).abs() < 1e-3);
            }
            // (aᵀ)ᵀ × b = a × b, via the tn kernel.
            let at = a.transpose();
            for (x, y) in at.matmul_tn(&b).as_slice().iter().zip(&want) {
                prop_assert!((x - y).abs() < 1e-3);
            }
            Ok(())
        },
    );
}
