//! Seeded weight initializers.

pub use graphaug_rng::seeded_rng;
use graphaug_rng::StdRng;

use crate::mat::Mat;

/// Xavier/Glorot-uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Mat {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Mat::from_fn(rows, cols, |_, _| rng.random_range(-a..a))
}

/// Scaled normal initialization `N(0, std²)` (Box–Muller from the seeded rng).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Mat {
    Mat::from_fn(rows, cols, |_, _| rng.normal_f32() * std)
}

/// Near-identity initialization for hop-combination weights: an
/// `(n_blocks·d) × d` matrix whose `d × d` blocks are `I / n_blocks` plus
/// small uniform noise.
///
/// A GNN layer `H ← δ([Ã⁰H | Ã¹H | …] W)` initialized this way starts as
/// plain hop *averaging* (LightGCN-like propagation) and lets training
/// refine the mixture — random init instead scrambles the embedding space
/// at every layer and costs most of the optimization budget to undo.
pub fn identity_blocks(n_blocks: usize, d: usize, noise: f32, rng: &mut StdRng) -> Mat {
    assert!(n_blocks >= 1);
    let scale = 1.0 / n_blocks as f32;
    Mat::from_fn(n_blocks * d, d, |r, c| {
        let base = if r % d == c { scale } else { 0.0 };
        base + rng.random_range(-noise..noise)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound_and_seed() {
        let mut rng = seeded_rng(7);
        let m = xavier_uniform(10, 30, &mut rng);
        let a = (6.0 / 40.0f32).sqrt();
        assert!(m.as_slice().iter().all(|&v| v > -a && v < a));
        let mut rng2 = seeded_rng(7);
        assert_eq!(m, xavier_uniform(10, 30, &mut rng2));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = seeded_rng(11);
        let m = normal(100, 100, 0.5, &mut rng);
        let n = m.len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }
}
