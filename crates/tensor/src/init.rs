//! Seeded weight initializers and parallel seeded buffer fills.
//!
//! The `par_fill_*` helpers split a buffer over the fixed chunk grid of
//! [`graphaug_par::fixed_chunks`] and seed one derived RNG stream per chunk
//! (`StdRng::stream(seed, chunk)`), so the result is a pure function of
//! `(seed, len)` — identical for every `GRAPHAUG_THREADS` setting.

pub use graphaug_rng::seeded_rng;
use graphaug_rng::StdRng;

use crate::mat::Mat;

/// Xavier/Glorot-uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Mat {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Mat::from_fn(rows, cols, |_, _| rng.random_range(-a..a))
}

/// Scaled normal initialization `N(0, std²)` (Box–Muller from the seeded rng).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Mat {
    Mat::from_fn(rows, cols, |_, _| rng.normal_f32() * std)
}

/// Near-identity initialization for hop-combination weights: an
/// `(n_blocks·d) × d` matrix whose `d × d` blocks are `I / n_blocks` plus
/// small uniform noise.
///
/// A GNN layer `H ← δ([Ã⁰H | Ã¹H | …] W)` initialized this way starts as
/// plain hop *averaging* (LightGCN-like propagation) and lets training
/// refine the mixture — random init instead scrambles the embedding space
/// at every layer and costs most of the optimization budget to undo.
pub fn identity_blocks(n_blocks: usize, d: usize, noise: f32, rng: &mut StdRng) -> Mat {
    assert!(n_blocks >= 1);
    let scale = 1.0 / n_blocks as f32;
    Mat::from_fn(n_blocks * d, d, |r, c| {
        let base = if r % d == c { scale } else { 0.0 };
        base + rng.random_range(-noise..noise)
    })
}

/// Fills `out` with `N(0, std²)` draws (Marsaglia polar), one derived
/// stream per fixed-grid chunk. Thread-count invariant.
pub fn par_fill_normal(out: &mut [f32], std: f32, seed: u64) {
    let (chunk_len, _) = graphaug_par::fixed_chunks(out.len());
    graphaug_par::parallel_chunks(out, chunk_len, |ci, chunk| {
        StdRng::stream(seed, ci as u64).fill_normal_f32(chunk, std);
    });
}

/// Fills `out` with `1.0`-with-probability-`p` / `0.0` indicator draws, one
/// derived stream per fixed-grid chunk. Thread-count invariant.
pub fn par_fill_bernoulli(out: &mut [f32], p: f32, seed: u64) {
    let (chunk_len, _) = graphaug_par::fixed_chunks(out.len());
    graphaug_par::parallel_chunks(out, chunk_len, |ci, chunk| {
        StdRng::stream(seed, ci as u64).fill_bernoulli_f32(chunk, p);
    });
}

/// Fills `out` with standard logistic draws, one derived stream per
/// fixed-grid chunk. Thread-count invariant.
pub fn par_fill_logistic(out: &mut [f32], seed: u64) {
    let (chunk_len, _) = graphaug_par::fixed_chunks(out.len());
    graphaug_par::parallel_chunks(out, chunk_len, |ci, chunk| {
        StdRng::stream(seed, ci as u64).fill_logistic_f32(chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound_and_seed() {
        let mut rng = seeded_rng(7);
        let m = xavier_uniform(10, 30, &mut rng);
        let a = (6.0 / 40.0f32).sqrt();
        assert!(m.as_slice().iter().all(|&v| v > -a && v < a));
        let mut rng2 = seeded_rng(7);
        assert_eq!(m, xavier_uniform(10, 30, &mut rng2));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = seeded_rng(11);
        let m = normal(100, 100, 0.5, &mut rng);
        let n = m.len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn par_fills_are_thread_count_invariant() {
        let run = |threads: usize| {
            let prev = graphaug_par::thread_count();
            graphaug_par::set_thread_count(threads);
            let mut n = vec![0.0f32; 5003];
            let mut b = vec![0.0f32; 5003];
            let mut l = vec![0.0f32; 5003];
            par_fill_normal(&mut n, 0.3, 42);
            par_fill_bernoulli(&mut b, 0.8, 42);
            par_fill_logistic(&mut l, 42);
            graphaug_par::set_thread_count(prev);
            (n, b, l)
        };
        let base = run(1);
        for threads in [3, 4] {
            let got = run(threads);
            assert!(
                base.0
                    .iter()
                    .zip(&got.0)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "normal fill differs at {threads} threads"
            );
            assert_eq!(base.1, got.1, "bernoulli fill differs at {threads} threads");
            assert!(
                base.2
                    .iter()
                    .zip(&got.2)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "logistic fill differs at {threads} threads"
            );
        }
    }

    #[test]
    fn par_fill_statistics_are_sound() {
        let mut n = vec![0.0f32; 60_000];
        par_fill_normal(&mut n, 1.0, 7);
        let mean: f64 = n.iter().map(|&x| x as f64).sum::<f64>() / n.len() as f64;
        let var: f64 = n.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");

        let mut b = vec![0.0f32; 60_000];
        par_fill_bernoulli(&mut b, 0.9, 7);
        let rate = b.iter().sum::<f32>() as f64 / b.len() as f64;
        assert!((rate - 0.9).abs() < 0.01, "keep rate {rate}");
    }
}
