//! Operation records for the reverse-mode tape.
//!
//! Every [`Op`] stores the ids of its operands plus whatever auxiliary data
//! the backward pass needs (sparse operands are shared via `Rc` so rebuilding
//! the tape each step never copies the graph structure).

use std::rc::Rc;

use graphaug_sparse::Csr;

use crate::mat::Mat;
use crate::tape::NodeId;

/// A sparse matrix paired with its transpose, so `spmm` backward never has to
/// re-transpose inside the training loop. Use [`SpPair::symmetric`] for
/// symmetric matrices (normalized adjacencies) to share one buffer.
#[derive(Clone)]
pub struct SpPair {
    /// The forward operand.
    pub m: Rc<Csr>,
    /// Its transpose (possibly the same allocation when symmetric).
    pub mt: Rc<Csr>,
}

impl SpPair {
    /// Builds a pair, computing the transpose once.
    pub fn new(m: Csr) -> Self {
        let mt = Rc::new(m.transpose());
        SpPair { m: Rc::new(m), mt }
    }

    /// Wraps a symmetric matrix without computing a transpose.
    pub fn symmetric(m: Csr) -> Self {
        let m = Rc::new(m);
        SpPair {
            mt: Rc::clone(&m),
            m,
        }
    }
}

/// Tape operation records. Field names follow `y = op(…)` conventions.
pub enum Op {
    /// Leaf holding a constant or a parameter snapshot.
    Leaf,
    /// `y = a + b`
    Add(NodeId, NodeId),
    /// `y = a - b`
    Sub(NodeId, NodeId),
    /// `y = a ⊙ b`
    Mul(NodeId, NodeId),
    /// `y = c · a`
    Scale(NodeId, f32),
    /// `y = a + c`
    AddScalar(NodeId, f32),
    /// `y = a ⊙ k` for a constant matrix `k` (masks, noise)
    MulConst(NodeId, Rc<Mat>),
    /// `y = a + k` for a constant matrix `k`
    AddConst(NodeId, Rc<Mat>),
    /// `y = a × b`
    MatMul(NodeId, NodeId),
    /// `y = a × bᵀ`
    MatMulNT(NodeId, NodeId),
    /// `y[i] = a[i] + bias` with `bias` a `1 × d` node broadcast over rows
    AddRowBroadcast(NodeId, NodeId),
    /// `y = M × h` for a constant sparse `M`
    Spmm { sp: SpPair, h: NodeId },
    /// `y = csr(pattern, w) × h` — edge-weighted SpMM, differentiable in both
    /// the `nnz × 1` weight node `w` and the dense node `h`
    SpmmEw {
        pattern: Rc<Csr>,
        w: NodeId,
        h: NodeId,
    },
    /// `y[i] = src[idx[i]]`
    GatherRows { src: NodeId, idx: Rc<Vec<u32>> },
    /// `y = [a | b]` column-wise
    ConcatCols(NodeId, NodeId),
    /// `y = src[:, start..end]`
    SliceCols {
        src: NodeId,
        start: usize,
        end: usize,
    },
    /// `y = σ(a)`
    Sigmoid(NodeId),
    /// `y = LeakyReLU(a; slope)`
    LeakyRelu(NodeId, f32),
    /// `y = tanh(a)`
    Tanh(NodeId),
    /// `y = exp(a)`
    Exp(NodeId),
    /// `y = ln(a)` (requires positive input)
    Ln(NodeId),
    /// `y = a²`
    Square(NodeId),
    /// `y = softplus(a) = ln(1 + eᵃ)` (numerically stabilized)
    Softplus(NodeId),
    /// `y[i] = a[i] / max(‖a[i]‖₂, ε)` row-wise
    L2NormalizeRows(NodeId),
    /// `y[i] = a[i] · b[i]` row-wise dot → `n × 1`
    RowwiseDot(NodeId, NodeId),
    /// `y[i] = log Σ_j exp(a[i][j])` → `n × 1`
    LogsumexpRows(NodeId),
    /// `y[i] = a[i][i]` for square `a` → `n × 1`
    DiagNN(NodeId),
    /// `y = Σ a` → `1 × 1`
    SumAll(NodeId),
    /// `y = mean(a)` → `1 × 1`
    MeanAll(NodeId),
    /// `y = s · a` for a `1 × 1` scalar node `s` broadcast over `a`
    ScaleByScalar(NodeId, NodeId),
}

/// Stable softplus: `ln(1 + e^x) = max(x, 0) + ln(1 + e^{-|x|})`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softplus_is_stable_at_extremes() {
        assert!((softplus(100.0) - 100.0).abs() < 1e-4);
        assert!(softplus(-100.0).abs() < 1e-4);
        assert!((softplus(0.0) - (2.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(50.0) > 0.999_99);
        assert!(sigmoid(-50.0) < 1e-5);
        for x in [-3.0f32, -0.5, 0.7, 2.5] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sp_pair_symmetric_shares_allocation() {
        let c = Csr::identity(3);
        let p = SpPair::symmetric(c);
        assert!(Rc::ptr_eq(&p.m, &p.mt));
    }

    #[test]
    fn sp_pair_new_transposes() {
        let c = Csr::from_coo(2, 3, vec![(0, 2, 1.0)]);
        let p = SpPair::new(c);
        assert_eq!(p.mt.n_rows(), 3);
        assert_eq!(p.mt.row(2).0, &[0u32]);
    }
}
