//! Operation records for the reverse-mode tape.
//!
//! Every [`Op`] stores the ids of its operands plus whatever auxiliary data
//! the backward pass needs (sparse operands are shared via `Arc` so rebuilding
//! the tape each step never copies the graph structure).

use std::sync::Arc;

use graphaug_par::{simd_dispatch, F32x8};
use graphaug_sparse::Csr;

use crate::mat::Mat;
use crate::tape::NodeId;

/// A sparse matrix paired with its transpose, so `spmm` backward never has to
/// re-transpose inside the training loop. Use [`SpPair::symmetric`] for
/// symmetric matrices (normalized adjacencies) to share one buffer.
#[derive(Clone)]
pub struct SpPair {
    /// The forward operand.
    pub m: Arc<Csr>,
    /// Its transpose (possibly the same allocation when symmetric).
    pub mt: Arc<Csr>,
}

impl SpPair {
    /// Builds a pair, computing the transpose once.
    pub fn new(m: Csr) -> Self {
        let mt = Arc::new(m.transpose());
        SpPair { m: Arc::new(m), mt }
    }

    /// Wraps a symmetric matrix without computing a transpose.
    pub fn symmetric(m: Csr) -> Self {
        let m = Arc::new(m);
        SpPair {
            mt: Arc::clone(&m),
            m,
        }
    }
}

/// A precomputed gather plan for the fused "gather two endpoint rows and
/// concatenate" op used by the augmentor's edge scorer:
/// `y[e] = [src[left[e]] | src[right[e]]]`.
///
/// Building the plan once per graph hoists all index arithmetic out of the
/// per-step hot path — the forward pass is a single indexed row copy, and
/// the backward pass is a *gather* (row-parallel, deterministic) instead of
/// a serial scatter-add: `inv_ptr`/`inv_pos` form a CSR over source rows
/// listing every output slot each source row feeds.
pub struct PairGatherPlan {
    /// Interleaved endpoint indices: `fwd[2e] = left[e]`, `fwd[2e+1] = right[e]`.
    fwd: Vec<u32>,
    /// Per source row: span into `inv_pos` (`len == n_src + 1`).
    inv_ptr: Vec<usize>,
    /// Output slots, encoded `e * 2 + half` (half 0 = left block, 1 = right).
    inv_pos: Vec<u32>,
    n_src: usize,
}

impl PairGatherPlan {
    /// Builds the plan for `n_src` source rows and one `(left, right)` index
    /// pair per output row.
    pub fn build(n_src: usize, left: &[u32], right: &[u32]) -> Self {
        assert_eq!(left.len(), right.len(), "endpoint lists must pair up");
        assert!(left.len() * 2 <= u32::MAX as usize, "too many pairs");
        let mut fwd = Vec::with_capacity(left.len() * 2);
        for (&l, &r) in left.iter().zip(right) {
            assert!((l as usize) < n_src && (r as usize) < n_src, "index bound");
            fwd.push(l);
            fwd.push(r);
        }
        let mut counts = vec![0usize; n_src + 1];
        for &s in &fwd {
            counts[s as usize + 1] += 1;
        }
        for i in 1..=n_src {
            counts[i] += counts[i - 1];
        }
        let inv_ptr = counts.clone();
        let mut cursor = counts;
        let mut inv_pos = vec![0u32; fwd.len()];
        for (pos, &s) in fwd.iter().enumerate() {
            inv_pos[cursor[s as usize]] = pos as u32;
            cursor[s as usize] += 1;
        }
        PairGatherPlan {
            fwd,
            inv_ptr,
            inv_pos,
            n_src,
        }
    }

    /// Number of `(left, right)` pairs (output rows).
    pub fn n_pairs(&self) -> usize {
        self.fwd.len() / 2
    }

    /// Number of source rows the plan was built for.
    pub fn n_src(&self) -> usize {
        self.n_src
    }

    /// Forward kernel: writes `out[e] = [src[left[e]] | src[right[e]]]`,
    /// where `src` is `n_src × d` and `out` is `n_pairs × 2d`. Parallel over
    /// fixed chunks of output rows.
    pub fn gather_into(&self, src: &[f32], d: usize, out: &mut [f32]) {
        assert_eq!(src.len(), self.n_src * d, "source shape mismatch");
        assert_eq!(out.len(), self.n_pairs() * 2 * d, "output shape mismatch");
        if d == 0 {
            return;
        }
        graphaug_par::parallel_rows(out, 2 * d, |row0, rows| {
            gather_pair_span(&self.fwd, src, d, row0, rows);
        });
    }

    /// Backward kernel: `dsrc[s] += Σ_{slots of s} dy[slot block]`, where
    /// `dy` is `n_pairs × 2d`. Row-parallel over source rows with a fixed
    /// per-row slot order — deterministic for any thread count.
    pub fn scatter_acc_into(&self, dy: &[f32], d: usize, dsrc: &mut [f32]) {
        assert_eq!(dy.len(), self.n_pairs() * 2 * d, "gradient shape mismatch");
        assert_eq!(dsrc.len(), self.n_src * d, "source gradient shape mismatch");
        if d == 0 {
            return;
        }
        graphaug_par::parallel_rows(dsrc, d, |row0, rows| {
            scatter_pair_span(&self.inv_ptr, &self.inv_pos, dy, d, row0, rows);
        });
    }
}

simd_dispatch! {
    /// Span kernel of [`PairGatherPlan::gather_into`]. Lane-width row copies
    /// when `d` is a multiple of 8 sidestep the per-row dynamic-size
    /// `memcpy` dispatch, which dominates at the 128-byte rows of the edge
    /// scorer. Copies are exact, so lane and scalar paths are bit-identical.
    fn gather_pair_span(fwd: &[u32], src: &[f32], d: usize, row0: usize, rows: &mut [f32]) {
        let w = 2 * d;
        if d.is_multiple_of(graphaug_par::simd::LANES) {
            let nl = d / graphaug_par::simd::LANES;
            for (i, orow) in rows.chunks_exact_mut(w).enumerate() {
                let e = row0 + i;
                let l = fwd[2 * e] as usize * d;
                let r = fwd[2 * e + 1] as usize * d;
                let (lo, hi) = orow.split_at_mut(d);
                for b in 0..nl {
                    F32x8::load(&src[l + b * 8..]).store(&mut lo[b * 8..]);
                    F32x8::load(&src[r + b * 8..]).store(&mut hi[b * 8..]);
                }
            }
        } else {
            for (i, orow) in rows.chunks_exact_mut(w).enumerate() {
                let e = row0 + i;
                let l = fwd[2 * e] as usize;
                let r = fwd[2 * e + 1] as usize;
                orow[..d].copy_from_slice(&src[l * d..l * d + d]);
                orow[d..].copy_from_slice(&src[r * d..r * d + d]);
            }
        }
    }
}

simd_dispatch! {
    /// Span kernel of [`PairGatherPlan::scatter_acc_into`]. Additions run in
    /// the same per-row ascending slot order as the scalar loop (lane blocks
    /// only split the row *across* elements, never the per-element sum), so
    /// lane and scalar paths are bit-identical.
    fn scatter_pair_span(
        inv_ptr: &[usize],
        inv_pos: &[u32],
        dy: &[f32],
        d: usize,
        row0: usize,
        rows: &mut [f32],
    ) {
        if d.is_multiple_of(graphaug_par::simd::LANES) {
            let nl = d / graphaug_par::simd::LANES;
            for (i, orow) in rows.chunks_exact_mut(d).enumerate() {
                let s = row0 + i;
                for &pos in &inv_pos[inv_ptr[s]..inv_ptr[s + 1]] {
                    let grow = &dy[pos as usize * d..pos as usize * d + d];
                    for b in 0..nl {
                        F32x8::load(&orow[b * 8..])
                            .add(F32x8::load(&grow[b * 8..]))
                            .store(&mut orow[b * 8..]);
                    }
                }
            }
        } else {
            for (i, orow) in rows.chunks_exact_mut(d).enumerate() {
                let s = row0 + i;
                for &pos in &inv_pos[inv_ptr[s]..inv_ptr[s + 1]] {
                    let grow = &dy[pos as usize * d..pos as usize * d + d];
                    for (o, &x) in orow.iter_mut().zip(grow) {
                        *o += x;
                    }
                }
            }
        }
    }
}

/// Tape operation records. Field names follow `y = op(…)` conventions.
pub enum Op {
    /// Leaf holding a constant or a parameter snapshot.
    Leaf,
    /// `y = a + b`
    Add(NodeId, NodeId),
    /// `y = a - b`
    Sub(NodeId, NodeId),
    /// `y = a ⊙ b`
    Mul(NodeId, NodeId),
    /// `y = c · a`
    Scale(NodeId, f32),
    /// `y = a + c`
    AddScalar(NodeId, f32),
    /// `y = a ⊙ k` for a constant matrix `k` (masks, noise)
    MulConst(NodeId, Arc<Mat>),
    /// `y = a + k` for a constant matrix `k`
    AddConst(NodeId, Arc<Mat>),
    /// `y = a × b`
    MatMul(NodeId, NodeId),
    /// `y = a × bᵀ`
    MatMulNT(NodeId, NodeId),
    /// `y[i] = a[i] + bias` with `bias` a `1 × d` node broadcast over rows
    AddRowBroadcast(NodeId, NodeId),
    /// `y = M × h` for a constant sparse `M`
    Spmm { sp: SpPair, h: NodeId },
    /// `y = csr(pattern, w) × h` — edge-weighted SpMM, differentiable in both
    /// the `nnz × 1` weight node `w` and the dense node `h`
    SpmmEw {
        pattern: Arc<Csr>,
        w: NodeId,
        h: NodeId,
    },
    /// `y[i] = src[idx[i]]`
    GatherRows { src: NodeId, idx: Arc<Vec<u32>> },
    /// `y[e] = [src[left[e]] | src[right[e]]]` via a precomputed
    /// [`PairGatherPlan`] — the fused endpoint-feature op of the edge scorer
    GatherConcatPair {
        src: NodeId,
        plan: Arc<PairGatherPlan>,
    },
    /// `y = [a | b]` column-wise
    ConcatCols(NodeId, NodeId),
    /// `y = src[:, start..end]`
    SliceCols {
        src: NodeId,
        start: usize,
        end: usize,
    },
    /// `y = σ(a)`
    Sigmoid(NodeId),
    /// `y = LeakyReLU(a; slope)`
    LeakyRelu(NodeId, f32),
    /// `y = tanh(a)`
    Tanh(NodeId),
    /// `y = exp(a)`
    Exp(NodeId),
    /// `y = ln(a)` (requires positive input)
    Ln(NodeId),
    /// `y = a²`
    Square(NodeId),
    /// `y = softplus(a) = ln(1 + eᵃ)` (numerically stabilized)
    Softplus(NodeId),
    /// `y[i] = a[i] / max(‖a[i]‖₂, ε)` row-wise
    L2NormalizeRows(NodeId),
    /// `y[i] = a[i] · b[i]` row-wise dot → `n × 1`
    RowwiseDot(NodeId, NodeId),
    /// `y[i] = log Σ_j exp(a[i][j])` → `n × 1`
    LogsumexpRows(NodeId),
    /// `y[i] = a[i][i]` for square `a` → `n × 1`
    DiagNN(NodeId),
    /// `y = Σ a` → `1 × 1`
    SumAll(NodeId),
    /// `y = mean(a)` → `1 × 1`
    MeanAll(NodeId),
    /// `y = s · a` for a `1 × 1` scalar node `s` broadcast over `a`
    ScaleByScalar(NodeId, NodeId),
}

/// Stable softplus: `ln(1 + e^x) = max(x, 0) + ln(1 + e^{-|x|})`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softplus_is_stable_at_extremes() {
        assert!((softplus(100.0) - 100.0).abs() < 1e-4);
        assert!(softplus(-100.0).abs() < 1e-4);
        assert!((softplus(0.0) - (2.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(50.0) > 0.999_99);
        assert!(sigmoid(-50.0) < 1e-5);
        for x in [-3.0f32, -0.5, 0.7, 2.5] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn pair_gather_plan_round_trips() {
        let left = vec![0u32, 2, 1];
        let right = vec![3u32, 3, 0];
        let plan = PairGatherPlan::build(4, &left, &right);
        assert_eq!(plan.n_pairs(), 3);
        let d = 2usize;
        let src: Vec<f32> = (0..4 * d).map(|x| x as f32).collect();
        let mut out = vec![0f32; 3 * 2 * d];
        plan.gather_into(&src, d, &mut out);
        for e in 0..3 {
            let (l, r) = (left[e] as usize, right[e] as usize);
            assert_eq!(&out[e * 2 * d..e * 2 * d + d], &src[l * d..l * d + d]);
            assert_eq!(&out[e * 2 * d + d..(e + 1) * 2 * d], &src[r * d..r * d + d]);
        }
        // Backward of an all-ones upstream gradient counts row occurrences.
        let dy = vec![1f32; 3 * 2 * d];
        let mut dsrc = vec![0f32; 4 * d];
        plan.scatter_acc_into(&dy, d, &mut dsrc);
        let mut counts = [0f32; 4];
        for &s in left.iter().chain(&right) {
            counts[s as usize] += 1.0;
        }
        for s in 0..4 {
            for j in 0..d {
                assert_eq!(dsrc[s * d + j], counts[s]);
            }
        }
    }

    #[test]
    fn sp_pair_symmetric_shares_allocation() {
        let c = Csr::identity(3);
        let p = SpPair::symmetric(c);
        assert!(Arc::ptr_eq(&p.m, &p.mt));
    }

    #[test]
    fn sp_pair_new_transposes() {
        let c = Csr::from_coo(2, 3, vec![(0, 2, 1.0)]);
        let p = SpPair::new(c);
        assert_eq!(p.mt.n_rows(), 3);
        assert_eq!(p.mt.row(2).0, &[0u32]);
    }
}
